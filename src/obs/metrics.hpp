// Lock-cheap metrics: named counters, gauges, and fixed-bucket latency
// histograms shared by the whole solve pipeline.
//
// The registry is the slow path: name lookup takes a mutex and returns
// a reference to a heap-stable instrument. Call sites cache that
// reference (a function-local static at instrumentation points), so the
// hot path is a single relaxed atomic RMW — safe from ThreadPool
// workers, no locks, no allocation. Instruments are never destroyed
// before the registry, so cached references cannot dangle.
//
// The registry stays compiled in even under MECOFF_OBS_DISABLED (the
// CLI and tests use it directly); only the MECOFF_* instrumentation
// macros in obs.hpp compile away.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/quantiles.hpp"

namespace mecoff::obs {

/// Monotone event count. add() is a relaxed atomic fetch-add.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. the most recent solve's stage seconds).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram: bucket i counts samples <= bounds[i], the
/// last bucket is the +inf overflow. Boundaries are fixed at creation
/// so record() is one binary search plus two relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void record(double sample);

  /// Default latency boundaries in seconds: 1us..100s, decade steps
  /// with a 1-3 split (14 finite buckets).
  [[nodiscard]] static std::span<const double> default_latency_bounds();

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every instrument, for reporting and tests.
struct MetricsSnapshot {
  struct HistogramValue {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  /// Summary view of a Quantiles instrument: the standard serving
  /// percentiles, evaluated over the sliding window at snapshot time.
  struct QuantilesValue {
    std::uint64_t count = 0;  ///< samples ever recorded
    double sum = 0.0;         ///< over every sample ever recorded
    std::size_t window_size = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Window-maximum exemplar: the worst sample still in the window
    /// and the request id that produced it (0 = untagged).
    double max_value = 0.0;
    std::uint64_t max_request_id = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramValue> histograms;
  std::map<std::string, QuantilesValue> quantiles;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumentation macro targets.
  static MetricsRegistry& global();

  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime. A name identifies at most one instrument kind; asking
  /// for the same name as a different kind throws.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` applies on creation only (empty = default latency
  /// boundaries); later lookups ignore it.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds = {});
  /// Sliding-window quantile estimator (see obs/quantiles.hpp).
  /// `window_capacity` applies on creation only (0 = default window);
  /// later lookups ignore it.
  Quantiles& quantiles(std::string_view name,
                       std::size_t window_capacity = 0);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every instrument (names and boundaries stay registered).
  void reset_values();

  /// Human-readable dump, one `name ...` line per instrument, sorted by
  /// name across ALL instrument kinds. Byte-stable: deterministic
  /// ordering and locale-independent round-trip number formatting
  /// (std::to_chars), so golden tests and the bench gate can diff the
  /// dump byte-for-byte across runs and machines.
  [[nodiscard]] std::string to_text() const;
  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...},
  /// "quantiles":{...}}, keys sorted, numbers via std::to_chars.
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kQuantiles };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Quantiles> quantiles;
  };

  /// Takes the lock itself; the returned Entry's instrument pointers
  /// are heap-stable, so callers may hold them without the lock.
  Entry& find_or_create(std::string_view name, Kind kind,
                        std::span<const double> upper_bounds,
                        std::size_t window_capacity = 0) EXCLUDES(mutex_);

  /// snapshot()/to_text()/to_json() read Quantiles instruments while
  /// holding the registry lock, so each Quantiles' internal lock nests
  /// under mutex_; Quantiles never calls back into the registry.
  // lock-order: MetricsRegistry::mutex_ -> Quantiles::mutex_
  mutable Mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_ GUARDED_BY(mutex_);
};

}  // namespace mecoff::obs
