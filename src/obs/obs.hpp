// Instrumentation facade: the macros every pipeline layer uses.
//
// Compile-out contract: building with -DMECOFF_OBS_DISABLED (CMake
// option MECOFF_OBS=OFF) turns every macro here into nothing — no
// atomic traffic, no clock reads, no registry lookups — while the
// obs classes themselves stay declared so non-macro call sites (the
// CLI's trace/metrics flags, tests) still compile.
//
// Hot-path cost with observability compiled in:
//  * spans: one relaxed atomic load when tracing is disabled at
//    runtime (the default); two clock reads + one uncontended mutexed
//    push_back when enabled;
//  * counters/histograms: a once-per-site registry lookup cached in a
//    function-local static, then one relaxed atomic RMW per hit.
//
// Naming convention (see docs/observability.md for the full taxonomy):
// metric and span names are dot-separated, lowercase, rooted at the
// owning layer — "lpa.propagation.rounds", "linalg.lanczos.matvecs",
// "mec.solve.compress_seconds", "sim.events".
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Token pasting needs two layers so __LINE__ expands first.
#define MECOFF_OBS_CONCAT_IMPL(a, b) a##b
#define MECOFF_OBS_CONCAT(a, b) MECOFF_OBS_CONCAT_IMPL(a, b)

#ifndef MECOFF_OBS_DISABLED

/// Scoped trace span covering the rest of the enclosing block.
#define MECOFF_TRACE_SPAN(name)                      \
  [[maybe_unused]] const ::mecoff::obs::TraceSpan    \
      MECOFF_OBS_CONCAT(mecoff_obs_span_, __LINE__)( \
          name, ::mecoff::obs::kNoArg)

/// Span with one numeric argument (user index, event seq, ...).
#define MECOFF_TRACE_SPAN_ARG(name, arg)             \
  [[maybe_unused]] const ::mecoff::obs::TraceSpan    \
      MECOFF_OBS_CONCAT(mecoff_obs_span_, __LINE__)( \
          name, static_cast<std::uint64_t>(arg))

#define MECOFF_COUNTER_ADD(name, delta)                               \
  do {                                                                \
    static ::mecoff::obs::Counter& mecoff_obs_counter =               \
        ::mecoff::obs::MetricsRegistry::global().counter(name);       \
    mecoff_obs_counter.add(static_cast<std::uint64_t>(delta));        \
  } while (0)

#define MECOFF_GAUGE_SET(name, value)                                 \
  do {                                                                \
    static ::mecoff::obs::Gauge& mecoff_obs_gauge =                   \
        ::mecoff::obs::MetricsRegistry::global().gauge(name);         \
    mecoff_obs_gauge.set(static_cast<double>(value));                 \
  } while (0)

#define MECOFF_GAUGE_ADD(name, delta)                                 \
  do {                                                                \
    static ::mecoff::obs::Gauge& mecoff_obs_gauge =                   \
        ::mecoff::obs::MetricsRegistry::global().gauge(name);         \
    mecoff_obs_gauge.add(static_cast<double>(delta));                 \
  } while (0)

/// Record into a histogram with the default latency boundaries.
#define MECOFF_HISTOGRAM_RECORD(name, value)                          \
  do {                                                                \
    static ::mecoff::obs::Histogram& mecoff_obs_hist =                \
        ::mecoff::obs::MetricsRegistry::global().histogram(name);     \
    mecoff_obs_hist.record(static_cast<double>(value));               \
  } while (0)

/// Record into a sliding-window quantile estimator (default window).
/// NOT for per-node hot paths: record() takes a short mutex — feed it
/// once per solve/request, where the lock is uncontended.
#define MECOFF_QUANTILES_RECORD(name, value)                          \
  do {                                                                \
    static ::mecoff::obs::Quantiles& mecoff_obs_quant =               \
        ::mecoff::obs::MetricsRegistry::global().quantiles(name);     \
    mecoff_obs_quant.record(static_cast<double>(value));              \
  } while (0)

/// Same, but tags the sample with the request id that produced it so
/// the window-maximum exemplar (/timez, /flightz) can name the request
/// behind a p99 bump. Pass 0 for "no id".
#define MECOFF_QUANTILES_RECORD_ID(name, value, id)                   \
  do {                                                                \
    static ::mecoff::obs::Quantiles& mecoff_obs_quant =               \
        ::mecoff::obs::MetricsRegistry::global().quantiles(name);     \
    mecoff_obs_quant.record(static_cast<double>(value),               \
                            static_cast<std::uint64_t>(id));          \
  } while (0)

#else  // MECOFF_OBS_DISABLED

// sizeof in an unevaluated context keeps the operands "used" (no
// -Wunused warnings at call sites) while generating no code at all.
#define MECOFF_TRACE_SPAN(name) ((void)sizeof(name))
#define MECOFF_TRACE_SPAN_ARG(name, arg) \
  ((void)sizeof(name), (void)sizeof(arg))
#define MECOFF_COUNTER_ADD(name, delta) \
  ((void)sizeof(name), (void)sizeof(delta))
#define MECOFF_GAUGE_SET(name, value) \
  ((void)sizeof(name), (void)sizeof(value))
#define MECOFF_GAUGE_ADD(name, delta) \
  ((void)sizeof(name), (void)sizeof(delta))
#define MECOFF_HISTOGRAM_RECORD(name, value) \
  ((void)sizeof(name), (void)sizeof(value))
#define MECOFF_QUANTILES_RECORD(name, value) \
  ((void)sizeof(name), (void)sizeof(value))
#define MECOFF_QUANTILES_RECORD_ID(name, value, id) \
  ((void)sizeof(name), (void)sizeof(value), (void)sizeof(id))

#endif  // MECOFF_OBS_DISABLED
