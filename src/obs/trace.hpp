// Scoped trace spans with a chrome://tracing JSON exporter.
//
// Collection model: the process-wide TraceCollector owns one event log
// per thread (created on that thread's first span, found again through
// a thread_local pointer). A span's constructor reads one atomic flag —
// when tracing is disabled the span is inert and costs a load and a
// branch. When enabled, begin/end timestamps, the calling thread's
// dense id, and the per-thread nesting depth are pushed into the
// thread's log under that log's own mutex (uncontended in steady state:
// only the owning thread writes; the exporter locks it only during
// write_chrome_trace/clear).
//
// Tracing OBSERVES the pipeline and never feeds back into it: no RNG,
// no solver state, only clock reads. Schemes are bit-identical with
// tracing enabled, disabled, or compiled out (tests/obs_test.cpp holds
// this as an invariant).
//
// Under MECOFF_OBS_DISABLED the whole file degrades to inert no-op
// types, so instrumented code compiles unchanged with zero overhead.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#ifndef MECOFF_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"

#endif  // MECOFF_OBS_DISABLED

namespace mecoff::obs {

/// Sentinel: span has no numeric argument.
inline constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

#ifndef MECOFF_OBS_DISABLED

/// One completed span (Chrome "X" complete event).
struct TraceEvent {
  const char* name = nullptr;  ///< static string (span names are literals)
  double start_us = 0.0;       ///< microseconds since collector epoch
  double duration_us = 0.0;
  std::uint32_t tid = 0;    ///< dense per-collector thread id
  std::uint32_t depth = 0;  ///< nesting depth on that thread
  std::uint64_t arg = kNoArg;
};

class TraceCollector {
 public:
  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The process-wide collector every TraceSpan records into.
  static TraceCollector& global();

  /// Tracing starts disabled; spans created while disabled record
  /// nothing (they do not retro-appear on enable).
  void enable(bool on = true) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Total events the collector will hold before dropping (a runaway
  /// sim trace must not eat the heap). Dropped events are counted.
  void set_capacity(std::size_t max_events);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::size_t dropped_count() const;

  /// Drop all recorded events (thread registrations survive).
  void clear();

  /// Chrome trace-event JSON ("traceEvents" array of "X" events,
  /// microsecond timestamps) — load via chrome://tracing or Perfetto.
  void write_chrome_trace(std::ostream& out) const;
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Microseconds since the collector's epoch, on the steady clock.
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  friend class TraceSpan;

  struct ThreadLog {
    Mutex mutex;
    std::vector<TraceEvent> events GUARDED_BY(mutex);
    std::uint32_t tid = 0;
    /// Live nesting; touched only by the owning thread (TraceSpan
    /// ctor/dtor), never under the lock — deliberately unguarded.
    std::uint32_t depth = 0;
  };

  /// This thread's log, created and registered on first use.
  ThreadLog& local_log() EXCLUDES(registry_mutex_);

  void record(const TraceEvent& event);

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> total_events_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<std::size_t> capacity_{1u << 20};
  std::chrono::steady_clock::time_point epoch_;

  /// Lock order: registry_mutex_ first, then a ThreadLog::mutex —
  /// clear() and write_chrome_trace() nest that way; nothing nests the
  /// other way around. (The structured line below is machine-read by
  /// tools/analyze_locks.py; keep it in sync with the prose.)
  // lock-order: TraceCollector::registry_mutex_ -> TraceCollector::ThreadLog::mutex
  mutable Mutex registry_mutex_;
  std::deque<std::unique_ptr<ThreadLog>> logs_ GUARDED_BY(registry_mutex_);
};

/// RAII span: records [construction, destruction) into the global
/// collector when tracing is enabled at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t arg = kNoArg);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  const char* name_;
  std::uint64_t arg_;
  double start_us_ = 0.0;
  TraceCollector::ThreadLog* log_ = nullptr;  ///< null = inert span
};

#else  // MECOFF_OBS_DISABLED

class TraceCollector {
 public:
  static TraceCollector& global();
  void enable(bool = true) {}
  [[nodiscard]] bool enabled() const { return false; }
  void set_capacity(std::size_t) {}
  [[nodiscard]] std::size_t event_count() const { return 0; }
  [[nodiscard]] std::size_t dropped_count() const { return 0; }
  void clear() {}
  void write_chrome_trace(std::ostream& out) const;
  [[nodiscard]] std::string chrome_trace_json() const;
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*, std::uint64_t = kNoArg) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // MECOFF_OBS_DISABLED

}  // namespace mecoff::obs
