#include "obs/request_id.hpp"

namespace mecoff::obs {
namespace {

thread_local std::uint64_t t_current_request_id = 0;

}  // namespace

std::uint64_t current_request_id() { return t_current_request_id; }

RequestIdScope::RequestIdScope(std::uint64_t id)
    : prev_(t_current_request_id) {
  t_current_request_id = id;
}

RequestIdScope::~RequestIdScope() { t_current_request_id = prev_; }

}  // namespace mecoff::obs
