#include "obs/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "common/contracts.hpp"
#include "obs/format.hpp"

namespace mecoff::obs {
namespace {

const char* mode_name(Timeline::Mode mode) {
  switch (mode) {
    case Timeline::Mode::kManual: return "manual";
    case Timeline::Mode::kTick: return "tick";
    case Timeline::Mode::kWall: return "wall";
  }
  return "manual";
}

}  // namespace

Timeline::Timeline(Options options) : options_(std::move(options)) {
  MECOFF_EXPECTS(options_.capacity > 0);
  MECOFF_EXPECTS(options_.tick_period > 0);
  MECOFF_EXPECTS(options_.interval_seconds > 0.0);
  ring_.reserve(std::min<std::size_t>(options_.capacity, 64));
}

void Timeline::sample_now(std::uint64_t tick) {
  const MutexLock lock(mutex_);
  sample_locked(tick);
}

void Timeline::note_request() {
  const MutexLock lock(mutex_);
  ++requests_seen_;
  if (options_.mode == Mode::kTick &&
      requests_seen_ % options_.tick_period == 0) {
    sample_locked(requests_seen_);
  }
}

void Timeline::poll_wall() {
  const MutexLock lock(mutex_);
  if (options_.mode != Mode::kWall) return;
  const double now = since_construction_.elapsed_seconds();
  if (have_sample_ && now - last_sample_wall_ < options_.interval_seconds)
    return;
  sample_locked(requests_seen_);
}

void Timeline::sample_locked(std::uint64_t tick) {
  const MetricsRegistry& registry =
      options_.registry != nullptr ? *options_.registry
                                   : MetricsRegistry::global();
  const MetricsSnapshot snap = registry.snapshot();

  const auto retain = [this](const std::string& name) {
    if (options_.keys.empty()) return true;
    return std::find(options_.keys.begin(), options_.keys.end(), name) !=
           options_.keys.end();
  };

  Sample sample;
  sample.tick = tick;
  sample.wall_seconds = since_construction_.elapsed_seconds();

  const double delta_wall = sample.wall_seconds - prev_wall_;
  const std::uint64_t delta_ticks = tick >= prev_tick_ ? tick - prev_tick_ : 0;
  for (const auto& [name, value] : snap.counters) {
    if (!retain(name)) continue;
    CounterPoint point;
    point.value = value;
    const auto prev = prev_counters_.find(name);
    const std::uint64_t before = prev == prev_counters_.end() ? 0 : prev->second;
    point.delta = static_cast<std::int64_t>(value) -
                  static_cast<std::int64_t>(before);
    if (options_.mode == Mode::kWall) {
      point.rate = delta_wall > 0.0
                       ? static_cast<double>(point.delta) / delta_wall
                       : 0.0;
    } else {
      point.rate = delta_ticks > 0
                       ? static_cast<double>(point.delta) /
                             static_cast<double>(delta_ticks)
                       : 0.0;
    }
    sample.counters.emplace(name, point);
  }
  for (const auto& [name, value] : snap.gauges) {
    if (!retain(name)) continue;
    sample.gauges.emplace(name, value);
  }
  for (const auto& [name, q] : snap.quantiles) {
    if (!retain(name)) continue;
    QuantPoint point;
    point.count = q.count;
    point.p50 = q.p50;
    point.p95 = q.p95;
    point.p99 = q.p99;
    point.max_value = q.max_value;
    point.max_request_id = q.max_request_id;
    sample.quantiles.emplace(name, point);
  }

  // Delta base advances on every sample, including ones later evicted.
  prev_counters_.clear();
  for (const auto& [name, value] : snap.counters) prev_counters_[name] = value;
  prev_tick_ = tick;
  prev_wall_ = sample.wall_seconds;
  last_sample_wall_ = sample.wall_seconds;
  have_sample_ = true;

  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[head_] = std::move(sample);
    head_ = (head_ + 1) % options_.capacity;
  }
  ++samples_taken_;
}

std::size_t Timeline::size() const {
  const MutexLock lock(mutex_);
  return ring_.size();
}

std::uint64_t Timeline::samples_taken() const {
  const MutexLock lock(mutex_);
  return samples_taken_;
}

std::uint64_t Timeline::dropped() const {
  const MutexLock lock(mutex_);
  return samples_taken_ - ring_.size();
}

std::vector<Timeline::Sample> Timeline::samples() const {
  const MutexLock lock(mutex_);
  if (ring_.size() < options_.capacity) return ring_;  // not yet wrapped
  std::vector<Sample> ordered;
  ordered.reserve(ring_.size());
  ordered.insert(ordered.end(),
                 ring_.begin() + static_cast<std::ptrdiff_t>(head_),
                 ring_.end());
  ordered.insert(ordered.end(), ring_.begin(),
                 ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return ordered;
}

std::string Timeline::to_json() const {
  const std::vector<Sample> ordered = samples();
  std::uint64_t taken = 0;
  {
    const MutexLock lock(mutex_);
    taken = samples_taken_;
  }
  // Wall-clock fields appear only in wall mode: tick/manual documents
  // must be byte-identical across replays of the same request sequence.
  const bool with_wall = options_.mode == Mode::kWall;

  std::ostringstream out;
  out << "{\"schema\":\"mecoff.timeline.v1\",\"mode\":\""
      << mode_name(options_.mode) << "\",\"capacity\":" << options_.capacity
      << ",\"samples_taken\":" << taken
      << ",\"dropped\":" << (taken - ordered.size()) << ",\"samples\":[";
  bool first_sample = true;
  for (const Sample& s : ordered) {
    if (!first_sample) out << ',';
    first_sample = false;
    out << "{\"tick\":" << s.tick;
    if (with_wall)
      out << ",\"wall_seconds\":" << format_double(s.wall_seconds);
    out << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, p] : s.counters) {
      if (!first) out << ',';
      first = false;
      out << '"' << name << "\":{\"value\":" << p.value
          << ",\"delta\":" << p.delta
          << ",\"rate\":" << format_double(p.rate) << '}';
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : s.gauges) {
      if (!first) out << ',';
      first = false;
      out << '"' << name << "\":" << format_double(v);
    }
    out << "},\"quantiles\":{";
    first = true;
    for (const auto& [name, q] : s.quantiles) {
      if (!first) out << ',';
      first = false;
      out << '"' << name << "\":{\"count\":" << q.count
          << ",\"p50\":" << format_double(q.p50)
          << ",\"p95\":" << format_double(q.p95)
          << ",\"p99\":" << format_double(q.p99)
          << ",\"max\":" << format_double(q.max_value)
          << ",\"max_request_id\":" << q.max_request_id << '}';
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace mecoff::obs
