#include "obs/quantiles.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace mecoff::obs {

double quantile_of_sorted(std::span<const double> sorted, double q) {
  MECOFF_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Quantiles::Quantiles(std::size_t window_capacity)
    : capacity_(window_capacity) {
  MECOFF_EXPECTS(window_capacity > 0);
  ring_.reserve(std::min<std::size_t>(window_capacity, 1024));
  ids_.reserve(std::min<std::size_t>(window_capacity, 1024));
}

void Quantiles::record(double sample) { record(sample, 0); }

void Quantiles::record(double sample, std::uint64_t request_id) {
  const MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(sample);
    ids_.push_back(request_id);
  } else {
    ring_[head_] = sample;
    ids_[head_] = request_id;
    head_ = (head_ + 1) % capacity_;
  }
  ++total_count_;
  total_sum_ += sample;
}

Quantiles::Exemplar Quantiles::max_exemplar() const {
  const MutexLock lock(mutex_);
  Exemplar best;
  if (ring_.empty()) return best;
  // Scan oldest -> newest so a tie at the maximum resolves to the
  // newest sample. Before the ring wraps, insertion order IS oldest ->
  // newest; after, the oldest slot is head_.
  const std::size_t n = ring_.size();
  const std::size_t start = (n < capacity_) ? 0 : head_;
  bool have = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = (start + i) % n;
    if (!have || ring_[slot] >= best.value) {
      best.value = ring_[slot];
      best.request_id = ids_[slot];
      have = true;
    }
  }
  return best;
}

std::vector<double> Quantiles::snapshot_window() const {
  const MutexLock lock(mutex_);
  return ring_;  // ring order is fine: queries sort anyway
}

std::vector<double> Quantiles::window() const {
  const MutexLock lock(mutex_);
  if (ring_.size() < capacity_) return ring_;  // not yet wrapped
  std::vector<double> ordered;
  ordered.reserve(ring_.size());
  ordered.insert(ordered.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
                 ring_.end());
  ordered.insert(ordered.end(), ring_.begin(),
                 ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return ordered;
}

double Quantiles::quantile(double q) const {
  std::vector<double> values = snapshot_window();
  std::sort(values.begin(), values.end());
  return quantile_of_sorted(values, q);
}

std::vector<double> Quantiles::quantiles(std::span<const double> qs) const {
  std::vector<double> values = snapshot_window();
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(quantile_of_sorted(values, q));
  return out;
}

std::uint64_t Quantiles::count() const {
  const MutexLock lock(mutex_);
  return total_count_;
}

double Quantiles::sum() const {
  const MutexLock lock(mutex_);
  return total_sum_;
}

std::size_t Quantiles::window_size() const {
  const MutexLock lock(mutex_);
  return ring_.size();
}

void Quantiles::reset() {
  const MutexLock lock(mutex_);
  ring_.clear();
  ids_.clear();
  head_ = 0;
  total_count_ = 0;
  total_sum_ = 0.0;
}

}  // namespace mecoff::obs
