#include "obs/quantiles.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace mecoff::obs {

double quantile_of_sorted(std::span<const double> sorted, double q) {
  MECOFF_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Quantiles::Quantiles(std::size_t window_capacity)
    : capacity_(window_capacity) {
  MECOFF_EXPECTS(window_capacity > 0);
  ring_.reserve(std::min<std::size_t>(window_capacity, 1024));
}

void Quantiles::record(double sample) {
  const MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(sample);
  } else {
    ring_[head_] = sample;
    head_ = (head_ + 1) % capacity_;
  }
  ++total_count_;
  total_sum_ += sample;
}

std::vector<double> Quantiles::snapshot_window() const {
  const MutexLock lock(mutex_);
  return ring_;  // ring order is fine: queries sort anyway
}

std::vector<double> Quantiles::window() const {
  const MutexLock lock(mutex_);
  if (ring_.size() < capacity_) return ring_;  // not yet wrapped
  std::vector<double> ordered;
  ordered.reserve(ring_.size());
  ordered.insert(ordered.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
                 ring_.end());
  ordered.insert(ordered.end(), ring_.begin(),
                 ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return ordered;
}

double Quantiles::quantile(double q) const {
  std::vector<double> values = snapshot_window();
  std::sort(values.begin(), values.end());
  return quantile_of_sorted(values, q);
}

std::vector<double> Quantiles::quantiles(std::span<const double> qs) const {
  std::vector<double> values = snapshot_window();
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(quantile_of_sorted(values, q));
  return out;
}

std::uint64_t Quantiles::count() const {
  const MutexLock lock(mutex_);
  return total_count_;
}

double Quantiles::sum() const {
  const MutexLock lock(mutex_);
  return total_sum_;
}

std::size_t Quantiles::window_size() const {
  const MutexLock lock(mutex_);
  return ring_.size();
}

void Quantiles::reset() {
  const MutexLock lock(mutex_);
  ring_.clear();
  head_ = 0;
  total_count_ = 0;
  total_sum_ = 0.0;
}

}  // namespace mecoff::obs
