#include "obs/trace.hpp"

#include <ostream>
#include <sstream>

#ifndef MECOFF_OBS_DISABLED

#include <algorithm>

#include "common/strings.hpp"

namespace mecoff::obs {

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now()) {}

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::set_capacity(std::size_t max_events) {
  capacity_.store(max_events, std::memory_order_relaxed);
}

std::size_t TraceCollector::event_count() const {
  return total_events_.load(std::memory_order_relaxed);
}

std::size_t TraceCollector::dropped_count() const {
  return dropped_.load(std::memory_order_relaxed);
}

TraceCollector::ThreadLog& TraceCollector::local_log() {
  // One cache slot per thread; collector identity never changes (the
  // global singleton), so a plain pointer cache is enough.
  thread_local ThreadLog* cached = nullptr;
  if (cached != nullptr) return *cached;
  const MutexLock lock(registry_mutex_);
  logs_.push_back(std::make_unique<ThreadLog>());
  logs_.back()->tid = static_cast<std::uint32_t>(logs_.size() - 1);
  cached = logs_.back().get();
  return *cached;
}

void TraceCollector::record(const TraceEvent& event) {
  if (total_events_.fetch_add(1, std::memory_order_relaxed) >=
      capacity_.load(std::memory_order_relaxed)) {
    total_events_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ThreadLog& log = local_log();
  const MutexLock lock(log.mutex);
  log.events.push_back(event);
}

void TraceCollector::clear() {
  const MutexLock lock(registry_mutex_);
  for (const std::unique_ptr<ThreadLog>& log : logs_) {
    const MutexLock log_lock(log->mutex);
    log->events.clear();
  }
  total_events_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceCollector::write_chrome_trace(std::ostream& out) const {
  // Gather under the registry lock, then serialize sorted by start
  // time so the JSON is stable and diffs cleanly.
  std::vector<TraceEvent> events;
  {
    const MutexLock lock(registry_mutex_);
    for (const std::unique_ptr<ThreadLog>& log : logs_) {
      const MutexLock log_lock(log->mutex);
      events.insert(events.end(), log->events.begin(), log->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ',';
    first = false;
    // Timestamps via format_fixed (to_chars) — "%.3f" would follow
    // LC_NUMERIC and emit JSON-invalid comma decimals.
    out << "{\"name\":\"" << event.name
        << "\",\"cat\":\"mecoff\",\"ph\":\"X\",\"ts\":"
        << format_fixed(event.start_us, 3)
        << ",\"dur\":" << format_fixed(event.duration_us, 3)
        << ",\"pid\":1,\"tid\":" << event.tid
        << ",\"args\":{\"depth\":" << event.depth;
    if (event.arg != kNoArg) out << ",\"arg\":" << event.arg;
    out << "}}";
  }
  out << "]}";
}

std::string TraceCollector::chrome_trace_json() const {
  std::ostringstream out;
  write_chrome_trace(out);
  return out.str();
}

TraceSpan::TraceSpan(const char* name, std::uint64_t arg)
    : name_(name), arg_(arg) {
  TraceCollector& collector = TraceCollector::global();
  if (!collector.enabled()) return;  // inert: log_ stays null
  log_ = &collector.local_log();
  ++log_->depth;
  start_us_ = collector.now_us();
}

TraceSpan::~TraceSpan() {
  if (log_ == nullptr) return;
  TraceCollector& collector = TraceCollector::global();
  TraceEvent event;
  event.name = name_;
  event.start_us = start_us_;
  event.duration_us = collector.now_us() - start_us_;
  event.tid = log_->tid;
  event.depth = --log_->depth;
  event.arg = arg_;
  collector.record(event);
}

}  // namespace mecoff::obs

#else  // MECOFF_OBS_DISABLED

namespace mecoff::obs {

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
}

std::string TraceCollector::chrome_trace_json() const {
  std::ostringstream out;
  write_chrome_trace(out);
  return out.str();
}

}  // namespace mecoff::obs

#endif  // MECOFF_OBS_DISABLED
