// Pure request-parsing half of the embedded HTTP server: request line,
// header block, and Content-Length handling over an in-memory buffer.
// No sockets, no threads, no obs dependency — this translation unit is
// compiled unconditionally (even under MECOFF_OBS_DISABLED) so the
// fuzz harness in fuzz/fuzz_http_request.cpp can drive the exact code
// the server runs, byte for byte, in every build configuration.
//
// The split point: HttpServer owns I/O (recv loops, deadlines, 408/431
// on incomplete input) and calls parse_request_head() once the header
// terminator has arrived. Everything that interprets bytes lives here.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "obs/serve/http_server.hpp"  // HttpRequest (defined unconditionally)

namespace mecoff::obs::serve {

/// Request-path + query cap (the request line is operator/ingest
/// traffic, never bulk data).
inline constexpr std::size_t kMaxRequestLine = 8 * 1024;
/// Header-block cap; the server answers 431 above it.
inline constexpr std::size_t kMaxHeaderBlock = 64 * 1024;
/// POST body cap; declared lengths above it get 413.
inline constexpr std::size_t kMaxHttpBody = 1024 * 1024;

/// Outcome of Content-Length extraction. `kMalformed` (non-digit bytes,
/// empty value) is distinct from `kAbsent` on purpose: a malformed
/// declared length must be answered 400, not silently treated as a
/// body-less request (the request body would be misread as a pipelined
/// follow-up otherwise).
enum class ContentLengthStatus { kAbsent, kOk, kMalformed };

/// Case-insensitive Content-Length lookup in the raw header block
/// `[start, end)`. On kOk, `out` holds the value clamped just past
/// kMaxHttpBody (the caller rejects anything over the cap, so exact
/// magnitude beyond it is irrelevant and cannot overflow).
ContentLengthStatus parse_content_length(const std::string& buffer,
                                         std::size_t start, std::size_t end,
                                         std::size_t& out);

/// Parse the raw header block `[start, end)` into name -> value with
/// lowercased names (header names are case-insensitive; values keep
/// their case). Malformed lines (no colon) are skipped, repeated names
/// keep the last occurrence — tolerant parsing for a diagnostics port.
void parse_headers(const std::string& buffer, std::size_t start,
                   std::size_t end, std::map<std::string, std::string>& out);

/// Verdict on a complete header block. Maps to HTTP statuses in
/// HttpServer::serve_connection; listed here so the fuzz driver can
/// assert the mapping is total.
enum class HeadStatus {
  kOk,
  kBadRequestLine,    ///< 400 — missing/oversized/short line, empty target
  kMethodNotAllowed,  ///< 405 — anything but GET/HEAD/POST
  kBadContentLength,  ///< 400 — POST with a malformed Content-Length
  kBodyTooLarge,      ///< 413 — declared length over kMaxHttpBody
};

/// Request head parsed out of `buffer[0, header_end)`.
struct ParsedHead {
  HttpRequest request;  ///< method/path/query/headers filled; body empty
  /// Declared body length for POST (0 when absent or for GET/HEAD).
  std::size_t content_length = 0;
};

/// Parse a complete request head. `header_end` is the offset of the
/// "\r\n\r\n" terminator in `buffer` (the caller has already located
/// it). Returns kOk with `out` fully populated, or the first violated
/// contract; on non-kOk `out` is partially filled and must not be used.
HeadStatus parse_request_head(const std::string& buffer,
                              std::size_t header_end, ParsedHead& out);

}  // namespace mecoff::obs::serve
