#include "obs/serve/telemetry_server.hpp"

#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/serve/exposition.hpp"
#include "obs/trace.hpp"

namespace mecoff::obs::serve {

#ifndef MECOFF_OBS_DISABLED

TelemetryServer::TelemetryServer() {
  http_.handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    // The exposition-format version the Prometheus scraper negotiates.
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        to_prometheus_text(MetricsRegistry::global().snapshot());
    return response;
  });
  http_.handle("/varz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    // The registered routes moved here from the 404 body: operator
    // information belongs on the operator surface, not in an error any
    // probing client sees.
    std::string routes = "[";
    for (const std::string& path : http_.route_paths()) {
      if (routes.size() > 1) routes += ',';
      routes += '"' + path + '"';
    }
    routes += ']';
    // The registry dump plus the collectors' meta counters, so one
    // scrape answers "is tracing dropping?" and "how many anomalies?".
    response.body =
        "{\"routes\":" + routes +
        ",\"metrics\":" + MetricsRegistry::global().to_json() +
        ",\"trace\":{\"events\":" +
        std::to_string(TraceCollector::global().event_count()) +
        ",\"dropped\":" +
        std::to_string(TraceCollector::global().dropped_count()) +
        "},\"flight_recorder\":{\"records\":" +
        std::to_string(FlightRecorder::global().total_records()) +
        ",\"anomalies\":" +
        std::to_string(FlightRecorder::global().anomaly_count()) +
        ",\"dumps\":" +
        std::to_string(FlightRecorder::global().dump_count()) + "}";
    for (const auto& [key, renderer] : varz_sections_)
      response.body += ",\"" + key + "\":" + renderer();
    response.body += '}';
    return response;
  });
  http_.handle("/healthz", [this](const HttpRequest&) {
    const HealthStatus health = health_ ? health_() : HealthStatus{};
    HttpResponse response;
    response.status = health.ok ? 200 : 503;
    response.body = health.reason;
    if (response.body.empty() || response.body.back() != '\n')
      response.body += '\n';
    return response;
  });
  http_.handle("/flightz", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = FlightRecorder::global().to_json();
    return response;
  });
  http_.handle("/timez", [this](const HttpRequest&) {
    HttpResponse response;
    if (timeline_ == nullptr) {
      response.status = 503;
      response.body = "no timeline configured\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = timeline_->to_json();
    return response;
  });
}

void TelemetryServer::set_health_callback(HealthCallback callback) {
  health_ = std::move(callback);
}

void TelemetryServer::handle(std::string path, HttpServer::Handler handler) {
  http_.handle(std::move(path), std::move(handler));
}

void TelemetryServer::add_varz_section(std::string key,
                                       std::function<std::string()> renderer) {
  varz_sections_.emplace_back(std::move(key), std::move(renderer));
}

void TelemetryServer::set_io_timeout_ms(int ms) {
  http_.set_io_timeout_ms(ms);
}

Result<std::uint16_t> TelemetryServer::start(std::uint16_t port) {
  return http_.start(port);
}

void TelemetryServer::stop() { http_.stop(); }

#else  // MECOFF_OBS_DISABLED

TelemetryServer::TelemetryServer() = default;

void TelemetryServer::set_health_callback(HealthCallback callback) {
  health_ = std::move(callback);
}

void TelemetryServer::handle(std::string path, HttpServer::Handler handler) {
  http_.handle(std::move(path), std::move(handler));
}

void TelemetryServer::add_varz_section(std::string key,
                                       std::function<std::string()> renderer) {
  varz_sections_.emplace_back(std::move(key), std::move(renderer));
}

void TelemetryServer::set_io_timeout_ms(int ms) { http_.set_io_timeout_ms(ms); }

Result<std::uint16_t> TelemetryServer::start(std::uint16_t port) {
  return http_.start(port);  // the stub reports the compile-out error
}

void TelemetryServer::stop() {}

#endif  // MECOFF_OBS_DISABLED

}  // namespace mecoff::obs::serve
