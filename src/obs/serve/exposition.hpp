// Prometheus text exposition (format version 0.0.4) of a
// MetricsSnapshot.
//
// Mapping from the registry's instrument kinds:
//   Counter    -> `# TYPE <name> counter`  + one sample
//   Gauge      -> `# TYPE <name> gauge`    + one sample
//   Histogram  -> `# TYPE <name> histogram`: cumulative
//                 `<name>_bucket{le="..."}` samples (the registry's
//                 per-bucket counts are non-cumulative; the renderer
//                 accumulates), `<name>_sum`, `<name>_count`
//   Quantiles  -> `# TYPE <name> summary`: `<name>{quantile="0.5|0.95|
//                 0.99"}` over the sliding window, `<name>_sum`,
//                 `<name>_count` over every sample ever recorded
//
// Dotted registry names are mangled to the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*) by mapping every illegal byte to '_':
// "mec.solve.latency" -> "mec_solve_latency". Families are emitted
// sorted by mangled name, numbers rendered locale-independently, so
// the exposition is byte-stable for a given snapshot (golden-tested).
//
// Pure rendering, no sockets: compiled in under both obs configs so
// tests (and any push-gateway user) can expose without the server.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace mecoff::obs::serve {

/// Mangle a registry metric name into a legal Prometheus metric name.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Render a whole snapshot in exposition text format.
[[nodiscard]] std::string to_prometheus_text(const MetricsSnapshot& snapshot);

}  // namespace mecoff::obs::serve
