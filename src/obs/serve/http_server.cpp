#include "obs/serve/http_server.hpp"

#ifndef MECOFF_OBS_DISABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace mecoff::obs::serve {

namespace {

constexpr std::size_t kMaxRequestLine = 8 * 1024;
constexpr std::size_t kMaxHeaderBlock = 64 * 1024;

/// The BSD socket ABI takes every address as `sockaddr*` regardless of
/// family; the cast from the concrete sockaddr_in is required and
/// well-defined for these calls. It lives in this one helper so the
/// project linter can pin the file's reinterpret_cast budget to a
/// single audited site (tools/lint_mecoff.py, rule reinterpret-cast).
sockaddr* as_sockaddr(sockaddr_in& addr) {
  return reinterpret_cast<sockaddr*>(&addr);
}

/// strerror(3) without its shared static buffer (clang-tidy
/// concurrency-mt-unsafe): the generic category renders errno values
/// thread-safely.
std::string errno_message(int err) {
  return std::error_code(err, std::generic_category()).message();
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// write(2) until done; a peer that hangs up mid-response is ignored
/// (SIGPIPE is suppressed per-call via MSG_NOSIGNAL).
void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                    status_text(response.status) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " +
                    std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + response.body;
  send_all(fd, out);
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Result<std::uint16_t> HttpServer::start(std::uint16_t port) {
  if (running()) return Error("server already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error("socket: " + errno_message(errno));

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(port);
  if (::bind(fd, as_sockaddr(addr), sizeof(addr)) < 0) {
    const std::string why = errno_message(errno);
    ::close(fd);
    return Error("bind 127.0.0.1:" + std::to_string(port) + ": " + why);
  }
  if (::listen(fd, 16) < 0) {
    const std::string why = errno_message(errno);
    ::close(fd);
    return Error("listen: " + why);
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, as_sockaddr(addr), &len) < 0) {
    const std::string why = errno_message(errno);
    ::close(fd);
    return Error("getsockname: " + why);
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() wakes the blocking accept() with an error so the loop
  // observes running_ == false and exits; close() alone is racy.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      // Listener shut down (stop()) or fd exhaustion — in either case
      // re-check running_ and bail out cleanly rather than spinning.
      if (!running_.load(std::memory_order_acquire)) break;
      continue;
    }
    serve_connection(conn);
    ::close(conn);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read until the end of the header block. One recv loop with hard
  // caps: exposition requests are tiny, anything larger is hostile.
  std::string buffer;
  while (buffer.find("\r\n\r\n") == std::string::npos) {
    if (buffer.size() > kMaxHeaderBlock) {
      send_response(fd, HttpResponse{431, "text/plain; charset=utf-8",
                                     "header block too large\n"});
      return;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer went away before finishing the request
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  const std::size_t line_end = buffer.find("\r\n");
  if (line_end == std::string::npos || line_end > kMaxRequestLine) {
    send_response(fd, HttpResponse{400, "text/plain; charset=utf-8",
                                   "malformed request line\n"});
    return;
  }
  const std::string line = buffer.substr(0, line_end);

  // "GET /path?query HTTP/1.1"
  const std::size_t method_end = line.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos) {
    send_response(fd, HttpResponse{400, "text/plain; charset=utf-8",
                                   "malformed request line\n"});
    return;
  }
  HttpRequest request;
  request.method = line.substr(0, method_end);
  std::string target =
      line.substr(method_end + 1, target_end - method_end - 1);
  const std::size_t query_start = target.find('?');
  if (query_start != std::string::npos) {
    request.query = target.substr(query_start + 1);
    target.resize(query_start);
  }
  request.path = std::move(target);

  requests_.fetch_add(1, std::memory_order_relaxed);

  if (request.method != "GET" && request.method != "HEAD") {
    send_response(fd, HttpResponse{405, "text/plain; charset=utf-8",
                                   "only GET is served\n"});
    return;
  }
  const auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    std::string known = "not found; routes:";
    for (const auto& [path, handler] : routes_) known += ' ' + path;
    send_response(fd, HttpResponse{404, "text/plain; charset=utf-8",
                                   known + '\n'});
    return;
  }
  HttpResponse response = it->second(request);
  if (request.method == "HEAD") response.body.clear();
  send_response(fd, response);
}

}  // namespace mecoff::obs::serve

#endif  // MECOFF_OBS_DISABLED
