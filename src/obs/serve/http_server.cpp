#include "obs/serve/http_server.hpp"

#ifndef MECOFF_OBS_DISABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <system_error>

#include "obs/serve/http_parser.hpp"

namespace mecoff::obs::serve {

namespace {

/// The BSD socket ABI takes every address as `sockaddr*` regardless of
/// family; the cast from the concrete sockaddr_in is required and
/// well-defined for these calls. It lives in this one helper so the
/// project linter can pin the file's reinterpret_cast budget to a
/// single audited site (tools/lint_mecoff.py, rule reinterpret-cast).
sockaddr* as_sockaddr(sockaddr_in& addr) {
  return reinterpret_cast<sockaddr*>(&addr);
}

/// strerror(3) without its shared static buffer (clang-tidy
/// concurrency-mt-unsafe): the generic category renders errno values
/// thread-safely.
std::string errno_message(int err) {
  return std::error_code(err, std::generic_category()).message();
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// write(2) until done; a peer that hangs up or stalls past SO_SNDTIMEO
/// mid-response is abandoned (SIGPIPE is suppressed per-call via
/// MSG_NOSIGNAL).
void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                    status_text(response.status) +
                    "\r\nContent-Type: " + response.content_type;
  for (const auto& [name, value] : response.extra_headers)
    out += "\r\n" + name + ": " + value;
  out += "\r\nContent-Length: " + std::to_string(response.body.size()) +
         "\r\nConnection: close\r\n\r\n" + response.body;
  send_all(fd, out);
}

/// Both directions: recv returns EAGAIN after `ms` without data, send
/// after `ms` without buffer space — a stalled peer costs one timeout,
/// never a wedged worker.
void set_socket_timeouts(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

std::vector<std::string> HttpServer::route_paths() const {
  std::vector<std::string> paths;
  paths.reserve(routes_.size());
  for (const auto& [path, handler] : routes_) paths.push_back(path);
  return paths;  // std::map iteration — already sorted
}

Result<std::uint16_t> HttpServer::start(std::uint16_t port) {
  if (running()) return Error("server already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error("socket: " + errno_message(errno));

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(port);
  if (::bind(fd, as_sockaddr(addr), sizeof(addr)) < 0) {
    const std::string why = errno_message(errno);
    ::close(fd);
    return Error("bind 127.0.0.1:" + std::to_string(port) + ": " + why);
  }
  if (::listen(fd, 16) < 0) {
    const std::string why = errno_message(errno);
    ::close(fd);
    return Error("listen: " + why);
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, as_sockaddr(addr), &len) < 0) {
    const std::string why = errno_message(errno);
    ::close(fd);
    return Error("getsockname: " + why);
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  {
    const MutexLock lock(conn_mutex_);
    conn_stopping_ = false;
    pending_.clear();
    active_.clear();
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(kConnectionWorkers);
  for (std::size_t i = 0; i < kConnectionWorkers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  return port_;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& t : workers_)
      if (t.joinable()) t.join();
    workers_.clear();
    return;
  }
  // shutdown() wakes the blocking accept() with an error so the loop
  // observes running_ == false and exits; close() alone is racy.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Shut down every connection a worker may be blocked on: a recv()
    // mid-request returns 0 immediately, so the joins below are prompt
    // even with a peer that never sends another byte.
    const MutexLock lock(conn_mutex_);
    conn_stopping_ = true;
    for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
    for (const int fd : pending_) ::shutdown(fd, SHUT_RDWR);
  }
  conn_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  {
    const MutexLock lock(conn_mutex_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      // Listener shut down (stop()) or fd exhaustion — in either case
      // re-check running_ and bail out cleanly rather than spinning.
      if (!running_.load(std::memory_order_acquire)) break;
      continue;
    }
    set_socket_timeouts(conn, io_timeout_ms_);
    bool shed = false;
    bool closing = false;
    {
      const MutexLock lock(conn_mutex_);
      if (conn_stopping_)
        closing = true;
      else if (pending_.size() >= kMaxPending)
        shed = true;
      else
        pending_.push_back(conn);
    }
    if (closing) {
      ::close(conn);
      continue;
    }
    if (shed) {
      // Socket-layer admission control: a full backlog is answered now
      // with 503 instead of queueing unboundedly behind slow peers.
      send_response(conn, HttpResponse{503, "text/plain; charset=utf-8",
                                       "server busy\n"});
      ::close(conn);
      continue;
    }
    conn_cv_.notify_one();
  }
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      const MutexLock lock(conn_mutex_);
      // Explicit predicate loop (not a wait-with-lambda): the guarded
      // reads stay inside the analysed critical section, and spurious
      // wakeups are handled the same way.
      while (!conn_stopping_ && pending_.empty()) conn_cv_.wait(conn_mutex_);
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
      active_.push_back(fd);
    }
    serve_connection(fd);
    {
      const MutexLock lock(conn_mutex_);
      active_.erase(std::find(active_.begin(), active_.end(), fd));
    }
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read until the end of the header block. One recv loop with hard
  // caps and a wall-clock budget: exposition/ingest requests are tiny,
  // anything larger or slower is hostile. SO_RCVTIMEO bounds each
  // recv; the deadline bounds a peer dribbling one byte per timeout.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(io_timeout_ms_);
  std::string buffer;
  std::size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > kMaxHeaderBlock) {
      send_response(fd, HttpResponse{431, "text/plain; charset=utf-8",
                                     "header block too large\n"});
      return;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      send_response(fd, HttpResponse{408, "text/plain; charset=utf-8",
                                     "request timeout\n"});
      return;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO fired: the peer sent nothing for a full timeout.
      send_response(fd, HttpResponse{408, "text/plain; charset=utf-8",
                                     "request timeout\n"});
      return;
    }
    if (n <= 0) return;  // peer went away before finishing the request
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  // Interpretation of the complete head is delegated to the pure
  // parser (src/obs/serve/http_parser.cpp — the fuzzed surface); this
  // function only maps its verdict onto wire responses.
  ParsedHead head;
  const HeadStatus status = parse_request_head(buffer, header_end, head);
  if (status == HeadStatus::kBadRequestLine) {
    send_response(fd, HttpResponse{400, "text/plain; charset=utf-8",
                                   "malformed request line\n"});
    return;
  }

  requests_.fetch_add(1, std::memory_order_relaxed);

  if (status == HeadStatus::kMethodNotAllowed) {
    send_response(fd, HttpResponse{405, "text/plain; charset=utf-8",
                                   "only GET, HEAD and POST are served\n"});
    return;
  }
  if (status == HeadStatus::kBadContentLength) {
    send_response(fd, HttpResponse{400, "text/plain; charset=utf-8",
                                   "malformed Content-Length\n"});
    return;
  }
  if (status == HeadStatus::kBodyTooLarge) {
    send_response(fd, HttpResponse{413, "text/plain; charset=utf-8",
                                   "body too large\n"});
    return;
  }

  HttpRequest& request = head.request;
  if (request.method == "POST") {
    const std::size_t content_length = head.content_length;
    request.body = buffer.substr(header_end + 4);
    while (request.body.size() < content_length) {
      if (std::chrono::steady_clock::now() > deadline) {
        send_response(fd, HttpResponse{408, "text/plain; charset=utf-8",
                                       "request timeout\n"});
        return;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        send_response(fd, HttpResponse{408, "text/plain; charset=utf-8",
                                       "request timeout\n"});
        return;
      }
      if (n <= 0) return;  // body truncated by the peer
      request.body.append(chunk, static_cast<std::size_t>(n));
    }
    request.body.resize(content_length);  // drop any pipelined excess
  }

  const auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    // Plain 404 on purpose: the route table is operator information
    // (served on /varz), not something to enumerate to any client
    // probing an ingest port.
    send_response(fd, HttpResponse{404, "text/plain; charset=utf-8",
                                   "not found\n"});
    return;
  }
  HttpResponse response = it->second(request);
  if (request.method == "HEAD") response.body.clear();
  send_response(fd, response);
}

}  // namespace mecoff::obs::serve

#endif  // MECOFF_OBS_DISABLED
