#include "obs/serve/http_parser.hpp"

#include <algorithm>
#include <cctype>

namespace mecoff::obs::serve {

ContentLengthStatus parse_content_length(const std::string& buffer,
                                         std::size_t start, std::size_t end,
                                         std::size_t& out) {
  while (start < end) {
    std::size_t eol = buffer.find("\r\n", start);
    if (eol == std::string::npos || eol > end) eol = end;
    const std::size_t colon = buffer.find(':', start);
    if (colon != std::string::npos && colon < eol) {
      std::string name = buffer.substr(start, colon - start);
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (name == "content-length") {
        std::size_t value_start = colon + 1;
        while (value_start < eol && buffer[value_start] == ' ') ++value_start;
        std::size_t value_end = eol;
        while (value_end > value_start && buffer[value_end - 1] == ' ')
          --value_end;
        std::size_t value = 0;
        bool any = false;
        for (std::size_t i = value_start; i < value_end; ++i) {
          const char c = buffer[i];
          if (c < '0' || c > '9') return ContentLengthStatus::kMalformed;
          any = true;
          if (value > kMaxHttpBody) continue;  // clamp; caller rejects > cap
          value = value * 10 + static_cast<std::size_t>(c - '0');
        }
        if (!any) return ContentLengthStatus::kMalformed;
        out = value;
        return ContentLengthStatus::kOk;
      }
    }
    start = eol + 2;
  }
  return ContentLengthStatus::kAbsent;
}

void parse_headers(const std::string& buffer, std::size_t start,
                   std::size_t end, std::map<std::string, std::string>& out) {
  while (start < end) {
    std::size_t eol = buffer.find("\r\n", start);
    if (eol == std::string::npos || eol > end) eol = end;
    const std::size_t colon = buffer.find(':', start);
    if (colon != std::string::npos && colon < eol) {
      std::string name = buffer.substr(start, colon - start);
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      std::size_t value_start = colon + 1;
      while (value_start < eol && buffer[value_start] == ' ') ++value_start;
      std::size_t value_end = eol;
      while (value_end > value_start && buffer[value_end - 1] == ' ')
        --value_end;
      out[std::move(name)] =
          buffer.substr(value_start, value_end - value_start);
    }
    start = eol + 2;
  }
}

HeadStatus parse_request_head(const std::string& buffer,
                              std::size_t header_end, ParsedHead& out) {
  const std::size_t line_end = buffer.find("\r\n");
  if (line_end == std::string::npos || line_end > kMaxRequestLine)
    return HeadStatus::kBadRequestLine;
  const std::string line = buffer.substr(0, line_end);

  // "GET /path?query HTTP/1.1"
  const std::size_t method_end = line.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos)
    return HeadStatus::kBadRequestLine;

  HttpRequest& request = out.request;
  request.method = line.substr(0, method_end);
  std::string target =
      line.substr(method_end + 1, target_end - method_end - 1);
  const std::size_t query_start = target.find('?');
  if (query_start != std::string::npos) {
    request.query = target.substr(query_start + 1);
    target.resize(query_start);
  }
  request.path = std::move(target);
  // An empty request target ("GET  HTTP/1.1", "GET ?q HTTP/1.1") is a
  // malformed line, not a routable request — found by the fuzz
  // harness's non-empty-path invariant (fuzz/fuzz_http_request.cpp).
  if (request.path.empty()) return HeadStatus::kBadRequestLine;
  parse_headers(buffer, line_end + 2, header_end, request.headers);

  if (request.method != "GET" && request.method != "HEAD" &&
      request.method != "POST")
    return HeadStatus::kMethodNotAllowed;

  out.content_length = 0;
  if (request.method == "POST") {
    const ContentLengthStatus cl = parse_content_length(
        buffer, line_end + 2, header_end, out.content_length);
    if (cl == ContentLengthStatus::kMalformed)
      return HeadStatus::kBadContentLength;
    if (out.content_length > kMaxHttpBody) return HeadStatus::kBodyTooLarge;
  }
  return HeadStatus::kOk;
}

}  // namespace mecoff::obs::serve
