// TelemetryServer: the live observability surface of a solve loop.
//
// Wires the embedded HttpServer to the process-global instruments:
//
//   /metrics  Prometheus text exposition of the MetricsRegistry
//             (counters, gauges, histograms, and the sliding-window
//             quantile summaries — mec_solve_latency{quantile="..."})
//   /varz     the registry's JSON dump (the same document `metrics=1`
//             prints), plus trace/recorder meta counters
//   /healthz  liveness callback: 200 "ok" while healthy, 503 with the
//             reason while degraded (a dead edge server, the all-local
//             fallback...). No callback registered = always ok.
//   /flightz  the flight recorder's current ring as JSON (the same
//             document an anomaly dump writes, anomaly=null)
//   /timez    the attached obs::Timeline's `mecoff.timeline.v1`
//             document (503 until set_timeline() wires one up)
//
// Serving OBSERVES: every route renders from snapshots of internally
// synchronized state, so a scrape can never perturb a running solve —
// tests/obs_serve_test.cpp extends the ObsEquivalence suite with
// exactly that claim (placement bits identical with the server up).
//
// Under MECOFF_OBS_DISABLED this degrades with HttpServer: start()
// returns an Error and nothing listens.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "obs/serve/http_server.hpp"
#include "obs/timeline.hpp"

namespace mecoff::obs::serve {

/// What /healthz reports. `reason` is served verbatim as the body.
struct HealthStatus {
  bool ok = true;
  std::string reason = "ok";
};

class TelemetryServer {
 public:
  using HealthCallback = std::function<HealthStatus()>;

  TelemetryServer();

  /// Liveness source for /healthz. The callback runs on the server's
  /// connection workers — it must be thread-safe (copy state under a
  /// mutex or read atomics; do NOT touch an unsynchronized controller
  /// directly). Call before start().
  void set_health_callback(HealthCallback callback);

  /// Register an extra exact-path route next to the built-in four —
  /// how the CLI's serve-solve mode mounts its POST /solve ingest.
  /// Same contract as HttpServer::handle: call before start(), the
  /// handler runs on the connection workers. The route shows up in
  /// /varz's "routes" list (404s stay plain).
  void handle(std::string path, HttpServer::Handler handler);

  /// Splice an application section into the /varz document:
  /// `"key": <renderer()>` next to the built-in routes/metrics/trace/
  /// flight_recorder keys. The renderer must return a valid JSON value
  /// and, like handlers, runs on the connection workers — snapshot
  /// internally synchronized state, do not touch bare shared data.
  /// Call before start(). This is how serve-solve publishes scheme-
  /// cache health (entries, evictions, oldest age) without /metrics
  /// parsing.
  void add_varz_section(std::string key,
                        std::function<std::string()> renderer);

  /// Attach the timeline /timez serves. Call before start(); the
  /// Timeline must outlive the server (it is internally synchronized,
  /// so connection workers render it safely). nullptr (the default)
  /// leaves /timez answering 503 "no timeline configured".
  void set_timeline(const Timeline* timeline) { timeline_ = timeline; }

  /// Passthrough to HttpServer::set_io_timeout_ms (pre-start only).
  void set_io_timeout_ms(int ms);

  /// Start serving on 127.0.0.1:`port` (0 = ephemeral). Returns the
  /// bound port.
  Result<std::uint16_t> start(std::uint16_t port);
  void stop();

  [[nodiscard]] bool running() const { return http_.running(); }
  [[nodiscard]] std::uint16_t port() const { return http_.port(); }
  [[nodiscard]] std::uint64_t requests_served() const {
    return http_.requests_served();
  }

 private:
  HttpServer http_;
  HealthCallback health_;
  /// Pre-start registered; the pointee is internally synchronized.
  const Timeline* timeline_ = nullptr;
  /// Pre-start registered, read-only while serving (same discipline as
  /// health_ and the route table).
  std::vector<std::pair<std::string, std::function<std::string()>>>
      varz_sections_;
};

}  // namespace mecoff::obs::serve
