// Minimal embedded HTTP/1.0-style exposition + ingest server.
//
// One dedicated thread runs a blocking accept loop on a loopback
// listener and hands each accepted connection to a small fixed pool of
// connection workers; each connection carries one request and is closed
// ("Connection: close" — scrape/ingest traffic, not an RPC plane). No
// external dependencies: plain POSIX sockets. Routes are exact-path
// handlers registered BEFORE start(); handlers run on the connection
// workers, so anything they touch must be internally synchronized (the
// metrics registry, trace collector, flight recorder, and SolveService
// all are).
//
// Robustness against slow/stalled/hostile peers:
//   * accepted sockets get SO_RCVTIMEO/SO_SNDTIMEO (set_io_timeout_ms,
//     default 5s), so a silent peer costs one worker one timeout — it
//     can never wedge the server, and /healthz keeps answering on the
//     other workers while it waits;
//   * a per-connection wall-clock deadline bounds dribbling peers that
//     feed one byte per poll: the whole request must arrive within the
//     I/O timeout or the connection gets 408 and is closed;
//   * stop() shuts down the listener AND every active/queued connection
//     fd, so a thread mid-recv observes EOF immediately and the join is
//     prompt — never blocked behind a peer;
//   * the pending-connection queue is bounded; overflow is answered
//     with an immediate 503 (admission control at the socket layer).
//
// Request bodies: POST with Content-Length (capped at 1 MiB, 413 over)
// is supported for ingest routes; GET/HEAD stay body-less. Deliberate
// non-goals: TLS, keep-alive, chunked bodies, path parameters. An
// ingress proxy owns everything else.
//
// The request path (including the query string, which handlers may
// parse) is capped at 8 KiB and the header block at 64 KiB; oversized
// or malformed requests get 400/431 and the connection is closed — the
// server survives garbage, slow, and hostile peers without allocating
// unboundedly. Unknown paths get a PLAIN 404: the route table is
// deliberately not echoed to clients (it is served to operators via
// /varz instead).
//
// Under MECOFF_OBS_DISABLED the class degrades to an inert stub whose
// start() reports failure, so callers (the CLI's serve modes) compile
// unchanged and fail loudly at runtime instead of silently serving
// nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"

#ifndef MECOFF_OBS_DISABLED

#include <atomic>
#include <deque>
#include <thread>

#include "common/thread_annotations.hpp"

#endif  // MECOFF_OBS_DISABLED

namespace mecoff::obs::serve {

struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", or "POST"
  std::string path;    ///< "/metrics" (query string stripped)
  std::string query;   ///< "a=1&b=2" (no leading '?'), may be empty
  std::string body;    ///< POST payload (empty for GET/HEAD)
  /// Request headers, names lowercased (HTTP header names are
  /// case-insensitive); last occurrence of a repeated name wins.
  std::map<std::string, std::string> headers;
};

struct HttpResponse {
  HttpResponse() = default;
  // The defaulted trailer keeps `HttpResponse{503, type, body}` sites
  // free of -Wmissing-field-initializers noise.
  HttpResponse(int status_in, std::string content_type_in,
               std::string body_in,
               std::vector<std::pair<std::string, std::string>>
                   extra_headers_in = {})
      : status(status_in),
        content_type(std::move(content_type_in)),
        body(std::move(body_in)),
        extra_headers(std::move(extra_headers_in)) {}

  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers appended verbatim after Content-Type
  /// (e.g. {"X-Mecoff-Request-Id", "17"}). Names must be valid HTTP
  /// header tokens; values must not contain CR/LF.
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

#ifndef MECOFF_OBS_DISABLED

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  ~HttpServer();  ///< stops and joins if still running

  /// Register an exact-path handler (GET/HEAD/POST share one table).
  /// Must be called before start().
  void handle(std::string path, Handler handler);

  /// Per-socket SO_RCVTIMEO/SO_SNDTIMEO and the per-connection
  /// wall-clock budget, in milliseconds. Must be called before start().
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }

  /// Bind 127.0.0.1:`port` (0 = ephemeral), start the accept thread and
  /// the connection workers. Returns the bound port, or an Error (port
  /// in use, out of fds...).
  Result<std::uint16_t> start(std::uint16_t port);

  /// Close the listener, shut down every in-flight connection, and join
  /// all threads. Idempotent; prompt even with a peer mid-recv.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  /// Bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Requests answered (any status) since start.
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Registered route paths, sorted — served on /varz, never on 404.
  [[nodiscard]] std::vector<std::string> route_paths() const;

 private:
  void accept_loop();
  void worker_loop() EXCLUDES(conn_mutex_);
  void serve_connection(int fd);

  /// Connection workers per server. Scrape + ingest traffic is tiny;
  /// what matters is that one stalled peer occupies one worker, not the
  /// whole plane.
  static constexpr std::size_t kConnectionWorkers = 4;
  /// Accepted-but-unserved backlog bound; overflow is shed with 503.
  static constexpr std::size_t kMaxPending = 64;

  std::map<std::string, Handler> routes_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int io_timeout_ms_ = 5000;

  mecoff::Mutex conn_mutex_;
  mecoff::CondVar conn_cv_;
  /// Accepted fds waiting for a worker.
  std::deque<int> pending_ GUARDED_BY(conn_mutex_);
  /// Fds currently inside serve_connection, one per busy worker —
  /// stop() shuts these down so blocked recv/send calls return.
  std::vector<int> active_ GUARDED_BY(conn_mutex_);
  bool conn_stopping_ GUARDED_BY(conn_mutex_) = false;
};

#else  // MECOFF_OBS_DISABLED

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void handle(std::string, Handler) {}
  void set_io_timeout_ms(int) {}
  Result<std::uint16_t> start(std::uint16_t) {
    return Error("telemetry serving compiled out (MECOFF_OBS_DISABLED)");
  }
  void stop() {}
  [[nodiscard]] bool running() const { return false; }
  [[nodiscard]] std::uint16_t port() const { return 0; }
  [[nodiscard]] std::uint64_t requests_served() const { return 0; }
  [[nodiscard]] std::vector<std::string> route_paths() const { return {}; }
};

#endif  // MECOFF_OBS_DISABLED

}  // namespace mecoff::obs::serve
