// Minimal embedded HTTP/1.0-style exposition server.
//
// One dedicated thread runs a blocking accept loop on a loopback
// listener; each connection is served one GET and closed
// ("Connection: close" — scrape traffic, not an RPC plane). No external
// dependencies: plain POSIX sockets. Routes are exact-path handlers
// registered BEFORE start(); handlers run on the server thread, so
// anything they touch must be internally synchronized (the metrics
// registry, trace collector, and flight recorder all are).
//
// Deliberate non-goals: TLS, keep-alive, chunked bodies, request
// bodies, path parameters. This serves /metrics to a scraper and a
// human with curl; an ingress proxy owns everything else.
//
// The request path (including the query string, which handlers may
// parse) is capped at 8 KiB and the header block at 64 KiB; oversized
// or malformed requests get 400/431 and the connection is closed — the
// server survives garbage, slow, and hostile peers without allocating
// unboundedly.
//
// Under MECOFF_OBS_DISABLED the class degrades to an inert stub whose
// start() reports failure, so callers (the CLI's serve mode) compile
// unchanged and fail loudly at runtime instead of silently serving
// nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/result.hpp"

#ifndef MECOFF_OBS_DISABLED

#include <atomic>
#include <thread>

#endif  // MECOFF_OBS_DISABLED

namespace mecoff::obs::serve {

struct HttpRequest {
  std::string method;  ///< "GET"
  std::string path;    ///< "/metrics" (query string stripped)
  std::string query;   ///< "a=1&b=2" (no leading '?'), may be empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

#ifndef MECOFF_OBS_DISABLED

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  ~HttpServer();  ///< stops and joins if still running

  /// Register an exact-path GET handler. Must be called before start().
  void handle(std::string path, Handler handler);

  /// Bind 127.0.0.1:`port` (0 = ephemeral), start the accept thread.
  /// Returns the bound port, or an Error (port in use, out of fds...).
  Result<std::uint16_t> start(std::uint16_t port);

  /// Close the listener and join the accept thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  /// Bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Requests answered (any status) since start.
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::map<std::string, Handler> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

#else  // MECOFF_OBS_DISABLED

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void handle(std::string, Handler) {}
  Result<std::uint16_t> start(std::uint16_t) {
    return Error("telemetry serving compiled out (MECOFF_OBS_DISABLED)");
  }
  void stop() {}
  [[nodiscard]] bool running() const { return false; }
  [[nodiscard]] std::uint16_t port() const { return 0; }
  [[nodiscard]] std::uint64_t requests_served() const { return 0; }
};

#endif  // MECOFF_OBS_DISABLED

}  // namespace mecoff::obs::serve
