#include "obs/serve/exposition.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/format.hpp"

namespace mecoff::obs::serve {

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool legal = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                       c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0)
    out.insert(out.begin(), '_');
  return out;
}

namespace {

using Family = std::pair<std::string, std::string>;  // mangled name, block

void render_counters(const MetricsSnapshot& snap,
                     std::vector<Family>& families) {
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prometheus_name(name);
    std::ostringstream out;
    out << "# TYPE " << prom << " counter\n"
        << prom << ' ' << value << '\n';
    families.emplace_back(prom, out.str());
  }
}

void render_gauges(const MetricsSnapshot& snap,
                   std::vector<Family>& families) {
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = prometheus_name(name);
    std::ostringstream out;
    out << "# TYPE " << prom << " gauge\n"
        << prom << ' ' << format_double(value) << '\n';
    families.emplace_back(prom, out.str());
  }
}

void render_histograms(const MetricsSnapshot& snap,
                       std::vector<Family>& families) {
  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = prometheus_name(name);
    std::ostringstream out;
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out << prom << "_bucket{le=\"" << format_double(h.bounds[i]) << "\"} "
          << cumulative << '\n';
    }
    out << prom << "_bucket{le=\"+Inf\"} " << h.count << '\n'
        << prom << "_sum " << format_double(h.sum) << '\n'
        << prom << "_count " << h.count << '\n';
    families.emplace_back(prom, out.str());
  }
}

void render_quantiles(const MetricsSnapshot& snap,
                      std::vector<Family>& families) {
  for (const auto& [name, q] : snap.quantiles) {
    const std::string prom = prometheus_name(name);
    std::ostringstream out;
    out << "# TYPE " << prom << " summary\n";
    // An empty window has no meaningful quantiles; Prometheus clients
    // expose NaN there, which scrapers accept for summary samples.
    const auto sample = [&](const char* quantile, double value) {
      out << prom << "{quantile=\"" << quantile << "\"} "
          << (q.window_size == 0 ? "NaN" : format_double(value)) << '\n';
    };
    sample("0.5", q.p50);
    sample("0.95", q.p95);
    sample("0.99", q.p99);
    out << prom << "_sum " << format_double(q.sum) << '\n'
        << prom << "_count " << q.count << '\n';
    families.emplace_back(prom, out.str());
  }
}

}  // namespace

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::vector<Family> families;
  render_counters(snapshot, families);
  render_gauges(snapshot, families);
  render_histograms(snapshot, families);
  render_quantiles(snapshot, families);
  // One global order over mangled names: byte-stable output, and
  // name-mangling collisions stay adjacent (easy to spot in a diff).
  std::sort(families.begin(), families.end(),
            [](const Family& a, const Family& b) { return a.first < b.first; });
  std::string out;
  for (const Family& family : families) out += family.second;
  return out;
}

}  // namespace mecoff::obs::serve
