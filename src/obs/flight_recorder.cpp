#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "obs/format.hpp"

namespace mecoff::obs {

const char* SolveRecord::fallback_level() const {
  if (fallback_all_remote > 0) return "all_remote";
  if (fallback_kl_cuts > 0) return "kl_recut";
  if (spectral_nonconverged > 0) return "spectral_retry";
  return "none";
}

const char* to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kNone: return "none";
    case AnomalyKind::kDeadlineFallback: return "deadline_fallback";
    case AnomalyKind::kFailover: return "failover";
    case AnomalyKind::kLatencyOutlier: return "latency_outlier";
  }
  return "unknown";
}

namespace {

void append_record_json(std::ostringstream& out, const SolveRecord& r) {
  out << "{\"seq\":" << r.seq
      << ",\"wall_time_us\":" << format_double(r.wall_time_us)
      << ",\"request_id\":" << r.request_id
      << ",\"users\":" << r.users
      << ",\"distinct_users\":" << r.distinct_users
      << ",\"parts\":" << r.parts
      << ",\"greedy_moves\":" << r.greedy_moves
      << ",\"compress_seconds\":" << format_double(r.compress_seconds)
      << ",\"cut_seconds\":" << format_double(r.cut_seconds)
      << ",\"greedy_seconds\":" << format_double(r.greedy_seconds)
      << ",\"total_seconds\":" << format_double(r.total_seconds)
      << ",\"final_objective\":" << format_double(r.final_objective)
      << ",\"spectral_nonconverged\":" << r.spectral_nonconverged
      << ",\"fallback_kl_cuts\":" << r.fallback_kl_cuts
      << ",\"fallback_all_remote\":" << r.fallback_all_remote
      << ",\"fallback_level\":\"" << r.fallback_level() << '"'
      << ",\"deadline_expired\":" << (r.deadline_expired ? "true" : "false")
      << ",\"failover_events\":" << r.failover_events
      << ",\"trace_dropped\":" << r.trace_dropped << '}';
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  MECOFF_EXPECTS(capacity > 0);
  ring_.reserve(capacity);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  MECOFF_EXPECTS(capacity > 0);
  const MutexLock lock(mutex_);
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity);
  head_ = 0;
}

void FlightRecorder::set_dump_dir(std::string dir) {
  const MutexLock lock(mutex_);
  dump_dir_ = std::move(dir);
}

void FlightRecorder::set_latency_trigger(double factor,
                                         std::size_t min_samples) {
  const MutexLock lock(mutex_);
  latency_factor_ = factor;
  latency_min_samples_ = std::max<std::size_t>(min_samples, 2);
}

void FlightRecorder::note_failover_event() {
  const MutexLock lock(mutex_);
  ++pending_failover_events_;
}

AnomalyKind FlightRecorder::classify_locked(const SolveRecord& r) const {
  // Trigger precedence mirrors severity: a degraded solve outranks the
  // failover bookkeeping, which outranks a plain slow outlier.
  if (r.degraded()) return AnomalyKind::kDeadlineFallback;
  if (r.failover_events > 0) return AnomalyKind::kFailover;
  if (latency_factor_ > 0.0 &&
      latency_window_.window_size() >= latency_min_samples_) {
    const double p95 = latency_window_.quantile(0.95);
    if (r.total_seconds > latency_factor_ * p95)
      return AnomalyKind::kLatencyOutlier;
  }
  return AnomalyKind::kNone;
}

AnomalyKind FlightRecorder::record(SolveRecord record) {
  std::string dump_json;
  std::string dump_path;
  AnomalyKind anomaly = AnomalyKind::kNone;
  {
    const MutexLock lock(mutex_);
    record.seq = next_seq_++;
    record.wall_time_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - epoch_)
            .count();
    record.failover_events += pending_failover_events_;
    pending_failover_events_ = 0;

    // Classify against the window EXCLUDING this sample, so one slow
    // solve cannot inflate the very p95 it is judged against.
    anomaly = classify_locked(record);
    latency_window_.record(record.total_seconds);

    if (ring_.size() < capacity_) {
      ring_.push_back(record);
    } else {
      ring_[head_] = record;
      head_ = (head_ + 1) % capacity_;
    }

    if (anomaly != AnomalyKind::kNone) {
      ++anomalies_;
      if (!dump_dir_.empty()) {
        dump_json = render_json_locked(anomaly);
        dump_path = dump_dir_ + "/flight_" + std::to_string(record.seq) +
                    '_' + to_string(anomaly) + ".json";
      }
    }
  }
  // File IO outside the lock: a slow disk must not stall the feeders.
  if (!dump_path.empty()) {
    std::ofstream out(dump_path);
    if (out) {
      out << dump_json << '\n';
      const MutexLock lock(mutex_);
      ++dumps_;
      last_dump_path_ = dump_path;
    }
  }
  return anomaly;
}

Result<std::string> FlightRecorder::dump_now(const std::string& label) {
  std::string dump_json;
  std::string dump_path;
  {
    const MutexLock lock(mutex_);
    if (dump_dir_.empty())
      return Error("flight recorder: no dump_dir configured");
    dump_json = render_json_locked(AnomalyKind::kNone);
    dump_path =
        dump_dir_ + "/flight_" + std::to_string(next_seq_) + '_' + label +
        ".json";
  }
  // File IO outside the lock, like the anomaly path.
  std::ofstream out(dump_path);
  if (!out) return Error("flight recorder: cannot write " + dump_path);
  out << dump_json << '\n';
  const MutexLock lock(mutex_);
  ++dumps_;
  last_dump_path_ = dump_path;
  return dump_path;
}

std::size_t FlightRecorder::size() const {
  const MutexLock lock(mutex_);
  return ring_.size();
}

std::size_t FlightRecorder::capacity() const {
  const MutexLock lock(mutex_);
  return capacity_;
}

std::uint64_t FlightRecorder::total_records() const {
  const MutexLock lock(mutex_);
  return next_seq_;
}

std::uint64_t FlightRecorder::anomaly_count() const {
  const MutexLock lock(mutex_);
  return anomalies_;
}

std::uint64_t FlightRecorder::dump_count() const {
  const MutexLock lock(mutex_);
  return dumps_;
}

std::string FlightRecorder::last_dump_path() const {
  const MutexLock lock(mutex_);
  return last_dump_path_;
}

std::vector<SolveRecord> FlightRecorder::snapshot() const {
  const MutexLock lock(mutex_);
  std::vector<SolveRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

std::string FlightRecorder::render_json_locked(AnomalyKind trigger) const {
  std::ostringstream out;
  out << "{\"schema\":\"mecoff.flight_recorder.v1\",\"anomaly\":";
  // The newest record is the culprit: records are appended before
  // rendering, so the ring's last element triggered the dump.
  const SolveRecord* culprit = nullptr;
  if (trigger != AnomalyKind::kNone && !ring_.empty()) {
    culprit = ring_.size() < capacity_
                  ? &ring_.back()
                  : &ring_[(head_ + capacity_ - 1) % capacity_];
  }
  if (culprit == nullptr) {
    out << "null";
  } else {
    out << "{\"kind\":\"" << to_string(trigger) << "\",\"seq\":"
        << culprit->seq << ",\"fallback_level\":\""
        << culprit->fallback_level() << "\",\"total_seconds\":"
        << format_double(culprit->total_seconds) << ",\"failover_events\":"
        << culprit->failover_events << '}';
  }
  out << ",\"records\":[";
  bool first = true;
  const auto emit_range = [&out, &first](auto begin, auto end) {
    for (auto it = begin; it != end; ++it) {
      if (!first) out << ',';
      first = false;
      append_record_json(out, *it);
    }
  };
  if (ring_.size() < capacity_) {
    emit_range(ring_.begin(), ring_.end());
  } else {  // oldest to newest across the wrap point
    emit_range(ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    emit_range(ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  out << "]}";
  return out.str();
}

std::string FlightRecorder::to_json(AnomalyKind trigger) const {
  const MutexLock lock(mutex_);
  return render_json_locked(trigger);
}

void FlightRecorder::clear() {
  const MutexLock lock(mutex_);
  ring_.clear();
  head_ = 0;
  next_seq_ = 0;
  anomalies_ = 0;
  dumps_ = 0;
  pending_failover_events_ = 0;
  last_dump_path_.clear();
  latency_window_.reset();
}

}  // namespace mecoff::obs
