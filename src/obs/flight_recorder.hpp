// Anomaly flight recorder: a ring buffer of the last N completed solve
// records that auto-dumps a post-mortem JSON when something went wrong.
//
// Every PipelineOffloader::solve() appends one SolveRecord (fed from
// the same doubles as SolveStats — see src/mec/offloader.cpp), and the
// multi-server failover path notes each fault-driven re-solve. Three
// anomaly triggers fire a dump:
//
//   * deadline fallback engaged — the solve degraded (non-converged
//     eigensolve, KL recut, all-remote fallback, or an expired budget);
//   * failover re-solve — the record absorbed one or more failover
//     transitions (server crash/recovery re-placement);
//   * latency outlier — total_seconds exceeded k x the sliding-window
//     p95 (k = 3 by default, armed only once the window has enough
//     samples to make p95 meaningful).
//
// A dump is the whole ring (oldest to newest) plus the trigger, written
// to `<dump_dir>/flight_<seq>_<kind>.json`, so a chaos run or a
// long-lived `mecoff_cli serve` loop self-documents its worst moments
// without anyone tailing it. With no dump_dir set (the default) the
// recorder only keeps the in-memory ring — tests and libraries opt in.
//
// Recording OBSERVES the pipeline: nothing reads the recorder back
// into a solve, so placements are bit-identical with it armed or not.
//
// Like the registry, the class stays compiled in under
// MECOFF_OBS_DISABLED; only the pipeline feed sites compile away, so an
// obs-off build has an empty recorder, not a missing symbol.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/thread_annotations.hpp"
#include "obs/quantiles.hpp"

namespace mecoff::obs {

/// One completed solve, as the recorder remembers it. Stage timings are
/// the exact SolveStats doubles (no second clock).
struct SolveRecord {
  std::uint64_t seq = 0;     ///< assigned by the recorder, monotone
  double wall_time_us = 0.0; ///< since recorder epoch (steady clock)
  /// Serving-path correlation id (obs::current_request_id() at feed
  /// time); 0 = solve ran outside a request scope.
  std::uint64_t request_id = 0;
  std::size_t users = 0;
  std::size_t distinct_users = 0;
  std::size_t parts = 0;
  std::size_t greedy_moves = 0;
  double compress_seconds = 0.0;
  double cut_seconds = 0.0;
  double greedy_seconds = 0.0;
  double total_seconds = 0.0;
  double final_objective = 0.0;
  /// Degrade-don't-die fallback chain diagnostics (mec::SolveStats).
  std::size_t spectral_nonconverged = 0;
  std::size_t fallback_kl_cuts = 0;
  std::size_t fallback_all_remote = 0;
  bool deadline_expired = false;
  /// Failover transitions absorbed by this record (note_failover_event
  /// calls since the previous record).
  std::size_t failover_events = 0;
  /// TraceCollector drop count at record time (0 when tracing is off).
  std::size_t trace_dropped = 0;

  /// Highest fallback level engaged: "none", "spectral_retry",
  /// "kl_recut", or "all_remote" — the post-mortem names it.
  [[nodiscard]] const char* fallback_level() const;
  [[nodiscard]] bool degraded() const {
    return spectral_nonconverged > 0 || fallback_kl_cuts > 0 ||
           fallback_all_remote > 0 || deadline_expired;
  }
};

enum class AnomalyKind : std::uint8_t {
  kNone,
  kDeadlineFallback,
  kFailover,
  kLatencyOutlier,
};

[[nodiscard]] const char* to_string(AnomalyKind kind);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;
  /// Latency-outlier trigger defaults: fire at 3 x windowed p95, but
  /// only once 32 samples have landed (early p95 is noise).
  static constexpr double kDefaultLatencyFactor = 3.0;
  static constexpr std::size_t kDefaultMinSamples = 32;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder the solve pipeline feeds.
  static FlightRecorder& global();

  /// Resize the ring (drops current contents).
  void set_capacity(std::size_t capacity);
  /// Directory for post-mortem dumps; empty (default) disables dumping
  /// while anomaly detection and counting stay armed.
  void set_dump_dir(std::string dir);
  /// Tune the latency-outlier trigger; factor <= 0 disarms it.
  void set_latency_trigger(double factor,
                           std::size_t min_samples = kDefaultMinSamples);

  /// Failover transition hook (multi-server fault handling). Folded
  /// into the NEXT record and makes it anomalous.
  void note_failover_event();

  /// Append one record (seq/wall-time stamped, pending failover events
  /// folded in). Returns the anomaly trigger that fired, if any; when
  /// one fired and a dump_dir is set, the post-mortem has been written.
  AnomalyKind record(SolveRecord record);

  [[nodiscard]] std::size_t size() const;          ///< records in ring
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::uint64_t total_records() const;
  [[nodiscard]] std::uint64_t anomaly_count() const;
  [[nodiscard]] std::uint64_t dump_count() const;
  [[nodiscard]] std::string last_dump_path() const;  ///< "" = none yet

  /// Ring contents, oldest to newest.
  [[nodiscard]] std::vector<SolveRecord> snapshot() const;

  /// The post-mortem JSON document: {"anomaly":{...},"records":[...]}.
  /// kNone renders the current ring with a null anomaly (the /flightz
  /// endpoint serves exactly this).
  [[nodiscard]] std::string to_json(
      AnomalyKind trigger = AnomalyKind::kNone) const;

  /// Explicit post-mortem: write the current ring (anomaly=null) to
  /// `<dump_dir>/flight_<seq>_<label>.json` and return the path. This
  /// is the graceful-drain hook — SIGTERM handlers call it exactly once
  /// so a clean shutdown self-documents like an anomaly does. Errors
  /// (no dump_dir configured, unwritable path) come back as a Result
  /// error, never a throw; the dump counts toward dump_count().
  Result<std::string> dump_now(const std::string& label);

  /// Drop all records and reset counters (capacity/config survive).
  void clear();

 private:
  [[nodiscard]] std::string render_json_locked(AnomalyKind trigger) const
      REQUIRES(mutex_);
  [[nodiscard]] AnomalyKind classify_locked(const SolveRecord& record) const
      REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<SolveRecord> ring_ GUARDED_BY(mutex_);
  std::size_t capacity_ GUARDED_BY(mutex_);
  /// next write position once full
  std::size_t head_ GUARDED_BY(mutex_) = 0;
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
  std::uint64_t anomalies_ GUARDED_BY(mutex_) = 0;
  std::uint64_t dumps_ GUARDED_BY(mutex_) = 0;
  std::size_t pending_failover_events_ GUARDED_BY(mutex_) = 0;
  std::string dump_dir_ GUARDED_BY(mutex_);
  std::string last_dump_path_ GUARDED_BY(mutex_);
  double latency_factor_ GUARDED_BY(mutex_) = kDefaultLatencyFactor;
  std::size_t latency_min_samples_ GUARDED_BY(mutex_) = kDefaultMinSamples;
  /// Sliding window of total_seconds for the p95 threshold (private to
  /// the recorder; the registry's mec.solve.latency instrument is the
  /// serving-facing twin fed from the same double). Internally
  /// synchronized — always taken after mutex_, never the reverse, so
  /// the nesting order is acyclic.
  // lock-order: FlightRecorder::mutex_ -> Quantiles::mutex_
  Quantiles latency_window_{512};
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace mecoff::obs
