// Per-request correlation id, carried on the current thread.
//
// The serving path assigns every SolveRequest a numeric id (caller-
// supplied, or the fault-injector sequence number, or a service-local
// counter — see serve::SolveService). The id must reach instruments
// that fire deep inside the solve — the flight recorder's SolveRecord
// and the Quantiles exemplar — without threading a parameter through
// PipelineOffloader, which knows nothing about serving. A thread-local
// carries it instead: the service opens a RequestIdScope around the
// solve on whichever thread executes it (pool worker or caller), and
// anything downstream reads current_request_id().
//
// This is plumbing, not instrumentation: it stays compiled in under
// MECOFF_OBS_DISABLED (the response header and `id=` line work with
// observability off); only the exemplar/recorder *consumers* compile
// away. Id 0 means "no request in scope" and is never assigned.
#pragma once

#include <cstdint>

namespace mecoff::obs {

/// Id of the request being served on this thread; 0 when none.
[[nodiscard]] std::uint64_t current_request_id();

/// RAII scope that sets the thread's current request id, restoring the
/// previous value on destruction (scopes nest; hedged retries reuse the
/// same id on another worker via their own scope).
class RequestIdScope {
 public:
  explicit RequestIdScope(std::uint64_t id);
  ~RequestIdScope();

  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace mecoff::obs
