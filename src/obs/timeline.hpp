// Time-series telemetry: a bounded ring of periodic MetricsSnapshot
// deltas, turning the registry's point-in-time view into a curve.
//
// Each retained Sample carries, per counter, the cumulative value, the
// delta since the *previous* sample, and a rate — so /timez renders a
// trajectory, not one instant. Deltas are computed at sample time
// against the previous sample (whether or not that sample is still in
// the ring), so wraparound never corrupts them.
//
// Two drive modes, mirroring serve::FaultInjector's clock trick:
//  * kTick — sampled on request-sequence numbers (note_request() every
//    N requests, or explicit sample_now(tick) at harness barriers).
//    Tick-mode documents contain no wall-clock fields, so a replayed
//    run produces a byte-identical /timez body — the determinism
//    contract the soak harness and golden tests rely on.
//  * kWall — sampled when poll_wall() observes that the configured
//    interval has elapsed. For live serving: the CLI's idle loop polls
//    it; no extra thread, no timer signal.
// kManual takes samples only via sample_now() — the harness mode.
//
// A key filter restricts which instruments a sample retains. The soak
// harness filters to the counters that are deterministic at its load
// barriers; a live server retains everything.
//
// Like the rest of src/obs, the class stays compiled in under
// MECOFF_OBS_DISABLED (it reads an explicit registry, never through the
// macro facade); only instrumented *producers* compile away.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace mecoff::obs {

class Timeline {
 public:
  enum class Mode { kManual, kTick, kWall };

  struct Options {
    /// Samples retained; older samples fall off the ring (counted in
    /// `dropped`, visible in the document).
    std::size_t capacity = 256;
    Mode mode = Mode::kManual;
    /// kTick: take a sample every `tick_period` note_request() calls.
    std::uint64_t tick_period = 64;
    /// kWall: minimum seconds between samples taken by poll_wall().
    double interval_seconds = 1.0;
    /// Instrument names to retain; empty = every instrument. Applies
    /// to counters, gauges, and quantiles alike.
    std::vector<std::string> keys;
    /// Registry to sample; nullptr = MetricsRegistry::global().
    const MetricsRegistry* registry = nullptr;
  };

  /// Per-counter view inside one sample.
  struct CounterPoint {
    std::uint64_t value = 0;  ///< cumulative at sample time
    std::int64_t delta = 0;   ///< vs the previous sample (can be < 0
                              ///< across a reset_values())
    double rate = 0.0;        ///< delta per tick (kManual/kTick) or
                              ///< per second (kWall)
  };

  /// Per-quantiles-instrument view inside one sample.
  struct QuantPoint {
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max_value = 0.0;
    std::uint64_t max_request_id = 0;
  };

  struct Sample {
    std::uint64_t tick = 0;      ///< request-sequence position
    double wall_seconds = 0.0;   ///< since Timeline construction
    std::map<std::string, CounterPoint> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, QuantPoint> quantiles;
  };

  Timeline() : Timeline(Options{}) {}
  explicit Timeline(Options options);

  /// Take one sample at the given tick position, unconditionally.
  void sample_now(std::uint64_t tick) EXCLUDES(mutex_);

  /// kTick driver: count one request; sample when the internal request
  /// counter crosses a tick_period boundary. No-op in other modes
  /// (the counter still advances so a later poll_wall/sample has a
  /// meaningful tick).
  void note_request() EXCLUDES(mutex_);

  /// kWall driver: sample if interval_seconds have elapsed since the
  /// last sample. Call from any idle loop; cheap when not due.
  void poll_wall() EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t samples_taken() const EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t dropped() const EXCLUDES(mutex_);

  /// Retained samples, oldest to newest.
  [[nodiscard]] std::vector<Sample> samples() const EXCLUDES(mutex_);

  /// The `mecoff.timeline.v1` document: schema/mode/capacity header +
  /// the retained samples, numbers via format_double. Tick-mode (and
  /// manual-mode) documents omit every wall-clock field so replays
  /// diff byte-for-byte.
  [[nodiscard]] std::string to_json() const EXCLUDES(mutex_);

 private:
  void sample_locked(std::uint64_t tick) REQUIRES(mutex_);

  const Options options_;
  const Stopwatch since_construction_;
  /// sample_locked() snapshots the metrics registry while holding the
  /// timeline lock, so the registry lock (and, through it, each
  /// Quantiles instrument's lock) nests under mutex_. The registry
  /// never calls back into the timeline.
  // lock-order: Timeline::mutex_ -> MetricsRegistry::mutex_
  mutable Mutex mutex_;
  /// grows to capacity_, then wraps at head_ (same shape as Quantiles)
  std::vector<Sample> ring_ GUARDED_BY(mutex_);
  std::size_t head_ GUARDED_BY(mutex_) = 0;
  std::uint64_t samples_taken_ GUARDED_BY(mutex_) = 0;
  std::uint64_t requests_seen_ GUARDED_BY(mutex_) = 0;
  /// previous sample's cumulative counters + tick/wall, for deltas
  std::map<std::string, std::uint64_t> prev_counters_ GUARDED_BY(mutex_);
  std::uint64_t prev_tick_ GUARDED_BY(mutex_) = 0;
  double prev_wall_ GUARDED_BY(mutex_) = 0.0;
  double last_sample_wall_ GUARDED_BY(mutex_) = 0.0;
  bool have_sample_ GUARDED_BY(mutex_) = false;
};

}  // namespace mecoff::obs
