// Streaming latency quantiles over a sliding window.
//
// The instrument keeps the last `window_capacity` samples in a ring and
// answers quantile queries by sorting a snapshot of that window — exact
// order statistics over the window, not an approximation. We chose this
// over P²/CKMS sketches deliberately: the serving tests demand p50/p95/
// p99 within 1% of an exact-sort oracle on arbitrary latency
// distributions, a *value*-error bound no constant-memory sketch
// guarantees at the tail; a bounded window (default 2^14 doubles =
// 128 KiB) gives the sliding-window semantics operators expect from a
// /metrics scrape while keeping record() O(1) and queries exact.
//
// Concurrency: record() takes a short mutex (one store + three scalar
// updates under the lock). Solves are milliseconds-to-seconds apart, so
// the lock is uncontended in practice; unlike the counter/gauge hot
// path this instrument is fed once per *solve*, not once per node.
// Queries copy the window under the lock and sort outside it.
//
// Like Counter/Gauge/Histogram, the class stays compiled in under
// MECOFF_OBS_DISABLED — only the MECOFF_QUANTILES_RECORD macro call
// sites compile away (obs.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_annotations.hpp"

namespace mecoff::obs {

class Quantiles {
 public:
  /// Default sliding window: 2^14 samples (128 KiB of doubles).
  static constexpr std::size_t kDefaultWindow = 1u << 14;

  explicit Quantiles(std::size_t window_capacity = kDefaultWindow);

  /// (value, request id) pair for the current window maximum — the
  /// exemplar that lets /flightz and /timez name the request behind a
  /// p99 bump. request_id 0 means the sample carried no id.
  struct Exemplar {
    double value = 0.0;
    std::uint64_t request_id = 0;
  };

  /// Append one sample, evicting the oldest once the window is full.
  void record(double sample);

  /// Append one sample tagged with the request id that produced it.
  /// The id rides the same ring as the value and is evicted with it.
  void record(double sample, std::uint64_t request_id);

  /// Exemplar for the current window maximum. Ties resolve to the
  /// newest sample (the most recent request at the max is the one an
  /// operator wants to chase). Returns a zero Exemplar on an empty
  /// window.
  [[nodiscard]] Exemplar max_exemplar() const;

  /// Quantile q in [0, 1] over the current window, by linear
  /// interpolation between order statistics (the same definition as
  /// `numpy.quantile`'s default): position p = q * (n - 1), value
  /// x[floor(p)] + frac(p) * (x[floor(p)+1] - x[floor(p)]).
  /// Returns NaN on an empty window.
  [[nodiscard]] double quantile(double q) const;

  /// Batched query: one window snapshot + sort for all of `qs`.
  [[nodiscard]] std::vector<double> quantiles(
      std::span<const double> qs) const;

  /// Samples ever recorded (monotone; includes evicted ones).
  [[nodiscard]] std::uint64_t count() const;
  /// Sum of every sample ever recorded (for Prometheus summary _sum).
  [[nodiscard]] double sum() const;
  /// Samples currently in the window (<= window_capacity()).
  [[nodiscard]] std::size_t window_size() const;
  [[nodiscard]] std::size_t window_capacity() const { return capacity_; }

  /// Copy of the window, oldest to newest (tests, recorder thresholds).
  [[nodiscard]] std::vector<double> window() const;

  void reset();

 private:
  /// Window contents in ring order; caller sorts. Takes the lock.
  [[nodiscard]] std::vector<double> snapshot_window() const
      EXCLUDES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_;
  /// size() grows to capacity_, then wraps
  std::vector<double> ring_ GUARDED_BY(mutex_);
  /// request id per ring_ slot (0 = untagged); same indices, same wrap
  std::vector<std::uint64_t> ids_ GUARDED_BY(mutex_);
  /// next write position once full
  std::size_t head_ GUARDED_BY(mutex_) = 0;
  std::uint64_t total_count_ GUARDED_BY(mutex_) = 0;
  double total_sum_ GUARDED_BY(mutex_) = 0.0;
};

/// Shared quantile definition, exposed so tests and the flight recorder
/// can run the exact-sort oracle: `sorted` MUST be ascending.
[[nodiscard]] double quantile_of_sorted(std::span<const double> sorted,
                                        double q);

}  // namespace mecoff::obs
