#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/contracts.hpp"
#include "obs/format.hpp"

namespace mecoff::obs {

void Gauge::add(double delta) {
  // fetch_add on atomic<double> is C++20; spelled as a CAS loop to stay
  // portable across older libstdc++ floating-point atomics.
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(bounds_.size() + 1) {
  MECOFF_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::record(double sample) {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + sample,
                                     std::memory_order_relaxed)) {
  }
}

std::span<const double> Histogram::default_latency_bounds() {
  static const double kBounds[] = {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3,
                                   3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,
                                   10.0, 30.0, 100.0};
  return kBounds;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  MECOFF_EXPECTS(i < buckets_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::atomic<std::uint64_t>& b : buckets_)
    b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, Kind kind, std::span<const double> upper_bounds,
    std::size_t window_capacity) {
  const MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind)
      throw PreconditionError("metric '" + std::string(name) +
                              "' already registered as a different kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(
          upper_bounds.empty() ? Histogram::default_latency_bounds()
                               : upper_bounds);
      break;
    case Kind::kQuantiles:
      entry.quantiles = std::make_unique<Quantiles>(
          window_capacity == 0 ? Quantiles::kDefaultWindow
                               : window_capacity);
      break;
  }
  return entries_.emplace(std::string(name), std::move(entry))
      .first->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *find_or_create(name, Kind::kCounter, {}).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *find_or_create(name, Kind::kGauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  return *find_or_create(name, Kind::kHistogram, upper_bounds).histogram;
}

Quantiles& MetricsRegistry::quantiles(std::string_view name,
                                      std::size_t window_capacity) {
  return *find_or_create(name, Kind::kQuantiles, {}, window_capacity)
              .quantiles;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters[name] = entry.counter->value();
        break;
      case Kind::kGauge:
        snap.gauges[name] = entry.gauge->value();
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramValue h;
        h.bounds = entry.histogram->bounds();
        h.buckets.resize(h.bounds.size() + 1);
        for (std::size_t i = 0; i < h.buckets.size(); ++i)
          h.buckets[i] = entry.histogram->bucket_count(i);
        h.count = entry.histogram->count();
        h.sum = entry.histogram->sum();
        snap.histograms[name] = std::move(h);
        break;
      }
      case Kind::kQuantiles: {
        MetricsSnapshot::QuantilesValue q;
        q.count = entry.quantiles->count();
        q.sum = entry.quantiles->sum();
        q.window_size = entry.quantiles->window_size();
        if (q.window_size > 0) {  // empty window: keep zeros (JSON-safe)
          static constexpr double kQs[] = {0.5, 0.95, 0.99};
          const std::vector<double> values = entry.quantiles->quantiles(kQs);
          q.p50 = values[0];
          q.p95 = values[1];
          q.p99 = values[2];
          const Quantiles::Exemplar ex = entry.quantiles->max_exemplar();
          q.max_value = ex.value;
          q.max_request_id = ex.request_id;
        }
        snap.quantiles[name] = q;
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  const MutexLock lock(mutex_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->reset(); break;
      case Kind::kGauge: entry.gauge->reset(); break;
      case Kind::kHistogram: entry.histogram->reset(); break;
      case Kind::kQuantiles: entry.quantiles->reset(); break;
    }
  }
}

std::string MetricsRegistry::to_text() const {
  const MetricsSnapshot snap = snapshot();
  // One `name ...` line per instrument, merge-sorted by name across the
  // four kind maps (each already sorted) so the dump order is a single
  // global lexicographic order, stable across runs.
  std::map<std::string, std::string> lines;
  for (const auto& [name, value] : snap.counters)
    lines[name] = std::to_string(value);
  for (const auto& [name, value] : snap.gauges)
    lines[name] = format_double(value);
  for (const auto& [name, h] : snap.histograms)
    lines[name] = "count=" + std::to_string(h.count) +
                  " sum=" + format_double(h.sum);
  for (const auto& [name, q] : snap.quantiles)
    lines[name] = "count=" + std::to_string(q.count) +
                  " sum=" + format_double(q.sum) +
                  " p50=" + format_double(q.p50) +
                  " p95=" + format_double(q.p95) +
                  " p99=" + format_double(q.p99);
  std::ostringstream out;
  for (const auto& [name, rendered] : lines)
    out << name << ' ' << rendered << '\n';
  return out.str();
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << format_double(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":{\"count\":" << h.count
        << ",\"sum\":" << format_double(h.sum) << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i)
      out << (i == 0 ? "" : ",") << format_double(h.bounds[i]);
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      out << (i == 0 ? "" : ",") << h.buckets[i];
    out << "]}";
  }
  out << "},\"quantiles\":{";
  first = true;
  for (const auto& [name, q] : snap.quantiles) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":{\"count\":" << q.count
        << ",\"sum\":" << format_double(q.sum)
        << ",\"window\":" << q.window_size
        << ",\"p50\":" << format_double(q.p50)
        << ",\"p95\":" << format_double(q.p95)
        << ",\"p99\":" << format_double(q.p99)
        << ",\"max\":" << format_double(q.max_value)
        << ",\"max_request_id\":" << q.max_request_id << '}';
  }
  out << "}}";
  return out.str();
}

}  // namespace mecoff::obs
