// Locale-independent round-trip number rendering shared by every obs
// dump (metrics text/JSON, Prometheus exposition, flight recorder).
// snprintf("%g") honors LC_NUMERIC and would break byte-for-byte golden
// diffs under a comma-decimal locale; std::to_chars cannot.
#pragma once

#include <charconv>
#include <string>

namespace mecoff::obs {

/// Shortest form that round-trips the exact double (0.1 stays "0.1",
/// never "0.10000000000000001" — the shortest-round-trip digit string
/// is unique, so the rendering is still deterministic).
inline std::string format_double(double v) {
  char buffer[40];
  const std::to_chars_result res =
      std::to_chars(buffer, buffer + sizeof(buffer), v);
  return std::string(buffer, res.ptr);
}

}  // namespace mecoff::obs
