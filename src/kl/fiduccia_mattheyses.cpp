#include "kl/fiduccia_mattheyses.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mecoff::kl {

using graph::Bipartition;
using graph::NodeId;
using graph::WeightedGraph;

namespace {

/// gain[v] = cut reduction if v switches sides
///         = (external edge weight) − (internal edge weight).
std::vector<double> compute_gains(const WeightedGraph& g,
                                  const std::vector<std::uint8_t>& side) {
  std::vector<double> gain(g.num_nodes(), 0.0);
  for (const graph::Edge& e : g.edges()) {
    const double sign = side[e.u] != side[e.v] ? 1.0 : -1.0;
    gain[e.u] += sign * e.weight;
    gain[e.v] += sign * e.weight;
  }
  return gain;
}

}  // namespace

FmResult fm_refine(const WeightedGraph& g, Bipartition initial,
                   const FmOptions& options) {
  MECOFF_EXPECTS(graph::is_valid_partition(g, initial.side));
  MECOFF_EXPECTS(options.balance_tolerance >= 0.0 &&
                 options.balance_tolerance <= 0.5);
  MECOFF_EXPECTS(options.max_passes >= 1);

  FmResult result;
  result.partition = std::move(initial);
  std::vector<std::uint8_t>& side = result.partition.side;
  const std::size_t n = g.num_nodes();
  if (n < 2) {
    result.partition.cut_weight = 0.0;
    return result;
  }

  const double total_weight = g.total_node_weight();
  const double floor_weight =
      (0.5 - options.balance_tolerance) * total_weight;
  double side_weight[2] = {0.0, 0.0};
  std::size_t side_count[2] = {0, 0};
  for (NodeId v = 0; v < n; ++v) {
    side_weight[side[v]] += g.node_weight(v);
    ++side_count[side[v]];
  }

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    std::vector<double> gain = compute_gains(g, side);
    std::vector<bool> locked(n, false);
    std::vector<std::uint32_t> version(n, 0);

    // Lazy max-heap of (gain, node, version); stale versions are
    // discarded on pop.
    using Entry = std::tuple<double, NodeId, std::uint32_t>;
    std::priority_queue<Entry> heap;
    for (NodeId v = 0; v < n; ++v) heap.emplace(gain[v], v, 0);

    struct Move {
      NodeId node;
      double gain;
    };
    std::vector<Move> sequence;
    double pass_weight[2] = {side_weight[0], side_weight[1]};
    std::size_t pass_count[2] = {side_count[0], side_count[1]};

    while (!heap.empty()) {
      const auto [entry_gain, v, entry_version] = heap.top();
      heap.pop();
      if (locked[v] || entry_version != version[v]) continue;

      // Admissibility: a side may never empty, and moving v must not
      // push its CURRENT side below the weight floor — unless that side
      // is the heavy one (moves improving balance stay admissible).
      const std::uint8_t from = side[v];
      const double w = g.node_weight(v);
      if (pass_count[from] <= 1) continue;  // would empty the side
      const bool keeps_floor = pass_weight[from] - w >= floor_weight;
      const bool improves_balance =
          pass_weight[from] > pass_weight[1 - from];
      if (!keeps_floor && !improves_balance) continue;  // skip, stay locked out

      // Tentatively move v.
      locked[v] = true;
      sequence.push_back(Move{v, gain[v]});
      pass_weight[from] -= w;
      pass_weight[1 - from] += w;
      --pass_count[from];
      ++pass_count[1 - from];
      const std::uint8_t to = static_cast<std::uint8_t>(1 - from);
      side[v] = to;  // flip in place; rolled back after prefix selection

      for (const graph::Adjacency& adj : g.neighbors(v)) {
        const NodeId u = adj.neighbor;
        if (locked[u]) continue;
        // v moved from `from` to `to`: the edge (u, v) changed category.
        gain[u] += side[u] == to ? -2.0 * adj.weight : 2.0 * adj.weight;
        ++version[u];
        heap.emplace(gain[u], u, version[u]);
      }
    }

    // Best prefix.
    double cumulative = 0.0;
    double best_cumulative = 0.0;
    std::size_t best_prefix = 0;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      cumulative += sequence[i].gain;
      if (cumulative > best_cumulative + 1e-12) {
        best_cumulative = cumulative;
        best_prefix = i + 1;
      }
    }

    // Roll back the tentative tail beyond the committed prefix.
    for (std::size_t i = sequence.size(); i-- > best_prefix;) {
      const NodeId v = sequence[i].node;
      side[v] = static_cast<std::uint8_t>(1 - side[v]);
    }
    // Recompute committed side weights and counts.
    side_weight[0] = side_weight[1] = 0.0;
    side_count[0] = side_count[1] = 0;
    for (NodeId v = 0; v < n; ++v) {
      side_weight[side[v]] += g.node_weight(v);
      ++side_count[side[v]];
    }

    result.passes = pass + 1;
    if (best_prefix == 0) break;  // converged
    result.total_gain += best_cumulative;
  }

  result.partition.cut_weight = graph::cut_weight(g, side);
  return result;
}

FmBipartitioner::FmBipartitioner(FmOptions options) : options_(options) {}

Bipartition FmBipartitioner::bipartition(const WeightedGraph& g) {
  Bipartition initial;
  initial.side.assign(g.num_nodes(), 0);
  if (g.num_nodes() < 2) return initial;

  // Random weight-balanced start: shuffle, then fill side 1 until it
  // holds half the total node weight.
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  Rng rng(options_.seed);
  rng.shuffle(order);
  const double half = g.total_node_weight() / 2.0;
  double acc = 0.0;
  for (const NodeId v : order) {
    if (acc >= half) break;
    initial.side[v] = 1;
    acc += g.node_weight(v);
  }
  initial.cut_weight = graph::cut_weight(g, initial.side);
  return fm_refine(g, std::move(initial), options_).partition;
}

}  // namespace mecoff::kl
