#include "kl/multilevel.hpp"

#include <numeric>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mecoff::kl {

using graph::Bipartition;
using graph::NodeId;
using graph::WeightedGraph;

CoarseningStep heavy_edge_matching(const WeightedGraph& g,
                                   std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  CoarseningStep step;
  step.coarse_of.assign(n, graph::kInvalidNode);

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  Rng rng(seed);
  rng.shuffle(order);

  // match[v] = partner, or v itself when unmatched.
  std::vector<NodeId> match(n);
  std::iota(match.begin(), match.end(), NodeId{0});
  std::vector<bool> taken(n, false);
  for (const NodeId v : order) {
    if (taken[v]) continue;
    NodeId best = v;
    double best_weight = -1.0;
    for (const graph::Adjacency& adj : g.neighbors(v)) {
      if (taken[adj.neighbor] || adj.neighbor == v) continue;
      if (adj.weight > best_weight) {
        best_weight = adj.weight;
        best = adj.neighbor;
      }
    }
    taken[v] = true;
    if (best != v) {
      taken[best] = true;
      match[v] = best;
      match[best] = v;
    }
  }

  // Contract pairs.
  graph::GraphBuilder builder;
  for (NodeId v = 0; v < n; ++v) {
    if (step.coarse_of[v] != graph::kInvalidNode) continue;
    const NodeId partner = match[v];
    const double weight =
        g.node_weight(v) + (partner != v ? g.node_weight(partner) : 0.0);
    const NodeId coarse = builder.add_node(weight);
    step.coarse_of[v] = coarse;
    if (partner != v) step.coarse_of[partner] = coarse;
  }
  for (const graph::Edge& e : g.edges()) {
    const NodeId cu = step.coarse_of[e.u];
    const NodeId cv = step.coarse_of[e.v];
    if (cu != cv) builder.add_edge(cu, cv, e.weight);  // builder merges
  }
  step.coarse = builder.build();
  return step;
}

MultilevelBipartitioner::MultilevelBipartitioner(MultilevelOptions options)
    : options_(options) {}

Bipartition MultilevelBipartitioner::bipartition(const WeightedGraph& g) {
  stats_ = MultilevelStats{};
  Bipartition out;
  out.side.assign(g.num_nodes(), 0);
  if (g.num_nodes() < 2) return out;

  // Coarsening phase.
  std::vector<CoarseningStep> hierarchy;
  const WeightedGraph* current = &g;
  for (std::size_t level = 0; level < options_.max_levels &&
                              current->num_nodes() > options_.coarsest_size;
       ++level) {
    CoarseningStep step =
        heavy_edge_matching(*current, options_.seed + level);
    if (step.coarse.num_nodes() == current->num_nodes()) break;  // stuck
    hierarchy.push_back(std::move(step));
    current = &hierarchy.back().coarse;
  }
  stats_.levels = hierarchy.size();
  stats_.coarsest_nodes = current->num_nodes();

  // Initial cut at the coarsest level (FM from a random balanced start).
  FmOptions fm = options_.fm;
  fm.seed = options_.seed ^ 0x5a5a;
  Bipartition cut = FmBipartitioner(fm).bipartition(*current);

  // Uncoarsening with refinement at every level.
  for (std::size_t level = hierarchy.size(); level-- > 0;) {
    const CoarseningStep& step = hierarchy[level];
    const WeightedGraph& fine =
        level == 0 ? g : hierarchy[level - 1].coarse;
    Bipartition projected;
    projected.side.resize(fine.num_nodes());
    for (NodeId v = 0; v < fine.num_nodes(); ++v)
      projected.side[v] = cut.side[step.coarse_of[v]];
    projected.cut_weight = graph::cut_weight(fine, projected.side);
    cut = fm_refine(fine, std::move(projected), options_.fm).partition;
  }

  MECOFF_ENSURES(cut.side.size() == g.num_nodes());
  return cut;
}

}  // namespace mecoff::kl
