// Multilevel bi-partitioning (METIS-style): coarsen by heavy-edge
// matching, cut the coarsest graph, then project back level by level
// with Fiduccia–Mattheyses refinement at each step.
//
// This is the modern answer to the problem the paper attacks with LPA
// compression + spectral cutting: coarsening collapses tightly coupled
// pairs (like the compressor's clusters), and refinement repairs the
// projection error (unlike the paper's one-shot cut). Offered as a
// fourth cut backend for studies; the paper pipeline remains the
// spectral one.
#pragma once

#include <cstdint>

#include "graph/partition.hpp"
#include "kl/fiduccia_mattheyses.hpp"

namespace mecoff::kl {

struct MultilevelOptions {
  /// Stop coarsening when the graph is at most this many nodes.
  std::size_t coarsest_size = 32;
  /// Safety cap on coarsening levels.
  std::size_t max_levels = 24;
  FmOptions fm;
  std::uint64_t seed = 0x4d4c;
};

struct MultilevelStats {
  std::size_t levels = 0;
  std::size_t coarsest_nodes = 0;
};

class MultilevelBipartitioner final : public graph::Bipartitioner {
 public:
  explicit MultilevelBipartitioner(MultilevelOptions options = {});

  [[nodiscard]] graph::Bipartition bipartition(
      const graph::WeightedGraph& g) override;

  [[nodiscard]] std::string name() const override { return "multilevel"; }

  /// Diagnostics from the most recent bipartition().
  [[nodiscard]] const MultilevelStats& last_stats() const { return stats_; }

 private:
  MultilevelOptions options_;
  MultilevelStats stats_;
};

/// One heavy-edge-matching coarsening step: greedily match each node
/// (random visiting order) with its heaviest unmatched neighbor and
/// contract the pairs. `coarse_of[v]` maps fine nodes to coarse ids.
/// Returns the coarse graph; coarse node weights are sums, parallel
/// edges merge, matched pairs' internal edges vanish.
struct CoarseningStep {
  graph::WeightedGraph coarse;
  std::vector<graph::NodeId> coarse_of;
};
[[nodiscard]] CoarseningStep heavy_edge_matching(
    const graph::WeightedGraph& g, std::uint64_t seed);

}  // namespace mecoff::kl
