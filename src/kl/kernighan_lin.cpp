#include "kl/kernighan_lin.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace mecoff::kl {

using graph::Bipartition;
using graph::NodeId;
using graph::WeightedGraph;

namespace {

/// D[v] = external cost − internal cost of v under `side`.
std::vector<double> compute_d_values(const WeightedGraph& g,
                                     const std::vector<std::uint8_t>& side) {
  std::vector<double> d(g.num_nodes(), 0.0);
  for (const graph::Edge& e : g.edges()) {
    const double sign = side[e.u] != side[e.v] ? 1.0 : -1.0;
    d[e.u] += sign * e.weight;
    d[e.v] += sign * e.weight;
  }
  return d;
}

struct Swap {
  NodeId a;  // from side 0
  NodeId b;  // from side 1
  double gain;
};

/// Unlocked nodes of `which` side ordered by descending D value,
/// truncated to `limit` (SIZE_MAX = all).
std::vector<NodeId> top_candidates(const std::vector<std::uint8_t>& side,
                                   const std::vector<bool>& locked,
                                   const std::vector<double>& d,
                                   std::uint8_t which, std::size_t limit) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < side.size(); ++v)
    if (side[v] == which && !locked[v]) out.push_back(v);
  std::sort(out.begin(), out.end(),
            [&](NodeId x, NodeId y) { return d[x] > d[y]; });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace

KlResult kernighan_lin_refine(const WeightedGraph& g, Bipartition initial,
                              const KlOptions& options) {
  MECOFF_EXPECTS(graph::is_valid_partition(g, initial.side));
  MECOFF_EXPECTS(options.max_passes >= 1);
  MECOFF_TRACE_SPAN_ARG("kl.refine", g.num_nodes());
  MECOFF_COUNTER_ADD("kl.refine.runs", 1);

  KlResult result;
  result.partition = std::move(initial);
  std::vector<std::uint8_t>& side = result.partition.side;

  const std::size_t limit =
      options.exact_pair_selection ? SIZE_MAX : options.candidate_limit;

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    std::vector<double> d = compute_d_values(g, side);
    std::vector<bool> locked(g.num_nodes(), false);
    std::vector<Swap> sequence;

    while (true) {
      const std::vector<NodeId> as = top_candidates(side, locked, d, 0, limit);
      const std::vector<NodeId> bs = top_candidates(side, locked, d, 1, limit);
      if (as.empty() || bs.empty()) break;

      Swap best{graph::kInvalidNode, graph::kInvalidNode,
                -std::numeric_limits<double>::infinity()};
      for (const NodeId a : as) {
        // Direct neighbors of a on side 1 can beat the top-D shortlist
        // because of the −2·w(a,b) term; include them too.
        std::vector<NodeId> b_pool = bs;
        if (!options.exact_pair_selection) {
          for (const graph::Adjacency& adj : g.neighbors(a))
            if (side[adj.neighbor] == 1 && !locked[adj.neighbor])
              b_pool.push_back(adj.neighbor);
        }
        for (const NodeId b : b_pool) {
          const double gain = d[a] + d[b] - 2.0 * g.edge_weight_between(a, b);
          if (gain > best.gain) best = Swap{a, b, gain};
        }
      }
      if (best.a == graph::kInvalidNode) break;

      // Tentatively swap: update D values as if a and b switched sides.
      locked[best.a] = true;
      locked[best.b] = true;
      sequence.push_back(best);
      for (const graph::Adjacency& adj : g.neighbors(best.a)) {
        if (locked[adj.neighbor]) continue;
        // Nodes on a's old side gain an external edge; nodes on the
        // other side lose one.
        d[adj.neighbor] +=
            (side[adj.neighbor] == side[best.a] ? 2.0 : -2.0) * adj.weight;
      }
      for (const graph::Adjacency& adj : g.neighbors(best.b)) {
        if (locked[adj.neighbor]) continue;
        d[adj.neighbor] +=
            (side[adj.neighbor] == side[best.b] ? 2.0 : -2.0) * adj.weight;
      }
    }

    // Best prefix of the tentative sequence.
    double cumulative = 0.0;
    double best_cumulative = 0.0;
    std::size_t best_prefix = 0;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      cumulative += sequence[i].gain;
      if (cumulative > best_cumulative) {
        best_cumulative = cumulative;
        best_prefix = i + 1;
      }
    }
    result.passes = pass + 1;
    if (best_prefix == 0 || best_cumulative <= 1e-12) break;  // converged

    for (std::size_t i = 0; i < best_prefix; ++i) {
      side[sequence[i].a] = 1;
      side[sequence[i].b] = 0;
    }
    result.total_gain += best_cumulative;
  }

  result.partition.cut_weight = graph::cut_weight(g, side);
  MECOFF_COUNTER_ADD("kl.refine.passes", result.passes);
  MECOFF_GAUGE_ADD("kl.refine.total_gain", result.total_gain);
  return result;
}

KernighanLinBipartitioner::KernighanLinBipartitioner(KlOptions options)
    : options_(options) {}

Bipartition KernighanLinBipartitioner::bipartition(const WeightedGraph& g) {
  Bipartition initial;
  initial.side.assign(g.num_nodes(), 0);
  if (g.num_nodes() < 2) return initial;

  // Random balanced start (classic KL assumes |A| ≈ |B|).
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  Rng rng(options_.seed);
  rng.shuffle(order);
  for (std::size_t i = 0; i < order.size() / 2; ++i) initial.side[order[i]] = 1;
  initial.cut_weight = graph::cut_weight(g, initial.side);

  return kernighan_lin_refine(g, std::move(initial), options_).partition;
}

}  // namespace mecoff::kl
