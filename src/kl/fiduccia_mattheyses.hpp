// Fiduccia–Mattheyses refinement [FM, DAC 1982] — single-node moves
// with gain ordering and a weight-balance constraint, the successor
// heuristic to Kernighan–Lin (pair swaps) and the standard inner loop
// of modern multilevel partitioners. Included as the library's fourth
// cutter: it gives the cut-quality ablation a stronger heuristic
// baseline and downstream users a faster alternative to exact KL.
//
// Each pass tentatively moves every node at most once, always the
// highest-gain move that keeps both sides above the balance floor, then
// commits the best prefix if its cumulative gain is positive. Gains are
// edge weights (doubles), so the classic integer bucket array is
// replaced by a lazy max-heap with per-node version stamps.
#pragma once

#include <cstdint>

#include "graph/partition.hpp"

namespace mecoff::kl {

struct FmOptions {
  /// Each side must keep at least (0.5 − balance_tolerance) of the
  /// total NODE WEIGHT. 0.5 disables the constraint entirely.
  double balance_tolerance = 0.1;
  std::size_t max_passes = 16;
  std::uint64_t seed = 0xf14;
};

struct FmResult {
  graph::Bipartition partition;
  std::size_t passes = 0;
  double total_gain = 0.0;  ///< cut-weight reduction across all passes
};

/// Refine `initial` under the balance constraint. If `initial` itself
/// violates the constraint, moves that improve balance are always
/// admissible, so the result may legally remain outside the floor.
[[nodiscard]] FmResult fm_refine(const graph::WeightedGraph& g,
                                 graph::Bipartition initial,
                                 const FmOptions& options);

/// Full cutter: random weight-balanced start, then FM passes.
class FmBipartitioner final : public graph::Bipartitioner {
 public:
  explicit FmBipartitioner(FmOptions options = {});

  [[nodiscard]] graph::Bipartition bipartition(
      const graph::WeightedGraph& g) override;

  [[nodiscard]] std::string name() const override { return "fm"; }

 private:
  FmOptions options_;
};

}  // namespace mecoff::kl
