// Kernighan–Lin two-way partition refinement [Kernighan & Lin, BSTJ
// 1970] — the second baseline in the paper's evaluation. Starts from a
// balanced partition and repeatedly executes KL passes: tentatively
// swap the pair with the best gain g = D_a + D_b − 2·w(a,b), lock the
// pair, and at the end of the pass commit the best prefix of swaps if
// its cumulative gain is positive.
//
// Pair selection per swap is exact over all unlocked pairs when
// `exact_pair_selection` (O(n³) per pass — fine for compressed graphs
// and tests) or restricted to the top `candidate_limit` D-value nodes
// per side plus direct neighbors (near-exact, much faster) otherwise.
#pragma once

#include <cstdint>

#include "graph/partition.hpp"

namespace mecoff::kl {

struct KlOptions {
  std::size_t max_passes = 10;
  bool exact_pair_selection = false;
  std::size_t candidate_limit = 64;
  std::uint64_t seed = 0x6b31;
};

struct KlResult {
  graph::Bipartition partition;
  std::size_t passes = 0;
  double total_gain = 0.0;  ///< cut-weight reduction across all passes
};

/// Refine `initial` (sizes are preserved — KL swaps pairs).
[[nodiscard]] KlResult kernighan_lin_refine(const graph::WeightedGraph& g,
                                            graph::Bipartition initial,
                                            const KlOptions& options);

/// Full baseline: random balanced initial partition, then refinement.
class KernighanLinBipartitioner final : public graph::Bipartitioner {
 public:
  explicit KernighanLinBipartitioner(KlOptions options = {});

  [[nodiscard]] graph::Bipartition bipartition(
      const graph::WeightedGraph& g) override;

  [[nodiscard]] std::string name() const override { return "kl"; }

 private:
  KlOptions options_;
};

}  // namespace mecoff::kl
