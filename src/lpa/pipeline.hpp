// Algorithm 1 end-to-end: remove unoffloadable functions, split at
// component boundaries, then run label propagation + compression per
// component — one task per component on the mini-Spark engine, matching
// the paper's "All propagation processes will be executed in parallel".
#pragma once

#include <vector>

#include "graph/subgraph.hpp"
#include "lpa/compressor.hpp"
#include "lpa/propagation.hpp"
#include "parallel/thread_pool.hpp"

namespace mecoff::lpa {

/// One component of the offloadable graph after compression.
struct CompressedComponent {
  /// The uncompressed component; `to_parent` maps into the offloadable
  /// graph's local ids.
  graph::Subgraph component;
  /// Labels and compression of that component.
  PropagationResult propagation;
  CompressionResult compression;
};

struct CompressionPipelineResult {
  /// Original graph minus unoffloadable nodes; `to_parent` maps back to
  /// original application node ids.
  graph::Subgraph offloadable;
  std::vector<CompressedComponent> components;

  /// Aggregate counts across components (the rows of Table I).
  [[nodiscard]] CompressionStats aggregate_stats() const;

  /// Map a (component index, compressed node) pair back to the ORIGINAL
  /// application node ids it represents.
  [[nodiscard]] std::vector<graph::NodeId> original_members(
      std::size_t component_index, graph::NodeId super_node) const;
};

/// Run Algorithm 1 on application graph `g`.
///
/// `unoffloadable[v]` pins node v to the device; such nodes are removed
/// before compression (they never appear in any component). `pool` may
/// be null for serial execution (the Fig. 9 "without Spark" path).
///
/// `declared_components` optionally assigns each ORIGINAL node to a
/// software component (Soot component boundaries); when given, the
/// split refines connectivity by these boundaries — compression never
/// merges functions of different declared components, exactly the
/// paper's "the coupling degree of two functions from two different
/// components must be small". Pass nullptr to split purely by
/// connectivity (the NETGEN experiments, where components are exactly
/// the generator's disjoint pieces).
[[nodiscard]] CompressionPipelineResult compress_application(
    const graph::WeightedGraph& g, const std::vector<bool>& unoffloadable,
    const PropagationConfig& config, parallel::ThreadPool* pool = nullptr,
    const std::vector<std::uint32_t>* declared_components = nullptr);

}  // namespace mecoff::lpa
