#include "lpa/pipeline.hpp"

#include <future>
#include <map>

#include "common/contracts.hpp"
#include "graph/components.hpp"

namespace mecoff::lpa {

using graph::NodeId;
using graph::WeightedGraph;

CompressionStats CompressionPipelineResult::aggregate_stats() const {
  CompressionStats total;
  for (const CompressedComponent& comp : components)
    total += comp.compression.stats;
  return total;
}

std::vector<NodeId> CompressionPipelineResult::original_members(
    std::size_t component_index, NodeId super_node) const {
  MECOFF_EXPECTS(component_index < components.size());
  const CompressedComponent& comp = components[component_index];
  MECOFF_EXPECTS(super_node < comp.compression.members.size());
  std::vector<NodeId> out;
  for (const NodeId local : comp.compression.members[super_node]) {
    const NodeId offloadable_id = comp.component.to_parent[local];
    out.push_back(offloadable.to_parent[offloadable_id]);
  }
  return out;
}

CompressionPipelineResult compress_application(
    const WeightedGraph& g, const std::vector<bool>& unoffloadable,
    const PropagationConfig& config, parallel::ThreadPool* pool,
    const std::vector<std::uint32_t>* declared_components) {
  MECOFF_EXPECTS(unoffloadable.size() == g.num_nodes());
  MECOFF_EXPECTS(declared_components == nullptr ||
                 declared_components->size() == g.num_nodes());

  CompressionPipelineResult out;
  // Line 1 of Algorithm 1: remove unoffloadable functions.
  out.offloadable = graph::remove_nodes(g, unoffloadable);

  // Lines 2–4: split into component sub-graphs. Connectivity defines
  // the split; declared software-component boundaries refine it (two
  // connected nodes of different declared components must not share a
  // sub-graph, so compression can never merge them).
  graph::ComponentLabels comps;
  if (declared_components == nullptr) {
    comps = graph::connected_components(out.offloadable.graph);
  } else {
    const graph::ComponentLabels connectivity =
        connected_components(out.offloadable.graph);
    // Dense relabeling of (declared, connectivity) pairs.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> remap;
    comps.component_of.resize(out.offloadable.graph.num_nodes());
    for (NodeId v = 0; v < out.offloadable.graph.num_nodes(); ++v) {
      const std::uint32_t declared =
          (*declared_components)[out.offloadable.to_parent[v]];
      const auto key = std::make_pair(declared, connectivity.component_of[v]);
      const auto [it, inserted] = remap.try_emplace(
          key, static_cast<std::uint32_t>(remap.size()));
      comps.component_of[v] = it->second;
      (void)inserted;
    }
    comps.count = static_cast<std::uint32_t>(remap.size());
  }
  const std::vector<std::vector<NodeId>> node_lists =
      graph::component_node_lists(comps);

  out.components.resize(node_lists.size());
  const auto process_component = [&](std::size_t c) {
    CompressedComponent& result = out.components[c];
    result.component =
        graph::induced_subgraph(out.offloadable.graph, node_lists[c]);
    // Lines 6–15: propagate labels until an end condition fires.
    result.propagation = propagate_labels(result.component.graph, config);
    // Line 16: merge same-label directly-connected nodes.
    result.compression =
        compress_by_labels(result.component.graph, result.propagation.labels);
  };

  if (pool == nullptr) {
    for (std::size_t c = 0; c < out.components.size(); ++c)
      process_component(c);
  } else {
    // "create new process" per sub-graph (Line 6): one pool task each,
    // under a fresh group. The grouped wait_and_help keeps this safe
    // when compress_application itself runs inside a pool task (the
    // parallel per-user solve), and the deferred rethrow keeps later
    // tasks from touching this frame's closures after an early failure
    // unwinds it.
    const parallel::ThreadPool::TaskGroup group = pool->make_group();
    std::vector<std::future<void>> futures;
    futures.reserve(out.components.size());
    for (std::size_t c = 0; c < out.components.size(); ++c)
      futures.push_back(
          pool->submit_to(group, [&, c] { process_component(c); }));
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        pool->wait_and_help(f, group);
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  return out;
}

}  // namespace mecoff::lpa
