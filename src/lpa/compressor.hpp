// Node merging ("Compression" in Section III-A): any two nodes in the
// same label cluster that are directly connected merge into one super
// node. Equivalently, the super nodes are the connected components of
// the subgraph restricted to same-label edges. Merged functions are
// guaranteed to execute on the same device, so their mutual
// communication never crosses the network.
//
// Weight semantics:
//  * super node weight = Σ member computation weights;
//  * an edge between two super nodes carries the Σ of all original
//    edges between their member sets (parallel edges collapse);
//  * edges internal to a super node vanish from the compressed graph —
//    their weight is recorded in `absorbed_edge_weight` so tests can
//    check conservation: total_edge_weight(original) =
//    total_edge_weight(compressed) + absorbed_edge_weight.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace mecoff::lpa {

struct CompressionStats {
  std::size_t original_nodes = 0;
  std::size_t original_edges = 0;
  std::size_t compressed_nodes = 0;
  std::size_t compressed_edges = 0;
  double absorbed_edge_weight = 0.0;

  [[nodiscard]] double node_reduction() const {
    return original_nodes == 0
               ? 0.0
               : 1.0 - static_cast<double>(compressed_nodes) /
                           static_cast<double>(original_nodes);
  }

  CompressionStats& operator+=(const CompressionStats& other) {
    original_nodes += other.original_nodes;
    original_edges += other.original_edges;
    compressed_nodes += other.compressed_nodes;
    compressed_edges += other.compressed_edges;
    absorbed_edge_weight += other.absorbed_edge_weight;
    return *this;
  }
};

struct CompressionResult {
  graph::WeightedGraph compressed;
  /// super_of[original node] = compressed node id.
  std::vector<graph::NodeId> super_of;
  /// members[compressed node] = original node ids, ascending.
  std::vector<std::vector<graph::NodeId>> members;
  CompressionStats stats;
};

/// Merge directly-connected same-label nodes of `g`. `labels` must have
/// one entry per node.
[[nodiscard]] CompressionResult compress_by_labels(
    const graph::WeightedGraph& g, const std::vector<std::uint32_t>& labels);

}  // namespace mecoff::lpa
