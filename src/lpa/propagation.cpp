#include "lpa/propagation.hpp"

#include <algorithm>
#include <deque>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace mecoff::lpa {

using graph::Adjacency;
using graph::NodeId;
using graph::WeightedGraph;

graph::NodeId select_starter(const WeightedGraph& g) {
  if (g.empty()) return graph::kInvalidNode;
  NodeId best = 0;
  std::size_t best_degree = g.degree(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) > best_degree) {
      best = v;
      best_degree = g.degree(v);
    }
  }
  return best;
}

namespace {

constexpr std::uint32_t kUnlabeled = UINT32_MAX;

/// Visit every node reachable from `starter` (then any remaining nodes,
/// so disconnected leftovers are still labeled) in BFS or DFS order.
std::vector<NodeId> traversal_order(const WeightedGraph& g, NodeId starter,
                                    TraversalPolicy policy) {
  const std::size_t n = g.num_nodes();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  std::deque<NodeId> frontier;

  const auto visit_from = [&](NodeId root) {
    frontier.push_back(root);
    seen[root] = true;
    while (!frontier.empty()) {
      NodeId v;
      if (policy == TraversalPolicy::kBfs) {
        v = frontier.front();
        frontier.pop_front();
      } else {
        v = frontier.back();
        frontier.pop_back();
      }
      order.push_back(v);
      for (const Adjacency& adj : g.neighbors(v)) {
        if (!seen[adj.neighbor]) {
          seen[adj.neighbor] = true;
          frontier.push_back(adj.neighbor);
        }
      }
    }
  };

  visit_from(starter);
  for (NodeId v = 0; v < n; ++v)
    if (!seen[v]) visit_from(v);
  MECOFF_ENSURES(order.size() == n);
  return order;
}

/// Relabel to a dense range [0, count).
std::uint32_t densify(std::vector<std::uint32_t>& labels) {
  std::vector<std::uint32_t> remap(labels.size(), kUnlabeled);
  std::uint32_t next = 0;
  for (std::uint32_t& label : labels) {
    MECOFF_ENSURES(label != kUnlabeled);
    if (remap[label] == kUnlabeled) remap[label] = next++;
    label = remap[label];
  }
  return next;
}

}  // namespace

PropagationResult propagate_labels(const WeightedGraph& g,
                                   const PropagationConfig& config) {
  MECOFF_EXPECTS(config.max_rounds >= 1);
  MECOFF_TRACE_SPAN_ARG("lpa.propagate", g.num_nodes());
  MECOFF_COUNTER_ADD("lpa.propagation.runs", 1);
  PropagationResult result;
  const std::size_t n = g.num_nodes();
  if (n == 0) return result;

  const NodeId starter = select_starter(g);
  const std::vector<NodeId> order =
      traversal_order(g, starter, config.policy);

  result.labels.assign(n, kUnlabeled);
  std::uint32_t next_label = 0;

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    std::size_t updates = 0;
    for (const NodeId v : order) {
      // The label rule: a label crosses an edge only when the coupling
      // degree exceeds the threshold w. An unlabeled node adjacent to a
      // labeled node over such an edge joins that label; an unlabeled
      // node without one starts a fresh label ("given different
      // label"). When two labels meet across a super-threshold edge the
      // smaller label wins, so each round floods labels one step
      // further through the highly coupled regions; the fixpoint labels
      // every connected component of the super-threshold subgraph
      // uniformly — exactly the "highly coupled functions" the
      // compression step must merge.
      std::uint32_t candidate = result.labels[v];
      for (const Adjacency& adj : g.neighbors(v)) {
        if (adj.weight <= config.coupling_threshold) continue;
        const std::uint32_t neighbor_label = result.labels[adj.neighbor];
        if (neighbor_label < candidate) candidate = neighbor_label;
      }
      if (candidate == kUnlabeled) {  // no label reachable: fresh one
        result.labels[v] = next_label++;
        ++updates;
      } else if (result.labels[v] != candidate) {
        result.labels[v] = candidate;
        ++updates;
      }
    }

    result.rounds = round + 1;
    const double rate =
        static_cast<double>(updates) / static_cast<double>(n);
    result.update_rates.push_back(rate);
    MECOFF_COUNTER_ADD("lpa.propagation.rounds", 1);
    MECOFF_COUNTER_ADD("lpa.propagation.label_updates", updates);
    if (rate <= config.min_update_rate) break;
  }

  // α of the final round: how hard the termination rule had to brake.
  MECOFF_GAUGE_SET("lpa.propagation.last_update_rate",
                   result.update_rates.back());
  result.num_labels = densify(result.labels);
  return result;
}

}  // namespace mecoff::lpa
