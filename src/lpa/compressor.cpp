#include "lpa/compressor.hpp"

#include <numeric>

#include "common/contracts.hpp"

namespace mecoff::lpa {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WeightedGraph;

namespace {

/// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId find(NodeId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

CompressionResult compress_by_labels(
    const WeightedGraph& g, const std::vector<std::uint32_t>& labels) {
  MECOFF_EXPECTS(labels.size() == g.num_nodes());
  const std::size_t n = g.num_nodes();

  // Super nodes = connected components under same-label edges.
  DisjointSets sets(n);
  for (const graph::Edge& e : g.edges())
    if (labels[e.u] == labels[e.v]) sets.unite(e.u, e.v);

  CompressionResult out;
  out.super_of.assign(n, graph::kInvalidNode);

  GraphBuilder builder;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId root = sets.find(v);
    if (out.super_of[root] == graph::kInvalidNode) {
      out.super_of[root] = builder.add_node(0.0);
      out.members.emplace_back();
    }
    out.super_of[v] = out.super_of[root];
    out.members[out.super_of[v]].push_back(v);
  }
  // Super node weight = Σ member computation weights.
  {
    std::vector<double> weights(out.members.size(), 0.0);
    for (NodeId v = 0; v < n; ++v)
      weights[out.super_of[v]] += g.node_weight(v);
    for (NodeId s = 0; s < out.members.size(); ++s)
      builder.set_node_weight(s, weights[s]);
  }

  double absorbed = 0.0;
  for (const graph::Edge& e : g.edges()) {
    const NodeId su = out.super_of[e.u];
    const NodeId sv = out.super_of[e.v];
    if (su == sv) {
      absorbed += e.weight;
    } else {
      builder.add_edge(su, sv, e.weight);  // builder sums parallels
    }
  }

  out.compressed = builder.build();
  out.stats.original_nodes = n;
  out.stats.original_edges = g.num_edges();
  out.stats.compressed_nodes = out.compressed.num_nodes();
  out.stats.compressed_edges = out.compressed.num_edges();
  out.stats.absorbed_edge_weight = absorbed;
  return out;
}

}  // namespace mecoff::lpa
