// Label propagation with the paper's coupling-aware label rule
// (Section III-A, "Label initialization and propagation"):
//
//  * the starter node is the one with maximum degree;
//  * a label crosses an edge only when that edge's weight exceeds the
//    coupling threshold `w` — heavier-than-threshold neighbors join the
//    labeled node's cluster, lighter neighbors receive fresh labels;
//  * nodes are visited breadth-first or depth-first from the starter;
//  * rounds repeat until the update rate α = updated/total falls to
//    α_t, or β_t rounds have run (the two "end of propagation" rules).
//
// After round one every node is labeled; later rounds re-evaluate each
// node against its heaviest super-threshold labeled neighbor, letting
// clusters flow along strongly coupled paths.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace mecoff::lpa {

enum class TraversalPolicy { kBfs, kDfs };

struct PropagationConfig {
  /// Coupling threshold `w`: labels propagate across edges with weight
  /// strictly greater than this.
  double coupling_threshold = 5.0;
  /// α_t — stop when the fraction of nodes whose label changed in a
  /// round drops to or below this.
  double min_update_rate = 0.01;
  /// β_t — hard cap on propagation rounds.
  std::size_t max_rounds = 20;
  TraversalPolicy policy = TraversalPolicy::kBfs;
};

struct PropagationResult {
  /// Final label per node; labels are dense in [0, num_labels).
  std::vector<std::uint32_t> labels;
  /// Rounds actually executed.
  std::size_t rounds = 0;
  /// α per round, for diagnostics and tests of the termination rule.
  std::vector<double> update_rates;
  std::uint32_t num_labels = 0;
};

/// Run coupling-aware label propagation on (a component of) a function
/// data flow graph. Deterministic: ties are broken toward the smaller
/// label, traversal order is fixed by the policy and node ids.
[[nodiscard]] PropagationResult propagate_labels(
    const graph::WeightedGraph& g, const PropagationConfig& config);

/// The paper's starter rule: node with the largest degree (smallest id
/// on ties); kInvalidNode for an empty graph.
[[nodiscard]] graph::NodeId select_starter(const graph::WeightedGraph& g);

}  // namespace mecoff::lpa
