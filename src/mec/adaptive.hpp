// Adaptive multi-user coordination — the dynamic counterpart of the
// paper's static multi-user solve. Users arrive and depart over time;
// recomputing every user's scheme per arrival is wasteful and disrupts
// running sessions, so the coordinator:
//
//  * on ARRIVAL: runs the pipeline (compression + cut) for the new user
//    only, then places its parts with Algorithm 2's greedy while every
//    existing user's placement is FROZEN (they still contribute to the
//    server load the newcomer sees);
//  * on DEPARTURE: drops the user; everyone else's placement stands
//    (costs only improve when load leaves);
//  * on REOPTIMIZE: re-runs the global greedy from scratch for all
//    current users, collecting the drift the incremental decisions
//    accumulated.
//
// `drift()` reports how far the current incremental state is from a
// fresh global solve without committing to it — the signal an operator
// would use to schedule reoptimization windows.
#pragma once

#include <optional>
#include <vector>

#include "mec/costs.hpp"
#include "mec/offloader.hpp"

namespace mecoff::mec {

/// Flap suppression for the degrade/recover hooks: a re-placement
/// triggered by a server-health change is adopted only when it improves
/// the objective by more than `hysteresis_margin` (relative), so a
/// link oscillating around a threshold cannot thrash placements.
struct DegradePolicy {
  double hysteresis_margin = 0.05;
};

class AdaptiveCoordinator {
 public:
  AdaptiveCoordinator(SystemParams params, PipelineOptions options = {},
                      DegradePolicy degrade = {});

  /// Admit a user; returns a stable id. The user's functions are
  /// compressed, cut and placed immediately (existing users frozen).
  std::size_t add_user(UserApp app);

  /// Remove a user. Id becomes invalid; other ids are unaffected.
  void remove_user(std::size_t id);

  [[nodiscard]] std::size_t active_users() const;

  /// Placement of one user's functions (throws for dead/unknown ids).
  [[nodiscard]] const std::vector<Placement>& placement_of(
      std::size_t id) const;

  /// Cost of the CURRENT placements over all active users.
  [[nodiscard]] SystemCost current_cost() const;

  /// Objective gap between the current incremental state and a fresh
  /// global solve; does not commit anything. Positive = reoptimizing
  /// would help. Can be NEGATIVE: the greedy is path-dependent, and a
  /// sequence of frozen-arrival placements sometimes lands in a better
  /// local optimum than the all-remote fresh start.
  [[nodiscard]] double drift() const;

  /// Re-run the global greedy for all active users and adopt the fresh
  /// solution IF it improves on the current one; returns the objective
  /// improvement achieved (0 when the incremental state was already at
  /// least as good).
  double reoptimize();

  /// The edge box degraded: capacity (and optionally the link) drop to
  /// the given fractions of nominal, both in (0, 1]. Users are
  /// re-placed via a fresh global solve adopted only past the
  /// hysteresis margin. Returns the number of users whose placement
  /// changed (0 when suppressed, empty, or unchanged).
  std::size_t on_server_degraded(double capacity_factor,
                                 double bandwidth_factor = 1.0);

  /// Health restored to nominal; same hysteresis-gated re-placement.
  /// No-op (returns 0) when not degraded.
  std::size_t on_server_recovered();

  [[nodiscard]] bool server_degraded() const { return degraded_; }

  /// Degrade/recover re-placements the hysteresis margin rejected —
  /// the flap-suppression counter an operator would alarm on.
  [[nodiscard]] std::size_t suppressed_replacements() const {
    return suppressed_;
  }

 private:
  struct Slot {
    UserApp app;
    /// Parts from this user's pipeline run (ids in the user's graph).
    std::vector<Part> parts;
    std::vector<Placement> placement;
  };

  /// Compact system of active users; `ids` maps compact index → slot id.
  [[nodiscard]] MecSystem compact_system(std::vector<std::size_t>& ids) const;

  /// Parts for a full (unfrozen) solve of the compact system.
  [[nodiscard]] std::vector<Part> compact_parts(
      const std::vector<std::size_t>& ids) const;

  /// Solve the compact system from scratch; returns scheme + cost.
  [[nodiscard]] std::pair<OffloadingScheme, SystemCost> fresh_solve() const;

  /// Hysteresis-gated global re-placement after a health change;
  /// returns the number of users whose placement changed.
  std::size_t replace_for_health_change();

  SystemParams params_;          ///< current (possibly degraded) params
  SystemParams nominal_params_;  ///< as constructed
  PipelineOptions options_;
  DegradePolicy degrade_;
  std::vector<std::optional<Slot>> slots_;
  bool degraded_ = false;
  std::size_t suppressed_ = 0;
};

}  // namespace mecoff::mec
