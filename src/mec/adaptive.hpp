// Adaptive multi-user coordination — the dynamic counterpart of the
// paper's static multi-user solve. Users arrive and depart over time;
// recomputing every user's scheme per arrival is wasteful and disrupts
// running sessions, so the coordinator:
//
//  * on ARRIVAL: runs the pipeline (compression + cut) for the new user
//    only, then places its parts with Algorithm 2's greedy while every
//    existing user's placement is FROZEN (they still contribute to the
//    server load the newcomer sees);
//  * on DEPARTURE: drops the user; everyone else's placement stands
//    (costs only improve when load leaves);
//  * on REOPTIMIZE: re-runs the global greedy from scratch for all
//    current users, collecting the drift the incremental decisions
//    accumulated.
//
// `drift()` reports how far the current incremental state is from a
// fresh global solve without committing to it — the signal an operator
// would use to schedule reoptimization windows.
#pragma once

#include <optional>
#include <vector>

#include "mec/costs.hpp"
#include "mec/offloader.hpp"

namespace mecoff::mec {

class AdaptiveCoordinator {
 public:
  AdaptiveCoordinator(SystemParams params, PipelineOptions options = {});

  /// Admit a user; returns a stable id. The user's functions are
  /// compressed, cut and placed immediately (existing users frozen).
  std::size_t add_user(UserApp app);

  /// Remove a user. Id becomes invalid; other ids are unaffected.
  void remove_user(std::size_t id);

  [[nodiscard]] std::size_t active_users() const;

  /// Placement of one user's functions (throws for dead/unknown ids).
  [[nodiscard]] const std::vector<Placement>& placement_of(
      std::size_t id) const;

  /// Cost of the CURRENT placements over all active users.
  [[nodiscard]] SystemCost current_cost() const;

  /// Objective gap between the current incremental state and a fresh
  /// global solve; does not commit anything. Positive = reoptimizing
  /// would help. Can be NEGATIVE: the greedy is path-dependent, and a
  /// sequence of frozen-arrival placements sometimes lands in a better
  /// local optimum than the all-remote fresh start.
  [[nodiscard]] double drift() const;

  /// Re-run the global greedy for all active users and adopt the fresh
  /// solution IF it improves on the current one; returns the objective
  /// improvement achieved (0 when the incremental state was already at
  /// least as good).
  double reoptimize();

 private:
  struct Slot {
    UserApp app;
    /// Parts from this user's pipeline run (ids in the user's graph).
    std::vector<Part> parts;
    std::vector<Placement> placement;
  };

  /// Compact system of active users; `ids` maps compact index → slot id.
  [[nodiscard]] MecSystem compact_system(std::vector<std::size_t>& ids) const;

  /// Parts for a full (unfrozen) solve of the compact system.
  [[nodiscard]] std::vector<Part> compact_parts(
      const std::vector<std::size_t>& ids) const;

  /// Solve the compact system from scratch; returns scheme + cost.
  [[nodiscard]] std::pair<OffloadingScheme, SystemCost> fresh_solve() const;

  SystemParams params_;
  PipelineOptions options_;
  std::vector<std::optional<Slot>> slots_;
};

}  // namespace mecoff::mec
