#include "mec/model.hpp"

#include "common/contracts.hpp"

namespace mecoff::mec {

bool SystemParams::valid() const {
  return mobile_power > 0.0 && transmit_power > 0.0 && bandwidth > 0.0 &&
         mobile_capacity > 0.0 && server_capacity > 0.0 &&
         contention_factor >= 0.0;
}

bool MecSystem::valid() const {
  if (!params.valid()) return false;
  for (const UserApp& user : users) {
    if (!user.unoffloadable.empty() &&
        user.unoffloadable.size() != user.graph.num_nodes())
      return false;
    if (!user.components.empty() &&
        user.components.size() != user.graph.num_nodes())
      return false;
  }
  return true;
}

MecSystem make_uniform_system(SystemParams params,
                              const std::vector<UserApp>& pool,
                              std::size_t num_users) {
  MECOFF_EXPECTS(!pool.empty());
  MecSystem system;
  system.params = params;
  system.users.reserve(num_users);
  for (std::size_t i = 0; i < num_users; ++i)
    system.users.push_back(pool[i % pool.size()]);
  return system;
}

}  // namespace mecoff::mec
