#include "mec/costs.hpp"

#include "common/contracts.hpp"

namespace mecoff::mec {

double SystemCost::local_energy() const {
  double sum = 0.0;
  for (const UserCost& u : users) sum += u.local_energy;
  return sum;
}

double SystemCost::transmit_energy() const {
  double sum = 0.0;
  for (const UserCost& u : users) sum += u.transmit_energy;
  return sum;
}

SystemCost evaluate(const MecSystem& system, const OffloadingScheme& scheme) {
  MECOFF_EXPECTS(system.valid());
  MECOFF_EXPECTS(scheme.valid_for(system));
  const SystemParams& p = system.params;

  SystemCost cost;
  cost.users.resize(system.users.size());

  // Pass 1: per-user weights.
  double total_remote = 0.0;
  std::size_t active_offloaders = 0;
  for (std::size_t u = 0; u < system.users.size(); ++u) {
    const UserApp& user = system.users[u];
    UserCost& uc = cost.users[u];
    for (graph::NodeId v = 0; v < user.graph.num_nodes(); ++v) {
      const double w = user.graph.node_weight(v);
      if (scheme.placement[u][v] == Placement::kLocal)
        uc.local_weight += w;
      else
        uc.remote_weight += w;
    }
    for (const graph::Edge& e : user.graph.edges())
      if (scheme.placement[u][e.u] != scheme.placement[u][e.v])
        uc.cross_weight += e.weight;
    total_remote += uc.remote_weight;
    if (uc.remote_weight > 0.0) ++active_offloaders;
  }

  // Pass 2: formulas (1)–(5) per user, with the server share and the
  // contention-based waiting time depending on global load.
  const double server_share =
      active_offloaders > 0
          ? p.server_capacity / static_cast<double>(active_offloaders)
          : p.server_capacity;
  for (UserCost& uc : cost.users) {
    uc.local_compute_time = uc.local_weight / p.mobile_capacity;
    uc.local_energy = uc.local_compute_time * p.mobile_power;
    if (uc.remote_weight > 0.0) {
      uc.remote_compute_time = uc.remote_weight / server_share;
      // Convex congestion: each unit of own remote work queues behind
      // the total offered load S (see model.hpp).
      uc.wait_time = p.contention_factor * total_remote *
                     uc.remote_weight /
                     (p.server_capacity * p.server_capacity);
    }
    uc.transmit_time = uc.cross_weight / p.bandwidth;
    uc.transmit_energy = uc.transmit_time * p.transmit_power;

    cost.total_energy += uc.local_energy + uc.transmit_energy;
    cost.total_time += uc.local_compute_time + uc.remote_compute_time +
                       uc.wait_time + uc.transmit_time;
  }
  return cost;
}

}  // namespace mecoff::mec
