// The multi-user MEC system model of Section II: users u_i, each with a
// function data flow graph G_i, all served by one edge server S.
//
// Parameter names follow the paper:
//   p_c  unit power of local computation        (mobile_power)
//   p_t  unit power of wireless transmission    (transmit_power, ≫ p_c)
//   b    wireless bandwidth user ↔ server       (bandwidth)
//   I_c  computing capacity of each device      (mobile_capacity)
//   I_S  total computing capacity of the server (server_capacity)
//
// The paper assumes homogeneous users (∀u_i: b_i = b, p_c^i = p_c,
// p_t^i = p_t); we keep the same simplification in SystemParams and let
// per-user heterogeneity live in the graphs themselves.
//
// Server sharing & waiting time: the server splits its capacity equally
// among the K users that offload anything (I_s^i = I_S / K), and each
// unit of a user's remote work additionally queues behind the total
// offered load S = Σ_j W_s^j:
//     w_t^i = κ · S · W_s^i / I_S²              (contention_factor κ)
// — a convex congestion delay in the offered load, the analytic stand-in
// for the queueing the paper's w_t describes ("time consumed ... when
// waiting for the resource allocated by S"). Convexity is load-bearing:
// it gives offloading an interior optimum (offload up to a
// capacity-determined amount, keep the rest local), which is what makes
// the local share grow as graphs or user counts grow in the evaluation
// figures. The discrete-event simulator in src/sim generates waiting
// mechanistically (FIFO/PS service); tests cross-check the two models'
// qualitative behavior and their exact agreement where both are zero.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace mecoff::mec {

struct SystemParams {
  double mobile_power = 1.0;       ///< p_c
  double transmit_power = 8.0;     ///< p_t
  double bandwidth = 20.0;         ///< b
  double mobile_capacity = 10.0;   ///< I_c
  double server_capacity = 500.0;  ///< I_S
  double contention_factor = 1.0;  ///< κ in the waiting-time model

  /// Sanity checks (all strictly positive, κ ≥ 0).
  [[nodiscard]] bool valid() const;
};

/// One user's application as extracted by the appmodel layer.
struct UserApp {
  graph::WeightedGraph graph;
  /// Per node; pinned nodes never offload. Empty = all offloadable.
  std::vector<bool> unoffloadable;
  /// Optional declared software components (empty = connectivity only).
  std::vector<std::uint32_t> components;
};

struct MecSystem {
  SystemParams params;
  std::vector<UserApp> users;

  [[nodiscard]] std::size_t num_users() const { return users.size(); }

  /// Validate shapes: masks/components sized to their graphs, params ok.
  [[nodiscard]] bool valid() const;
};

/// Build a homogeneous multi-user system: `copies[i]` users share graph
/// pool[i % pool.size()] (cheap way to model large user populations).
[[nodiscard]] MecSystem make_uniform_system(
    SystemParams params, const std::vector<UserApp>& pool,
    std::size_t num_users);

}  // namespace mecoff::mec
