// Offloading-scheme serialization: a compact text format so schemes can
// be computed once (CLI `solve out=...`), stored, audited, and replayed
// into the simulators (`simulate scheme=...`).
//
// Format:
//   scheme users <n>
//   user <index> <placements>     # one char per function: L or R
//   # comments and blank lines are ignored
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.hpp"
#include "mec/scheme.hpp"

namespace mecoff::mec {

void write_scheme(const OffloadingScheme& scheme, std::ostream& out);
[[nodiscard]] std::string to_scheme_text(const OffloadingScheme& scheme);

/// Parse the format above; errors carry line numbers. The scheme's
/// shape is validated against nothing here — pair with
/// OffloadingScheme::valid_for before use.
[[nodiscard]] Result<OffloadingScheme> parse_scheme_text(
    const std::string& text);

}  // namespace mecoff::mec
