// The offloading scheme: which functions execute on the device (V_c)
// and which on the edge server (V_s), per user.
#pragma once

#include <cstdint>
#include <vector>

#include "mec/model.hpp"

namespace mecoff::mec {

enum class Placement : std::uint8_t { kLocal = 0, kRemote = 1 };

struct OffloadingScheme {
  /// placement[user][node].
  std::vector<std::vector<Placement>> placement;

  /// Bitwise equality of placements — what the parallel-vs-serial
  /// equivalence tests and the scalability bench assert.
  [[nodiscard]] bool operator==(const OffloadingScheme&) const = default;

  /// Everything on the device (e_t = 0 by construction).
  [[nodiscard]] static OffloadingScheme all_local(const MecSystem& system);

  /// Everything offloadable on the server; pinned nodes stay local.
  [[nodiscard]] static OffloadingScheme all_remote(const MecSystem& system);

  /// Shape matches the system, pinned nodes are local.
  [[nodiscard]] bool valid_for(const MecSystem& system) const;

  /// Number of remote nodes for `user`.
  [[nodiscard]] std::size_t remote_count(std::size_t user) const;
};

}  // namespace mecoff::mec
