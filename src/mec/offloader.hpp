// End-to-end offloading solvers.
//
// PipelineOffloader is the paper's architecture with a pluggable cut
// step — exactly how the evaluation compares algorithms ("We change the
// minimum cut calculation process by the above mentioned three
// algorithms and compare their results"):
//
//   per user:  remove unoffloadable → component split → LPA compression
//              (Algorithm 1) → per compressed sub-graph two-way cut
//              (spectral | max-flow | Kernighan–Lin) → parts
//   jointly:   Algorithm 2 greedy over all users' parts.
//
// Reference offloaders (AllLocal / AllRemote / Random) bound the
// solution space and anchor the normalized figures.
#pragma once

#include <memory>
#include <string>

#include "kl/kernighan_lin.hpp"
#include "lpa/pipeline.hpp"
#include "mec/greedy.hpp"
#include "mec/scheme.hpp"
#include "mincut/bipartitioner.hpp"
#include "spectral/bipartitioner.hpp"

namespace mecoff::mec {

class Offloader {
 public:
  virtual ~Offloader() = default;

  /// Decide a placement for every function of every user.
  [[nodiscard]] virtual OffloadingScheme solve(const MecSystem& system) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

enum class CutBackend { kSpectral, kMaxFlow, kKernighanLin };

/// Degrade-don't-die budget for one solve() call. When the budget is
/// spent (or the eigensolver comes back below tolerance) the cut step
/// walks a fallback chain per sub-graph — spectral → Kernighan–Lin →
/// all-remote — so the solve ALWAYS returns a valid scheme: degraded
/// quality, never a hang, never UB. A zero budget is already expired
/// and degrades every sub-graph straight to the terminal all-remote
/// fallback (the greedy still runs, so whole components may yet be
/// pulled local).
///
/// The deadline is checked between sub-graph cuts; a single cut is
/// itself bounded by the eigensolver/KL iteration caps, so the overrun
/// past the budget is one bounded cut, not unbounded.
struct SolveDeadline {
  /// Wall-clock budget in seconds; negative = unlimited.
  double seconds = -1.0;

  [[nodiscard]] bool unlimited() const { return seconds < 0.0; }
};

struct PipelineOptions {
  lpa::PropagationConfig propagation;
  CutBackend backend = CutBackend::kSpectral;
  spectral::SpectralOptions spectral;
  mincut::MaxFlowCutOptions maxflow;
  kl::KlOptions kl;
  GreedyOptions greedy;
  /// Execution engine: the per-user solve stage (compression + cut)
  /// fans out one task per distinct user, and each of those reuses the
  /// same pool for component compression and the spectral SpMV (the
  /// pool is reentrant). null = fully serial (Fig. 9's "without Spark"
  /// configuration). Schemes are bit-identical either way.
  parallel::ThreadPool* pool = nullptr;
  /// When > 0, users i and i mod period carry IDENTICAL graphs (the
  /// make_uniform_system layout): compression and cuts run once per
  /// distinct graph and parts are replicated, which is how the
  /// multi-user experiments scale to thousands of users. 0 disables.
  std::size_t identical_user_period = 0;
  /// Algorithm 2 initialization (the paper's "Insert(V2', V1)"): when
  /// true, each component may start with one cut side anchored to the
  /// device, chosen by myopic cost; when false, every part starts
  /// remote (the literal all-V2 start). Ablated in
  /// bench_ablation_initialization.
  bool anchor_initial_parts = true;
  /// Solve budget; see SolveDeadline. NOTE: a wall-clock deadline makes
  /// the scheme depend on machine speed — bit-identical replays need it
  /// unlimited (the default) or zero (deterministically expired).
  SolveDeadline deadline;
  /// Retain each distinct user's per-component Fiedler vectors in
  /// last_artifacts() after solve() — the payload a caller stores to
  /// warm the next solve of a perturbed system. Off by default: the
  /// vectors cost O(total compressed nodes) memory per solve.
  bool collect_fiedler_vectors = false;
};

class PipelineOffloader final : public Offloader {
 public:
  explicit PipelineOffloader(PipelineOptions options = {});

  [[nodiscard]] OffloadingScheme solve(const MecSystem& system) override;

  /// Inputs for an incremental re-solve: artifacts of a previous solve
  /// of a NEARBY system (same users and topology, perturbed weights or
  /// channel). Every field is advisory — a missing, empty, or
  /// wrong-shaped entry simply solves that piece cold, counted in
  /// SolveStats; warm never changes what is a valid answer, only how
  /// fast one is reached and which local optimum the greedy lands in.
  struct WarmStart {
    /// Previous placement. When it matches the system's shape, the
    /// greedy additionally starts from this placement's projection
    /// onto the new parts and the better of (warm-start, cold-start)
    /// final objectives wins — ties go to cold, so an unperturbed
    /// re-solve returns a byte-identical scheme.
    OffloadingScheme scheme;
    /// fiedler_vectors[u][c]: distinct user u's compressed component
    /// c's Fiedler vector from the previous solve; seeds Lanczos when
    /// the dimension still matches (compression can reshape under
    /// perturbation — mismatches are rejected, not UB).
    std::vector<std::vector<linalg::Vec>> fiedler_vectors;
  };

  /// Warm-start overload; `warm == nullptr` is bit-identical to the
  /// plain solve().
  [[nodiscard]] OffloadingScheme solve(const MecSystem& system,
                                       const WarmStart* warm);

  [[nodiscard]] std::string name() const override;

  /// What a warm re-solve consumes, retained from the last solve() when
  /// PipelineOptions::collect_fiedler_vectors is set (empty otherwise).
  struct SolveArtifacts {
    /// fiedler_vectors[u][c] per DISTINCT user; empty Vec where the
    /// component was degenerate, disconnected, or never cut.
    std::vector<std::vector<linalg::Vec>> fiedler_vectors;
  };
  [[nodiscard]] const SolveArtifacts& last_artifacts() const {
    return artifacts_;
  }

  struct SolveStats {
    lpa::CompressionStats compression;  ///< aggregate over ALL users,
                                        ///< replicated users included
    std::size_t num_parts = 0;
    std::size_t greedy_moves = 0;
    double final_objective = 0.0;
    /// Per-stage wall clock of the last solve(). `compress_seconds` and
    /// `cut_seconds` are summed over the per-user tasks (CPU-seconds:
    /// with a pool they may exceed the solve's wall clock); the greedy
    /// is a single global pass, so `greedy_seconds` and `total_seconds`
    /// are plain wall clock.
    double compress_seconds = 0.0;
    double cut_seconds = 0.0;
    double greedy_seconds = 0.0;
    double total_seconds = 0.0;
    /// Degrade-don't-die diagnostics, counted over DISTINCT users (the
    /// solver work actually performed — replicas reuse their
    /// prototype's cuts). The fallback chain per sub-graph is
    /// spectral → Kernighan–Lin → all-remote.
    std::size_t spectral_nonconverged = 0;  ///< Fiedler below tolerance
    std::size_t fallback_kl_cuts = 0;       ///< sub-graphs recut with KL
    std::size_t fallback_all_remote = 0;    ///< sub-graphs never cut
    bool deadline_expired = false;
    /// Warm-start diagnostics (all zero/false on cold solves). Rejected
    /// vectors are NOT degradation — the component just solved cold.
    bool warm_start_used = false;
    std::size_t warm_fiedler_seeded = 0;    ///< components seeded warm
    std::size_t warm_fiedler_rejected = 0;  ///< dimension-mismatch hints
    bool warm_greedy_won = false;  ///< projected start beat cold start

    /// Any degraded cut in the last solve()?
    [[nodiscard]] bool degraded() const {
      return spectral_nonconverged > 0 || fallback_kl_cuts > 0 ||
             fallback_all_remote > 0;
    }
  };
  /// Diagnostics from the most recent solve().
  [[nodiscard]] const SolveStats& last_stats() const { return stats_; }

 private:
  [[nodiscard]] std::unique_ptr<graph::Bipartitioner> make_cutter() const;

  PipelineOptions options_;
  SolveStats stats_;
  SolveArtifacts artifacts_;
};

/// Everything on the device.
class AllLocalOffloader final : public Offloader {
 public:
  [[nodiscard]] OffloadingScheme solve(const MecSystem& system) override {
    return OffloadingScheme::all_local(system);
  }
  [[nodiscard]] std::string name() const override { return "all_local"; }
};

/// Everything offloadable on the server.
class AllRemoteOffloader final : public Offloader {
 public:
  [[nodiscard]] OffloadingScheme solve(const MecSystem& system) override {
    return OffloadingScheme::all_remote(system);
  }
  [[nodiscard]] std::string name() const override { return "all_remote"; }
};

/// Independent coin flip per offloadable function — the sanity floor
/// any structured method must beat.
class RandomOffloader final : public Offloader {
 public:
  explicit RandomOffloader(double remote_probability = 0.5,
                           std::uint64_t seed = 0xc01);
  [[nodiscard]] OffloadingScheme solve(const MecSystem& system) override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  double remote_probability_;
  std::uint64_t seed_;
};

}  // namespace mecoff::mec
