#include "mec/profiles.hpp"

namespace mecoff::mec {

SystemParams wifi_campus_profile() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 5.0;    // Wi-Fi radio is relatively cheap
  p.bandwidth = 40.0;        // fat link
  p.mobile_capacity = 5.0;
  p.server_capacity = 80.0;  // modest shared box
  p.contention_factor = 0.02;
  return p;
}

SystemParams lte_smallcell_profile() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 16.0;   // cellular uplink burns
  p.bandwidth = 12.0;
  p.mobile_capacity = 5.0;
  p.server_capacity = 120.0;
  p.contention_factor = 0.03;
  return p;
}

SystemParams mmwave_hotspot_profile() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 10.0;
  p.bandwidth = 120.0;        // mmWave burst rate
  p.mobile_capacity = 5.0;
  p.server_capacity = 400.0;  // MEC rack behind the hotspot
  p.contention_factor = 0.01;
  return p;
}

SystemParams congested_venue_profile() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 20.0;   // contention-driven retransmissions
  p.bandwidth = 6.0;
  p.mobile_capacity = 5.0;
  p.server_capacity = 40.0;  // everyone hammers one box
  p.contention_factor = 0.08;
  return p;
}

const std::vector<NamedProfile>& all_profiles() {
  static const std::vector<NamedProfile> kProfiles{
      {"wifi_campus", wifi_campus_profile()},
      {"lte_smallcell", lte_smallcell_profile()},
      {"mmwave_hotspot", mmwave_hotspot_profile()},
      {"congested_venue", congested_venue_profile()},
  };
  return kProfiles;
}

bool find_profile(const std::string& name, SystemParams& out) {
  for (const NamedProfile& profile : all_profiles()) {
    if (profile.name == name) {
      out = profile.params;
      return true;
    }
  }
  return false;
}

}  // namespace mecoff::mec
