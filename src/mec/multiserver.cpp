#include "mec/multiserver.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"

namespace mecoff::mec {

namespace {

/// SystemParams for one server group: device fields from the system,
/// server/link fields from the spec, the link optionally derated by the
/// failover layer's health factor.
SystemParams group_params(const MultiServerSystem& system,
                          std::size_t server,
                          const ServerHealth* health = nullptr) {
  SystemParams p = system.device;
  const ServerSpec& spec = system.servers[server];
  p.server_capacity = spec.capacity;
  p.bandwidth = spec.bandwidth;
  p.transmit_power = spec.transmit_power;
  if (health != nullptr) p.bandwidth *= health->bandwidth_factor;
  return p;
}

/// The single-server subsystem of all users attached to `server`.
/// `active` (when given) excludes disconnected users.
MecSystem subsystem_for(const MultiServerSystem& system,
                        const std::vector<std::size_t>& server_of_user,
                        std::size_t server,
                        std::vector<std::size_t>& member_users,
                        const ServerHealth* health = nullptr,
                        const std::vector<bool>* active = nullptr) {
  MecSystem sub;
  sub.params = group_params(system, server, health);
  member_users.clear();
  for (std::size_t u = 0; u < system.users.size(); ++u) {
    if (server_of_user[u] != server) continue;
    if (active != nullptr && !(*active)[u]) continue;
    member_users.push_back(u);
    sub.users.push_back(system.users[u]);
  }
  return sub;
}

/// Solve one group and scatter its placements into the global scheme.
/// Returns the group's cost.
SystemCost solve_group(const MultiServerSystem& system,
                       const MultiServerOptions& options,
                       const std::vector<std::size_t>& server_of_user,
                       std::size_t server, OffloadingScheme& scheme,
                       const ServerHealth* health = nullptr,
                       const std::vector<bool>* active = nullptr) {
  std::vector<std::size_t> members;
  const MecSystem sub = subsystem_for(system, server_of_user, server,
                                      members, health, active);
  if (sub.users.empty()) return SystemCost{};
  PipelineOffloader offloader(options.pipeline);
  const OffloadingScheme local_scheme = offloader.solve(sub);
  for (std::size_t i = 0; i < members.size(); ++i)
    scheme.placement[members[i]] = local_scheme.placement[i];
  return evaluate(sub, local_scheme);
}

}  // namespace

bool MultiServerSystem::valid() const {
  if (servers.empty()) return false;
  for (const ServerSpec& s : servers)
    if (s.capacity <= 0.0 || s.bandwidth <= 0.0 || s.transmit_power <= 0.0)
      return false;
  MecSystem probe;
  probe.params = device;
  probe.params.server_capacity = servers.front().capacity;
  probe.params.bandwidth = servers.front().bandwidth;
  probe.params.transmit_power = servers.front().transmit_power;
  probe.users = users;
  return probe.valid();
}

MultiServerOffloader::MultiServerOffloader(MultiServerOptions options)
    : options_(std::move(options)) {}

MultiServerResult MultiServerOffloader::solve(
    const MultiServerSystem& system) {
  MECOFF_EXPECTS(system.valid());
  const std::size_t num_servers = system.servers.size();
  const std::size_t num_users = system.users.size();

  MultiServerResult result;
  result.server_of_user.assign(num_users, 0);

  // Initial attachment: heaviest users first onto the server with the
  // lowest load-to-capacity ratio (classic LPT balancing, capacity
  // weighted).
  std::vector<std::size_t> order(num_users);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> user_weight(num_users, 0.0);
  for (std::size_t u = 0; u < num_users; ++u)
    user_weight[u] = system.users[u].graph.total_node_weight();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return user_weight[a] > user_weight[b];
  });
  std::vector<double> assigned(num_servers, 0.0);
  for (const std::size_t u : order) {
    std::size_t best = 0;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < num_servers; ++s) {
      const double ratio =
          (assigned[s] + user_weight[u]) / system.servers[s].capacity;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = s;
      }
    }
    result.server_of_user[u] = best;
    assigned[best] += user_weight[u];
  }

  // Solve every group.
  result.scheme.placement.resize(num_users);
  std::vector<SystemCost> group_cost(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s)
    group_cost[s] = solve_group(system, options_, result.server_of_user, s,
                                result.scheme);

  // Rebalance: try re-attaching each user to every other server; accept
  // the move if re-solving the two affected groups lowers the combined
  // objective. One accepted move per user per round.
  for (std::size_t round = 0; round < options_.rebalance_rounds; ++round) {
    bool any_move = false;
    for (std::size_t u = 0; u < num_users; ++u) {
      const std::size_t from = result.server_of_user[u];
      for (std::size_t to = 0; to < num_servers; ++to) {
        if (to == from) continue;
        const double before =
            group_cost[from].objective() + group_cost[to].objective();

        std::vector<std::size_t> trial = result.server_of_user;
        trial[u] = to;
        OffloadingScheme trial_scheme = result.scheme;
        const SystemCost cost_from =
            solve_group(system, options_, trial, from, trial_scheme);
        const SystemCost cost_to =
            solve_group(system, options_, trial, to, trial_scheme);
        if (cost_from.objective() + cost_to.objective() <
            before - 1e-9) {
          result.server_of_user = std::move(trial);
          result.scheme = std::move(trial_scheme);
          group_cost[from] = cost_from;
          group_cost[to] = cost_to;
          ++result.rebalance_moves;
          any_move = true;
          break;  // next user
        }
      }
    }
    if (!any_move) break;
  }

  // Totals and loads.
  result.server_load.assign(num_servers, 0.0);
  for (std::size_t s = 0; s < num_servers; ++s) {
    result.total_energy += group_cost[s].total_energy;
    result.total_time += group_cost[s].total_time;
  }
  for (std::size_t u = 0; u < num_users; ++u) {
    const UserApp& user = system.users[u];
    for (graph::NodeId v = 0; v < user.graph.num_nodes(); ++v)
      if (result.scheme.placement[u][v] == Placement::kRemote)
        result.server_load[result.server_of_user[u]] +=
            user.graph.node_weight(v);
  }
  return result;
}

// ---------------------------------------------------------------------------
// FailoverController

FailoverController::FailoverController(MultiServerSystem system,
                                       FailoverOptions options)
    : system_(std::move(system)), options_(std::move(options)) {
  MECOFF_EXPECTS(system_.valid());
  MECOFF_EXPECTS(options_.hysteresis_margin >= 0.0);
  health_.assign(system_.servers.size(), ServerHealth{});
  active_.assign(system_.users.size(), true);
  current_ = MultiServerOffloader(options_.base).solve(system_);
  group_cost_.resize(system_.servers.size());
  for (std::size_t s = 0; s < system_.servers.size(); ++s)
    group_cost_[s] = eval_group(s, current_.scheme);
  refresh_totals();
}

std::size_t FailoverController::alive_servers() const {
  std::size_t count = 0;
  for (const ServerHealth& h : health_)
    if (h.alive) ++count;
  return count;
}

std::size_t FailoverController::active_users() const {
  std::size_t count = 0;
  for (const bool a : active_)
    if (a) ++count;
  return count;
}

bool FailoverController::user_active(std::size_t user) const {
  MECOFF_EXPECTS(user < active_.size());
  return active_[user];
}

double FailoverController::objective() const {
  double total = 0.0;
  for (const SystemCost& cost : group_cost_) total += cost.objective();
  return total;
}

std::vector<double> FailoverController::attached_weight() const {
  std::vector<double> load(system_.servers.size(), 0.0);
  for (std::size_t u = 0; u < system_.users.size(); ++u)
    if (active_[u])
      load[current_.server_of_user[u]] +=
          system_.users[u].graph.total_node_weight();
  return load;
}

std::size_t FailoverController::attach_target(
    double weight, const std::vector<double>& load) const {
  std::size_t best = SIZE_MAX;
  double best_ratio = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < system_.servers.size(); ++s) {
    if (!health_[s].alive) continue;
    const double ratio = (load[s] + weight) / system_.servers[s].capacity;
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best = s;
    }
  }
  MECOFF_ENSURES(best != SIZE_MAX);  // caller checked a survivor exists
  return best;
}

SystemCost FailoverController::eval_group(
    std::size_t server, const OffloadingScheme& scheme) const {
  std::vector<std::size_t> members;
  const MecSystem sub = subsystem_for(system_, current_.server_of_user,
                                      server, members, &health_[server],
                                      &active_);
  if (sub.users.empty()) return SystemCost{};
  OffloadingScheme group_scheme;
  for (const std::size_t u : members)
    group_scheme.placement.push_back(scheme.placement[u]);
  return evaluate(sub, group_scheme);
}

SystemCost FailoverController::resolve_group(std::size_t server,
                                             OffloadingScheme& scheme) const {
  MECOFF_TRACE_SPAN_ARG("mec.failover.resolve_group", server);
  MECOFF_COUNTER_ADD("mec.failover.group_resolves", 1);
#ifndef MECOFF_OBS_DISABLED
  // Tag the next flight-recorder record: this solve happened because the
  // failover layer had to re-place a group, not on the steady-state path.
  obs::FlightRecorder::global().note_failover_event();
#endif
  return solve_group(system_, options_.base, current_.server_of_user, server,
                     scheme, &health_[server], &active_);
}

void FailoverController::refresh_totals() {
  current_.total_energy = 0.0;
  current_.total_time = 0.0;
  for (const SystemCost& cost : group_cost_) {
    current_.total_energy += cost.total_energy;
    current_.total_time += cost.total_time;
  }
  current_.server_load.assign(system_.servers.size(), 0.0);
  for (std::size_t u = 0; u < system_.users.size(); ++u) {
    if (!active_[u]) continue;
    const UserApp& user = system_.users[u];
    for (graph::NodeId v = 0; v < user.graph.num_nodes(); ++v)
      if (current_.scheme.placement[u][v] == Placement::kRemote)
        current_.server_load[current_.server_of_user[u]] +=
            user.graph.node_weight(v);
  }
}

void FailoverController::enter_all_local() {
  MECOFF_COUNTER_ADD("mec.failover.all_local_entered", 1);
#ifndef MECOFF_OBS_DISABLED
  obs::FlightRecorder::global().note_failover_event();
#endif
  all_local_ = true;
  for (std::size_t u = 0; u < system_.users.size(); ++u)
    current_.scheme.placement[u].assign(
        system_.users[u].graph.num_nodes(), Placement::kLocal);
  // All-local cost has no server/link term, so the nominal (dead)
  // specs still parameterize a valid evaluation.
  for (std::size_t s = 0; s < system_.servers.size(); ++s)
    group_cost_[s] = eval_group(s, current_.scheme);
  refresh_totals();
}

Result<FailoverStep> FailoverController::on_server_failed(
    std::size_t server) {
  if (server >= system_.servers.size())
    return Error("no such server " + std::to_string(server));
  if (!health_[server].alive)
    return Error("server " + std::to_string(server) + " is already down");

  MECOFF_TRACE_SPAN_ARG("mec.failover.server_failed", server);
  MECOFF_COUNTER_ADD("mec.failover.server_crashes", 1);
  FailoverStep step;
  step.objective_before = objective();
  health_[server].alive = false;
  health_[server].bandwidth_factor = 1.0;

  if (all_local_) {  // already degraded; nothing left to move
    step.all_local_fallback = true;
    step.objective_after = step.objective_before;
    return step;
  }

  // Orphans re-attach heaviest-first (deterministic id tie-break), the
  // same capacity-weighted rule as the initial assignment.
  std::vector<std::size_t> orphans;
  for (std::size_t u = 0; u < system_.users.size(); ++u)
    if (active_[u] && current_.server_of_user[u] == server)
      orphans.push_back(u);

  if (alive_servers() == 0) {
    enter_all_local();
    return Error("server " + std::to_string(server) +
                 " failed with no survivors; degraded to all-local");
  }

  std::sort(orphans.begin(), orphans.end(),
            [&](std::size_t a, std::size_t b) {
              const double wa = system_.users[a].graph.total_node_weight();
              const double wb = system_.users[b].graph.total_node_weight();
              return wa != wb ? wa > wb : a < b;
            });
  std::vector<double> load = attached_weight();
  load[server] = 0.0;
  std::vector<bool> touched(system_.servers.size(), false);
  for (const std::size_t u : orphans) {
    const double w = system_.users[u].graph.total_node_weight();
    const std::size_t target = attach_target(w, load);
    current_.server_of_user[u] = target;
    load[target] += w;
    touched[target] = true;
    step.moved_users.push_back(u);
  }

  // Re-solve every receiving group; the dead group costs nothing.
  group_cost_[server] = SystemCost{};
  for (std::size_t s = 0; s < system_.servers.size(); ++s) {
    if (!touched[s]) continue;
    group_cost_[s] = resolve_group(s, current_.scheme);
    step.resolved_groups.push_back(s);
  }
  refresh_totals();
  step.objective_after = objective();
  return step;
}

Result<FailoverStep> FailoverController::on_server_recovered(
    std::size_t server) {
  if (server >= system_.servers.size())
    return Error("no such server " + std::to_string(server));
  if (health_[server].alive)
    return Error("server " + std::to_string(server) + " is already up");

  MECOFF_TRACE_SPAN_ARG("mec.failover.server_recovered", server);
  MECOFF_COUNTER_ADD("mec.failover.server_recoveries", 1);
  FailoverStep step;
  step.objective_before = objective();
  health_[server] = ServerHealth{};  // alive, fresh link

  if (all_local_) {
    // Leaving the fallback always re-places: all-local was forced, not
    // chosen, so hysteresis does not apply.
    all_local_ = false;
    std::vector<double> load(system_.servers.size(), 0.0);
    std::vector<std::size_t> order;
    for (std::size_t u = 0; u < system_.users.size(); ++u)
      if (active_[u]) order.push_back(u);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const double wa = system_.users[a].graph.total_node_weight();
                const double wb = system_.users[b].graph.total_node_weight();
                return wa != wb ? wa > wb : a < b;
              });
    for (const std::size_t u : order) {
      const double w = system_.users[u].graph.total_node_weight();
      const std::size_t target = attach_target(w, load);
      if (current_.server_of_user[u] != target) step.moved_users.push_back(u);
      current_.server_of_user[u] = target;
      load[target] += w;
    }
    for (std::size_t s = 0; s < system_.servers.size(); ++s) {
      if (!health_[s].alive) continue;
      group_cost_[s] = resolve_group(s, current_.scheme);
      step.resolved_groups.push_back(s);
    }
    refresh_totals();
    step.objective_after = objective();
    return step;
  }

  // Propose a fresh capacity-weighted attachment over the enlarged
  // server set; adopt only past the hysteresis margin so a flapping
  // server cannot thrash placements.
  std::vector<std::size_t> trial_attach = current_.server_of_user;
  std::vector<double> load(system_.servers.size(), 0.0);
  std::vector<std::size_t> order;
  for (std::size_t u = 0; u < system_.users.size(); ++u)
    if (active_[u]) order.push_back(u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              const double wa = system_.users[a].graph.total_node_weight();
              const double wb = system_.users[b].graph.total_node_weight();
              return wa != wb ? wa > wb : a < b;
            });
  std::vector<bool> touched(system_.servers.size(), false);
  bool any_move = false;
  for (const std::size_t u : order) {
    const double w = system_.users[u].graph.total_node_weight();
    const std::size_t target = attach_target(w, load);
    if (target != trial_attach[u]) {
      touched[target] = true;
      touched[trial_attach[u]] = true;
      any_move = true;
    }
    trial_attach[u] = target;
    load[target] += w;
  }
  if (!any_move) {
    step.objective_after = step.objective_before;
    return step;
  }

  std::vector<std::size_t> saved_attach = current_.server_of_user;
  current_.server_of_user = trial_attach;
  OffloadingScheme trial_scheme = current_.scheme;
  std::vector<SystemCost> trial_cost = group_cost_;
  double trial_total = 0.0;
  for (std::size_t s = 0; s < system_.servers.size(); ++s) {
    if (touched[s] && health_[s].alive)
      trial_cost[s] = solve_group(system_, options_.base, trial_attach, s,
                                  trial_scheme, &health_[s], &active_);
    trial_total += trial_cost[s].objective();
  }
  const double before = step.objective_before;
  if (before - trial_total > options_.hysteresis_margin * before) {
    for (std::size_t u = 0; u < system_.users.size(); ++u)
      if (active_[u] && saved_attach[u] != trial_attach[u])
        step.moved_users.push_back(u);
    for (std::size_t s = 0; s < system_.servers.size(); ++s)
      if (touched[s] && health_[s].alive) step.resolved_groups.push_back(s);
    current_.scheme = std::move(trial_scheme);
    group_cost_ = std::move(trial_cost);
    refresh_totals();
    step.objective_after = objective();
  } else {
    current_.server_of_user = std::move(saved_attach);
    step.adopted = false;
    step.objective_after = step.objective_before;
    ++suppressed_;
  }
  return step;
}

Result<FailoverStep> FailoverController::set_link_factor(std::size_t server,
                                                         double factor) {
  if (server >= system_.servers.size())
    return Error("no such server " + std::to_string(server));
  if (!health_[server].alive)
    return Error("server " + std::to_string(server) +
                 " is down; no link to change");

  FailoverStep step;
  step.objective_before = objective();
  health_[server].bandwidth_factor = factor;
  if (all_local_) {  // no remote traffic to re-price
    step.objective_after = step.objective_before;
    return step;
  }

  // Costs shift with the link even if nobody moves: re-price the kept
  // placements, then adopt a re-solve only past the hysteresis margin.
  const SystemCost kept = eval_group(server, current_.scheme);
  OffloadingScheme trial_scheme = current_.scheme;
  const SystemCost resolved = resolve_group(server, trial_scheme);
  if (kept.objective() - resolved.objective() >
      options_.hysteresis_margin * kept.objective()) {
    current_.scheme = std::move(trial_scheme);
    group_cost_[server] = resolved;
    step.resolved_groups.push_back(server);
  } else {
    group_cost_[server] = kept;
    step.adopted = false;
    ++suppressed_;
  }
  refresh_totals();
  step.objective_after = objective();
  return step;
}

Result<FailoverStep> FailoverController::on_link_degraded(
    std::size_t server, double severity) {
  if (!(severity > 0.0 && severity < 1.0))
    return Error("link severity must be in (0, 1)");
  return set_link_factor(server, severity);
}

Result<FailoverStep> FailoverController::on_link_restored(
    std::size_t server) {
  return set_link_factor(server, 1.0);
}

Result<FailoverStep> FailoverController::on_user_disconnected(
    std::size_t user) {
  if (user >= system_.users.size())
    return Error("no such user " + std::to_string(user));
  if (!active_[user])
    return Error("user " + std::to_string(user) + " already disconnected");

  FailoverStep step;
  step.objective_before = objective();
  active_[user] = false;
  current_.scheme.placement[user].assign(
      system_.users[user].graph.num_nodes(), Placement::kLocal);
  const std::size_t home = current_.server_of_user[user];
  if (all_local_ || !health_[home].alive) {
    step.all_local_fallback = all_local_;
    for (std::size_t s = 0; s < system_.servers.size(); ++s)
      group_cost_[s] = eval_group(s, current_.scheme);
    refresh_totals();
    step.objective_after = objective();
    return step;
  }

  // Load left the group; keep the old placements unless a re-solve
  // strictly improves on them (no hysteresis: departures cannot flap).
  const SystemCost kept = eval_group(home, current_.scheme);
  OffloadingScheme trial_scheme = current_.scheme;
  const SystemCost resolved = resolve_group(home, trial_scheme);
  if (resolved.objective() < kept.objective()) {
    current_.scheme = std::move(trial_scheme);
    group_cost_[home] = resolved;
    step.resolved_groups.push_back(home);
  } else {
    group_cost_[home] = kept;
  }
  refresh_totals();
  step.objective_after = objective();
  return step;
}

SystemCost evaluate_server_group(const MultiServerSystem& system,
                                 const MultiServerResult& result,
                                 std::size_t server) {
  MECOFF_EXPECTS(server < system.servers.size());
  std::vector<std::size_t> members;
  MecSystem sub =
      subsystem_for(system, result.server_of_user, server, members);
  OffloadingScheme scheme;
  for (const std::size_t u : members)
    scheme.placement.push_back(result.scheme.placement[u]);
  if (sub.users.empty()) return SystemCost{};
  return evaluate(sub, scheme);
}

}  // namespace mecoff::mec
