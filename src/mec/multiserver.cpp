#include "mec/multiserver.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"

namespace mecoff::mec {

namespace {

/// SystemParams for one server group: device fields from the system,
/// server/link fields from the spec.
SystemParams group_params(const MultiServerSystem& system,
                          std::size_t server) {
  SystemParams p = system.device;
  const ServerSpec& spec = system.servers[server];
  p.server_capacity = spec.capacity;
  p.bandwidth = spec.bandwidth;
  p.transmit_power = spec.transmit_power;
  return p;
}

/// The single-server subsystem of all users attached to `server`.
MecSystem subsystem_for(const MultiServerSystem& system,
                        const std::vector<std::size_t>& server_of_user,
                        std::size_t server,
                        std::vector<std::size_t>& member_users) {
  MecSystem sub;
  sub.params = group_params(system, server);
  member_users.clear();
  for (std::size_t u = 0; u < system.users.size(); ++u) {
    if (server_of_user[u] != server) continue;
    member_users.push_back(u);
    sub.users.push_back(system.users[u]);
  }
  return sub;
}

/// Solve one group and scatter its placements into the global scheme.
/// Returns the group's cost.
SystemCost solve_group(const MultiServerSystem& system,
                       const MultiServerOptions& options,
                       const std::vector<std::size_t>& server_of_user,
                       std::size_t server, OffloadingScheme& scheme) {
  std::vector<std::size_t> members;
  const MecSystem sub = subsystem_for(system, server_of_user, server,
                                      members);
  if (sub.users.empty()) return SystemCost{};
  PipelineOffloader offloader(options.pipeline);
  const OffloadingScheme local_scheme = offloader.solve(sub);
  for (std::size_t i = 0; i < members.size(); ++i)
    scheme.placement[members[i]] = local_scheme.placement[i];
  return evaluate(sub, local_scheme);
}

}  // namespace

bool MultiServerSystem::valid() const {
  if (servers.empty()) return false;
  for (const ServerSpec& s : servers)
    if (s.capacity <= 0.0 || s.bandwidth <= 0.0 || s.transmit_power <= 0.0)
      return false;
  MecSystem probe;
  probe.params = device;
  probe.params.server_capacity = servers.front().capacity;
  probe.params.bandwidth = servers.front().bandwidth;
  probe.params.transmit_power = servers.front().transmit_power;
  probe.users = users;
  return probe.valid();
}

MultiServerOffloader::MultiServerOffloader(MultiServerOptions options)
    : options_(std::move(options)) {}

MultiServerResult MultiServerOffloader::solve(
    const MultiServerSystem& system) {
  MECOFF_EXPECTS(system.valid());
  const std::size_t num_servers = system.servers.size();
  const std::size_t num_users = system.users.size();

  MultiServerResult result;
  result.server_of_user.assign(num_users, 0);

  // Initial attachment: heaviest users first onto the server with the
  // lowest load-to-capacity ratio (classic LPT balancing, capacity
  // weighted).
  std::vector<std::size_t> order(num_users);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> user_weight(num_users, 0.0);
  for (std::size_t u = 0; u < num_users; ++u)
    user_weight[u] = system.users[u].graph.total_node_weight();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return user_weight[a] > user_weight[b];
  });
  std::vector<double> assigned(num_servers, 0.0);
  for (const std::size_t u : order) {
    std::size_t best = 0;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < num_servers; ++s) {
      const double ratio =
          (assigned[s] + user_weight[u]) / system.servers[s].capacity;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = s;
      }
    }
    result.server_of_user[u] = best;
    assigned[best] += user_weight[u];
  }

  // Solve every group.
  result.scheme.placement.resize(num_users);
  std::vector<SystemCost> group_cost(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s)
    group_cost[s] = solve_group(system, options_, result.server_of_user, s,
                                result.scheme);

  // Rebalance: try re-attaching each user to every other server; accept
  // the move if re-solving the two affected groups lowers the combined
  // objective. One accepted move per user per round.
  for (std::size_t round = 0; round < options_.rebalance_rounds; ++round) {
    bool any_move = false;
    for (std::size_t u = 0; u < num_users; ++u) {
      const std::size_t from = result.server_of_user[u];
      for (std::size_t to = 0; to < num_servers; ++to) {
        if (to == from) continue;
        const double before =
            group_cost[from].objective() + group_cost[to].objective();

        std::vector<std::size_t> trial = result.server_of_user;
        trial[u] = to;
        OffloadingScheme trial_scheme = result.scheme;
        const SystemCost cost_from =
            solve_group(system, options_, trial, from, trial_scheme);
        const SystemCost cost_to =
            solve_group(system, options_, trial, to, trial_scheme);
        if (cost_from.objective() + cost_to.objective() <
            before - 1e-9) {
          result.server_of_user = std::move(trial);
          result.scheme = std::move(trial_scheme);
          group_cost[from] = cost_from;
          group_cost[to] = cost_to;
          ++result.rebalance_moves;
          any_move = true;
          break;  // next user
        }
      }
    }
    if (!any_move) break;
  }

  // Totals and loads.
  result.server_load.assign(num_servers, 0.0);
  for (std::size_t s = 0; s < num_servers; ++s) {
    result.total_energy += group_cost[s].total_energy;
    result.total_time += group_cost[s].total_time;
  }
  for (std::size_t u = 0; u < num_users; ++u) {
    const UserApp& user = system.users[u];
    for (graph::NodeId v = 0; v < user.graph.num_nodes(); ++v)
      if (result.scheme.placement[u][v] == Placement::kRemote)
        result.server_load[result.server_of_user[u]] +=
            user.graph.node_weight(v);
  }
  return result;
}

SystemCost evaluate_server_group(const MultiServerSystem& system,
                                 const MultiServerResult& result,
                                 std::size_t server) {
  MECOFF_EXPECTS(server < system.servers.size());
  std::vector<std::size_t> members;
  MecSystem sub =
      subsystem_for(system, result.server_of_user, server, members);
  OffloadingScheme scheme;
  for (const std::size_t u : members)
    scheme.placement.push_back(result.scheme.placement[u]);
  if (sub.users.empty()) return SystemCost{};
  return evaluate(sub, scheme);
}

}  // namespace mecoff::mec
