#include "mec/greedy.hpp"

#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <queue>

#include "common/contracts.hpp"

namespace mecoff::mec {

namespace {

constexpr std::uint32_t kNoPart = UINT32_MAX;
constexpr double kImprovementEps = 1e-12;

/// Coupled server term of T for K active offloaders with total remote
/// weight S:
///   Σ t_s = Σ W_s^i / (I_S/K) = K·S/I_S
///   Σ w_t = Σ κ·S·W_s^i/I_S² = κ·S²/I_S²
double coupled_time(double total_remote, std::size_t active_users,
                    const SystemParams& p) {
  if (active_users == 0) return 0.0;
  const double k = static_cast<double>(active_users);
  const double linear = k * total_remote / p.server_capacity;
  const double congestion = p.contention_factor * total_remote *
                            total_remote /
                            (p.server_capacity * p.server_capacity);
  return linear + congestion;
}

}  // namespace

GreedyResult generate_scheme(const MecSystem& system,
                             const std::vector<Part>& parts,
                             const GreedyOptions& options) {
  MECOFF_EXPECTS(system.valid());
  const SystemParams& p = system.params;

  GreedyResult result;
  result.scheme = OffloadingScheme::all_local(system);

  // Scalarized objective factors: moving weight w to the device adds
  // local_factor·w; cross-weight x adds cross_factor·x; the coupled
  // server term (pure time) scales by time_weight.
  const double local_factor = (options.time_weight +
                               options.energy_weight * p.mobile_power) /
                              p.mobile_capacity;
  const double cross_factor = (options.time_weight +
                               options.energy_weight * p.transmit_power) /
                              p.bandwidth;

  // part_of[user][node] = index into `parts` (kNoPart for pinned nodes).
  std::vector<std::vector<std::uint32_t>> part_of(system.num_users());
  for (std::size_t u = 0; u < system.num_users(); ++u)
    part_of[u].assign(system.users[u].graph.num_nodes(), kNoPart);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Part& part = parts[i];
    MECOFF_EXPECTS(part.user < system.num_users());
    for (const graph::NodeId v : part.nodes) {
      MECOFF_EXPECTS(v < part_of[part.user].size());
      MECOFF_EXPECTS(part_of[part.user][v] == kNoPart);  // disjointness
      part_of[part.user][v] = static_cast<std::uint32_t>(i);
      result.scheme.placement[part.user][v] =
          part.initially_local ? Placement::kLocal : Placement::kRemote;
    }
  }

  // Composite-move groups (user-components). Dense group list from the
  // sparse Part::group ids.
  std::vector<std::vector<std::size_t>> group_members;
  if (options.enable_group_moves) {
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> dense;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].group == SIZE_MAX) continue;
      const auto key = std::make_pair(parts[i].user, parts[i].group);
      const auto [it, inserted] =
          dense.try_emplace(key, group_members.size());
      if (inserted) group_members.emplace_back();
      group_members[it->second].push_back(i);
    }
    // Singleton groups add nothing over their lone part.
    std::erase_if(group_members,
                  [](const std::vector<std::size_t>& m) {
                    return m.size() < 2;
                  });
  }

  // Per-user aggregates under the current placement.
  std::vector<double> user_local_w(system.num_users(), 0.0);
  std::vector<double> user_remote_w(system.num_users(), 0.0);
  std::vector<double> user_cross_w(system.num_users(), 0.0);
  double total_remote = 0.0;
  std::size_t active_users = 0;
  double separable = 0.0;  // Σ (t_c + e_c + t_t + e_t), scalarized

  for (std::size_t u = 0; u < system.num_users(); ++u) {
    const UserApp& user = system.users[u];
    for (graph::NodeId v = 0; v < user.graph.num_nodes(); ++v) {
      const double w = user.graph.node_weight(v);
      if (result.scheme.placement[u][v] == Placement::kLocal)
        user_local_w[u] += w;
      else
        user_remote_w[u] += w;
    }
    for (const graph::Edge& e : user.graph.edges())
      if (result.scheme.placement[u][e.u] != result.scheme.placement[u][e.v])
        user_cross_w[u] += e.weight;
    total_remote += user_remote_w[u];
    if (user_remote_w[u] > 0.0) ++active_users;
    separable += user_local_w[u] * local_factor +
                 user_cross_w[u] * cross_factor;
  }

  double objective =
      separable +
      options.time_weight * coupled_time(total_remote, active_users, p);
  result.objective_history.push_back(objective);

  std::vector<std::uint8_t> is_remote(parts.size(), 1);
  for (std::size_t i = 0; i < parts.size(); ++i)
    if (parts[i].initially_local) is_remote[i] = 0;

  // Δcross of moving the still-remote parts in `move` (all same user)
  // from remote to local under the CURRENT placement: edges to remote
  // outsiders become cross (+), edges to local outsiders stop being
  // cross (−); edges internal to the moving set never cross. Scratch
  // membership marks use an epoch stamp so the per-call cost is the
  // moving set's size, not the user's whole graph.
  std::vector<std::uint64_t> in_move_epoch;
  std::uint64_t move_epoch = 0;
  const auto cross_delta = [&](const std::vector<std::size_t>& move) {
    const std::size_t user_index = parts[move.front()].user;
    const UserApp& user = system.users[user_index];
    if (in_move_epoch.size() < user.graph.num_nodes())
      in_move_epoch.resize(user.graph.num_nodes(), 0);
    ++move_epoch;
    for (const std::size_t i : move)
      for (const graph::NodeId v : parts[i].nodes)
        in_move_epoch[v] = move_epoch;
    double delta = 0.0;
    for (const std::size_t i : move) {
      for (const graph::NodeId v : parts[i].nodes) {
        for (const graph::Adjacency& adj : user.graph.neighbors(v)) {
          if (in_move_epoch[adj.neighbor] == move_epoch) continue;
          delta += result.scheme.placement[user_index][adj.neighbor] ==
                           Placement::kRemote
                       ? adj.weight
                       : -adj.weight;
        }
      }
    }
    return delta;
  };

  // Candidate id space: [0, P) single parts, [P, P+G) group retreats.
  const std::size_t num_parts = parts.size();
  const std::size_t num_candidates = num_parts + group_members.size();

  std::vector<std::size_t> move_scratch;
  const auto candidate_moves =
      [&](std::size_t id) -> const std::vector<std::size_t>& {
    move_scratch.clear();
    if (id < num_parts) {
      if (is_remote[id] && !parts[id].frozen) move_scratch.push_back(id);
    } else {
      for (const std::size_t i : group_members[id - num_parts])
        if (is_remote[i] && !parts[i].frozen) move_scratch.push_back(i);
    }
    return move_scratch;
  };

  // Cached separable delta and moving weight per candidate; only a
  // commit by the SAME user can change them, so they are refreshed
  // exactly then. kInvalid marks exhausted candidates.
  constexpr double kInvalid = std::numeric_limits<double>::infinity();
  std::vector<double> cand_sep(num_candidates, kInvalid);
  std::vector<double> cand_weight(num_candidates, 0.0);
  std::vector<std::size_t> cand_user(num_candidates, 0);
  const auto refresh_candidate = [&](std::size_t id) {
    const std::vector<std::size_t>& move = candidate_moves(id);
    if (move.empty()) {
      cand_sep[id] = kInvalid;
      return;
    }
    double weight = 0.0;
    for (const std::size_t i : move) weight += parts[i].weight;
    cand_weight[id] = weight;
    cand_user[id] = parts[move.front()].user;
    cand_sep[id] =
        weight * local_factor + cross_delta(move) * cross_factor;
  };


  // Replica classes: candidates with identical (separable delta,
  // moving weight, deactivation flag) have identical objective deltas
  // under ANY global state, so they are interchangeable argmins. In
  // multi-user systems whose users cycle over a few prototype graphs,
  // thousands of candidates collapse into a handful of classes — and
  // collapsing them is what keeps the lazy queue from thrashing on
  // bitwise ties (cycling an entire tie class per commit, O(P²)).
  struct ClassKey {
    double sep;
    double weight;
    bool deactivates;
    auto operator<=>(const ClassKey&) const = default;
  };
  const auto key_of = [&](std::size_t id) {
    return ClassKey{cand_sep[id], cand_weight[id],
                    user_remote_w[cand_user[id]] - cand_weight[id] <=
                        kImprovementEps};
  };
  // Delta shared by every member of a class — O(1).
  const auto class_delta = [&](const ClassKey& key) {
    const double coupled_now =
        options.time_weight * coupled_time(total_remote, active_users, p);
    const double coupled_after =
        options.time_weight *
        coupled_time(total_remote - key.weight,
                     key.deactivates ? active_users - 1 : active_users, p);
    return key.sep + (coupled_after - coupled_now);
  };

  // One live queue entry per class keeps the lazy queue duplicate-free:
  // without this, every membership change pushes another entry and the
  // validate loop drowns in stale duplicates.
  struct ClassBucket {
    std::vector<std::size_t> ids;
    bool queued = false;
  };
  std::map<ClassKey, ClassBucket> classes;
  std::vector<ClassKey> cand_key(num_candidates);
  std::vector<std::size_t> cand_pos(num_candidates, SIZE_MAX);

  // Lazy best-first queue over CLASSES (CELF-style). Key monotonicity:
  // for a fixed (sep, weight, deactivates), the delta only INCREASES as
  // S and K shrink; members whose sep/deactivation change (same-user
  // commits only) are re-classed with a fresh queue entry. A popped
  // stale key is therefore a lower bound on the class's current delta,
  // so validating the head against the next stale key reproduces the
  // exact argmin scan of Algorithm 2 at O(log P) per evaluation.
  using QueueEntry = std::pair<double, ClassKey>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;

  const auto insert_candidate = [&](std::size_t id) {
    if (cand_sep[id] == kInvalid) return;
    const ClassKey key = key_of(id);
    cand_key[id] = key;
    ClassBucket& bucket = classes[key];
    cand_pos[id] = bucket.ids.size();
    bucket.ids.push_back(id);
    if (!bucket.queued) {
      bucket.queued = true;
      queue.emplace(class_delta(key), key);
    }
  };
  const auto remove_candidate = [&](std::size_t id) {
    if (cand_pos[id] == SIZE_MAX) return;
    const auto it = classes.find(cand_key[id]);
    std::vector<std::size_t>& ids = it->second.ids;
    const std::size_t last = ids.back();
    ids[cand_pos[id]] = last;
    cand_pos[last] = cand_pos[id];
    ids.pop_back();
    cand_pos[id] = SIZE_MAX;
    if (ids.empty()) classes.erase(it);  // a queued stale entry may
                                         // float; pops skip it safely
  };

  std::vector<std::vector<std::size_t>> candidates_of_user(
      system.num_users());
  for (std::size_t id = 0; id < num_candidates; ++id) {
    refresh_candidate(id);
    insert_candidate(id);
    const std::size_t user_index =
        id < num_parts ? parts[id].user
                       : parts[group_members[id - num_parts].front()].user;
    candidates_of_user[user_index].push_back(id);
  }

  // Greedy loop.
  while (result.moves < options.max_moves) {
    double best_delta = std::numeric_limits<double>::infinity();
    std::size_t best = SIZE_MAX;
    ClassKey best_key{};
    while (!queue.empty()) {
      const auto [stale_delta, key] = queue.top();
      queue.pop();
      const auto it = classes.find(key);
      if (it == classes.end()) continue;  // class dissolved
      const double fresh = class_delta(key);
      if (queue.empty() || fresh <= queue.top().first + 1e-15) {
        it->second.queued = false;  // its entry is consumed
        best = it->second.ids.back();  // members are interchangeable
        best_key = key;
        best_delta = fresh;
        break;
      }
      queue.emplace(fresh, key);  // single live entry, refreshed key
    }
    if (best == SIZE_MAX || best_delta >= -kImprovementEps) {
      // Leave consistent state for a hypothetical continuation.
      if (best != SIZE_MAX) {
        const auto it = classes.find(best_key);
        if (it != classes.end() && !it->second.queued) {
          it->second.queued = true;
          queue.emplace(best_delta, best_key);
        }
      }
      break;
    }

    // Commit: move every still-remote part of the candidate local.
    const std::vector<std::size_t> move = candidate_moves(best);
    MECOFF_ENSURES(!move.empty());
    const std::size_t user_index = parts[move.front()].user;
    const double dx = cross_delta(move);
    double weight = 0.0;
    for (const std::size_t i : move) {
      weight += parts[i].weight;
      for (const graph::NodeId v : parts[i].nodes)
        result.scheme.placement[user_index][v] = Placement::kLocal;
      is_remote[i] = 0;
    }
    user_local_w[user_index] += weight;
    user_remote_w[user_index] -= weight;
    if (user_remote_w[user_index] <= kImprovementEps) {
      user_remote_w[user_index] = 0.0;
      --active_users;
    }
    user_cross_w[user_index] += dx;
    total_remote -= weight;
    if (total_remote < 0.0) total_remote = 0.0;
    separable += weight * local_factor + dx * cross_factor;
    objective = separable + options.time_weight *
                                coupled_time(total_remote, active_users, p);
    result.objective_history.push_back(objective);
    ++result.moves;

    // This user's candidates changed (cross weights, remaining group
    // members, deactivation): re-class them with fresh queue entries so
    // the lazy queue's lower-bound invariant holds.
    for (const std::size_t id : candidates_of_user[user_index]) {
      remove_candidate(id);
      refresh_candidate(id);
      insert_candidate(id);
    }
    // The selected class consumed its queue entry; if it survived the
    // refresh with members left, give it a fresh one.
    if (const auto it = classes.find(best_key);
        it != classes.end() && !it->second.queued) {
      it->second.queued = true;
      queue.emplace(class_delta(best_key), best_key);
    }
  }

  return result;
}

}  // namespace mecoff::mec
