#include "mec/scheme.hpp"

namespace mecoff::mec {

OffloadingScheme OffloadingScheme::all_local(const MecSystem& system) {
  OffloadingScheme scheme;
  scheme.placement.reserve(system.users.size());
  for (const UserApp& user : system.users)
    scheme.placement.emplace_back(user.graph.num_nodes(), Placement::kLocal);
  return scheme;
}

OffloadingScheme OffloadingScheme::all_remote(const MecSystem& system) {
  OffloadingScheme scheme;
  scheme.placement.reserve(system.users.size());
  for (const UserApp& user : system.users) {
    std::vector<Placement> p(user.graph.num_nodes(), Placement::kRemote);
    if (!user.unoffloadable.empty())
      for (std::size_t v = 0; v < p.size(); ++v)
        if (user.unoffloadable[v]) p[v] = Placement::kLocal;
    scheme.placement.push_back(std::move(p));
  }
  return scheme;
}

bool OffloadingScheme::valid_for(const MecSystem& system) const {
  if (placement.size() != system.users.size()) return false;
  for (std::size_t u = 0; u < placement.size(); ++u) {
    const UserApp& user = system.users[u];
    if (placement[u].size() != user.graph.num_nodes()) return false;
    if (!user.unoffloadable.empty()) {
      for (std::size_t v = 0; v < placement[u].size(); ++v)
        if (user.unoffloadable[v] && placement[u][v] == Placement::kRemote)
          return false;
    }
  }
  return true;
}

std::size_t OffloadingScheme::remote_count(std::size_t user) const {
  std::size_t count = 0;
  for (const Placement p : placement[user])
    if (p == Placement::kRemote) ++count;
  return count;
}

}  // namespace mecoff::mec
