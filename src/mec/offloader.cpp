#include "mec/offloader.hpp"

#include <array>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mecoff::mec {

PipelineOffloader::PipelineOffloader(PipelineOptions options)
    : options_(std::move(options)) {}

std::string PipelineOffloader::name() const {
  switch (options_.backend) {
    case CutBackend::kSpectral: return "spectral";
    case CutBackend::kMaxFlow: return "maxflow";
    case CutBackend::kKernighanLin: return "kl";
  }
  return "unknown";
}

std::unique_ptr<graph::Bipartitioner> PipelineOffloader::make_cutter() const {
  switch (options_.backend) {
    case CutBackend::kSpectral: {
      spectral::SpectralOptions opts = options_.spectral;
      opts.fiedler.pool = options_.pool;
      return std::make_unique<spectral::SpectralBipartitioner>(opts);
    }
    case CutBackend::kMaxFlow:
      return std::make_unique<mincut::MaxFlowBipartitioner>(options_.maxflow);
    case CutBackend::kKernighanLin:
      return std::make_unique<kl::KernighanLinBipartitioner>(options_.kl);
  }
  throw PreconditionError("unknown cut backend");
}

OffloadingScheme PipelineOffloader::solve(const MecSystem& system) {
  MECOFF_EXPECTS(system.valid());
  stats_ = SolveStats{};

  const std::unique_ptr<graph::Bipartitioner> cutter = make_cutter();

  // Parts for one user, computed from scratch.
  const auto parts_for_user = [&](std::size_t u) {
    const UserApp& user = system.users[u];
    const std::vector<bool> mask =
        user.unoffloadable.empty()
            ? std::vector<bool>(user.graph.num_nodes(), false)
            : user.unoffloadable;
    const lpa::CompressionPipelineResult pipeline = lpa::compress_application(
        user.graph, mask, options_.propagation, options_.pool,
        user.components.empty() ? nullptr : &user.components);

    const lpa::CompressionStats agg = pipeline.aggregate_stats();
    stats_.compression.original_nodes += agg.original_nodes;
    stats_.compression.original_edges += agg.original_edges;
    stats_.compression.compressed_nodes += agg.compressed_nodes;
    stats_.compression.compressed_edges += agg.compressed_edges;
    stats_.compression.absorbed_edge_weight += agg.absorbed_edge_weight;

    std::vector<Part> parts;
    for (std::size_t c = 0; c < pipeline.components.size(); ++c) {
      const lpa::CompressedComponent& comp = pipeline.components[c];
      const graph::Bipartition cut =
          cutter->bipartition(comp.compression.compressed);

      // One part per non-empty cut side, in ORIGINAL node ids.
      std::array<Part, 2> sides;
      std::array<double, 2> pinned_boundary{0.0, 0.0};
      for (std::uint8_t side = 0; side <= 1; ++side) {
        Part& part = sides[side];
        part.user = u;
        part.group = c;  // enables the whole-component retreat move
        for (graph::NodeId super = 0;
             super < comp.compression.compressed.num_nodes(); ++super) {
          if (cut.side[super] != side) continue;
          for (const graph::NodeId orig :
               pipeline.original_members(c, super)) {
            part.nodes.push_back(orig);
            part.weight += user.graph.node_weight(orig);
            // Data exchanged with pinned (device-anchored) functions.
            for (const graph::Adjacency& adj : user.graph.neighbors(orig))
              if (mask[adj.neighbor]) pinned_boundary[side] += adj.weight;
          }
        }
      }
      // Algorithm 2 initialization ("Insert(V2', V1)"): choose this
      // component's starting configuration — both sides remote, or one
      // side anchored to the device — by myopic cost under the same
      // scalarization the greedy uses. Anchoring a side pays its local
      // compute but moves its pinned-boundary traffic off the network
      // (and exposes the cut); starting fully remote keeps the greedy
      // free to pull either side later.
      if (options_.anchor_initial_parts) {
        const SystemParams& params = system.params;
        const double lf = (options_.greedy.time_weight +
                           options_.greedy.energy_weight *
                               params.mobile_power) /
                          params.mobile_capacity;
        const double cf = (options_.greedy.time_weight +
                           options_.greedy.energy_weight *
                               params.transmit_power) /
                          params.bandwidth;
        // Marginal server cost per remote unit, at the optimistic
        // single-offloader, low-load corner (the greedy corrects for
        // real load afterwards — it can only pull work local, so the
        // initializer must not over-commit to the device).
        const double mc =
            options_.greedy.time_weight / params.server_capacity;
        const double wa = sides[0].weight;
        const double wb = sides[1].weight;
        const double pba = pinned_boundary[0];
        const double pbb = pinned_boundary[1];
        const double cost_rr = cf * (pba + pbb) + mc * (wa + wb);
        const double cost_a =
            lf * wa + cf * (pbb + cut.cut_weight) + mc * wb;
        const double cost_b =
            lf * wb + cf * (pba + cut.cut_weight) + mc * wa;
        if (cost_a < cost_rr && cost_a <= cost_b && !sides[0].nodes.empty())
          sides[0].initially_local = true;
        else if (cost_b < cost_rr && !sides[1].nodes.empty())
          sides[1].initially_local = true;
      }
      for (Part& part : sides)
        if (!part.nodes.empty()) parts.push_back(std::move(part));
    }
    return parts;
  };

  std::vector<Part> all_parts;
  const std::size_t period = options_.identical_user_period;
  std::vector<std::vector<Part>> prototypes;
  for (std::size_t u = 0; u < system.num_users(); ++u) {
    if (period > 0 && u >= period) {
      // Identical graph to user u % period: replicate its parts.
      for (Part part : prototypes[u % period]) {
        part.user = u;
        all_parts.push_back(std::move(part));
      }
      continue;
    }
    std::vector<Part> parts = parts_for_user(u);
    if (period > 0) prototypes.push_back(parts);
    for (Part& part : parts) all_parts.push_back(std::move(part));
  }

  stats_.num_parts = all_parts.size();
  const GreedyResult greedy =
      generate_scheme(system, all_parts, options_.greedy);
  stats_.greedy_moves = greedy.moves;
  stats_.final_objective = greedy.objective_history.back();
  return greedy.scheme;
}

RandomOffloader::RandomOffloader(double remote_probability,
                                 std::uint64_t seed)
    : remote_probability_(remote_probability), seed_(seed) {
  MECOFF_EXPECTS(remote_probability >= 0.0 && remote_probability <= 1.0);
}

OffloadingScheme RandomOffloader::solve(const MecSystem& system) {
  Rng rng(seed_);
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  for (std::size_t u = 0; u < system.num_users(); ++u) {
    const UserApp& user = system.users[u];
    for (graph::NodeId v = 0; v < user.graph.num_nodes(); ++v) {
      const bool pinned =
          !user.unoffloadable.empty() && user.unoffloadable[v];
      if (!pinned && rng.bernoulli(remote_probability_))
        scheme.placement[u][v] = Placement::kRemote;
    }
  }
  return scheme;
}

}  // namespace mecoff::mec
