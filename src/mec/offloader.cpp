#include "mec/offloader.hpp"

#include <algorithm>
#include <array>
#include <exception>
#include <future>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/request_id.hpp"

namespace mecoff::mec {

PipelineOffloader::PipelineOffloader(PipelineOptions options)
    : options_(std::move(options)) {}

std::string PipelineOffloader::name() const {
  switch (options_.backend) {
    case CutBackend::kSpectral: return "spectral";
    case CutBackend::kMaxFlow: return "maxflow";
    case CutBackend::kKernighanLin: return "kl";
  }
  return "unknown";
}

std::unique_ptr<graph::Bipartitioner> PipelineOffloader::make_cutter() const {
  switch (options_.backend) {
    case CutBackend::kSpectral: {
      spectral::SpectralOptions opts = options_.spectral;
      opts.fiedler.pool = options_.pool;
      return std::make_unique<spectral::SpectralBipartitioner>(opts);
    }
    case CutBackend::kMaxFlow:
      return std::make_unique<mincut::MaxFlowBipartitioner>(options_.maxflow);
    case CutBackend::kKernighanLin:
      return std::make_unique<kl::KernighanLinBipartitioner>(options_.kl);
  }
  throw PreconditionError("unknown cut backend");
}

OffloadingScheme PipelineOffloader::solve(const MecSystem& system) {
  return solve(system, nullptr);
}

OffloadingScheme PipelineOffloader::solve(const MecSystem& system,
                                          const WarmStart* warm) {
  MECOFF_EXPECTS(system.valid());
  MECOFF_TRACE_SPAN_ARG("mec.solve", system.num_users());
  MECOFF_COUNTER_ADD("mec.solve.count", 1);
  stats_ = SolveStats{};
  stats_.warm_start_used = warm != nullptr;
  artifacts_ = SolveArtifacts{};
  Stopwatch total_timer;

  // Degrade-don't-die budget, shared read-only by every task (steady
  // clock reads are thread-safe). Checked between sub-graph cuts.
  const double deadline_seconds = options_.deadline.seconds;
  const auto deadline_expired = [&total_timer, deadline_seconds] {
    return deadline_seconds >= 0.0 &&
           total_timer.elapsed_seconds() >= deadline_seconds;
  };

  // Everything one per-user task produces. Tasks write only their own
  // slot; stats are merged on the calling thread after the join, so
  // SolveStats accumulation is race-free by construction.
  struct UserSolve {
    std::vector<Part> parts;
    lpa::CompressionStats compression;
    double compress_seconds = 0.0;
    double cut_seconds = 0.0;
    std::size_t spectral_nonconverged = 0;
    std::size_t fallback_kl_cuts = 0;
    std::size_t fallback_all_remote = 0;
    /// One slot per compressed component (only when collecting).
    std::vector<linalg::Vec> fiedler_vectors;
    std::size_t warm_seeded = 0;
    std::size_t warm_rejected = 0;
  };

  // Parts for one user, computed from scratch. Each invocation builds
  // its own cutter: every backend seeds a fresh RNG per bipartition()
  // call, so a private cutter yields the same cuts as the serial
  // shared-cutter path while keeping tasks free of shared mutable
  // state.
  const auto solve_user = [&](std::size_t u) {
    MECOFF_TRACE_SPAN_ARG("mec.solve_user", u);
    UserSolve out;
    const std::unique_ptr<graph::Bipartitioner> cutter = make_cutter();
    const UserApp& user = system.users[u];
    const std::vector<bool> mask =
        user.unoffloadable.empty()
            ? std::vector<bool>(user.graph.num_nodes(), false)
            : user.unoffloadable;
    Stopwatch compress_timer;
    const lpa::CompressionPipelineResult pipeline = [&] {
      MECOFF_TRACE_SPAN_ARG("mec.compress", u);
      return lpa::compress_application(
          user.graph, mask, options_.propagation, options_.pool,
          user.components.empty() ? nullptr : &user.components);
    }();
    out.compress_seconds = compress_timer.elapsed_seconds();
    MECOFF_HISTOGRAM_RECORD("mec.user.compress_seconds",
                            out.compress_seconds);
    out.compression = pipeline.aggregate_stats();

    Stopwatch cut_timer;
    MECOFF_TRACE_SPAN_ARG("mec.cut", u);
    std::vector<Part>& parts = out.parts;

    // The terminal leg of the fallback chain: the whole sub-graph as
    // one uncut all-remote part (the greedy may still retreat it to
    // the device as a unit).
    const auto push_all_remote = [&](std::size_t c) {
      const lpa::CompressedComponent& comp = pipeline.components[c];
      Part part;
      part.user = u;
      part.group = c;
      for (graph::NodeId super = 0;
           super < comp.compression.compressed.num_nodes(); ++super) {
        for (const graph::NodeId orig : pipeline.original_members(c, super)) {
          part.nodes.push_back(orig);
          part.weight += user.graph.node_weight(orig);
        }
      }
      if (!part.nodes.empty()) parts.push_back(std::move(part));
      ++out.fallback_all_remote;
    };

    // Non-convergence is only observable on the spectral backend.
    auto* spectral_cutter =
        options_.backend == CutBackend::kSpectral
            ? static_cast<spectral::SpectralBipartitioner*>(cutter.get())
            : nullptr;
    std::unique_ptr<kl::KernighanLinBipartitioner> kl_fallback;
    if (options_.collect_fiedler_vectors)
      out.fiedler_vectors.resize(pipeline.components.size());

    for (std::size_t c = 0; c < pipeline.components.size(); ++c) {
      MECOFF_TRACE_SPAN_ARG("mec.cut.component", c);
      const lpa::CompressedComponent& comp = pipeline.components[c];
      if (deadline_expired()) {
        push_all_remote(c);
        continue;
      }
      // Warm hint for this component: the previous solve's Fiedler
      // vector, usable only while compression kept the same shape (a
      // perturbation can merge or split supernodes — then the dimension
      // differs and the component simply solves cold).
      if (spectral_cutter != nullptr && warm != nullptr &&
          u < warm->fiedler_vectors.size() &&
          c < warm->fiedler_vectors[u].size() &&
          !warm->fiedler_vectors[u][c].empty()) {
        const linalg::Vec& hint = warm->fiedler_vectors[u][c];
        if (hint.size() == comp.compression.compressed.num_nodes()) {
          spectral_cutter->set_warm_start(&hint);
          ++out.warm_seeded;
        } else {
          ++out.warm_rejected;
        }
      }
      graph::Bipartition cut =
          cutter->bipartition(comp.compression.compressed);
      if (spectral_cutter != nullptr && options_.collect_fiedler_vectors)
        out.fiedler_vectors[c] = spectral_cutter->last_fiedler_vector();
      if (spectral_cutter != nullptr && !spectral_cutter->last_converged()) {
        // Fallback chain: a below-tolerance Fiedler vector is a guess,
        // not a cut — recut combinatorially (KL) while budget remains,
        // else degrade the sub-graph to all-remote.
        ++out.spectral_nonconverged;
        if (!deadline_expired()) {
          if (kl_fallback == nullptr)
            kl_fallback = std::make_unique<kl::KernighanLinBipartitioner>(
                options_.kl);
          cut = kl_fallback->bipartition(comp.compression.compressed);
          ++out.fallback_kl_cuts;
        } else {
          push_all_remote(c);
          continue;
        }
      }

      // One part per non-empty cut side, in ORIGINAL node ids.
      std::array<Part, 2> sides;
      std::array<double, 2> pinned_boundary{0.0, 0.0};
      for (std::uint8_t side = 0; side <= 1; ++side) {
        Part& part = sides[side];
        part.user = u;
        part.group = c;  // enables the whole-component retreat move
        for (graph::NodeId super = 0;
             super < comp.compression.compressed.num_nodes(); ++super) {
          if (cut.side[super] != side) continue;
          for (const graph::NodeId orig :
               pipeline.original_members(c, super)) {
            part.nodes.push_back(orig);
            part.weight += user.graph.node_weight(orig);
            // Data exchanged with pinned (device-anchored) functions.
            for (const graph::Adjacency& adj : user.graph.neighbors(orig))
              if (mask[adj.neighbor]) pinned_boundary[side] += adj.weight;
          }
        }
      }
      // Algorithm 2 initialization ("Insert(V2', V1)"): choose this
      // component's starting configuration — both sides remote, or one
      // side anchored to the device — by myopic cost under the same
      // scalarization the greedy uses. Anchoring a side pays its local
      // compute but moves its pinned-boundary traffic off the network
      // (and exposes the cut); starting fully remote keeps the greedy
      // free to pull either side later.
      if (options_.anchor_initial_parts) {
        const SystemParams& params = system.params;
        const double lf = (options_.greedy.time_weight +
                           options_.greedy.energy_weight *
                               params.mobile_power) /
                          params.mobile_capacity;
        const double cf = (options_.greedy.time_weight +
                           options_.greedy.energy_weight *
                               params.transmit_power) /
                          params.bandwidth;
        // Marginal server cost per remote unit, at the optimistic
        // single-offloader, low-load corner (the greedy corrects for
        // real load afterwards — it can only pull work local, so the
        // initializer must not over-commit to the device).
        const double mc =
            options_.greedy.time_weight / params.server_capacity;
        const double wa = sides[0].weight;
        const double wb = sides[1].weight;
        const double pba = pinned_boundary[0];
        const double pbb = pinned_boundary[1];
        const double cost_rr = cf * (pba + pbb) + mc * (wa + wb);
        const double cost_a =
            lf * wa + cf * (pbb + cut.cut_weight) + mc * wb;
        const double cost_b =
            lf * wb + cf * (pba + cut.cut_weight) + mc * wa;
        if (cost_a < cost_rr && cost_a <= cost_b && !sides[0].nodes.empty())
          sides[0].initially_local = true;
        else if (cost_b < cost_rr && !sides[1].nodes.empty())
          sides[1].initially_local = true;
      }
      for (Part& part : sides)
        if (!part.nodes.empty()) parts.push_back(std::move(part));
    }
    out.cut_seconds = cut_timer.elapsed_seconds();
    MECOFF_HISTOGRAM_RECORD("mec.user.cut_seconds", out.cut_seconds);
    return out;
  };

  // Distinct users: the first `period` under identical_user_period
  // (everyone else carries an identical graph), all of them otherwise.
  const std::size_t num_users = system.num_users();
  const std::size_t period = options_.identical_user_period;
  const std::size_t distinct =
      period > 0 ? std::min(period, num_users) : num_users;

  // Algorithm 1's "in parallel": one independent task per distinct
  // user. Compression and the cut are per-user; only the final greedy
  // couples users, so tasks never touch shared state. The pool's
  // help-while-wait makes the nested fan-out (this task → component
  // compression → Lanczos SpMV) deadlock-free on the shared pool.
  std::vector<UserSolve> solved(distinct);
  if (options_.pool != nullptr && distinct > 1) {
    const parallel::ThreadPool::TaskGroup group = options_.pool->make_group();
    std::vector<std::future<void>> futures;
    futures.reserve(distinct);
    for (std::size_t u = 0; u < distinct; ++u)
      futures.push_back(options_.pool->submit_to(
          group, [&, u] { solved[u] = solve_user(u); }));
    std::exception_ptr first_error;
    for (std::future<void>& f : futures) {
      try {
        options_.pool->wait_and_help(f, group);
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (std::size_t u = 0; u < distinct; ++u) solved[u] = solve_user(u);
  }

  // Merge in user order on this thread: part order — and therefore the
  // greedy's tie-breaking and the final scheme — is bit-identical to
  // the serial path no matter how tasks interleaved. Replicated users
  // copy their prototype's parts AND account its compression stats, so
  // aggregate counters reflect every user, not just the prototypes.
  std::vector<Part> all_parts;
  for (std::size_t u = 0; u < num_users; ++u) {
    const UserSolve& proto = solved[period > 0 ? u % period : u];
    stats_.compression += proto.compression;
    for (Part part : proto.parts) {
      part.user = u;
      all_parts.push_back(std::move(part));
    }
  }
  for (UserSolve& s : solved) {
    stats_.compress_seconds += s.compress_seconds;
    stats_.cut_seconds += s.cut_seconds;
    stats_.spectral_nonconverged += s.spectral_nonconverged;
    stats_.fallback_kl_cuts += s.fallback_kl_cuts;
    stats_.fallback_all_remote += s.fallback_all_remote;
    stats_.warm_fiedler_seeded += s.warm_seeded;
    stats_.warm_fiedler_rejected += s.warm_rejected;
  }
  stats_.deadline_expired = deadline_expired();
  if (options_.collect_fiedler_vectors) {
    artifacts_.fiedler_vectors.resize(distinct);
    for (std::size_t u = 0; u < distinct; ++u)
      artifacts_.fiedler_vectors[u] = std::move(solved[u].fiedler_vectors);
  }

  stats_.num_parts = all_parts.size();
  Stopwatch greedy_timer;
  GreedyResult greedy = [&] {
    MECOFF_TRACE_SPAN_ARG("mec.greedy", all_parts.size());
    return generate_scheme(system, all_parts, options_.greedy);
  }();
  // Warm greedy: ALSO start from the previous placement's projection
  // onto the new parts (a part starts local iff every one of its nodes
  // was local last time) and keep whichever start reaches the lower
  // final objective. Strict '<' so ties go to the cold result — an
  // unperturbed re-solve is byte-identical to a cold solve. Both runs
  // are complete greedy descents, so warm final objective ≤ cold final
  // objective holds by construction of the min.
  if (warm != nullptr && warm->scheme.valid_for(system)) {
    std::vector<Part> warm_parts = all_parts;
    bool differs = false;
    for (Part& part : warm_parts) {
      if (part.frozen) continue;
      bool all_local = !part.nodes.empty();
      for (const graph::NodeId v : part.nodes) {
        if (warm->scheme.placement[part.user][v] != Placement::kLocal) {
          all_local = false;
          break;
        }
      }
      if (part.initially_local != all_local) differs = true;
      part.initially_local = all_local;
    }
    if (differs) {
      GreedyResult warm_greedy = [&] {
        MECOFF_TRACE_SPAN_ARG("mec.greedy.warm", warm_parts.size());
        return generate_scheme(system, warm_parts, options_.greedy);
      }();
      if (warm_greedy.objective_history.back() <
          greedy.objective_history.back()) {
        greedy = std::move(warm_greedy);
        stats_.warm_greedy_won = true;
      }
    }
  }
  stats_.greedy_seconds = greedy_timer.elapsed_seconds();
  stats_.greedy_moves = greedy.moves;
  stats_.final_objective = greedy.objective_history.back();
  stats_.total_seconds = total_timer.elapsed_seconds();

  // Single-source timing contract: the registry gauges below are
  // written from the very doubles SolveStats holds — there is no second
  // clock — so last_stats() and the metrics dump can never disagree
  // (asserted in tests/obs_test.cpp). Counters accumulate across
  // solves; gauges reflect the most recent one.
  MECOFF_GAUGE_SET("mec.solve.compress_seconds", stats_.compress_seconds);
  MECOFF_GAUGE_SET("mec.solve.cut_seconds", stats_.cut_seconds);
  MECOFF_GAUGE_SET("mec.solve.greedy_seconds", stats_.greedy_seconds);
  MECOFF_GAUGE_SET("mec.solve.total_seconds", stats_.total_seconds);
  MECOFF_GAUGE_SET("mec.solve.final_objective", stats_.final_objective);
  MECOFF_HISTOGRAM_RECORD("mec.solve.seconds", stats_.total_seconds);
  MECOFF_COUNTER_ADD("mec.solve.users", num_users);
  MECOFF_COUNTER_ADD("mec.solve.distinct_users", distinct);
  MECOFF_COUNTER_ADD("mec.solve.parts", stats_.num_parts);
  MECOFF_COUNTER_ADD("mec.solve.greedy_moves", stats_.greedy_moves);
  MECOFF_COUNTER_ADD("mec.fallback.spectral_nonconverged",
                     stats_.spectral_nonconverged);
  MECOFF_COUNTER_ADD("mec.fallback.kl_cuts", stats_.fallback_kl_cuts);
  MECOFF_COUNTER_ADD("mec.fallback.all_remote", stats_.fallback_all_remote);
  MECOFF_COUNTER_ADD("mec.solve.deadline_expired",
                     stats_.deadline_expired ? 1 : 0);
  // Warm-solve counters register only on warm calls: cold-only runs
  // (every existing bench and golden fixture) keep a bit-identical
  // metric key set, which the bench-gate baselines compare exactly.
  if (warm != nullptr) {
    MECOFF_COUNTER_ADD("mec.solve.warm_starts", 1);
    MECOFF_COUNTER_ADD("mec.solve.warm_fiedler_seeded",
                       stats_.warm_fiedler_seeded);
    MECOFF_COUNTER_ADD("mec.solve.warm_fiedler_rejected",
                       stats_.warm_fiedler_rejected);
    MECOFF_COUNTER_ADD("mec.solve.warm_greedy_won",
                       stats_.warm_greedy_won ? 1 : 0);
  }
  // Live serving feeds, same doubles as SolveStats (the gauge==stats
  // contract extends to the quantile window and the flight recorder):
  // the sliding-window latency summary /metrics exposes...
  MECOFF_QUANTILES_RECORD_ID("mec.solve.latency", stats_.total_seconds,
                             obs::current_request_id());
#ifndef MECOFF_OBS_DISABLED
  // ...and one flight-recorder record per solve. Strictly observational
  // — nothing reads the recorder back into a solve — so placements stay
  // bit-identical with the recorder armed, dumping, or compiled out.
  {
    obs::SolveRecord record;
    record.request_id = obs::current_request_id();
    record.users = num_users;
    record.distinct_users = distinct;
    record.parts = stats_.num_parts;
    record.greedy_moves = stats_.greedy_moves;
    record.compress_seconds = stats_.compress_seconds;
    record.cut_seconds = stats_.cut_seconds;
    record.greedy_seconds = stats_.greedy_seconds;
    record.total_seconds = stats_.total_seconds;
    record.final_objective = stats_.final_objective;
    record.spectral_nonconverged = stats_.spectral_nonconverged;
    record.fallback_kl_cuts = stats_.fallback_kl_cuts;
    record.fallback_all_remote = stats_.fallback_all_remote;
    record.deadline_expired = stats_.deadline_expired;
    record.trace_dropped = obs::TraceCollector::global().dropped_count();
    (void)obs::FlightRecorder::global().record(std::move(record));
  }
#endif  // MECOFF_OBS_DISABLED
  return greedy.scheme;
}

RandomOffloader::RandomOffloader(double remote_probability,
                                 std::uint64_t seed)
    : remote_probability_(remote_probability), seed_(seed) {
  MECOFF_EXPECTS(remote_probability >= 0.0 && remote_probability <= 1.0);
}

OffloadingScheme RandomOffloader::solve(const MecSystem& system) {
  Rng rng(seed_);
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  for (std::size_t u = 0; u < system.num_users(); ++u) {
    const UserApp& user = system.users[u];
    for (graph::NodeId v = 0; v < user.graph.num_nodes(); ++v) {
      const bool pinned =
          !user.unoffloadable.empty() && user.unoffloadable[v];
      if (!pinned && rng.bernoulli(remote_probability_))
        scheme.placement[u][v] = Placement::kRemote;
    }
  }
  return scheme;
}

}  // namespace mecoff::mec
