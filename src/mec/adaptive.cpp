#include "mec/adaptive.hpp"

#include "common/contracts.hpp"

namespace mecoff::mec {

namespace {

/// The per-user half of the pipeline — compression then a two-way cut
/// per component — producing the user's parts. Computed once at
/// arrival and cached in the user's slot; every later placement
/// decision (incremental or global) reuses them.
std::vector<Part> parts_for(const UserApp& user,
                            const PipelineOptions& options,
                            const SystemParams& params) {
  (void)params;
  PipelineOptions opts = options;
  opts.identical_user_period = 0;
  const std::vector<bool> mask =
      user.unoffloadable.empty()
          ? std::vector<bool>(user.graph.num_nodes(), false)
          : user.unoffloadable;
  const lpa::CompressionPipelineResult pipeline = lpa::compress_application(
      user.graph, mask, opts.propagation, opts.pool,
      user.components.empty() ? nullptr : &user.components);

  std::unique_ptr<graph::Bipartitioner> cutter;
  switch (opts.backend) {
    case CutBackend::kSpectral:
      cutter = std::make_unique<spectral::SpectralBipartitioner>(
          opts.spectral);
      break;
    case CutBackend::kMaxFlow:
      cutter = std::make_unique<mincut::MaxFlowBipartitioner>(opts.maxflow);
      break;
    case CutBackend::kKernighanLin:
      cutter = std::make_unique<kl::KernighanLinBipartitioner>(opts.kl);
      break;
  }
  MECOFF_ENSURES(cutter != nullptr);

  std::vector<Part> parts;
  for (std::size_t c = 0; c < pipeline.components.size(); ++c) {
    const lpa::CompressedComponent& comp = pipeline.components[c];
    const graph::Bipartition cut =
        cutter->bipartition(comp.compression.compressed);
    for (std::uint8_t side = 0; side <= 1; ++side) {
      Part part;
      part.group = c;
      for (graph::NodeId super = 0;
           super < comp.compression.compressed.num_nodes(); ++super) {
        if (cut.side[super] != side) continue;
        for (const graph::NodeId orig : pipeline.original_members(c, super)) {
          part.nodes.push_back(orig);
          part.weight += user.graph.node_weight(orig);
        }
      }
      if (!part.nodes.empty()) parts.push_back(std::move(part));
    }
  }
  return parts;
}

}  // namespace

AdaptiveCoordinator::AdaptiveCoordinator(SystemParams params,
                                         PipelineOptions options,
                                         DegradePolicy degrade)
    : params_(params),
      nominal_params_(params),
      options_(std::move(options)),
      degrade_(degrade) {
  MECOFF_EXPECTS(params_.valid());
  MECOFF_EXPECTS(degrade_.hysteresis_margin >= 0.0);
}

MecSystem AdaptiveCoordinator::compact_system(
    std::vector<std::size_t>& ids) const {
  MecSystem system;
  system.params = params_;
  ids.clear();
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    if (!slots_[id].has_value()) continue;
    ids.push_back(id);
    system.users.push_back(slots_[id]->app);
  }
  return system;
}

std::vector<Part> AdaptiveCoordinator::compact_parts(
    const std::vector<std::size_t>& ids) const {
  std::vector<Part> parts;
  for (std::size_t u = 0; u < ids.size(); ++u) {
    for (Part part : slots_[ids[u]]->parts) {
      part.user = u;
      part.frozen = false;
      part.initially_local = false;
      parts.push_back(std::move(part));
    }
  }
  return parts;
}

std::pair<OffloadingScheme, SystemCost>
AdaptiveCoordinator::fresh_solve() const {
  std::vector<std::size_t> ids;
  const MecSystem system = compact_system(ids);
  const GreedyResult greedy =
      generate_scheme(system, compact_parts(ids), options_.greedy);
  return {greedy.scheme, evaluate(system, greedy.scheme)};
}

std::size_t AdaptiveCoordinator::add_user(UserApp app) {
  Slot slot;
  slot.parts = parts_for(app, options_, params_);
  slot.app = std::move(app);
  slot.placement.assign(slot.app.graph.num_nodes(), Placement::kLocal);
  slots_.push_back(std::move(slot));
  const std::size_t new_id = slots_.size() - 1;

  // Place the newcomer with everyone else frozen at their current
  // placement (represented as one frozen pseudo-part per user holding
  // its remote nodes).
  std::vector<std::size_t> ids;
  const MecSystem system = compact_system(ids);
  std::vector<Part> parts;
  std::size_t new_compact = SIZE_MAX;
  for (std::size_t u = 0; u < ids.size(); ++u) {
    const Slot& existing = *slots_[ids[u]];
    if (ids[u] == new_id) {
      new_compact = u;
      for (Part part : existing.parts) {
        part.user = u;
        parts.push_back(std::move(part));
      }
      continue;
    }
    Part frozen;
    frozen.user = u;
    frozen.frozen = true;
    for (graph::NodeId v = 0; v < existing.app.graph.num_nodes(); ++v) {
      if (existing.placement[v] == Placement::kRemote) {
        frozen.nodes.push_back(v);
        frozen.weight += existing.app.graph.node_weight(v);
      }
    }
    if (!frozen.nodes.empty()) parts.push_back(std::move(frozen));
  }
  MECOFF_ENSURES(new_compact != SIZE_MAX);

  const GreedyResult greedy =
      generate_scheme(system, parts, options_.greedy);
  slots_[new_id]->placement = greedy.scheme.placement[new_compact];
  return new_id;
}

void AdaptiveCoordinator::remove_user(std::size_t id) {
  MECOFF_EXPECTS(id < slots_.size() && slots_[id].has_value());
  slots_[id].reset();
}

std::size_t AdaptiveCoordinator::active_users() const {
  std::size_t count = 0;
  for (const auto& slot : slots_)
    if (slot.has_value()) ++count;
  return count;
}

const std::vector<Placement>& AdaptiveCoordinator::placement_of(
    std::size_t id) const {
  MECOFF_EXPECTS(id < slots_.size() && slots_[id].has_value());
  return slots_[id]->placement;
}

SystemCost AdaptiveCoordinator::current_cost() const {
  std::vector<std::size_t> ids;
  const MecSystem system = compact_system(ids);
  OffloadingScheme scheme;
  for (const std::size_t id : ids)
    scheme.placement.push_back(slots_[id]->placement);
  if (system.users.empty()) return SystemCost{};
  return evaluate(system, scheme);
}

double AdaptiveCoordinator::drift() const {
  if (active_users() == 0) return 0.0;
  return current_cost().objective() - fresh_solve().second.objective();
}

std::size_t AdaptiveCoordinator::replace_for_health_change() {
  if (active_users() == 0) return 0;
  // Both costs are priced under the NEW params: the question is whether
  // the placements (not the world) should change.
  const double before = current_cost().objective();
  const auto [scheme, cost] = fresh_solve();
  if (before - cost.objective() <=
      degrade_.hysteresis_margin * before) {
    ++suppressed_;
    return 0;
  }
  std::vector<std::size_t> ids;
  (void)compact_system(ids);
  std::size_t changed = 0;
  for (std::size_t u = 0; u < ids.size(); ++u) {
    if (slots_[ids[u]]->placement != scheme.placement[u]) ++changed;
    slots_[ids[u]]->placement = scheme.placement[u];
  }
  return changed;
}

std::size_t AdaptiveCoordinator::on_server_degraded(double capacity_factor,
                                                    double bandwidth_factor) {
  MECOFF_EXPECTS(capacity_factor > 0.0 && capacity_factor <= 1.0);
  MECOFF_EXPECTS(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0);
  params_.server_capacity = nominal_params_.server_capacity * capacity_factor;
  params_.bandwidth = nominal_params_.bandwidth * bandwidth_factor;
  degraded_ = capacity_factor < 1.0 || bandwidth_factor < 1.0;
  return replace_for_health_change();
}

std::size_t AdaptiveCoordinator::on_server_recovered() {
  if (!degraded_) return 0;
  params_ = nominal_params_;
  degraded_ = false;
  return replace_for_health_change();
}

double AdaptiveCoordinator::reoptimize() {
  if (active_users() == 0) return 0.0;
  const double before = current_cost().objective();
  std::vector<std::size_t> ids;
  (void)compact_system(ids);
  const auto [scheme, cost] = fresh_solve();
  if (cost.objective() >= before) return 0.0;  // keep the better state
  for (std::size_t u = 0; u < ids.size(); ++u)
    slots_[ids[u]]->placement = scheme.placement[u];
  return before - cost.objective();
}

}  // namespace mecoff::mec
