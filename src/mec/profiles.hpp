// Canned system-parameter profiles — concrete deployment flavors for
// examples, the CLI and quick experiments. Values are relative model
// units (see costs.hpp); the RATIOS are what characterizes each
// deployment: radio energy per bit, link rate vs device speed, server
// headroom.
#pragma once

#include <string>
#include <vector>

#include "mec/model.hpp"

namespace mecoff::mec {

/// Campus Wi-Fi: fat cheap link, modest shared server.
[[nodiscard]] SystemParams wifi_campus_profile();

/// LTE small cell: slower, energy-hungry uplink; decent edge box.
[[nodiscard]] SystemParams lte_smallcell_profile();

/// 5G mmWave hotspot: very fast link, short reach, big MEC rack.
[[nodiscard]] SystemParams mmwave_hotspot_profile();

/// Congested public venue: every resource oversubscribed.
[[nodiscard]] SystemParams congested_venue_profile();

/// Profile registry for name-based lookup (CLI `profile=` option).
struct NamedProfile {
  std::string name;
  SystemParams params;
};
[[nodiscard]] const std::vector<NamedProfile>& all_profiles();

/// Lookup by name; returns false (and leaves `out` untouched) when the
/// name is unknown.
[[nodiscard]] bool find_profile(const std::string& name, SystemParams& out);

}  // namespace mecoff::mec
