#include "mec/scheme_io.hpp"

#include <ostream>
#include <sstream>

#include "common/strings.hpp"

namespace mecoff::mec {

void write_scheme(const OffloadingScheme& scheme, std::ostream& out) {
  out << "scheme users " << scheme.placement.size() << '\n';
  for (std::size_t u = 0; u < scheme.placement.size(); ++u) {
    out << "user " << u << ' ';
    for (const Placement p : scheme.placement[u])
      out << (p == Placement::kLocal ? 'L' : 'R');
    out << '\n';
  }
}

std::string to_scheme_text(const OffloadingScheme& scheme) {
  std::ostringstream out;
  write_scheme(scheme, out);
  return out.str();
}

Result<OffloadingScheme> parse_scheme_text(const std::string& text) {
  std::istringstream in(text);
  OffloadingScheme scheme;
  bool saw_header = false;
  std::string line;
  std::size_t line_no = 0;
  std::size_t users_seen = 0;

  const auto fail = [&](const std::string& why) {
    return Error("line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> tokens = split_ws(trimmed);

    if (tokens[0] == "scheme") {
      long long n = 0;
      if (tokens.size() != 3 || tokens[1] != "users" ||
          !parse_int(tokens[2], n) || n < 0)
        return fail("expected 'scheme users <count>'");
      if (saw_header) return fail("duplicate header");
      saw_header = true;
      scheme.placement.resize(static_cast<std::size_t>(n));
    } else if (tokens[0] == "user") {
      if (!saw_header) return fail("'user' before header");
      long long index = 0;
      if (tokens.size() != 3 || !parse_int(tokens[1], index) || index < 0 ||
          static_cast<std::size_t>(index) >= scheme.placement.size())
        return fail("expected 'user <index in range> <placements>'");
      std::vector<Placement>& row =
          scheme.placement[static_cast<std::size_t>(index)];
      if (!row.empty()) return fail("duplicate user " + tokens[1]);
      row.reserve(tokens[2].size());
      for (const char c : tokens[2]) {
        if (c == 'L')
          row.push_back(Placement::kLocal);
        else if (c == 'R')
          row.push_back(Placement::kRemote);
        else
          return fail(std::string("bad placement character '") + c + "'");
      }
      if (row.empty()) return fail("empty placement string");
      ++users_seen;
    } else {
      return fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (!saw_header) return Error("missing 'scheme users' header");
  if (users_seen != scheme.placement.size())
    return Error("expected " + std::to_string(scheme.placement.size()) +
                 " user lines, got " + std::to_string(users_seen));
  return scheme;
}

}  // namespace mecoff::mec
