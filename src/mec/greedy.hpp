// Algorithm 2's greedy scheme generation. The cut step hands us parts —
// each a set of functions that stays together (one side of a compressed
// sub-graph's minimum cut). All parts start on the edge server (V2);
// every round tentatively moves each remaining part to the device and
// commits the move with the lowest resulting E + T, stopping when no
// move lowers the objective ("while E_t + T_t < E_{t−1} + T_{t−1}").
//
// The scan uses incremental deltas — O(1) per part for the coupled
// server-contention term plus O(deg(part)) cross-weight updates only for
// parts of a user whose placement just changed — so multi-user runs with
// tens of thousands of parts stay tractable. Tests verify the
// incremental objective against a full evaluate() after every move.
#pragma once

#include <vector>

#include "mec/costs.hpp"
#include "mec/model.hpp"
#include "mec/scheme.hpp"

namespace mecoff::mec {

/// A set of functions that the cut step decided must stay together.
struct Part {
  std::size_t user = 0;
  std::vector<graph::NodeId> nodes;  ///< ids in the user's graph
  double weight = 0.0;               ///< Σ node computation weights
  /// Algorithm 2's initialization (its "Insert(V2', V1)" step): the cut
  /// side anchored to the device — typically the one exchanging the
  /// most data with pinned functions — starts in V1 (local) and never
  /// moves; all other parts start in V2 (remote) and may be pulled
  /// local by the greedy loop.
  bool initially_local = false;
  /// Parts sharing a group id are the cut sides of one (user,
  /// component): the greedy may retreat the whole group in one
  /// composite move (see GreedyOptions::enable_group_moves). SIZE_MAX =
  /// ungrouped.
  std::size_t group = SIZE_MAX;
  /// Frozen parts keep their initial placement and are never move
  /// candidates — how the adaptive coordinator holds existing users
  /// fixed while placing an arrival (they still count toward the
  /// server load the newcomer sees).
  bool frozen = false;
};

struct GreedyOptions {
  /// Safety cap on committed moves (SIZE_MAX = unlimited).
  std::size_t max_moves = SIZE_MAX;
  /// Scalarization weights of the double objective (6): the greedy
  /// minimizes energy_weight·E + time_weight·T. The paper's Algorithm 2
  /// uses E + T (both 1); the greedy ablation bench sweeps these.
  double energy_weight = 1.0;
  double time_weight = 1.0;
  /// Composite moves: additionally consider pulling ALL remaining
  /// remote parts of one group (user-component) local in a single step.
  /// This escapes the pairwise local minimum where both halves of a
  /// heavily-cut component belong on the device but each half alone is
  /// blocked by the other's cut exposure. OFF by default — the paper's
  /// Algorithm 2 moves single parts only, and its evaluation implicitly
  /// measures the cut algorithms THROUGH that myopia (a bad cut traps a
  /// component remote). bench_ablation_greedy quantifies how much this
  /// extension rescues the weaker cutters.
  bool enable_group_moves = false;
};

struct GreedyResult {
  OffloadingScheme scheme;
  std::size_t moves = 0;
  /// objective (E + T) after initialization and after every committed
  /// move; strictly decreasing by construction.
  std::vector<double> objective_history;
};

/// Run the greedy over `parts`. Preconditions: parts are disjoint per
/// user, cover only offloadable nodes, and every node weight is
/// accounted (part.weight = Σ of its nodes' weights).
[[nodiscard]] GreedyResult generate_scheme(const MecSystem& system,
                                           const std::vector<Part>& parts,
                                           const GreedyOptions& options = {});

}  // namespace mecoff::mec
