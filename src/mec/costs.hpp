// The cost model — formulas (1)–(6) of the paper, evaluated for a
// concrete offloading scheme.
//
//   t_c^i = Σ_{v∈V_c} w_v / I_c                              (1)
//   t_s^i = Σ_{v∈V_s} w_v / I_s^i + w_t^i                    (2)
//   e_c^i = t_c^i · p_c                                      (3)
//   e_t^i = Σ_{cross edges} s(v_j,v_l) · p_t / b             (4)
//   t_t^i = Σ_{cross edges} s(v_j,v_l) / b                   (5)
//   min E = Σ e_c + Σ e_t ;  min T = Σ t_c + Σ t_s + Σ w_t   (6)
//
// with I_s^i = I_S / K (equal share over the K active offloaders) and
// w_t^i = κ · S · W_s^i / I_S² (convex congestion; see model.hpp). We
// additionally add
// Σ t_t to T: the paper defines t_t in (5) but omits it from the T sum;
// counting transmission time is physically necessary and is noted as a
// deviation in EXPERIMENTS.md. The scalarized objective used by
// Algorithm 2's greedy loop is E + T.
#pragma once

#include "mec/model.hpp"
#include "mec/scheme.hpp"

namespace mecoff::mec {

struct UserCost {
  double local_weight = 0.0;    ///< Σ w over V_c
  double remote_weight = 0.0;   ///< Σ w over V_s
  double cross_weight = 0.0;    ///< Σ s over cut edges

  double local_compute_time = 0.0;   ///< t_c
  double remote_compute_time = 0.0;  ///< W_s / I_s (excl. waiting)
  double wait_time = 0.0;            ///< w_t
  double transmit_time = 0.0;        ///< t_t
  double local_energy = 0.0;         ///< e_c
  double transmit_energy = 0.0;      ///< e_t
};

struct SystemCost {
  std::vector<UserCost> users;
  double total_energy = 0.0;  ///< E
  double total_time = 0.0;    ///< T

  [[nodiscard]] double objective() const { return total_energy + total_time; }

  /// Σ e_c — the paper's "local energy consumption" series (Figs. 3, 6).
  [[nodiscard]] double local_energy() const;
  /// Σ e_t — the "transmission energy consumption" series (Figs. 4, 7).
  [[nodiscard]] double transmit_energy() const;
};

/// Evaluate the full cost model. O(Σ_i (V_i + E_i)).
[[nodiscard]] SystemCost evaluate(const MecSystem& system,
                                  const OffloadingScheme& scheme);

}  // namespace mecoff::mec
