// Multi-server extension — beyond the paper's single edge server.
//
// The paper fixes one server S; real MEC deployments run several edge
// boxes with different capacities and link qualities, and the first
// decision is WHICH server a user attaches to. This module composes the
// existing machinery: assign each user a home server (capacity-weighted
// balancing over the users' total computation), then run the standard
// pipeline + Algorithm 2 greedy independently per server group — valid
// because users never share state across servers, so the per-server
// subsystems decouple exactly.
//
// An optional rebalancing loop re-attaches users whose move to another
// server lowers the combined objective (evaluated by re-solving the two
// affected groups), until no single-user move helps or the round budget
// is spent.
#pragma once

#include <vector>

#include "mec/costs.hpp"
#include "mec/offloader.hpp"

namespace mecoff::mec {

/// One edge server and the radio it is reached over.
struct ServerSpec {
  double capacity = 500.0;       ///< I_S of this box
  double bandwidth = 20.0;       ///< b of the user↔server link
  double transmit_power = 8.0;   ///< p_t on that link
};

struct MultiServerSystem {
  /// Device-side parameters (mobile_power, mobile_capacity,
  /// contention_factor); the server/link fields are ignored in favor of
  /// the per-server specs.
  SystemParams device;
  std::vector<ServerSpec> servers;
  std::vector<UserApp> users;

  [[nodiscard]] bool valid() const;
};

struct MultiServerResult {
  /// Home server per user.
  std::vector<std::size_t> server_of_user;
  /// Placement per user (kRemote = user's home server).
  OffloadingScheme scheme;
  /// Σ over per-server subsystems.
  double total_energy = 0.0;
  double total_time = 0.0;
  /// Remote weight landed on each server.
  std::vector<double> server_load;
  std::size_t rebalance_moves = 0;

  [[nodiscard]] double objective() const {
    return total_energy + total_time;
  }
};

struct MultiServerOptions {
  PipelineOptions pipeline;
  /// Maximum user re-attachment rounds (0 disables rebalancing).
  std::size_t rebalance_rounds = 2;
};

class MultiServerOffloader {
 public:
  explicit MultiServerOffloader(MultiServerOptions options = {});

  [[nodiscard]] MultiServerResult solve(const MultiServerSystem& system);

 private:
  MultiServerOptions options_;
};

/// Evaluate a full multi-server result from scratch (test oracle).
[[nodiscard]] SystemCost evaluate_server_group(
    const MultiServerSystem& system, const MultiServerResult& result,
    std::size_t server);

}  // namespace mecoff::mec
