// Multi-server extension — beyond the paper's single edge server.
//
// The paper fixes one server S; real MEC deployments run several edge
// boxes with different capacities and link qualities, and the first
// decision is WHICH server a user attaches to. This module composes the
// existing machinery: assign each user a home server (capacity-weighted
// balancing over the users' total computation), then run the standard
// pipeline + Algorithm 2 greedy independently per server group — valid
// because users never share state across servers, so the per-server
// subsystems decouple exactly.
//
// An optional rebalancing loop re-attaches users whose move to another
// server lowers the combined objective (evaluated by re-solving the two
// affected groups), until no single-user move helps or the round budget
// is spent.
#pragma once

#include <vector>

#include "common/result.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"

namespace mecoff::mec {

/// One edge server and the radio it is reached over.
struct ServerSpec {
  double capacity = 500.0;       ///< I_S of this box
  double bandwidth = 20.0;       ///< b of the user↔server link
  double transmit_power = 8.0;   ///< p_t on that link
};

struct MultiServerSystem {
  /// Device-side parameters (mobile_power, mobile_capacity,
  /// contention_factor); the server/link fields are ignored in favor of
  /// the per-server specs.
  SystemParams device;
  std::vector<ServerSpec> servers;
  std::vector<UserApp> users;

  [[nodiscard]] bool valid() const;
};

struct MultiServerResult {
  /// Home server per user.
  std::vector<std::size_t> server_of_user;
  /// Placement per user (kRemote = user's home server).
  OffloadingScheme scheme;
  /// Σ over per-server subsystems.
  double total_energy = 0.0;
  double total_time = 0.0;
  /// Remote weight landed on each server.
  std::vector<double> server_load;
  std::size_t rebalance_moves = 0;

  [[nodiscard]] double objective() const {
    return total_energy + total_time;
  }
};

struct MultiServerOptions {
  PipelineOptions pipeline;
  /// Maximum user re-attachment rounds (0 disables rebalancing).
  std::size_t rebalance_rounds = 2;
};

class MultiServerOffloader {
 public:
  explicit MultiServerOffloader(MultiServerOptions options = {});

  [[nodiscard]] MultiServerResult solve(const MultiServerSystem& system);

 private:
  MultiServerOptions options_;
};

/// Evaluate a full multi-server result from scratch (test oracle).
[[nodiscard]] SystemCost evaluate_server_group(
    const MultiServerSystem& system, const MultiServerResult& result,
    std::size_t server);

// ---------------------------------------------------------------------------
// Failover — runtime server/link fault handling on top of the static
// multi-server solve. The controller owns the live attachment + scheme
// and mutates them per fault event; every transition is deterministic,
// so a scripted fault sequence replays bit-identically (sim/chaos.hpp).

/// Liveness and link quality of one server as seen by failover.
struct ServerHealth {
  bool alive = true;
  /// Surviving fraction of the nominal link rate (1 = healthy).
  double bandwidth_factor = 1.0;
};

struct FailoverOptions {
  MultiServerOptions base;
  /// Relative objective improvement a link-quality or recovery
  /// re-placement must deliver before it is adopted; below the margin
  /// the current placements stand, so a flapping link cannot thrash
  /// them. Crash handling is exempt: placements on a dead server are
  /// INVALID, not merely suboptimal, and always re-solve.
  double hysteresis_margin = 0.05;
};

/// What one fault-handling step did.
struct FailoverStep {
  /// Users re-attached to a new home server.
  std::vector<std::size_t> moved_users;
  /// Servers whose group was re-solved (and the result kept).
  std::vector<std::size_t> resolved_groups;
  /// False when hysteresis kept the previous placements.
  bool adopted = true;
  bool all_local_fallback = false;
  double objective_before = 0.0;
  double objective_after = 0.0;
};

class FailoverController {
 public:
  /// Solves the initial (all-healthy) attachment + placement.
  explicit FailoverController(MultiServerSystem system,
                              FailoverOptions options = {});

  [[nodiscard]] const MultiServerResult& current() const { return current_; }
  [[nodiscard]] const std::vector<ServerHealth>& health() const {
    return health_;
  }
  [[nodiscard]] std::size_t alive_servers() const;
  [[nodiscard]] std::size_t active_users() const;
  [[nodiscard]] bool user_active(std::size_t user) const;
  /// True after the last server died: every active user runs all-local
  /// until a server recovers (degrade-don't-die, never an invalid
  /// scheme).
  [[nodiscard]] bool all_local_fallback() const { return all_local_; }
  /// Re-solves hysteresis rejected so far (flap suppression at work).
  [[nodiscard]] std::size_t suppressed_resolves() const {
    return suppressed_;
  }
  [[nodiscard]] double objective() const;

  /// Server dies: its users re-attach to surviving servers by the
  /// capacity-weighted rule and every receiving group is re-solved.
  /// When no server survives, the system degrades to the all-local
  /// fallback AND a typed error reports it.
  Result<FailoverStep> on_server_failed(std::size_t server);
  /// Server rejoins (fresh link). Leaves the all-local fallback by
  /// re-attaching everyone; otherwise proposes a fresh attachment and
  /// adopts it only past the hysteresis margin.
  Result<FailoverStep> on_server_recovered(std::size_t server);
  /// Link drops to `severity` (0, 1) of its nominal rate; the group is
  /// re-placed only past the hysteresis margin.
  Result<FailoverStep> on_link_degraded(std::size_t server, double severity);
  Result<FailoverStep> on_link_restored(std::size_t server);
  /// User leaves; its old group is re-solved if that helps.
  Result<FailoverStep> on_user_disconnected(std::size_t user);

 private:
  [[nodiscard]] std::vector<double> attached_weight() const;
  [[nodiscard]] std::size_t attach_target(
      double weight, const std::vector<double>& load) const;
  /// Cost of `server`'s group under current health with the placements
  /// in `scheme` (active users only).
  [[nodiscard]] SystemCost eval_group(std::size_t server,
                                      const OffloadingScheme& scheme) const;
  /// Re-solve `server`'s group from scratch, writing into `scheme`.
  SystemCost resolve_group(std::size_t server, OffloadingScheme& scheme) const;
  Result<FailoverStep> set_link_factor(std::size_t server, double factor);
  void enter_all_local();
  void refresh_totals();

  MultiServerSystem system_;
  FailoverOptions options_;
  std::vector<ServerHealth> health_;
  std::vector<bool> active_;
  std::vector<SystemCost> group_cost_;
  MultiServerResult current_;
  bool all_local_ = false;
  std::size_t suppressed_ = 0;
};

}  // namespace mecoff::mec
