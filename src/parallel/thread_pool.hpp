// Fixed-size worker pool. This is the execution backend of the
// mini-Spark engine (the repo's stand-in for the paper's Spark cluster):
// the per-user solve stage, per-subgraph label propagation and the
// blocked SpMV inside Lanczos all fan out over it.
//
// The pool is REENTRANT: a task running on a worker may itself submit
// work to the same pool and block on it (via wait_and_help or the
// parallel_for family). A waiting worker "helps" — it drains and runs
// queued tasks until its futures resolve — so nested parallel sections
// (outer per-user solve → inner component compression → Lanczos SpMV
// chunks) share one pool without deadlocking, even with a single
// worker thread.
//
// Help is scoped by TASK GROUP: a parallel section tags its
// submissions with a fresh group and waits on that group only, so a
// helping thread never pulls an unrelated outer-level task onto its
// stack (TBB-arena style). That bounds help-recursion to the logical
// nesting depth of parallel sections and keeps per-stage timers
// meaningful, instead of growing the stack with whatever happened to
// be queued.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace mecoff::parallel {

class ThreadPool {
 public:
  /// Tag tying one parallel section's submissions together. A grouped
  /// wait_and_help only runs tasks of that group while waiting.
  using TaskGroup = std::uint64_t;
  /// The ungrouped default; an ungrouped wait helps ANY queued task.
  static constexpr TaskGroup kNoGroup = 0;

  /// `threads == 0` means hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool() EXCLUDES(mutex_);

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// True when the calling thread is one of THIS pool's workers.
  [[nodiscard]] bool in_worker_thread() const;

  /// A fresh group id for one parallel section's submissions.
  [[nodiscard]] TaskGroup make_group() {
    return next_group_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Pop and run one queued task of `group` on the calling thread
  /// (kNoGroup = any task). Returns false when no eligible task was
  /// queued. Safe from any thread; the task runs outside the lock, so
  /// the caller must not already hold it (the mutex is non-reentrant).
  bool try_run_one(TaskGroup group = kNoGroup) EXCLUDES(mutex_);

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    return submit_to(kNoGroup, std::forward<F>(task));
  }

  /// submit() under a group tag, for a later grouped wait_and_help.
  template <typename F>
  auto submit_to(TaskGroup group, F&& task)
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    enqueue(Task{group, [packaged] { (*packaged)(); }});
    return future;
  }

  /// Block until `future` is ready. From a worker thread of this pool
  /// the wait helps: queued tasks of `group` run on the calling thread
  /// while it waits, which is what makes nested submit-and-wait safe —
  /// the section that submitted the work can always execute it itself.
  /// A task the future depends on that is already running on another
  /// worker is covered by induction (that worker helps its own waits),
  /// so waiting here can only add latency, never deadlock. Contract for
  /// grouped waits: the future's task was submitted to `group` (or is
  /// already running). From a non-worker thread this is a plain
  /// blocking wait.
  ///
  /// When no eligible task is queued the helper parks on idle_cv_ until
  /// the pool's activity counter moves (a submission or a completion)
  /// instead of polling at a fixed period — a worker blocked behind a
  /// long task costs a futex wait, not a spinning core. The park is
  /// still bounded by an exponential backoff (50µs → 1ms): activity is
  /// bumped without holding the waiters' mutex, so a notification can
  /// land in the unlockable window between the snapshot check and the
  /// wait; the timeout turns that rare missed wake into at most one
  /// backoff period of extra latency. Schemes are bit-identical either
  /// way — this changes when threads WAKE, never what they compute.
  template <typename R>
  void wait_and_help(const std::future<R>& future,
                     TaskGroup group = kNoGroup) {
    using namespace std::chrono_literals;
    if (!in_worker_thread()) {
      future.wait();
      return;
    }
    constexpr std::chrono::microseconds kMinBackoff{50};
    constexpr std::chrono::microseconds kMaxBackoff{1000};
    std::chrono::microseconds backoff = kMinBackoff;
    std::uint64_t seen = activity_.load(std::memory_order_acquire);
    while (future.wait_for(0s) == std::future_status::timeout) {
      if (try_run_one(group)) {
        seen = activity_.load(std::memory_order_acquire);
        backoff = kMinBackoff;
        continue;
      }
      wait_for_activity(seen, backoff);
      seen = activity_.load(std::memory_order_acquire);
      backoff = std::min(backoff * 2, kMaxBackoff);
    }
  }

  /// Run fn(i) for i in [begin, end), partitioned into ~3×threads chunks
  /// and executed on the pool; blocks until all chunks finish.
  /// Exceptions from chunks propagate (first one wins). Reentrant: may
  /// be called from inside a pool task.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Like parallel_for but hands each worker a [chunk_begin, chunk_end)
  /// range — cheaper for tight loops like SpMV rows.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    TaskGroup group = kNoGroup;
    std::function<void()> fn;
  };

  void worker_loop() EXCLUDES(mutex_);

  /// Push under the lock, notify outside it.
  void enqueue(Task task) EXCLUDES(mutex_);

  /// Bump the activity epoch and wake parked helpers. Called after
  /// every submission and every task completion.
  void note_activity() noexcept {
    activity_.fetch_add(1, std::memory_order_acq_rel);
    idle_cv_.notify_all();
  }

  /// Park until the activity epoch differs from `seen`, work appears in
  /// the queue, or `timeout` elapses — whichever is first. Helpers call
  /// this instead of a fixed-period poll; see wait_and_help.
  void wait_for_activity(std::uint64_t seen,
                         std::chrono::microseconds timeout) EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    if (activity_.load(std::memory_order_acquire) != seen) return;
    if (!queue_.empty()) return;
    idle_cv_.wait_for(mutex_, timeout);
  }

  /// Extract the first queued task of `group` (kNoGroup = any) into
  /// `out`; false when none is eligible. REQUIRES(mutex_) is what makes
  /// try_run_one's lock discipline a compile-time fact under clang:
  /// drop the annotation and the guarded queue_ access below no longer
  /// typechecks under -Werror=thread-safety.
  bool pop_task_locked(TaskGroup group, std::function<void()>& out)
      REQUIRES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  /// Wakes helpers parked in wait_for_activity (distinct from cv_ so a
  /// completion does not stampede every idle worker).
  CondVar idle_cv_;
  std::deque<Task> queue_ GUARDED_BY(mutex_);
  std::atomic<TaskGroup> next_group_{1};
  /// Monotone epoch, bumped on every submission and completion. Read
  /// lock-free; wait_for_activity pairs it with mutex_ + idle_cv_.
  std::atomic<std::uint64_t> activity_{0};
  bool stopping_ GUARDED_BY(mutex_) = false;
};

}  // namespace mecoff::parallel
