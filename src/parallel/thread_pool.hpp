// Fixed-size worker pool. This is the execution backend of the
// mini-Spark engine (the repo's stand-in for the paper's Spark cluster):
// per-subgraph label propagation and the blocked SpMV inside Lanczos
// both fan out over it.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mecoff::parallel {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Run fn(i) for i in [begin, end), partitioned into ~3×threads chunks
  /// and executed on the pool; blocks until all chunks finish.
  /// Exceptions from chunks propagate (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Like parallel_for but hands each worker a [chunk_begin, chunk_end)
  /// range — cheaper for tight loops like SpMV rows.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mecoff::parallel
