#include "parallel/parallel_spmv.hpp"

#include "common/contracts.hpp"

namespace mecoff::parallel {

linalg::LinearOperator make_parallel_operator(
    const linalg::SparseMatrix& matrix, ThreadPool& pool,
    linalg::SpmvKernel kernel) {
  MECOFF_EXPECTS(matrix.rows() == matrix.cols());
  return linalg::LinearOperator{
      matrix.rows(),
      [&matrix, &pool, kernel](std::span<const double> x,
                               std::span<double> y) {
        pool.parallel_for_chunks(
            0, matrix.rows(),
            [&matrix, x, y, kernel](std::size_t lo, std::size_t hi) {
              matrix.multiply_rows(x, y, lo, hi, kernel);
            });
      }};
}

}  // namespace mecoff::parallel
