// Parallel sparse mat-vec: the kernel the paper offloads to Spark
// ("we calculate the eigenvalues of L using Spark... the running time
// is close to the other two algorithms", Fig. 9). Wraps a CSR matrix
// into a LinearOperator whose apply() distributes row blocks over the
// thread pool, so Lanczos runs unchanged on either backend.
#pragma once

#include "linalg/lanczos.hpp"
#include "linalg/sparse_matrix.hpp"
#include "parallel/thread_pool.hpp"

namespace mecoff::parallel {

/// Operator computing y = A·x with row blocks on `pool`. `matrix` and
/// `pool` must outlive the returned operator. `kernel` selects the
/// per-row summation order (linalg::SpmvKernel); because rows are
/// independent, the pooled result is bit-identical to the serial
/// result of the same kernel no matter how the pool chunks the range.
[[nodiscard]] linalg::LinearOperator make_parallel_operator(
    const linalg::SparseMatrix& matrix, ThreadPool& pool,
    linalg::SpmvKernel kernel = linalg::SpmvKernel::kNaive);

}  // namespace mecoff::parallel
