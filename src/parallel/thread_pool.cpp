#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/contracts.hpp"

namespace mecoff::parallel {

namespace {
// Which pool (if any) owns the calling thread. Set once per worker at
// startup; in_worker_thread() compares it against `this`, so threads of
// one pool are non-workers to every other pool.
thread_local ThreadPool* tl_owner_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::in_worker_thread() const { return tl_owner_pool == this; }

void ThreadPool::enqueue(Task task) {
  {
    const MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  note_activity();
}

bool ThreadPool::pop_task_locked(TaskGroup group, std::function<void()>& out) {
  auto it = queue_.begin();
  if (group != kNoGroup) {
    // First queued task of this group; the scan is O(queue length)
    // but queues stay short (≈3×threads chunks per section).
    it = std::find_if(queue_.begin(), queue_.end(),
                      [group](const Task& t) { return t.group == group; });
  }
  if (it == queue_.end()) return false;
  out = std::move(it->fn);
  queue_.erase(it);
  return true;
}

bool ThreadPool::try_run_one(TaskGroup group) {
  std::function<void()> fn;
  {
    const MutexLock lock(mutex_);
    if (!pop_task_locked(group, fn)) return false;
  }
  fn();
  note_activity();
  return true;
}

void ThreadPool::worker_loop() {
  tl_owner_pool = this;
  while (true) {
    std::function<void()> fn;
    {
      const MutexLock lock(mutex_);
      // Explicit predicate loop (not a wait-with-lambda): the guarded
      // reads stay inside the analysed critical section, and spurious
      // wakeups are handled the same way.
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and drained
      fn = std::move(queue_.front().fn);
      queue_.pop_front();
    }
    fn();
    note_activity();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end,
                      [&fn](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) fn(i);
                      });
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  MECOFF_EXPECTS(begin <= end);
  if (begin == end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks =
      std::min(total, std::max<std::size_t>(1, 3 * thread_count()));
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  const TaskGroup group = make_group();
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(submit_to(group, [&fn, lo, hi] { fn(lo, hi); }));
  }
  // Wait for EVERY chunk before rethrowing: the chunks reference `fn`
  // (the caller's frame), so propagating the first exception while
  // later chunks are still running would leave them touching a
  // destroyed closure. The grouped wait_and_help makes this safe from
  // inside a pool task: a waiting worker runs this section's own
  // chunks itself instead of blocking on work stuck behind it.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      wait_and_help(f, group);
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mecoff::parallel
