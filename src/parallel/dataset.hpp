// Mini-Spark: an RDD-flavoured distributed-collection abstraction over
// the local ThreadPool. This is the repo's substitute for the Apache
// Spark cluster the paper uses to accelerate its matrix computations
// (see DESIGN.md §2): the programming model (parallelize → map/filter →
// reduce/collect, partition-granular scheduling) is the same; the
// executors are threads instead of cluster workers.
//
// Datasets are immutable; every transformation yields a new Dataset.
// Transformations are eager (no lazy DAG) — at the scales of this paper
// the scheduling win of laziness is irrelevant, and eager semantics keep
// failure propagation simple (exceptions surface at the call site).
#pragma once

#include <functional>
#include <future>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "parallel/thread_pool.hpp"

namespace mecoff::parallel {

template <typename T>
class Dataset {
 public:
  /// Distribute `items` over the pool in `partitions` slices
  /// (0 = one per pool thread, minimum 1).
  static Dataset parallelize(std::vector<T> items, ThreadPool& pool,
                             std::size_t partitions = 0) {
    if (partitions == 0) partitions = pool.thread_count();
    partitions = std::max<std::size_t>(1, std::min(partitions,
                                                   std::max<std::size_t>(
                                                       items.size(), 1)));
    Dataset ds(pool);
    ds.partitions_.resize(partitions);
    for (std::size_t i = 0; i < items.size(); ++i)
      ds.partitions_[i % partitions].push_back(std::move(items[i]));
    return ds;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  [[nodiscard]] std::size_t num_partitions() const {
    return partitions_.size();
  }

  /// One task per partition, applying `fn` element-wise.
  template <typename F, typename U = std::invoke_result_t<F, const T&>>
  Dataset<U> map(F fn) const {
    Dataset<U> out(*pool_);
    out.partitions_.resize(partitions_.size());
    run_per_partition([&](std::size_t p) {
      out.partitions_[p].reserve(partitions_[p].size());
      for (const T& item : partitions_[p])
        out.partitions_[p].push_back(fn(item));
    });
    return out;
  }

  /// Keep elements where `pred` holds.
  template <typename P>
  Dataset filter(P pred) const {
    Dataset out(*pool_);
    out.partitions_.resize(partitions_.size());
    run_per_partition([&](std::size_t p) {
      for (const T& item : partitions_[p])
        if (pred(item)) out.partitions_[p].push_back(item);
    });
    return out;
  }

  /// Associative + commutative reduction. Returns nullopt when empty.
  template <typename F>
  std::optional<T> reduce(F combine) const {
    std::vector<std::optional<T>> partials(partitions_.size());
    run_per_partition([&](std::size_t p) {
      std::optional<T> acc;
      for (const T& item : partitions_[p]) {
        if (!acc)
          acc = item;
        else
          acc = combine(*acc, item);
      }
      partials[p] = std::move(acc);
    });
    std::optional<T> total;
    for (std::optional<T>& part : partials) {
      if (!part) continue;
      if (!total)
        total = std::move(part);
      else
        total = combine(*total, *part);
    }
    return total;
  }

  /// Gather all elements (partition order, then insertion order).
  [[nodiscard]] std::vector<T> collect() const {
    std::vector<T> out;
    out.reserve(size());
    for (const auto& p : partitions_)
      out.insert(out.end(), p.begin(), p.end());
    return out;
  }

  /// Run `fn(partition_index, elements)` once per partition, in
  /// parallel. The hook LPA uses: one propagation task per sub-graph.
  void for_each_partition(
      const std::function<void(std::size_t, const std::vector<T>&)>& fn)
      const {
    run_per_partition([&](std::size_t p) { fn(p, partitions_[p]); });
  }

 private:
  template <typename>
  friend class Dataset;

  explicit Dataset(ThreadPool& pool) : pool_(&pool) {}

  void run_per_partition(const std::function<void(std::size_t)>& fn) const {
    // Grouped help-while-wait: safe to call from inside a pool task
    // (the waiting thread runs this section's own partitions), and the
    // deferred rethrow keeps a failing partition from unwinding this
    // frame while siblings still reference `fn`.
    const ThreadPool::TaskGroup group = pool_->make_group();
    std::vector<std::future<void>> futures;
    futures.reserve(partitions_.size());
    for (std::size_t p = 0; p < partitions_.size(); ++p)
      futures.push_back(pool_->submit_to(group, [&fn, p] { fn(p); }));
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        pool_->wait_and_help(f, group);
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  ThreadPool* pool_;
  std::vector<std::vector<T>> partitions_;
};

}  // namespace mecoff::parallel
