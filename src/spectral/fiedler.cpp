#include "spectral/fiedler.hpp"

#include <algorithm>
#include <string>

#include "common/contracts.hpp"
#include "graph/components.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/power_iteration.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_spmv.hpp"

namespace mecoff::spectral {

FiedlerResult fiedler_pair(const graph::WeightedGraph& g,
                           const FiedlerOptions& options) {
  MECOFF_EXPECTS(g.num_nodes() >= 2);
  MECOFF_TRACE_SPAN_ARG("spectral.eigensolve", g.num_nodes());
  MECOFF_COUNTER_ADD("spectral.eigensolve.runs", 1);

  const linalg::SparseMatrix lap = linalg::laplacian(g);
  const linalg::LinearOperator op =
      options.pool != nullptr
          ? parallel::make_parallel_operator(lap, *options.pool,
                                             options.spmv_kernel)
          : linalg::make_operator(lap, options.spmv_kernel);

  FiedlerResult out;
  if (options.backend == EigenBackend::kDensePowerNaive) {
    // Explicit dense Laplacian; every matvec is a full O(n²) row sweep
    // (optionally row-parallel on the pool).
    const linalg::DenseMatrix dense = linalg::dense_laplacian(g);
    const std::size_t n = g.num_nodes();
    linalg::LinearOperator dense_op{
        n, [&dense, &options, n](std::span<const double> x,
                                 std::span<double> y) {
          const auto rows = [&](std::size_t lo, std::size_t hi) {
            for (std::size_t r = lo; r < hi; ++r)
              y[r] = linalg::dot(dense.row(r), x);
          };
          if (options.pool != nullptr)
            options.pool->parallel_for_chunks(0, n, rows);
          else
            rows(0, n);
        }};
    linalg::PowerOptions popt;
    popt.tolerance = options.tolerance;
    popt.max_iterations = options.max_iterations;
    popt.deflate = {linalg::constant_unit(n)};
    popt.seed = options.seed;
    const linalg::PowerResult res =
        linalg::power_smallest_shifted(dense_op, lap.gershgorin_bound(),
                                       popt);
    out.value = res.pair.value;
    out.vector = res.pair.vector;
    out.converged = res.converged;
    out.matvec_count = res.iterations;
    if (out.value < 0.0 && out.value > -1e-9) out.value = 0.0;
    return out;
  }
  if (options.backend == EigenBackend::kLanczos) {
    linalg::LanczosOptions lopt;
    lopt.num_pairs = 1;
    lopt.tolerance = options.tolerance;
    lopt.max_subspace = options.max_subspace;
    lopt.deflate = {linalg::constant_unit(g.num_nodes())};
    lopt.seed = options.seed;
    if (options.warm_start != nullptr) {
      if (options.warm_start->size() != g.num_nodes())
        throw PreconditionError(
            "Fiedler warm-start vector has dimension " +
            std::to_string(options.warm_start->size()) +
            " but the graph has " + std::to_string(g.num_nodes()) +
            " nodes");
      lopt.initial_vector = *options.warm_start;
      lopt.initial_subspace =
          std::min(std::max<std::size_t>(options.warm_subspace, 2),
                   g.num_nodes());
      MECOFF_COUNTER_ADD("spectral.eigensolve.warm_starts", 1);
    }
    const linalg::LanczosResult res = linalg::lanczos_smallest(op, lopt);
    MECOFF_ENSURES(!res.pairs.empty());
    out.value = res.pairs.front().value;
    out.vector = res.pairs.front().vector;
    out.converged = res.converged;
    out.matvec_count = res.matvec_count;
  } else {
    linalg::PowerOptions popt;
    popt.tolerance = options.tolerance;
    popt.max_iterations = options.max_iterations;
    popt.deflate = {linalg::constant_unit(g.num_nodes())};
    popt.seed = options.seed;
    const linalg::PowerResult res =
        linalg::power_smallest_shifted(op, lap.gershgorin_bound(), popt);
    out.value = res.pair.value;
    out.vector = res.pair.vector;
    out.converged = res.converged;
    out.matvec_count = res.iterations;
  }

  // Numerical floor: λ₂ of a connected graph is positive but Lanczos can
  // return a tiny negative due to roundoff.
  if (out.value < 0.0 && out.value > -1e-9) out.value = 0.0;
  return out;
}

}  // namespace mecoff::spectral
