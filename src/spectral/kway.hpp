// K-way spectral partitioning by recursive bisection — the standard
// generalization of the paper's two-way cut. A user facing SEVERAL edge
// servers wants k+1 parts (device + one per server); recursive Fiedler
// bisection with proportional part budgets is the classic way to get
// them from a two-way cutter.
#pragma once

#include <cstdint>

#include "spectral/bipartitioner.hpp"

namespace mecoff::spectral {

struct KwayOptions {
  /// Number of parts (>= 1).
  std::size_t parts = 4;
  SpectralOptions spectral;
};

struct KwayResult {
  /// part_of[node] in [0, parts_used); labels are dense.
  std::vector<std::uint32_t> part_of;
  std::uint32_t parts_used = 0;
  /// Σ weight of edges whose endpoints lie in different parts.
  double total_cut = 0.0;
};

/// Partition `g` into at most `options.parts` parts. Fewer parts come
/// back when the graph runs out of nodes (each part is non-empty).
/// Budgets halve proportionally: the heavier cut side receives the
/// larger share of the remaining part budget.
[[nodiscard]] KwayResult kway_partition(const graph::WeightedGraph& g,
                                        const KwayOptions& options);

/// Σ weight of edges crossing between different labels (validation
/// helper; kway_partition already reports it).
[[nodiscard]] double kway_cut_weight(const graph::WeightedGraph& g,
                                     const std::vector<std::uint32_t>& part_of);

}  // namespace mecoff::spectral
