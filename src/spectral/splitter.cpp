#include "spectral/splitter.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"

namespace mecoff::spectral {

using graph::Bipartition;
using graph::NodeId;
using graph::WeightedGraph;

Bipartition sign_split(const WeightedGraph& g,
                       std::span<const double> fiedler) {
  MECOFF_EXPECTS(fiedler.size() == g.num_nodes());
  Bipartition out;
  out.side.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    out.side[v] = fiedler[v] > 0.0 ? 1 : 0;
  out.cut_weight = graph::cut_weight(g, out.side);
  return out;
}

Bipartition sweep_split(const WeightedGraph& g,
                        std::span<const double> fiedler) {
  MECOFF_EXPECTS(fiedler.size() == g.num_nodes());
  const std::size_t n = g.num_nodes();
  Bipartition out;
  out.side.assign(n, 0);
  if (n < 2) {
    out.cut_weight = 0.0;
    return out;
  }

  // Nodes in ascending Fiedler order; prefix k goes to side 0.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return fiedler[a] != fiedler[b] ? fiedler[a] < fiedler[b] : a < b;
  });
  std::vector<std::size_t> rank(n);
  for (std::size_t i = 0; i < n; ++i) rank[order[i]] = i;

  // Incremental cut maintenance: start with everything on side 1; move
  // nodes to side 0 in sweep order. Moving node v changes the cut by
  // Σ_(v,u) w · (+1 if u still on side 1, −1 if u already moved).
  std::vector<bool> moved(n, false);
  double cut = 0.0;
  double best_cut = 0.0;
  std::size_t best_prefix = 0;
  bool have_best = false;

  for (std::size_t k = 0; k + 1 < n; ++k) {  // leave side 1 non-empty
    const NodeId v = order[k];
    for (const graph::Adjacency& adj : g.neighbors(v))
      cut += moved[adj.neighbor] ? -adj.weight : adj.weight;
    moved[v] = true;
    if (!have_best || cut < best_cut) {
      best_cut = cut;
      best_prefix = k + 1;
      have_best = true;
    }
  }
  MECOFF_ENSURES(have_best);

  for (std::size_t i = 0; i < n; ++i)
    out.side[order[i]] = i < best_prefix ? 0 : 1;
  out.cut_weight = best_cut;
  MECOFF_ENSURES(std::abs(out.cut_weight -
                          graph::cut_weight(g, out.side)) <=
                 1e-6 * (1.0 + std::abs(out.cut_weight)));
  return out;
}

Bipartition sweep_split_ratio(const WeightedGraph& g,
                              std::span<const double> fiedler) {
  MECOFF_EXPECTS(fiedler.size() == g.num_nodes());
  const std::size_t n = g.num_nodes();
  Bipartition out;
  out.side.assign(n, 0);
  if (n < 2) {
    out.cut_weight = 0.0;
    return out;
  }

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return fiedler[a] != fiedler[b] ? fiedler[a] < fiedler[b] : a < b;
  });

  // Incremental cut as in sweep_split, but scored by
  // cut / min(prefix weight, suffix weight).
  const double total_weight = g.total_node_weight();
  std::vector<bool> moved(n, false);
  double cut = 0.0;
  double prefix_weight = 0.0;
  double best_score = 0.0;
  std::size_t best_prefix = 0;
  bool have_best = false;

  for (std::size_t k = 0; k + 1 < n; ++k) {
    const NodeId v = order[k];
    for (const graph::Adjacency& adj : g.neighbors(v))
      cut += moved[adj.neighbor] ? -adj.weight : adj.weight;
    moved[v] = true;
    prefix_weight += g.node_weight(v);
    const double min_side =
        std::min(prefix_weight, total_weight - prefix_weight);
    if (min_side <= 0.0) continue;  // weightless side: no meaningful ratio
    const double score = cut / min_side;
    if (!have_best || score < best_score) {
      best_score = score;
      best_prefix = k + 1;
      have_best = true;
    }
  }
  if (!have_best) best_prefix = 1;  // all-zero weights: any non-trivial split

  for (std::size_t i = 0; i < n; ++i)
    out.side[order[i]] = i < best_prefix ? 0 : 1;
  out.cut_weight = graph::cut_weight(g, out.side);
  return out;
}

Bipartition split_by_policy(const WeightedGraph& g,
                            std::span<const double> fiedler,
                            SplitPolicy policy) {
  switch (policy) {
    case SplitPolicy::kSign:
      return sign_split(g, fiedler);
    case SplitPolicy::kSweep:
      return sweep_split(g, fiedler);
    case SplitPolicy::kSweepRatio:
      return sweep_split_ratio(g, fiedler);
  }
  throw PreconditionError("unknown split policy");
}

}  // namespace mecoff::spectral
