#include "spectral/kway.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "graph/subgraph.hpp"

namespace mecoff::spectral {

using graph::NodeId;
using graph::WeightedGraph;

namespace {

/// Recursively assign parts [first_label, first_label + budget) to the
/// nodes of `sub` (ids local to `sub`), writing global labels through
/// `to_global` into `part_of`.
void bisect(const graph::Subgraph& sub, std::size_t budget,
            std::uint32_t first_label, SpectralBipartitioner& cutter,
            std::vector<std::uint32_t>& part_of,
            const std::vector<NodeId>& to_global) {
  MECOFF_EXPECTS(budget >= 1);
  const WeightedGraph& g = sub.graph;
  if (budget == 1 || g.num_nodes() <= 1) {
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      part_of[to_global[sub.to_parent[v]]] = first_label;
    return;
  }

  const graph::Bipartition cut = cutter.bipartition(g);
  std::vector<NodeId> side_nodes[2];
  double side_weight[2] = {0.0, 0.0};
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    side_nodes[cut.side[v]].push_back(v);
    side_weight[cut.side[v]] += g.node_weight(v);
  }
  if (side_nodes[0].empty() || side_nodes[1].empty()) {
    // Degenerate cut: cannot split further; collapse to one label.
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      part_of[to_global[sub.to_parent[v]]] = first_label;
    return;
  }

  // Weight-proportional budgets, clamped so each side keeps at least
  // one part: an unbalanced min cut (say one cluster vs. three) must
  // hand the small side a single part, not force further cuts into it.
  const double total_weight =
      std::max(side_weight[0] + side_weight[1], 1e-300);
  std::size_t budget0 = static_cast<std::size_t>(
      std::lround(static_cast<double>(budget) * side_weight[0] /
                  total_weight));
  budget0 = std::clamp<std::size_t>(budget0, 1, budget - 1);
  // A side never needs more parts than it has nodes; give the surplus
  // to the other side (and vice versa), guarding the subtraction.
  budget0 = std::min(budget0, side_nodes[0].size());
  if (budget - budget0 > side_nodes[1].size())
    budget0 = std::min(budget - side_nodes[1].size(),
                       side_nodes[0].size());
  const std::size_t budgets[2] = {budget0, budget - budget0};

  std::uint32_t next_label = first_label;
  for (std::uint8_t s = 0; s <= 1; ++s) {
    graph::Subgraph child = graph::induced_subgraph(g, side_nodes[s]);
    // Compose mappings: child-local → sub-local handled by
    // child.to_parent; sub-local → global by our caller's table.
    std::vector<NodeId> child_to_global(child.to_parent.size());
    for (std::size_t i = 0; i < child.to_parent.size(); ++i)
      child_to_global[i] = to_global[sub.to_parent[child.to_parent[i]]];
    // Re-wrap as an identity subgraph so recursion sees a flat mapping.
    graph::Subgraph flat;
    flat.graph = child.graph;
    flat.to_parent.resize(child.graph.num_nodes());
    for (NodeId v = 0; v < child.graph.num_nodes(); ++v)
      flat.to_parent[v] = v;
    bisect(flat, budgets[s], next_label, cutter, part_of,
           child_to_global);
    next_label += static_cast<std::uint32_t>(budgets[s]);
  }
}

}  // namespace

KwayResult kway_partition(const WeightedGraph& g,
                          const KwayOptions& options) {
  MECOFF_EXPECTS(options.parts >= 1);
  KwayResult result;
  result.part_of.assign(g.num_nodes(), 0);
  if (g.empty()) return result;

  SpectralBipartitioner cutter(options.spectral);
  graph::Subgraph whole;
  whole.graph = g;
  whole.to_parent.resize(g.num_nodes());
  std::vector<NodeId> identity(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    whole.to_parent[v] = v;
    identity[v] = v;
  }
  bisect(whole, options.parts, 0, cutter, result.part_of, identity);

  // Densify labels (budget splits can leave gaps when sides ran out of
  // nodes before exhausting their budget).
  std::vector<std::uint32_t> remap;
  for (std::uint32_t& label : result.part_of) {
    while (remap.size() <= label) remap.push_back(UINT32_MAX);
    if (remap[label] == UINT32_MAX)
      remap[label] = result.parts_used++;
    label = remap[label];
  }
  result.total_cut = kway_cut_weight(g, result.part_of);
  return result;
}

double kway_cut_weight(const WeightedGraph& g,
                       const std::vector<std::uint32_t>& part_of) {
  MECOFF_EXPECTS(part_of.size() == g.num_nodes());
  double sum = 0.0;
  for (const graph::Edge& e : g.edges())
    if (part_of[e.u] != part_of[e.v]) sum += e.weight;
  return sum;
}

}  // namespace mecoff::spectral
