// The Bipartitioner the paper's offloader plugs in: Fiedler pair then
// sign/sweep split. Handles the degenerate cases the pure math cannot:
// empty graphs, single nodes, and disconnected inputs (each component
// is split recursively against the overall best cut... in practice the
// pipeline always hands us connected components, but a library must not
// misbehave when called directly).
#pragma once

#include "graph/partition.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/splitter.hpp"

namespace mecoff::spectral {

struct SpectralOptions {
  FiedlerOptions fiedler;
  SplitPolicy split = SplitPolicy::kSweep;
};

class SpectralBipartitioner final : public graph::Bipartitioner {
 public:
  explicit SpectralBipartitioner(SpectralOptions options = {});

  [[nodiscard]] graph::Bipartition bipartition(
      const graph::WeightedGraph& g) override;

  [[nodiscard]] std::string name() const override { return "spectral"; }

  /// λ₂ of the last connected graph partitioned (diagnostics).
  [[nodiscard]] double last_fiedler_value() const {
    return last_fiedler_value_;
  }

  /// False when the last bipartition() used a Fiedler vector that did
  /// NOT reach tolerance — the cut is a best-effort guess, and callers
  /// with a fallback (the offloader's spectral → KL → all-remote
  /// chain) should take it. Degenerate and disconnected inputs need no
  /// eigensolve and report true.
  [[nodiscard]] bool last_converged() const { return last_converged_; }

  /// Fiedler solves below tolerance since construction.
  [[nodiscard]] std::size_t nonconverged_count() const {
    return nonconverged_count_;
  }

  /// Arm the NEXT bipartition() with a warm-start Fiedler vector (the
  /// incremental re-solve path). Consumed by exactly one call — the
  /// call after it is cold again, so a stale vector can never leak
  /// into an unrelated graph. `v` is not owned and must stay alive
  /// until that call; nullptr disarms. Degenerate/disconnected inputs
  /// skip the eigensolve and simply drop the hint.
  void set_warm_start(const linalg::Vec* v) { warm_start_ = v; }

  /// Fiedler vector from the last bipartition() that ran an eigensolve
  /// (unit norm); empty when the last input was degenerate or
  /// disconnected. This is what a caller stores to warm the next solve.
  [[nodiscard]] const linalg::Vec& last_fiedler_vector() const {
    return last_fiedler_vector_;
  }

 private:
  SpectralOptions options_;
  double last_fiedler_value_ = 0.0;
  bool last_converged_ = true;
  std::size_t nonconverged_count_ = 0;
  const linalg::Vec* warm_start_ = nullptr;
  linalg::Vec last_fiedler_vector_;
};

}  // namespace mecoff::spectral
