// The Bipartitioner the paper's offloader plugs in: Fiedler pair then
// sign/sweep split. Handles the degenerate cases the pure math cannot:
// empty graphs, single nodes, and disconnected inputs (each component
// is split recursively against the overall best cut... in practice the
// pipeline always hands us connected components, but a library must not
// misbehave when called directly).
#pragma once

#include "graph/partition.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/splitter.hpp"

namespace mecoff::spectral {

struct SpectralOptions {
  FiedlerOptions fiedler;
  SplitPolicy split = SplitPolicy::kSweep;
};

class SpectralBipartitioner final : public graph::Bipartitioner {
 public:
  explicit SpectralBipartitioner(SpectralOptions options = {});

  [[nodiscard]] graph::Bipartition bipartition(
      const graph::WeightedGraph& g) override;

  [[nodiscard]] std::string name() const override { return "spectral"; }

  /// λ₂ of the last connected graph partitioned (diagnostics).
  [[nodiscard]] double last_fiedler_value() const {
    return last_fiedler_value_;
  }

 private:
  SpectralOptions options_;
  double last_fiedler_value_ = 0.0;
};

}  // namespace mecoff::spectral
