// Fiedler pair (λ₂, v₂) of a weighted graph Laplacian — the quantity
// Theorem 1 of the paper ties to the minimum cut. λ₂ is the algebraic
// connectivity; the signs of v₂'s entries define the spectral
// bipartition.
//
// Two solver backends:
//  * Lanczos (default): restarted Lanczos with full reorthogonalization
//    on L with the constant null vector deflated;
//  * shifted power iteration: dominant pair of (c·I − L) after the same
//    deflation — simpler, slower; kept for the eigensolver ablation and
//    as an independent oracle in tests.
//
// When a thread pool is supplied, SpMV row blocks run on it — the
// "with Spark" configuration of Fig. 9.
#pragma once

#include <optional>

#include "graph/weighted_graph.hpp"
#include "linalg/lanczos.hpp"
#include "parallel/thread_pool.hpp"

namespace mecoff::spectral {

enum class EigenBackend {
  kLanczos,
  kShiftedPower,
  /// Shifted power iteration on an explicitly formed DENSE Laplacian
  /// (O(n²) per matvec) — a deliberately naive backend reproducing the
  /// eigensolver the paper times in Fig. 9 ("lots of matrix
  /// multiplications about the graph spectrum calculation"); the pool
  /// parallelizes the dense matvec rows, standing in for the paper's
  /// Spark acceleration. Never use this outside runtime studies.
  kDensePowerNaive,
};

struct FiedlerOptions {
  EigenBackend backend = EigenBackend::kLanczos;
  double tolerance = 1e-8;
  /// Execution engine for the SpMV kernel; null = serial.
  parallel::ThreadPool* pool = nullptr;
  /// SpMV summation order (linalg::SpmvKernel). kNaive replays the
  /// seed's bits exactly; kBlocked is the tiled 4-wide hot-path kernel
  /// whose low-order bits differ (see sparse_matrix.hpp).
  linalg::SpmvKernel spmv_kernel = linalg::SpmvKernel::kNaive;
  std::uint64_t seed = 0x5eed;
  /// Work bounds: every backend terminates within these no matter how
  /// ill-conditioned the graph is — the solve may come back with
  /// converged = false, but it always comes back (the offloader's
  /// degrade-don't-die chain relies on that).
  std::size_t max_subspace = 400;      ///< Lanczos restart ceiling
  std::size_t max_iterations = 20000;  ///< power-iteration ceiling
  /// Warm start (Lanczos backend only): an approximate Fiedler vector
  /// of a nearby Laplacian — e.g. the previous solve's vector after a
  /// small edge-weight or channel perturbation. Not owned; must
  /// outlive the call; must have size == g.num_nodes()
  /// (PreconditionError otherwise). The Krylov subspace starts at
  /// `warm_subspace` instead of the cold default, so a good seed
  /// converges in a fraction of the cold matvec budget; a bad seed
  /// merely restarts like a cold solve. Power backends ignore it.
  const linalg::Vec* warm_start = nullptr;
  std::size_t warm_subspace = 10;
};

struct FiedlerResult {
  double value = 0.0;       ///< λ₂ (algebraic connectivity).
  linalg::Vec vector;       ///< unit-norm Fiedler vector.
  bool converged = false;
  std::size_t matvec_count = 0;
};

/// Compute the Fiedler pair of `g`'s Laplacian.
///
/// Preconditions: `g` is connected with at least 2 nodes (callers split
/// at component boundaries first — exactly what the pipeline does).
[[nodiscard]] FiedlerResult fiedler_pair(const graph::WeightedGraph& g,
                                         const FiedlerOptions& options = {});

}  // namespace mecoff::spectral
