// Fiedler pair (λ₂, v₂) of a weighted graph Laplacian — the quantity
// Theorem 1 of the paper ties to the minimum cut. λ₂ is the algebraic
// connectivity; the signs of v₂'s entries define the spectral
// bipartition.
//
// Two solver backends:
//  * Lanczos (default): restarted Lanczos with full reorthogonalization
//    on L with the constant null vector deflated;
//  * shifted power iteration: dominant pair of (c·I − L) after the same
//    deflation — simpler, slower; kept for the eigensolver ablation and
//    as an independent oracle in tests.
//
// When a thread pool is supplied, SpMV row blocks run on it — the
// "with Spark" configuration of Fig. 9.
#pragma once

#include <optional>

#include "graph/weighted_graph.hpp"
#include "linalg/lanczos.hpp"
#include "parallel/thread_pool.hpp"

namespace mecoff::spectral {

enum class EigenBackend {
  kLanczos,
  kShiftedPower,
  /// Shifted power iteration on an explicitly formed DENSE Laplacian
  /// (O(n²) per matvec) — a deliberately naive backend reproducing the
  /// eigensolver the paper times in Fig. 9 ("lots of matrix
  /// multiplications about the graph spectrum calculation"); the pool
  /// parallelizes the dense matvec rows, standing in for the paper's
  /// Spark acceleration. Never use this outside runtime studies.
  kDensePowerNaive,
};

struct FiedlerOptions {
  EigenBackend backend = EigenBackend::kLanczos;
  double tolerance = 1e-8;
  /// Execution engine for the SpMV kernel; null = serial.
  parallel::ThreadPool* pool = nullptr;
  std::uint64_t seed = 0x5eed;
  /// Work bounds: every backend terminates within these no matter how
  /// ill-conditioned the graph is — the solve may come back with
  /// converged = false, but it always comes back (the offloader's
  /// degrade-don't-die chain relies on that).
  std::size_t max_subspace = 400;      ///< Lanczos restart ceiling
  std::size_t max_iterations = 20000;  ///< power-iteration ceiling
};

struct FiedlerResult {
  double value = 0.0;       ///< λ₂ (algebraic connectivity).
  linalg::Vec vector;       ///< unit-norm Fiedler vector.
  bool converged = false;
  std::size_t matvec_count = 0;
};

/// Compute the Fiedler pair of `g`'s Laplacian.
///
/// Preconditions: `g` is connected with at least 2 nodes (callers split
/// at component boundaries first — exactly what the pipeline does).
[[nodiscard]] FiedlerResult fiedler_pair(const graph::WeightedGraph& g,
                                         const FiedlerOptions& options = {});

}  // namespace mecoff::spectral
