// Turning a Fiedler vector into a two-way cut ("The corresponding two
// parts of the cut can be gotten from the eigenvector corresponding to
// the second smallest eigenvalue", Section III-B).
//
// Two policies:
//  * sign split — the paper's q_i ∈ {+1, −1} indicator: side by sign of
//    v₂[i] (ties to side 0);
//  * sweep split — sort nodes by v₂ value and take the prefix/suffix
//    threshold with the smallest cut weight; never worse than the sign
//    split and standard practice in spectral partitioning. The default.
#pragma once

#include <span>

#include "graph/partition.hpp"
#include "graph/weighted_graph.hpp"

namespace mecoff::spectral {

enum class SplitPolicy {
  kSign,
  kSweep,
  /// Sweep minimizing the RATIO cut(S, S̄) / min(w(S), w(S̄)) over node
  /// weights — the balance-aware variant (normalized/ratio-cut family).
  /// Picks balanced boundaries when plain sweep would shave off slivers.
  kSweepRatio,
};

/// Partition by the sign of the Fiedler vector entries.
[[nodiscard]] graph::Bipartition sign_split(const graph::WeightedGraph& g,
                                            std::span<const double> fiedler);

/// Sweep over thresholds in Fiedler order, returning the cut-minimizing
/// split with both sides non-empty.
[[nodiscard]] graph::Bipartition sweep_split(const graph::WeightedGraph& g,
                                             std::span<const double> fiedler);

/// Sweep minimizing cut / min-side-node-weight (ratio cut).
[[nodiscard]] graph::Bipartition sweep_split_ratio(
    const graph::WeightedGraph& g, std::span<const double> fiedler);

[[nodiscard]] graph::Bipartition split_by_policy(
    const graph::WeightedGraph& g, std::span<const double> fiedler,
    SplitPolicy policy);

}  // namespace mecoff::spectral
