#include "spectral/bipartitioner.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "graph/components.hpp"
#include "obs/obs.hpp"

namespace mecoff::spectral {

using graph::Bipartition;
using graph::WeightedGraph;

SpectralBipartitioner::SpectralBipartitioner(SpectralOptions options)
    : options_(std::move(options)) {}

Bipartition SpectralBipartitioner::bipartition(const WeightedGraph& g) {
  MECOFF_TRACE_SPAN_ARG("spectral.bipartition", g.num_nodes());
  MECOFF_COUNTER_ADD("spectral.bipartition.runs", 1);
  last_converged_ = true;  // degenerate paths need no eigensolve
  last_fiedler_vector_.clear();
  const linalg::Vec* warm = warm_start_;
  warm_start_ = nullptr;  // one-shot: never leaks into the next graph
  Bipartition out;
  out.side.assign(g.num_nodes(), 0);
  out.cut_weight = 0.0;
  if (g.num_nodes() < 2) return out;

  // A disconnected graph already has a zero cut: put the smallest
  // component on side 1 (cheapest non-trivial zero-cut split).
  const graph::ComponentLabels comps = graph::connected_components(g);
  if (comps.count > 1) {
    std::vector<std::size_t> sizes(comps.count, 0);
    for (const std::uint32_t c : comps.component_of) ++sizes[c];
    const std::uint32_t smallest = static_cast<std::uint32_t>(
        std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
      out.side[v] = comps.component_of[v] == smallest ? 1 : 0;
    out.cut_weight = 0.0;
    return out;
  }

  FiedlerOptions fopt = options_.fiedler;
  if (warm != nullptr && warm->size() == g.num_nodes())
    fopt.warm_start = warm;
  const FiedlerResult fiedler = fiedler_pair(g, fopt);
  last_fiedler_vector_ = fiedler.vector;
  last_converged_ = fiedler.converged;
  if (!fiedler.converged) {
    ++nonconverged_count_;
    MECOFF_COUNTER_ADD("spectral.bipartition.nonconverged", 1);
    MECOFF_LOG_WARN << "Fiedler solver did not reach tolerance (graph n="
                    << g.num_nodes() << "); using best available vector";
  }
  last_fiedler_value_ = fiedler.value;
  return split_by_policy(g, fiedler.vector, options_.split);
}

}  // namespace mecoff::spectral
