#include "appmodel/trace_import.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/strings.hpp"

namespace mecoff::appmodel {

namespace {

/// Accumulated observations for one function.
struct FunctionObs {
  double self_time = 0.0;
  std::size_t invocations = 0;
  bool pinned = false;
  std::string component;
};

struct OpenFrame {
  std::size_t function;
  double entered_at;
  double child_time = 0.0;  ///< time spent inside callees
};

}  // namespace

Result<TraceImport> import_trace(const std::string& text,
                                 const TraceImportOptions& options) {
  std::istringstream in(text);

  std::map<std::string, std::size_t> index;
  std::vector<std::string> names;
  std::vector<FunctionObs> observations;
  // Accumulated payload per (min, max) function pair.
  std::map<std::pair<std::size_t, std::size_t>, double> payload;
  // Call edges observed via nesting (caller, callee).
  std::map<std::pair<std::size_t, std::size_t>, bool> call_edges;

  const auto intern = [&](const std::string& name) {
    const auto [it, inserted] = index.try_emplace(name, names.size());
    if (inserted) {
      names.push_back(name);
      observations.emplace_back();
    }
    return it->second;
  };

  std::vector<OpenFrame> stack;
  TraceImport result;
  double last_time = 0.0;
  std::string line;
  std::size_t line_no = 0;

  const auto fail = [&](const std::string& why) {
    return Error("line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;
    ++result.records;

    if (tokens[0] == "enter" || tokens[0] == "exit") {
      double ts = 0.0;
      if (tokens.size() != 3 || !parse_double(tokens[2], ts))
        return fail("expected '" + tokens[0] + " <function> <timestamp>'");
      if (ts < 0.0) return fail("negative timestamp");
      if (ts < last_time) return fail("time runs backwards");
      last_time = ts;

      if (tokens[0] == "enter") {
        const std::size_t fn = intern(tokens[1]);
        if (!stack.empty())
          call_edges[{stack.back().function, fn}] = true;
        stack.push_back(OpenFrame{fn, ts, 0.0});
      } else {
        if (stack.empty()) return fail("'exit' with empty call stack");
        const auto it = index.find(tokens[1]);
        if (it == index.end() || stack.back().function != it->second)
          return fail("'exit " + tokens[1] +
                      "' does not match the open frame '" +
                      names[stack.back().function] + "'");
        const OpenFrame frame = stack.back();
        stack.pop_back();
        const double span = ts - frame.entered_at;
        const double self = span - frame.child_time;
        if (self < -1e-9) return fail("negative self time (overlapping frames)");
        FunctionObs& obs = observations[frame.function];
        obs.self_time += std::max(self, 0.0);
        ++obs.invocations;
        ++result.invocations;
        if (!stack.empty()) stack.back().child_time += span;
        result.total_traced_seconds =
            std::max(result.total_traced_seconds, ts);
      }
    } else if (tokens[0] == "send") {
      double bytes = 0.0;
      if (tokens.size() != 4 || !parse_double(tokens[3], bytes) ||
          bytes < 0.0)
        return fail("expected 'send <from> <to> <bytes>=0'");
      const std::size_t a = intern(tokens[1]);
      const std::size_t b = intern(tokens[2]);
      if (a == b) return fail("send to self is not an exchange");
      payload[std::minmax(a, b)] += bytes;
    } else if (tokens[0] == "pin") {
      if (tokens.size() != 2) return fail("expected 'pin <function>'");
      observations[intern(tokens[1])].pinned = true;
    } else if (tokens[0] == "component") {
      if (tokens.size() != 3)
        return fail("expected 'component <function> <name>'");
      observations[intern(tokens[1])].component = tokens[2];
    } else {
      return fail("unknown record '" + tokens[0] + "'");
    }
  }
  if (!stack.empty())
    return Error("trace ended with " + std::to_string(stack.size()) +
                 " unclosed frame(s); first open: '" +
                 names[stack.front().function] + "'");
  if (names.empty()) return Error("empty trace");

  // Assemble the Application.
  Application app(options.app_name);
  for (std::size_t i = 0; i < names.size(); ++i) {
    FunctionInfo info;
    info.name = names[i];
    info.computation = observations[i].self_time * options.compute_scale;
    info.unoffloadable = observations[i].pinned;
    info.component = observations[i].component;
    app.add_function(std::move(info));
  }
  // Exchanges: every observed payload, plus default bytes for call
  // edges that never sent explicit data.
  for (const auto& [pair, bytes] : payload)
    app.add_exchange(pair.first, pair.second, bytes * options.data_scale);
  for (const auto& [edge, seen] : call_edges) {
    (void)seen;
    const auto key = std::minmax(edge.first, edge.second);
    if (payload.count({key.first, key.second}) == 0)
      app.add_exchange(edge.first, edge.second,
                       options.default_call_bytes);
  }

  result.app = std::move(app);
  return result;
}

}  // namespace mecoff::appmodel
