// App-description DSL — the front end standing in for Soot. Example:
//
//   app FaceRecognition
//   component ui
//     function main      compute=5  unoffloadable
//     function render    compute=8  unoffloadable
//   component vision
//     function detect    compute=120
//     function embed     compute=200
//   call main   detect data=64
//   call detect embed  data=32
//
// Grammar (one statement per line, '#' starts a comment):
//   app <name>
//   component <name>
//   function <name> [compute=<x>] [unoffloadable]
//   call <fn-a> <fn-b> data=<x>
//
// Functions belong to the most recent `component` (or "" before any;
// `component -` resets back to the anonymous component).
// `call` accepts forward references only to already-declared functions,
// keeping diagnostics simple; declare all functions first.
#pragma once

#include <string>

#include "appmodel/application.hpp"
#include "common/result.hpp"

namespace mecoff::appmodel {

/// Parse DSL text. Errors carry the offending line number.
[[nodiscard]] Result<Application> parse_app_dsl(const std::string& text);

/// Serialize an Application back to DSL (round-trips through the parser).
[[nodiscard]] std::string to_app_dsl(const Application& app);

}  // namespace mecoff::appmodel
