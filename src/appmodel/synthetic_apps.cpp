#include "appmodel/synthetic_apps.hpp"

#include <string>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mecoff::appmodel {

namespace {

/// Shorthand builder: declare a function and return its index.
std::size_t fn(Application& app, const std::string& name, double compute,
               const std::string& component, bool pinned = false) {
  FunctionInfo info;
  info.name = name;
  info.computation = compute;
  info.component = component;
  info.unoffloadable = pinned;
  return app.add_function(std::move(info));
}

}  // namespace

Application make_face_recognition_app() {
  Application app("face_recognition");

  // UI component — pinned to the device.
  const auto main_loop = fn(app, "main_loop", 4, "ui", true);
  const auto camera = fn(app, "camera_capture", 6, "ui", true);
  const auto preview = fn(app, "render_preview", 8, "ui", true);
  const auto gallery = fn(app, "gallery_view", 5, "ui", true);

  // Vision component — the offloadable pipeline.
  const auto preprocess = fn(app, "preprocess_frame", 30, "vision");
  const auto detect = fn(app, "detect_faces", 120, "vision");
  const auto landmarks = fn(app, "locate_landmarks", 90, "vision");
  const auto align = fn(app, "align_face", 45, "vision");
  // Tightly coupled embedding cluster (conv stages share activations).
  const auto conv1 = fn(app, "embed_conv1", 160, "vision");
  const auto conv2 = fn(app, "embed_conv2", 170, "vision");
  const auto conv3 = fn(app, "embed_conv3", 150, "vision");
  const auto pool_fc = fn(app, "embed_fc", 80, "vision");

  // Matching component.
  const auto normalize = fn(app, "normalize_vec", 10, "match");
  const auto search = fn(app, "search_index", 140, "match");
  const auto rank = fn(app, "rank_candidates", 35, "match");
  const auto decide = fn(app, "decide_match", 12, "match");
  const auto log_event = fn(app, "log_event", 3, "match");
  const auto notify = fn(app, "notify_ui", 2, "match");

  // Data flow. Camera frames are big; inter-cluster features small.
  app.add_exchange(main_loop, camera, 2);
  app.add_exchange(camera, preprocess, 48);   // raw frame
  app.add_exchange(preprocess, detect, 40);
  app.add_exchange(detect, landmarks, 12);
  app.add_exchange(landmarks, align, 10);
  app.add_exchange(align, conv1, 14);
  app.add_exchange(conv1, conv2, 96);         // huge activations: keep fused
  app.add_exchange(conv2, conv3, 96);
  app.add_exchange(conv3, pool_fc, 64);
  app.add_exchange(pool_fc, normalize, 2);    // tiny embedding
  app.add_exchange(normalize, search, 2);
  app.add_exchange(search, rank, 6);
  app.add_exchange(rank, decide, 2);
  app.add_exchange(decide, notify, 1);
  app.add_exchange(notify, preview, 1);
  app.add_exchange(decide, log_event, 1);
  app.add_exchange(main_loop, gallery, 3);
  app.add_exchange(gallery, search, 4);
  return app;
}

Application make_ar_game_app() {
  Application app("ar_game");

  const auto input = fn(app, "input_poll", 3, "loop", true);
  const auto render = fn(app, "render_frame", 25, "loop", true);
  const auto sensors = fn(app, "imu_read", 4, "loop", true);
  const auto tick = fn(app, "game_tick", 8, "loop", true);

  // Physics — highly coupled: big shared state every step.
  const auto broad = fn(app, "phys_broadphase", 70, "physics");
  const auto narrow = fn(app, "phys_narrowphase", 110, "physics");
  const auto solve = fn(app, "phys_solver", 160, "physics");
  const auto integrate = fn(app, "phys_integrate", 60, "physics");

  // AI — moderately coupled.
  const auto path = fn(app, "ai_pathfind", 130, "ai");
  const auto plan = fn(app, "ai_plan", 90, "ai");
  const auto steer = fn(app, "ai_steering", 40, "ai");

  // World sync — loose.
  const auto delta = fn(app, "world_delta", 25, "sync");
  const auto compress = fn(app, "delta_compress", 45, "sync");
  const auto net_send = fn(app, "net_send", 6, "sync");

  app.add_exchange(input, tick, 1);
  app.add_exchange(sensors, tick, 2);
  app.add_exchange(tick, broad, 18);
  app.add_exchange(broad, narrow, 80);   // contact pairs: heavy
  app.add_exchange(narrow, solve, 85);
  app.add_exchange(solve, integrate, 75);
  app.add_exchange(integrate, tick, 12); // pose updates back to loop
  app.add_exchange(tick, path, 6);
  app.add_exchange(path, plan, 30);
  app.add_exchange(plan, steer, 8);
  app.add_exchange(steer, tick, 3);
  app.add_exchange(tick, delta, 10);
  app.add_exchange(delta, compress, 35);
  app.add_exchange(compress, net_send, 4);
  app.add_exchange(tick, render, 14);
  return app;
}

Application make_video_analytics_app() {
  Application app("video_analytics");

  const auto grab = fn(app, "frame_grab", 5, "capture", true);
  const auto display = fn(app, "overlay_display", 9, "capture", true);

  // Long loosely-coupled filter chain: every stage exchanges a modest
  // frame-sized payload with the next only.
  const char* stages[] = {"decode",  "denoise", "stabilize", "resize",
                          "detect",  "track",   "classify",  "annotate"};
  const double compute[] = {60, 85, 95, 25, 150, 70, 130, 20};
  std::vector<std::size_t> chain;
  for (std::size_t i = 0; i < std::size(stages); ++i)
    chain.push_back(fn(app, stages[i], compute[i], "pipeline"));

  app.add_exchange(grab, chain.front(), 20);
  for (std::size_t i = 1; i < chain.size(); ++i)
    app.add_exchange(chain[i - 1], chain[i], 8);  // loose coupling
  app.add_exchange(chain.back(), display, 4);

  // Side analytics with its own small cluster.
  const auto stats = fn(app, "stats_aggregate", 30, "analytics");
  const auto alert = fn(app, "alert_engine", 22, "analytics");
  const auto store = fn(app, "store_results", 15, "analytics");
  app.add_exchange(chain[5], stats, 5);
  app.add_exchange(stats, alert, 18);
  app.add_exchange(alert, store, 16);
  return app;
}

Application make_voice_assistant_app() {
  Application app("voice_assistant");

  // Always-on front end — pinned.
  const auto mic = fn(app, "mic_capture", 3, "frontend", true);
  const auto wake = fn(app, "wake_word", 25, "frontend", true);
  const auto speaker = fn(app, "audio_out", 4, "frontend", true);

  // ASR — the decoder stages share big lattices (tightly coupled).
  const auto features = fn(app, "acoustic_features", 35, "asr");
  const auto am_score = fn(app, "acoustic_model", 220, "asr");
  const auto decode1 = fn(app, "decoder_pass1", 180, "asr");
  const auto decode2 = fn(app, "decoder_rescore", 140, "asr");

  // NLU + response — loose chain.
  const auto intent = fn(app, "intent_classify", 90, "nlu");
  const auto entities = fn(app, "entity_extract", 70, "nlu");
  const auto dialog = fn(app, "dialog_policy", 40, "nlu");
  const auto tts = fn(app, "tts_synthesize", 160, "nlu");

  app.add_exchange(mic, wake, 6);
  app.add_exchange(wake, features, 24);   // audio window
  app.add_exchange(features, am_score, 30);
  app.add_exchange(am_score, decode1, 110);  // frame posteriors: huge
  app.add_exchange(decode1, decode2, 95);    // lattices: huge
  app.add_exchange(decode2, intent, 2);      // text: tiny
  app.add_exchange(intent, entities, 3);
  app.add_exchange(entities, dialog, 2);
  app.add_exchange(dialog, tts, 2);
  app.add_exchange(tts, speaker, 18);        // synthesized audio
  return app;
}

Application make_slam_navigation_app() {
  Application app("slam_navigation");

  // Sensors and control — pinned, high-rate.
  const auto camera = fn(app, "camera_frames", 8, "sensors", true);
  const auto imu = fn(app, "imu_stream", 4, "sensors", true);
  const auto control = fn(app, "motion_control", 12, "sensors", true);

  // Tracking — latency-critical, heavy per-frame data from camera.
  const auto track_feat = fn(app, "track_features", 95, "tracking");
  const auto pose = fn(app, "pose_estimate", 85, "tracking");

  // Mapping — offloadable bulk.
  const auto local_map = fn(app, "local_mapping", 240, "mapping");
  const auto loop_close = fn(app, "loop_closure", 310, "mapping");
  const auto global_ba = fn(app, "global_bundle_adjust", 420, "mapping");
  const auto reloc = fn(app, "relocalization", 180, "mapping");

  app.add_exchange(camera, track_feat, 64);  // raw frames
  app.add_exchange(imu, pose, 8);
  app.add_exchange(track_feat, pose, 40);
  app.add_exchange(pose, control, 3);
  app.add_exchange(pose, local_map, 12);     // keyframes only
  app.add_exchange(local_map, loop_close, 70);
  app.add_exchange(loop_close, global_ba, 88);
  app.add_exchange(global_ba, local_map, 25);
  app.add_exchange(reloc, pose, 6);
  app.add_exchange(local_map, reloc, 30);
  return app;
}

Application make_random_app(std::size_t functions,
                            double unoffloadable_fraction,
                            std::uint64_t seed) {
  MECOFF_EXPECTS(functions >= 2);
  MECOFF_EXPECTS(unoffloadable_fraction >= 0.0 &&
                 unoffloadable_fraction < 1.0);
  Rng rng(seed);
  Application app("random_app");

  const std::size_t num_components = std::max<std::size_t>(
      1, functions / 24);
  for (std::size_t i = 0; i < functions; ++i) {
    FunctionInfo info;
    info.name = "f" + std::to_string(i);
    info.computation = rng.uniform(1.0, 200.0);
    info.component = "c" + std::to_string(i % num_components);
    info.unoffloadable = rng.bernoulli(unoffloadable_fraction);
    app.add_function(std::move(info));
  }
  // Call-tree: each function i >= 1 exchanges data with a random earlier
  // one, preferring a same-component parent (heavy edge) over a random
  // cross link (light edge).
  for (std::size_t i = 1; i < functions; ++i) {
    std::size_t parent = rng.index(i);
    // Bias toward same-component parents: retry a few times.
    for (int tries = 0; tries < 4; ++tries) {
      if (app.function(parent).component == app.function(i).component) break;
      parent = rng.index(i);
    }
    const bool same =
        app.function(parent).component == app.function(i).component;
    app.add_exchange(parent, i, same ? rng.uniform(30.0, 120.0)
                                     : rng.uniform(1.0, 10.0));
  }
  for (std::size_t i = 0; i + 1 < functions; ++i) {
    if (rng.bernoulli(0.15)) {
      const std::size_t j = rng.index(functions);
      if (j != i) app.add_exchange(i, j, rng.uniform(1.0, 15.0));
    }
  }
  return app;
}

}  // namespace mecoff::appmodel
