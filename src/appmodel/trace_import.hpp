// Execution-trace front end — the dynamic-analysis complement to the
// static DSL (dsl_parser.hpp). Where Soot-style static analysis yields
// the call structure, a profiler run yields the WEIGHTS: how much time
// each function actually burns and how many bytes actually flow between
// functions. This importer turns such a trace into an Application.
//
// Trace format (one record per line, '#' comments):
//   enter <function> <timestamp>
//   exit  <function> <timestamp>
//   send  <from> <to> <bytes>
//   pin   <function>                 # observed touching sensors/IO
//   component <function> <name>      # optional component annotation
//
// Semantics:
//  * enter/exit pairs must nest properly (a per-trace call stack);
//  * a function's computation weight is its SELF time — wall time inside
//    it minus time inside callees — summed over invocations and scaled
//    by `compute_scale`;
//  * an `enter` while another function is open records a call edge
//    caller → callee; call edges with no observed `send` still carry
//    `default_call_bytes` of data (arguments/returns);
//  * `send` accumulates payload bytes on the pair's exchange (scaled by
//    `data_scale`).
#pragma once

#include <string>

#include "appmodel/application.hpp"
#include "common/result.hpp"

namespace mecoff::appmodel {

struct TraceImportOptions {
  /// Computation units per second of self time.
  double compute_scale = 100.0;
  /// Data units per traced byte.
  double data_scale = 1.0 / 1024.0;  // KiB
  /// Data units charged to a call edge never seen in a `send` record.
  double default_call_bytes = 0.5;
  std::string app_name = "traced_app";
};

struct TraceImport {
  Application app;
  std::size_t records = 0;
  std::size_t invocations = 0;
  double total_traced_seconds = 0.0;
};

/// Parse a trace; errors carry line numbers (unbalanced enter/exit,
/// negative timestamps, time running backwards, malformed records).
[[nodiscard]] Result<TraceImport> import_trace(
    const std::string& text, const TraceImportOptions& options = {});

}  // namespace mecoff::appmodel
