#include "appmodel/dsl_parser.hpp"

#include <cmath>
#include <sstream>

#include "common/strings.hpp"

namespace mecoff::appmodel {

namespace {

/// Parse "key=value" into (key, value); returns false on no '='.
bool split_kv(const std::string& token, std::string& key, std::string& value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

}  // namespace

Result<Application> parse_app_dsl(const std::string& text) {
  std::istringstream in(text);
  Application app;
  bool named = false;
  std::string current_component;
  std::string line;
  std::size_t line_no = 0;

  const auto fail = [&](const std::string& why) {
    return Error("line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments, then whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "app") {
      if (tokens.size() != 2) return fail("expected 'app <name>'");
      if (named) return fail("duplicate 'app' directive");
      app = Application(tokens[1]);
      named = true;
    } else if (tokens[0] == "component") {
      if (tokens.size() != 2)
        return fail("expected 'component <name>' ('-' resets)");
      current_component = tokens[1] == "-" ? "" : tokens[1];
    } else if (tokens[0] == "function") {
      if (tokens.size() < 2) return fail("expected 'function <name> ...'");
      FunctionInfo info;
      info.name = tokens[1];
      info.component = current_component;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "unoffloadable") {
          info.unoffloadable = true;
          continue;
        }
        std::string key;
        std::string value;
        if (!split_kv(tokens[i], key, value))
          return fail("unknown function attribute '" + tokens[i] + "'");
        if (key == "compute") {
          // std::from_chars accepts "inf"/"nan"; neither compares < 0,
          // so finiteness must be checked explicitly or a NaN compute
          // cost flows into every downstream energy sum.
          if (!parse_double(value, info.computation) ||
              !std::isfinite(info.computation) || info.computation < 0)
            return fail("bad compute value '" + value + "'");
        } else {
          return fail("unknown function attribute key '" + key + "'");
        }
      }
      if (app.find_function(info.name) != Application::npos)
        return fail("duplicate function '" + info.name + "'");
      app.add_function(std::move(info));
    } else if (tokens[0] == "call") {
      if (tokens.size() != 4) return fail("expected 'call <a> <b> data=<x>'");
      const std::size_t a = app.find_function(tokens[1]);
      const std::size_t b = app.find_function(tokens[2]);
      if (a == Application::npos)
        return fail("unknown function '" + tokens[1] + "'");
      if (b == Application::npos)
        return fail("unknown function '" + tokens[2] + "'");
      if (a == b) return fail("self-call is not a data exchange");
      std::string key;
      std::string value;
      double amount = 0;
      if (!split_kv(tokens[3], key, value) || key != "data" ||
          !parse_double(value, amount) || !std::isfinite(amount) ||
          amount < 0)
        return fail("expected data=<non-negative amount>");
      app.add_exchange(a, b, amount);
    } else {
      return fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (app.num_functions() == 0) return Error("no functions declared");
  return app;
}

std::string to_app_dsl(const Application& app) {
  std::ostringstream out;
  out << "app " << app.name() << '\n';
  std::string current_component;  // parser starts in the anonymous one
  for (const FunctionInfo& f : app.functions()) {
    if (f.component != current_component) {
      current_component = f.component;
      out << "component "
          << (current_component.empty() ? "-" : current_component) << '\n';
    }
    out << "function " << f.name << " compute=" << f.computation;
    if (f.unoffloadable) out << " unoffloadable";
    out << '\n';
  }
  for (const DataExchange& x : app.exchanges())
    out << "call " << app.function(x.from).name << ' '
        << app.function(x.to).name << " data=" << x.amount << '\n';
  return out.str();
}

}  // namespace mecoff::appmodel
