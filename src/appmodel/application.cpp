#include "appmodel/application.hpp"

#include "common/contracts.hpp"

namespace mecoff::appmodel {

Application::Application(std::string name) : name_(std::move(name)) {}

std::size_t Application::add_function(FunctionInfo info) {
  MECOFF_EXPECTS(!info.name.empty());
  MECOFF_EXPECTS(info.computation >= 0.0);
  MECOFF_EXPECTS(index_by_name_.count(info.name) == 0);
  functions_.push_back(std::move(info));
  index_by_name_[functions_.back().name] = functions_.size() - 1;
  return functions_.size() - 1;
}

void Application::add_exchange(std::size_t from, std::size_t to,
                               double amount) {
  MECOFF_EXPECTS(from < functions_.size() && to < functions_.size());
  MECOFF_EXPECTS(from != to);
  MECOFF_EXPECTS(amount >= 0.0);
  exchanges_.push_back(DataExchange{from, to, amount});
}

const FunctionInfo& Application::function(std::size_t i) const {
  MECOFF_EXPECTS(i < functions_.size());
  return functions_[i];
}

std::size_t Application::find_function(const std::string& name) const {
  const auto it = index_by_name_.find(name);
  return it == index_by_name_.end() ? npos : it->second;
}

graph::WeightedGraph Application::to_graph() const {
  graph::GraphBuilder builder;
  for (const FunctionInfo& f : functions_) builder.add_node(f.computation);
  for (const DataExchange& x : exchanges_)
    builder.add_edge(static_cast<graph::NodeId>(x.from),
                     static_cast<graph::NodeId>(x.to), x.amount);
  return builder.build();
}

std::vector<bool> Application::unoffloadable_mask() const {
  std::vector<bool> mask(functions_.size(), false);
  for (std::size_t i = 0; i < functions_.size(); ++i)
    mask[i] = functions_[i].unoffloadable;
  return mask;
}

std::vector<std::uint32_t> Application::component_ids() const {
  std::map<std::string, std::uint32_t> remap;
  std::vector<std::uint32_t> ids(functions_.size(), 0);
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    const auto [it, inserted] = remap.try_emplace(
        functions_[i].component, static_cast<std::uint32_t>(remap.size()));
    ids[i] = it->second;
    (void)inserted;
  }
  return ids;
}

}  // namespace mecoff::appmodel
