// Canned realistic applications — the workload classes the paper's
// introduction motivates (face recognition, interactive games / AR,
// video analytics). Used by examples and integration tests; each
// mirrors a published partitioning case study in structure: UI and
// sensor functions pinned to the device, a compute-heavy middle
// pipeline worth offloading, and chatty helper clusters that the
// compressor should fuse.
#pragma once

#include <cstdint>

#include "appmodel/application.hpp"

namespace mecoff::appmodel {

/// Face-recognition pipeline: camera/UI pinned local; detection,
/// alignment, embedding and matching offloadable; tight coupling inside
/// the embedding cluster. ~18 functions, 2 components.
[[nodiscard]] Application make_face_recognition_app();

/// AR game: input/render loop pinned; physics, pathfinding and world
/// sync offloadable; physics functions are highly coupled (the paper's
/// "highly coupled functions" case).
[[nodiscard]] Application make_ar_game_app();

/// Video analytics: frame grab pinned; per-stage filters loosely
/// coupled in a long chain (the "loosely coupled" case).
[[nodiscard]] Application make_video_analytics_app();

/// Voice assistant: wake-word detection pinned (always-on mic), ASR /
/// NLU / TTS stages offloadable with a tightly coupled decoder cluster.
[[nodiscard]] Application make_voice_assistant_app();

/// Indoor SLAM navigation: camera+IMU pinned, tracking loop latency-
/// critical (heavy data per frame), mapping/relocalization offloadable.
[[nodiscard]] Application make_slam_navigation_app();

/// Randomized app with `functions` nodes for soak tests: clustered
/// call structure, ~`unoffloadable_fraction` of functions pinned.
[[nodiscard]] Application make_random_app(std::size_t functions,
                                          double unoffloadable_fraction,
                                          std::uint64_t seed);

}  // namespace mecoff::appmodel
