// Application model: the metadata layer above the bare weighted graph.
// This is the repo's substitute for Soot's static analysis (DESIGN.md
// §2): where the paper extracts functions and calling relationships
// from compiled Java bytecode, we take the same information from an
// explicit description — each function's computation amount, whether it
// is pinned to the device (sensor/local-I/O access), which software
// component it belongs to, and how much data every pair of functions
// exchanges. Everything downstream of extraction is identical.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace mecoff::appmodel {

struct FunctionInfo {
  std::string name;
  /// Amount of computation (the node weight w_j of formula (1)).
  double computation = 1.0;
  /// Pinned to the mobile device (reads sensors, touches local I/O).
  bool unoffloadable = false;
  /// Software component the function belongs to (compression boundary).
  std::string component;
};

/// One data exchange between two functions (an edge of the function
/// data flow graph; Fig. 1's |a| = 10 style annotations).
struct DataExchange {
  std::size_t from = 0;  ///< function index
  std::size_t to = 0;    ///< function index
  double amount = 0.0;   ///< s(v_j, v_l)
};

class Application {
 public:
  explicit Application(std::string name = "app");

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Add a function; names must be unique. Returns its index.
  std::size_t add_function(FunctionInfo info);

  /// Record a data exchange (both directions count as one undirected
  /// communication; repeated exchanges accumulate in the graph).
  void add_exchange(std::size_t from, std::size_t to, double amount);

  [[nodiscard]] std::size_t num_functions() const { return functions_.size(); }
  [[nodiscard]] const FunctionInfo& function(std::size_t i) const;
  [[nodiscard]] const std::vector<FunctionInfo>& functions() const {
    return functions_;
  }
  [[nodiscard]] const std::vector<DataExchange>& exchanges() const {
    return exchanges_;
  }

  /// Index of the function named `name`; npos when absent.
  [[nodiscard]] std::size_t find_function(const std::string& name) const;
  static constexpr std::size_t npos = SIZE_MAX;

  // --- Extraction (the "Soot" step) -------------------------------------

  /// The weighted undirected function data flow graph (node = function,
  /// node weight = computation, edge weight = total data exchanged).
  [[nodiscard]] graph::WeightedGraph to_graph() const;

  /// unoffloadable mask aligned with to_graph() node ids.
  [[nodiscard]] std::vector<bool> unoffloadable_mask() const;

  /// Dense component ids aligned with to_graph() node ids (functions
  /// with empty component names share component "").
  [[nodiscard]] std::vector<std::uint32_t> component_ids() const;

 private:
  std::string name_;
  std::vector<FunctionInfo> functions_;
  std::vector<DataExchange> exchanges_;
  std::map<std::string, std::size_t> index_by_name_;
};

}  // namespace mecoff::appmodel
