// Connected-component analysis. The paper splits the function data flow
// graph "based on component boundaries" before label propagation; after
// removing unoffloadable functions, connectivity defines those
// boundaries (plus any explicit software-component annotation handled in
// appmodel/).
#pragma once

#include <vector>

#include "graph/weighted_graph.hpp"

namespace mecoff::graph {

struct ComponentLabels {
  /// component_of[v] in [0, count).
  std::vector<std::uint32_t> component_of;
  std::uint32_t count = 0;
};

/// Label every node with its connected component via BFS. O(V + E).
[[nodiscard]] ComponentLabels connected_components(const WeightedGraph& g);

/// Node ids grouped per component, each group in ascending order.
[[nodiscard]] std::vector<std::vector<NodeId>> component_node_lists(
    const ComponentLabels& labels);

/// True when the whole graph is one connected component (empty graphs
/// count as connected).
[[nodiscard]] bool is_connected(const WeightedGraph& g);

}  // namespace mecoff::graph
