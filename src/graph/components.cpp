#include "graph/components.hpp"

#include <queue>

namespace mecoff::graph {

ComponentLabels connected_components(const WeightedGraph& g) {
  const std::size_t n = g.num_nodes();
  ComponentLabels out;
  out.component_of.assign(n, UINT32_MAX);

  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < n; ++start) {
    if (out.component_of[start] != UINT32_MAX) continue;
    const std::uint32_t comp = out.count++;
    out.component_of[start] = comp;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const Adjacency& adj : g.neighbors(v)) {
        if (out.component_of[adj.neighbor] == UINT32_MAX) {
          out.component_of[adj.neighbor] = comp;
          frontier.push(adj.neighbor);
        }
      }
    }
  }
  return out;
}

std::vector<std::vector<NodeId>> component_node_lists(
    const ComponentLabels& labels) {
  std::vector<std::vector<NodeId>> lists(labels.count);
  for (NodeId v = 0; v < labels.component_of.size(); ++v)
    lists[labels.component_of[v]].push_back(v);
  return lists;
}

bool is_connected(const WeightedGraph& g) {
  if (g.empty()) return true;
  return connected_components(g).count == 1;
}

}  // namespace mecoff::graph
