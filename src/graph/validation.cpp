#include "graph/validation.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace mecoff::graph {

ValidationReport validate(const WeightedGraph& g) {
  ValidationReport report;
  const std::size_t n = g.num_nodes();

  // Node weights.
  for (NodeId v = 0; v < n; ++v) {
    const double w = g.node_weight(v);
    if (!std::isfinite(w) || w < 0.0)
      report.fail("node " + std::to_string(v) + " has invalid weight");
  }

  // Edge list: ranges, loops, duplicates, weights.
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : g.edges()) {
    if (e.u >= n || e.v >= n) {
      report.fail("edge endpoint out of range");
      continue;
    }
    if (e.u == e.v) report.fail("self-loop at node " + std::to_string(e.u));
    const auto key = std::minmax(e.u, e.v);
    if (!seen.insert({key.first, key.second}).second)
      report.fail("duplicate edge {" + std::to_string(e.u) + ", " +
                  std::to_string(e.v) + "}");
    if (!std::isfinite(e.weight) || e.weight < 0.0)
      report.fail("edge {" + std::to_string(e.u) + ", " +
                  std::to_string(e.v) + "} has invalid weight");
  }

  // Adjacency consistency: each undirected edge appears exactly once in
  // each endpoint's list, with matching weight and edge id.
  std::size_t degree_sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree_sum += g.degree(v);
    for (const Adjacency& adj : g.neighbors(v)) {
      if (adj.neighbor >= n) {
        report.fail("adjacency of " + std::to_string(v) + " out of range");
        continue;
      }
      if (adj.edge >= g.num_edges()) {
        report.fail("adjacency of " + std::to_string(v) +
                    " references bad edge id");
        continue;
      }
      const Edge& e = g.edge(adj.edge);
      const bool endpoints_match =
          (e.u == v && e.v == adj.neighbor) ||
          (e.v == v && e.u == adj.neighbor);
      if (!endpoints_match)
        report.fail("adjacency of " + std::to_string(v) +
                    " disagrees with its edge record");
      if (e.weight != adj.weight)
        report.fail("adjacency weight of " + std::to_string(v) +
                    " disagrees with its edge record");
    }
  }
  if (degree_sum != 2 * g.num_edges())
    report.fail("degree sum != 2 * edge count");

  return report;
}

std::vector<std::size_t> degree_histogram(const WeightedGraph& g) {
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    max_degree = std::max(max_degree, g.degree(v));
  std::vector<std::size_t> histogram(max_degree + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++histogram[g.degree(v)];
  if (g.num_nodes() == 0) histogram.clear();
  return histogram;
}

}  // namespace mecoff::graph
