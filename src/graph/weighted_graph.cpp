#include "graph/weighted_graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <utility>

#include "common/contracts.hpp"

namespace mecoff::graph {

double WeightedGraph::node_weight(NodeId v) const {
  MECOFF_EXPECTS(v < num_nodes());
  return data_->node_weights[v];
}

std::span<const Adjacency> WeightedGraph::neighbors(NodeId v) const {
  MECOFF_EXPECTS(v < num_nodes());
  return {data_->adjacency.data() + data_->offsets[v],
          data_->offsets[v + 1] - data_->offsets[v]};
}

std::size_t WeightedGraph::degree(NodeId v) const {
  MECOFF_EXPECTS(v < num_nodes());
  return data_->offsets[v + 1] - data_->offsets[v];
}

double WeightedGraph::weighted_degree(NodeId v) const {
  double sum = 0.0;
  for (const Adjacency& adj : neighbors(v)) sum += adj.weight;
  return sum;
}

const Edge& WeightedGraph::edge(EdgeId e) const {
  MECOFF_EXPECTS(e < num_edges());
  return data_->edges[e];
}

double WeightedGraph::total_node_weight() const {
  if (!data_) return 0.0;
  return std::accumulate(data_->node_weights.begin(),
                         data_->node_weights.end(), 0.0);
}

double WeightedGraph::total_edge_weight() const {
  double sum = 0.0;
  for (const Edge& e : edges()) sum += e.weight;
  return sum;
}

bool WeightedGraph::has_edge(NodeId u, NodeId v) const {
  for (const Adjacency& adj : neighbors(u))
    if (adj.neighbor == v) return true;
  return false;
}

double WeightedGraph::edge_weight_between(NodeId u, NodeId v) const {
  for (const Adjacency& adj : neighbors(u))
    if (adj.neighbor == v) return adj.weight;
  return 0.0;
}

GraphBuilder::GraphBuilder(std::size_t n) : node_weights_(n, 0.0) {}

NodeId GraphBuilder::add_node(double weight) {
  MECOFF_EXPECTS(weight >= 0.0 && std::isfinite(weight));
  node_weights_.push_back(weight);
  return static_cast<NodeId>(node_weights_.size() - 1);
}

void GraphBuilder::set_node_weight(NodeId v, double weight) {
  MECOFF_EXPECTS(v < node_weights_.size());
  MECOFF_EXPECTS(weight >= 0.0 && std::isfinite(weight));
  node_weights_[v] = weight;
}

void GraphBuilder::add_edge(NodeId u, NodeId v, double weight) {
  MECOFF_EXPECTS(u < node_weights_.size());
  MECOFF_EXPECTS(v < node_weights_.size());
  MECOFF_EXPECTS(u != v);
  MECOFF_EXPECTS(weight >= 0.0 && std::isfinite(weight));
  raw_edges_.push_back(Edge{u, v, weight});
}

WeightedGraph GraphBuilder::build() {
  auto data = std::make_shared<WeightedGraph::Data>();
  data->node_weights = std::move(node_weights_);
  node_weights_.clear();

  // Merge parallel edges by canonical (min, max) endpoint key.
  std::map<std::pair<NodeId, NodeId>, double> merged;
  for (const Edge& e : raw_edges_) {
    const auto key = std::minmax(e.u, e.v);
    merged[{key.first, key.second}] += e.weight;
  }
  raw_edges_.clear();

  data->edges.reserve(merged.size());
  for (const auto& [key, weight] : merged)
    data->edges.push_back(Edge{key.first, key.second, weight});

  // Build CSR adjacency (each undirected edge appears in both lists).
  const std::size_t n = data->node_weights.size();
  std::vector<std::size_t> counts(n, 0);
  for (const Edge& e : data->edges) {
    ++counts[e.u];
    ++counts[e.v];
  }
  data->offsets.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    data->offsets[v + 1] = data->offsets[v] + counts[v];
  data->adjacency.resize(data->offsets[n]);

  std::vector<std::size_t> cursor(data->offsets.begin(),
                                  data->offsets.end() - 1);
  for (EdgeId id = 0; id < data->edges.size(); ++id) {
    const Edge& e = data->edges[id];
    data->adjacency[cursor[e.u]++] = Adjacency{e.v, e.weight, id};
    data->adjacency[cursor[e.v]++] = Adjacency{e.u, e.weight, id};
  }

  WeightedGraph g;
  g.data_ = std::move(data);
  return g;
}

}  // namespace mecoff::graph
