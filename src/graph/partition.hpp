// Two-way partition vocabulary shared by the spectral, max-flow and
// Kernighan–Lin cutters (the three algorithms compared in the paper's
// evaluation), plus the Bipartitioner interface they all implement.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace mecoff::graph {

/// Side assignment of a two-way cut. By repo convention side 0 is the
/// part that will run locally and side 1 the part offloaded to the edge
/// server (the greedy scheme generator may later flip whole parts).
struct Bipartition {
  std::vector<std::uint8_t> side;  // 0 or 1, one entry per node
  double cut_weight = 0.0;         // Σ edge weights crossing the cut

  [[nodiscard]] std::size_t size(std::uint8_t which) const;
  [[nodiscard]] std::vector<NodeId> nodes_on_side(std::uint8_t which) const;
};

/// Σ weight of edges whose endpoints lie on different sides — the CUT of
/// formula (8) in the paper.
[[nodiscard]] double cut_weight(const WeightedGraph& g,
                                const std::vector<std::uint8_t>& side);

/// Validate a side vector: right length, entries in {0, 1}.
[[nodiscard]] bool is_valid_partition(const WeightedGraph& g,
                                      const std::vector<std::uint8_t>& side);

/// Interface implemented by every cut algorithm in this repo.
///
/// Implementations must handle degenerate inputs: an empty graph yields
/// an empty partition; a single node goes to side 0 with cut weight 0.
class Bipartitioner {
 public:
  virtual ~Bipartitioner() = default;

  /// Split `g` into two parts, attempting to minimize the cut weight.
  [[nodiscard]] virtual Bipartition bipartition(const WeightedGraph& g) = 0;

  /// Short display name for benches ("spectral", "maxflow", "kl").
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace mecoff::graph
