// Fundamental identifier types for the graph layer.
#pragma once

#include <cstdint>
#include <limits>

namespace mecoff::graph {

/// Index of a node within one WeightedGraph. Dense, 0-based.
using NodeId = std::uint32_t;

/// Index of an undirected edge within one WeightedGraph. Dense, 0-based.
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

}  // namespace mecoff::graph
