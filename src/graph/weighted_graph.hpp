// Weighted undirected graph — the paper's "function data flow graph".
//
// Node weights model the amount of computation of a function (w_j in
// formula (1)); edge weights model the amount of communication between
// two functions (s(v_j, v_l) in formulas (4)/(5), |a|,|b|,... in Fig. 1).
//
// The graph is immutable after construction; mutation goes through
// GraphBuilder, which also collapses parallel edges by summing their
// weights (two functions exchanging several values communicate their
// total amount). Because instances are immutable, the storage is a
// shared payload: copying a WeightedGraph is a refcount bump, which is
// what lets the multi-user experiments hold thousands of users sharing
// a handful of distinct graphs without duplicating them.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace mecoff::graph {

/// One directed half of an undirected edge as seen from a node's
/// adjacency list.
struct Adjacency {
  NodeId neighbor;
  double weight;
  EdgeId edge;
};

/// An undirected edge (u < v is NOT guaranteed; endpoints are stored in
/// insertion order).
struct Edge {
  NodeId u;
  NodeId v;
  double weight;
};

class GraphBuilder;

class WeightedGraph {
 public:
  WeightedGraph() = default;

  [[nodiscard]] std::size_t num_nodes() const {
    return data_ ? data_->node_weights.size() : 0;
  }
  [[nodiscard]] std::size_t num_edges() const {
    return data_ ? data_->edges.size() : 0;
  }
  [[nodiscard]] bool empty() const { return num_nodes() == 0; }

  /// Computation weight of node `v`.
  [[nodiscard]] double node_weight(NodeId v) const;

  /// Neighbors of `v` with per-edge communication weights.
  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId v) const;

  /// Number of incident edges of `v`.
  [[nodiscard]] std::size_t degree(NodeId v) const;

  /// Sum of incident edge weights of `v` (the "volume" contribution).
  [[nodiscard]] double weighted_degree(NodeId v) const;

  /// All undirected edges, in insertion order.
  [[nodiscard]] std::span<const Edge> edges() const {
    return data_ ? std::span<const Edge>(data_->edges)
                 : std::span<const Edge>();
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const;

  /// Sum of all node weights (total computation of the application).
  [[nodiscard]] double total_node_weight() const;

  /// Sum of all edge weights (total communication volume).
  [[nodiscard]] double total_edge_weight() const;

  /// True if an edge {u, v} exists (O(deg(u))).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Weight of edge {u, v}; 0.0 when absent.
  [[nodiscard]] double edge_weight_between(NodeId u, NodeId v) const;

 private:
  friend class GraphBuilder;

  /// Immutable shared payload; CSR adjacency:
  /// adjacency[offsets[v] .. offsets[v+1]).
  struct Data {
    std::vector<double> node_weights;
    std::vector<Edge> edges;
    std::vector<std::size_t> offsets;
    std::vector<Adjacency> adjacency;
  };

  std::shared_ptr<const Data> data_;
};

/// Accumulates nodes and edges, then produces an immutable WeightedGraph.
///
/// - Self-loops are rejected (a function does not communicate with itself
///   over the network).
/// - Parallel edges are merged by summing weights.
/// - Node and edge weights must be non-negative and finite.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-size for `n` nodes of weight 0.
  explicit GraphBuilder(std::size_t n);

  /// Append a node; returns its id.
  NodeId add_node(double weight);

  /// Number of nodes added so far.
  [[nodiscard]] std::size_t num_nodes() const { return node_weights_.size(); }

  /// Overwrite the weight of an existing node.
  void set_node_weight(NodeId v, double weight);

  /// Add (or accumulate onto) the undirected edge {u, v}.
  void add_edge(NodeId u, NodeId v, double weight);

  /// Build the immutable graph. The builder is left empty.
  [[nodiscard]] WeightedGraph build();

 private:
  std::vector<double> node_weights_;
  std::vector<Edge> raw_edges_;
};

}  // namespace mecoff::graph
