// Graph serialization: a simple weighted edge-list text format for
// experiment artifacts, and Graphviz DOT export for inspection.
//
// Edge-list format:
//   # comment lines start with '#'
//   nodes <n>
//   node <id> <weight>        (optional; missing nodes default to weight 0)
//   edge <u> <v> <weight>
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.hpp"
#include "graph/weighted_graph.hpp"

namespace mecoff::graph {

/// Write `g` in the edge-list format above.
void write_edge_list(const WeightedGraph& g, std::ostream& out);
std::string to_edge_list(const WeightedGraph& g);

/// Parse the edge-list format. Malformed input is an expected failure.
[[nodiscard]] Result<WeightedGraph> read_edge_list(std::istream& in);
[[nodiscard]] Result<WeightedGraph> parse_edge_list(const std::string& text);

/// Graphviz DOT (undirected). `side` may be empty, or one 0/1 entry per
/// node to color the two partition sides.
std::string to_dot(const WeightedGraph& g,
                   const std::vector<std::uint8_t>& side = {});

}  // namespace mecoff::graph
