#include "graph/partition.hpp"

#include "common/contracts.hpp"

namespace mecoff::graph {

std::size_t Bipartition::size(std::uint8_t which) const {
  std::size_t count = 0;
  for (const std::uint8_t s : side)
    if (s == which) ++count;
  return count;
}

std::vector<NodeId> Bipartition::nodes_on_side(std::uint8_t which) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < side.size(); ++v)
    if (side[v] == which) out.push_back(v);
  return out;
}

double cut_weight(const WeightedGraph& g,
                  const std::vector<std::uint8_t>& side) {
  MECOFF_EXPECTS(side.size() == g.num_nodes());
  double sum = 0.0;
  for (const Edge& e : g.edges())
    if (side[e.u] != side[e.v]) sum += e.weight;
  return sum;
}

bool is_valid_partition(const WeightedGraph& g,
                        const std::vector<std::uint8_t>& side) {
  if (side.size() != g.num_nodes()) return false;
  for (const std::uint8_t s : side)
    if (s > 1) return false;
  return true;
}

}  // namespace mecoff::graph
