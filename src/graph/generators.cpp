#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mecoff::graph {

namespace {

/// Partition `total` items into `parts` groups, each of size >= 1,
/// sizes roughly proportional with random jitter.
std::vector<std::size_t> random_partition_sizes(std::size_t total,
                                                std::size_t parts, Rng& rng) {
  MECOFF_EXPECTS(parts >= 1 && total >= parts);
  std::vector<std::size_t> sizes(parts, 1);
  std::size_t remaining = total - parts;
  for (std::size_t i = 0; i < remaining; ++i) sizes[rng.index(parts)] += 1;
  return sizes;
}

}  // namespace

WeightedGraph netgen_style(const NetgenParams& params) {
  return netgen_style_with_metadata(params).graph;
}

NetgenResult netgen_style_with_metadata(const NetgenParams& params) {
  MECOFF_EXPECTS(params.nodes >= 1);
  MECOFF_EXPECTS(params.components >= 1 &&
                 params.components <= params.nodes);
  MECOFF_EXPECTS(params.cluster_size >= 1);
  MECOFF_EXPECTS(params.min_node_weight <= params.max_node_weight);
  MECOFF_EXPECTS(params.min_edge_weight <= params.max_edge_weight);

  Rng rng(params.seed);
  GraphBuilder builder;
  for (std::size_t i = 0; i < params.nodes; ++i) {
    builder.add_node(
        rng.uniform(params.min_node_weight,
                    std::nextafter(params.max_node_weight, 1e308)));
  }

  const std::vector<std::size_t> comp_sizes =
      random_partition_sizes(params.nodes, params.components, rng);

  // Per node: its component and cluster (for weight assignment below,
  // and returned as generator ground truth).
  std::vector<std::uint32_t> cluster_of(params.nodes, 0);
  std::vector<std::uint32_t> component_of(params.nodes, 0);
  std::uint32_t next_cluster = 0;
  std::uint32_t next_component = 0;

  const auto light_weight = [&] {
    return rng.uniform(params.min_edge_weight,
                       std::nextafter(params.max_edge_weight, 1e308));
  };
  const auto heavy_weight = [&] {
    return light_weight() * params.heavy_weight_multiplier;
  };

  // Never emit the same node pair twice: the builder would merge the
  // parallel edges by summing, which can push two LIGHT edges past the
  // compression threshold and spuriously bridge clusters.
  std::set<std::pair<NodeId, NodeId>> used_pairs;
  const auto try_add = [&](NodeId a, NodeId b, double weight) {
    const auto key = std::minmax(a, b);
    if (!used_pairs.insert({key.first, key.second}).second) return false;
    builder.add_edge(a, b, weight);
    return true;
  };
  std::size_t edges_added = 0;

  std::size_t base = 0;
  std::vector<std::pair<std::size_t, std::size_t>> comp_ranges;
  for (const std::size_t comp_size : comp_sizes) {
    comp_ranges.emplace_back(base, base + comp_size);
    const std::uint32_t comp_id = next_component++;
    for (std::size_t i = 0; i < comp_size; ++i)
      component_of[base + i] = comp_id;

    // Carve the component into clusters of ~cluster_size nodes.
    const std::size_t n_clusters =
        std::max<std::size_t>(1, comp_size / params.cluster_size);
    const std::vector<std::size_t> cl_sizes =
        random_partition_sizes(comp_size, n_clusters, rng);

    std::size_t cl_base = base;
    std::vector<std::size_t> cluster_roots;
    for (const std::size_t cl_size : cl_sizes) {
      const std::uint32_t cl_id = next_cluster++;
      cluster_roots.push_back(cl_base);
      // Random spanning tree inside the cluster with HEAVY weights: these
      // are the tightly coupled functions compression should merge.
      for (std::size_t i = 0; i < cl_size; ++i) {
        cluster_of[cl_base + i] = cl_id;
        if (i > 0) {
          const std::size_t parent =
              cl_base + rng.index(i);  // attach to an earlier node
          if (try_add(static_cast<NodeId>(cl_base + i),
                      static_cast<NodeId>(parent), heavy_weight()))
            ++edges_added;
        }
      }
      cl_base += cl_size;
    }

    // Chain cluster roots with LIGHT edges so the component is connected
    // but cluster boundaries stay cheap to cut.
    for (std::size_t i = 1; i < cluster_roots.size(); ++i) {
      if (try_add(static_cast<NodeId>(cluster_roots[i - 1]),
                  static_cast<NodeId>(cluster_roots[i]), light_weight()))
        ++edges_added;
    }
    base += comp_size;
  }

  // Spend the remaining edge budget: ~90% extra heavy intra-cluster
  // edges, ~10% light intra-component edges (never across components —
  // components are independent applications/modules). Function data
  // flow graphs are dense INSIDE tightly coupled groups and sparse
  // between them; a high heavy share keeps module boundaries cheap to
  // cut, as in real applications.
  const std::size_t target_edges = std::max(params.edges, edges_added);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * target_edges + 1000;
  while (edges_added < target_edges && attempts < max_attempts) {
    ++attempts;
    // Pick a component weighted by size.
    const NodeId a = static_cast<NodeId>(rng.index(params.nodes));
    // Find a's component range.
    const auto it = std::upper_bound(
        comp_ranges.begin(), comp_ranges.end(), std::size_t{a},
        [](std::size_t v, const auto& range) { return v < range.second; });
    MECOFF_ENSURES(it != comp_ranges.end());
    const auto [lo, hi] = *it;
    if (hi - lo < 2) continue;
    const NodeId b = static_cast<NodeId>(
        lo + rng.index(hi - lo));
    if (a == b) continue;
    const bool same_cluster = cluster_of[a] == cluster_of[b];
    const bool want_heavy = rng.bernoulli(0.9);
    if (want_heavy != same_cluster) continue;  // match edge kind to locality
    if (try_add(a, b, same_cluster ? heavy_weight() : light_weight()))
      ++edges_added;
  }

  NetgenResult result;
  result.graph = builder.build();
  result.cluster_of = std::move(cluster_of);
  result.component_of = std::move(component_of);
  return result;
}

WeightedGraph app_call_graph(const CallGraphParams& params) {
  MECOFF_EXPECTS(params.functions >= 1);
  Rng rng(params.seed);
  GraphBuilder builder;
  for (std::size_t i = 0; i < params.functions; ++i) {
    builder.add_node(rng.uniform(params.min_compute,
                                 std::nextafter(params.max_compute, 1e308)));
  }
  const auto data_weight = [&] {
    return rng.uniform(params.min_data,
                       std::nextafter(params.max_data, 1e308));
  };

  // Preferential-attachment-flavoured call tree: each new function is
  // called by an existing one chosen with probability ~ (1 + fanout so
  // far)^(1/shape) via Pareto-weighted sampling.
  std::vector<double> attract(params.functions, 1.0);
  for (std::size_t i = 1; i < params.functions; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < i; ++j) total += attract[j];
    double pick = rng.uniform() * total;
    std::size_t caller = 0;
    for (std::size_t j = 0; j < i; ++j) {
      pick -= attract[j];
      if (pick <= 0.0) {
        caller = j;
        break;
      }
    }
    builder.add_edge(static_cast<NodeId>(caller), static_cast<NodeId>(i),
                     data_weight());
    attract[caller] += rng.pareto(params.fanout_shape, 1.0) - 1.0;
  }

  // Shortcut data edges (shared state, callbacks).
  for (std::size_t u = 0; u + 1 < params.functions; ++u) {
    for (std::size_t tries = 0; tries < 2; ++tries) {
      if (!rng.bernoulli(params.shortcut_probability)) continue;
      const std::size_t v = rng.index(params.functions);
      if (v == u) continue;
      builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v),
                       data_weight());
    }
  }
  return builder.build();
}

WeightedGraph path_graph(std::size_t n, double nw, double ew) {
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) b.add_node(nw);
  for (std::size_t i = 1; i < n; ++i)
    b.add_edge(static_cast<NodeId>(i - 1), static_cast<NodeId>(i), ew);
  return b.build();
}

WeightedGraph cycle_graph(std::size_t n, double nw, double ew) {
  MECOFF_EXPECTS(n >= 3);
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) b.add_node(nw);
  for (std::size_t i = 0; i < n; ++i)
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), ew);
  return b.build();
}

WeightedGraph complete_graph(std::size_t n, double nw, double ew) {
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) b.add_node(nw);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), ew);
  return b.build();
}

WeightedGraph star_graph(std::size_t n, double nw, double ew) {
  MECOFF_EXPECTS(n >= 1);
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) b.add_node(nw);
  for (std::size_t i = 1; i < n; ++i)
    b.add_edge(0, static_cast<NodeId>(i), ew);
  return b.build();
}

WeightedGraph grid_graph(std::size_t rows, std::size_t cols, double nw,
                         double ew) {
  MECOFF_EXPECTS(rows >= 1 && cols >= 1);
  GraphBuilder b;
  for (std::size_t i = 0; i < rows * cols; ++i) b.add_node(nw);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1), ew);
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c), ew);
    }
  }
  return b.build();
}

WeightedGraph barbell_graph(std::size_t clique, double bridge_weight,
                            double clique_edge_weight) {
  MECOFF_EXPECTS(clique >= 2);
  GraphBuilder b;
  const std::size_t n = 2 * clique;
  for (std::size_t i = 0; i < n; ++i) b.add_node(1.0);
  for (std::size_t half = 0; half < 2; ++half) {
    const std::size_t base = half * clique;
    for (std::size_t i = 0; i < clique; ++i)
      for (std::size_t j = i + 1; j < clique; ++j)
        b.add_edge(static_cast<NodeId>(base + i),
                   static_cast<NodeId>(base + j), clique_edge_weight);
  }
  b.add_edge(static_cast<NodeId>(clique - 1), static_cast<NodeId>(clique),
             bridge_weight);
  return b.build();
}

}  // namespace mecoff::graph
