// Workload generators.
//
// netgen_style() is the repo's substitute for the NETGEN tool the paper
// uses: it honours the same knobs (node count, edge count, weight
// ranges) and produces clustered graphs "similar to the actual function
// data flow graph of mobile applications" — heavy intra-cluster edges
// (tightly coupled helper functions) and light inter-cluster edges
// (loose module boundaries), grouped into components.
//
// app_call_graph() produces tree-like call structures with power-law
// fan-out plus shortcut data edges, matching the Fig. 1 style of real
// applications more closely; used by tests and examples.
//
// The fixed-shape generators (path/cycle/complete/star/grid/barbell/
// weighted_dumbbell) have analytically known minimum cuts and are the
// backbone of the cut-algorithm test suites.
#pragma once

#include <cstdint>

#include "graph/weighted_graph.hpp"

namespace mecoff::graph {

struct NetgenParams {
  std::size_t nodes = 250;
  std::size_t edges = 1214;
  double min_node_weight = 1.0;
  double max_node_weight = 50.0;
  double min_edge_weight = 1.0;
  double max_edge_weight = 10.0;
  /// Number of disjoint components (software components of the app).
  std::size_t components = 4;
  /// Average nodes per tightly-coupled cluster inside a component.
  std::size_t cluster_size = 12;
  /// Multiplier applied to intra-cluster edge weights (coupling degree).
  double heavy_weight_multiplier = 8.0;
  std::uint64_t seed = 1;
};

/// NETGEN-style clustered random graph. Guarantees: exactly
/// `params.nodes` nodes; each component is internally connected; edge
/// count is close to `params.edges` (never below nodes - components,
/// the spanning-forest minimum; duplicate candidates are merged so the
/// final count can be slightly under the target).
[[nodiscard]] WeightedGraph netgen_style(const NetgenParams& params);

/// netgen_style plus the generator's ground truth, for workload
/// construction (e.g. pinning one "UI" cluster per component) and
/// generator tests.
struct NetgenResult {
  WeightedGraph graph;
  /// Tightly-coupled cluster id per node (dense, grouped contiguously).
  std::vector<std::uint32_t> cluster_of;
  /// Component id per node.
  std::vector<std::uint32_t> component_of;
};
[[nodiscard]] NetgenResult netgen_style_with_metadata(
    const NetgenParams& params);

struct CallGraphParams {
  std::size_t functions = 64;
  /// Pareto shape for fan-out (smaller => heavier tail).
  double fanout_shape = 1.6;
  double min_compute = 1.0;
  double max_compute = 100.0;
  double min_data = 1.0;
  double max_data = 20.0;
  /// Probability of an extra "shortcut" data edge between random nodes.
  double shortcut_probability = 0.08;
  std::uint64_t seed = 1;
};

/// Tree-like function call graph with shortcut data edges (connected).
[[nodiscard]] WeightedGraph app_call_graph(const CallGraphParams& params);

// --- Fixed shapes for testing ------------------------------------------

/// Path v0 - v1 - ... - v(n-1); all node weights `nw`, edge weights `ew`.
[[nodiscard]] WeightedGraph path_graph(std::size_t n, double nw = 1.0,
                                       double ew = 1.0);

/// Cycle on n >= 3 nodes.
[[nodiscard]] WeightedGraph cycle_graph(std::size_t n, double nw = 1.0,
                                        double ew = 1.0);

/// Complete graph on n nodes.
[[nodiscard]] WeightedGraph complete_graph(std::size_t n, double nw = 1.0,
                                           double ew = 1.0);

/// Star: center 0 connected to n-1 leaves.
[[nodiscard]] WeightedGraph star_graph(std::size_t n, double nw = 1.0,
                                       double ew = 1.0);

/// rows x cols grid with 4-neighborhood.
[[nodiscard]] WeightedGraph grid_graph(std::size_t rows, std::size_t cols,
                                       double nw = 1.0, double ew = 1.0);

/// Two cliques of size `clique` joined by a single bridge edge of weight
/// `bridge_weight` — the bridge is the unique minimum cut when
/// bridge_weight < clique-internal connectivity.
[[nodiscard]] WeightedGraph barbell_graph(std::size_t clique,
                                          double bridge_weight = 1.0,
                                          double clique_edge_weight = 10.0);

}  // namespace mecoff::graph
