#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/strings.hpp"

namespace mecoff::graph {

void write_edge_list(const WeightedGraph& g, std::ostream& out) {
  out << "nodes " << g.num_nodes() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    out << "node " << v << ' ' << g.node_weight(v) << '\n';
  for (const Edge& e : g.edges())
    out << "edge " << e.u << ' ' << e.v << ' ' << e.weight << '\n';
}

std::string to_edge_list(const WeightedGraph& g) {
  std::ostringstream out;
  write_edge_list(g, out);
  return out.str();
}

Result<WeightedGraph> read_edge_list(std::istream& in) {
  GraphBuilder builder;
  bool saw_nodes = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> tokens = split_ws(trimmed);
    const auto fail = [&](const std::string& why) {
      return Error("line " + std::to_string(line_no) + ": " + why);
    };
    if (tokens[0] == "nodes") {
      long long n = 0;
      if (tokens.size() != 2 || !parse_int(tokens[1], n) || n < 0)
        return fail("expected 'nodes <count>'");
      if (saw_nodes) return fail("duplicate 'nodes' line");
      saw_nodes = true;
      builder = GraphBuilder(static_cast<std::size_t>(n));
    } else if (tokens[0] == "node") {
      long long id = 0;
      double w = 0;
      if (tokens.size() != 3 || !parse_int(tokens[1], id) ||
          !parse_double(tokens[2], w) || w < 0)
        return fail("expected 'node <id> <weight>=0'");
      if (!saw_nodes) return fail("'node' before 'nodes'");
      if (id < 0 || static_cast<std::size_t>(id) >= builder.num_nodes())
        return fail("node id out of range");
      builder.set_node_weight(static_cast<NodeId>(id), w);
    } else if (tokens[0] == "edge") {
      long long u = 0;
      long long v = 0;
      double w = 0;
      if (tokens.size() != 4 || !parse_int(tokens[1], u) ||
          !parse_int(tokens[2], v) || !parse_double(tokens[3], w) || w < 0)
        return fail("expected 'edge <u> <v> <weight>=0'");
      if (!saw_nodes) return fail("'edge' before 'nodes'");
      const auto n = static_cast<long long>(builder.num_nodes());
      if (u < 0 || u >= n || v < 0 || v >= n) return fail("endpoint out of range");
      if (u == v) return fail("self-loop not allowed");
      builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    } else {
      return fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (!saw_nodes) return Error("missing 'nodes' line");
  return builder.build();
}

Result<WeightedGraph> parse_edge_list(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

std::string to_dot(const WeightedGraph& g,
                   const std::vector<std::uint8_t>& side) {
  std::ostringstream out;
  out << "graph mecoff {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "  n" << v << " [label=\"" << v << " (" << g.node_weight(v)
        << ")\"";
    if (side.size() == g.num_nodes())
      out << ", style=filled, fillcolor=" << (side[v] == 0 ? "\"#a8d5ba\""
                                                           : "\"#f4a6a6\"");
    out << "];\n";
  }
  for (const Edge& e : g.edges())
    out << "  n" << e.u << " -- n" << e.v << " [label=\"" << e.weight
        << "\"];\n";
  out << "}\n";
  return out.str();
}

}  // namespace mecoff::graph
