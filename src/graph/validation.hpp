// Structural self-checks for WeightedGraph — the invariants the
// builder is supposed to guarantee, verified explicitly. Used by tests
// as a catch-all oracle after every transformation (subgraphs,
// compression, generators) and by the CLI's `stats` subcommand on
// untrusted input files.
#pragma once

#include <string>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace mecoff::graph {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> problems;

  void fail(std::string problem) {
    ok = false;
    problems.push_back(std::move(problem));
  }
};

/// Check every representation invariant:
///  * edge endpoints in range, no self-loops, no duplicate pairs;
///  * weights finite and non-negative (nodes and edges);
///  * adjacency lists consistent with the edge list in both directions
///    (same multiset of (neighbor, weight, edge-id) half-edges);
///  * degree sums equal 2·|E|.
[[nodiscard]] ValidationReport validate(const WeightedGraph& g);

/// Histogram of node degrees: result[d] = number of nodes of degree d.
[[nodiscard]] std::vector<std::size_t> degree_histogram(
    const WeightedGraph& g);

}  // namespace mecoff::graph
