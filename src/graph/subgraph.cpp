#include "graph/subgraph.hpp"

#include "common/contracts.hpp"

namespace mecoff::graph {

Subgraph induced_subgraph(const WeightedGraph& parent,
                          std::span<const NodeId> nodes) {
  std::vector<NodeId> to_local(parent.num_nodes(), kInvalidNode);
  GraphBuilder builder;
  Subgraph out;
  out.to_parent.reserve(nodes.size());
  for (const NodeId v : nodes) {
    MECOFF_EXPECTS(v < parent.num_nodes());
    MECOFF_EXPECTS(to_local[v] == kInvalidNode);  // uniqueness
    to_local[v] = builder.add_node(parent.node_weight(v));
    out.to_parent.push_back(v);
  }
  for (const NodeId v : nodes) {
    for (const Adjacency& adj : parent.neighbors(v)) {
      // Visit each edge once from its lower-local-id endpoint.
      if (to_local[adj.neighbor] == kInvalidNode) continue;
      if (to_local[v] < to_local[adj.neighbor])
        builder.add_edge(to_local[v], to_local[adj.neighbor], adj.weight);
    }
  }
  out.graph = builder.build();
  return out;
}

Subgraph remove_nodes(const WeightedGraph& parent,
                      const std::vector<bool>& remove) {
  MECOFF_EXPECTS(remove.size() == parent.num_nodes());
  std::vector<NodeId> keep;
  keep.reserve(parent.num_nodes());
  for (NodeId v = 0; v < parent.num_nodes(); ++v)
    if (!remove[v]) keep.push_back(v);
  return induced_subgraph(parent, keep);
}

}  // namespace mecoff::graph
