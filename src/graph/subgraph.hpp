// Induced subgraph extraction with provenance mapping — used when the
// pipeline splits the application graph at component boundaries and must
// later translate per-subgraph results back to original node ids.
#pragma once

#include <span>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace mecoff::graph {

/// An induced subgraph plus the mapping back to the parent graph.
struct Subgraph {
  WeightedGraph graph;
  /// to_parent[local id] = parent node id.
  std::vector<NodeId> to_parent;
};

/// Induced subgraph on `nodes` (must be unique, valid ids). Edges with
/// both endpoints inside `nodes` are kept; weights are preserved.
[[nodiscard]] Subgraph induced_subgraph(const WeightedGraph& parent,
                                        std::span<const NodeId> nodes);

/// Copy of `parent` with `remove[v] == true` nodes dropped (and their
/// incident edges). `to_parent` maps surviving local ids to parent ids.
[[nodiscard]] Subgraph remove_nodes(const WeightedGraph& parent,
                                    const std::vector<bool>& remove);

}  // namespace mecoff::graph
