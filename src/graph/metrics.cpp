#include "graph/metrics.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"
#include "graph/partition.hpp"

namespace mecoff::graph {

GraphStats compute_stats(const WeightedGraph& g) {
  GraphStats s;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  s.total_node_weight = g.total_node_weight();
  s.total_edge_weight = g.total_edge_weight();
  if (s.nodes > 0) {
    std::size_t degree_sum = 0;
    for (NodeId v = 0; v < s.nodes; ++v) {
      degree_sum += g.degree(v);
      s.max_degree = std::max(s.max_degree, g.degree(v));
    }
    s.avg_degree = static_cast<double>(degree_sum) /
                   static_cast<double>(s.nodes);
  }
  if (s.edges > 0) {
    s.min_edge_weight = std::numeric_limits<double>::infinity();
    for (const Edge& e : g.edges()) {
      s.min_edge_weight = std::min(s.min_edge_weight, e.weight);
      s.max_edge_weight = std::max(s.max_edge_weight, e.weight);
    }
  }
  return s;
}

double conductance(const WeightedGraph& g,
                   const std::vector<std::uint8_t>& side) {
  MECOFF_EXPECTS(side.size() == g.num_nodes());
  double vol0 = 0.0;
  double vol1 = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    (side[v] == 0 ? vol0 : vol1) += g.weighted_degree(v);
  }
  const double denom = std::min(vol0, vol1);
  if (denom <= 0.0) return 0.0;
  return cut_weight(g, side) / denom;
}

}  // namespace mecoff::graph
