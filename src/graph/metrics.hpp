// Summary statistics over weighted graphs, used by tests (to validate
// generators) and by EXPERIMENTS.md reporting.
#pragma once

#include <cstddef>

#include "graph/weighted_graph.hpp"

namespace mecoff::graph {

struct GraphStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double total_node_weight = 0.0;
  double total_edge_weight = 0.0;
  double avg_degree = 0.0;
  std::size_t max_degree = 0;
  double min_edge_weight = 0.0;
  double max_edge_weight = 0.0;
};

[[nodiscard]] GraphStats compute_stats(const WeightedGraph& g);

/// Conductance of a node subset S given as a side vector: cut(S, S̄) /
/// min(vol(S), vol(S̄)) with volume = Σ weighted degrees. Returns 0 for
/// degenerate (empty/full) sides.
[[nodiscard]] double conductance(const WeightedGraph& g,
                                 const std::vector<std::uint8_t>& side);

}  // namespace mecoff::graph
