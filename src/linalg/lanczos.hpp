// Lanczos iteration with full reorthogonalization for the smallest
// eigenpairs of a symmetric operator. This is the paper's "graph
// spectrum calculation": the Fiedler pair (λ₂, v₂) of each compressed
// sub-graph Laplacian. The operator is abstracted so the mini-Spark
// engine can substitute a parallel SpMV (the Fig. 9 "with Spark" path).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace mecoff::linalg {

/// A symmetric linear operator y = A·x of dimension `dim`.
struct LinearOperator {
  std::size_t dim = 0;
  std::function<void(std::span<const double> x, std::span<double> y)> apply;
};

/// Serial CSR-backed operator. `kernel` selects the SpMV summation
/// order (see SpmvKernel); kNaive replays the seed bit-for-bit.
[[nodiscard]] LinearOperator make_operator(
    const SparseMatrix& matrix, SpmvKernel kernel = SpmvKernel::kNaive);

struct EigenPair {
  double value = 0.0;
  Vec vector;
};

struct LanczosOptions {
  /// Number of smallest eigenpairs wanted (after deflation).
  std::size_t num_pairs = 1;
  /// Residual tolerance, relative to the operator's norm estimate.
  double tolerance = 1e-8;
  /// Initial Krylov subspace size (0 = auto). Grows geometrically on
  /// restart up to `max_subspace`. This is the restart knob: a sweep
  /// whose residual misses tolerance is retried with a doubled
  /// subspace, so even a tiny initial size (1) terminates and
  /// converges — it just restarts more.
  std::size_t initial_subspace = 0;
  std::size_t max_subspace = 400;
  /// Unit-norm directions to project out of the iteration (e.g. the
  /// constant null vector of a connected Laplacian).
  std::vector<Vec> deflate;
  /// Warm start: when non-empty, the first Krylov vector is this
  /// vector (projected against `deflate` and normalized) instead of a
  /// random draw. Seeding with an approximate eigenvector — e.g. the
  /// previous Fiedler vector of a slightly perturbed Laplacian — lets
  /// a small `initial_subspace` converge without restarts, which is
  /// the incremental re-solve fast path. Must have size == op.dim
  /// (PreconditionError otherwise); a vector lying in the deflation
  /// span degrades gracefully to the random start.
  Vec initial_vector;
  std::uint64_t seed = 0x5eed;
};

struct LanczosResult {
  std::vector<EigenPair> pairs;  ///< Ascending by eigenvalue.
  bool converged = false;
  std::size_t matvec_count = 0;
  double max_residual = 0.0;  ///< ‖A v − λ v‖ over returned pairs.
};

/// Smallest `options.num_pairs` eigenpairs of `op` restricted to the
/// orthogonal complement of `options.deflate`.
///
/// Robust to tiny problems: if the effective dimension is smaller than
/// the requested pair count, fewer pairs are returned.
[[nodiscard]] LanczosResult lanczos_smallest(const LinearOperator& op,
                                             const LanczosOptions& options);

}  // namespace mecoff::linalg
