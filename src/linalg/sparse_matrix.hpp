// Compressed-sparse-row matrix. Graph Laplacians at the paper's scales
// (up to 5000 nodes, ~40k edges) are extremely sparse; CSR SpMV is the
// workhorse of the Lanczos solver and the kernel the mini-Spark engine
// parallelizes for the Fig. 9 experiment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace mecoff::linalg {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// SpMV kernel selection. kNaive is the seed kernel: one sequential
/// accumulator per row, summing strictly in CSR storage order — the
/// bit-compatible fallback every golden fixture and committed bench
/// baseline was produced with. kBlocked is the hot-path kernel: rows
/// are walked in tiles of kSpmvRowBlock and each row's nonzeros are
/// accumulated 4-wide. Its summation order differs from kNaive, so the
/// two kernels agree only to rounding — callers that need bit-stable
/// replays of old fixtures keep kNaive (the default everywhere).
///
/// The blocked kernel's summation order is part of its contract
/// (tests/resolve_test.cpp holds an exact-equality oracle to it):
///   lane j accumulates entries k0 + 4i + j over the full quads of the
///   row (j = 0..3), the lanes combine as (a0 + a1) + (a2 + a3), and
///   the <= 3 tail entries are then added left to right.
enum class SpmvKernel : std::uint8_t { kNaive = 0, kBlocked = 1 };

/// Outer row-tile of the blocked kernel. Rows are independent, so the
/// tile only shapes traversal locality; results are identical for any
/// tile size.
inline constexpr std::size_t kSpmvRowBlock = 64;

class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Build an rows×cols CSR matrix; duplicate (row, col) entries are
  /// summed, explicit zeros are kept (harmless).
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const { return row_offsets_.empty()
        ? 0 : row_offsets_.size() - 1; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const { return values_.size(); }

  /// y = A·x (serial).
  [[nodiscard]] Vec multiply(std::span<const double> x) const;

  /// y = A·x into preallocated y (no allocation; hot path).
  void multiply_into(std::span<const double> x, std::span<double> y,
                     SpmvKernel kernel = SpmvKernel::kNaive) const;

  /// Rows [begin, end) of y = A·x — the unit of work the parallel
  /// engine distributes. Rows are computed independently, so any
  /// [begin, end) chunking of the same kernel is bit-identical to one
  /// full-range call.
  void multiply_rows(std::span<const double> x, std::span<double> y,
                     std::size_t begin, std::size_t end,
                     SpmvKernel kernel = SpmvKernel::kNaive) const;

  /// Entry lookup, O(row nnz). Mostly for tests.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Σ of a row's values (for Laplacian row-sum checks).
  [[nodiscard]] double row_sum(std::size_t r) const;

  /// Gershgorin upper bound on the spectral radius of a symmetric
  /// matrix: max_r Σ_c |A(r,c)|.
  [[nodiscard]] double gershgorin_bound() const;

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // size rows+1
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

}  // namespace mecoff::linalg
