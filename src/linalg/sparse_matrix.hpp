// Compressed-sparse-row matrix. Graph Laplacians at the paper's scales
// (up to 5000 nodes, ~40k edges) are extremely sparse; CSR SpMV is the
// workhorse of the Lanczos solver and the kernel the mini-Spark engine
// parallelizes for the Fig. 9 experiment.
#pragma once

#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace mecoff::linalg {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Build an rows×cols CSR matrix; duplicate (row, col) entries are
  /// summed, explicit zeros are kept (harmless).
  static SparseMatrix from_triplets(std::size_t rows, std::size_t cols,
                                    std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const { return row_offsets_.empty()
        ? 0 : row_offsets_.size() - 1; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const { return values_.size(); }

  /// y = A·x (serial).
  [[nodiscard]] Vec multiply(std::span<const double> x) const;

  /// y = A·x into preallocated y (no allocation; hot path).
  void multiply_into(std::span<const double> x, std::span<double> y) const;

  /// Rows [begin, end) of y = A·x — the unit of work the parallel
  /// engine distributes.
  void multiply_rows(std::span<const double> x, std::span<double> y,
                     std::size_t begin, std::size_t end) const;

  /// Entry lookup, O(row nnz). Mostly for tests.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Σ of a row's values (for Laplacian row-sum checks).
  [[nodiscard]] double row_sum(std::size_t r) const;

  /// Gershgorin upper bound on the spectral radius of a symmetric
  /// matrix: max_r Σ_c |A(r,c)|.
  [[nodiscard]] double gershgorin_bound() const;

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // size rows+1
  std::vector<std::size_t> col_indices_;
  std::vector<double> values_;
};

}  // namespace mecoff::linalg
