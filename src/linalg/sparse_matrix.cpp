#include "linalg/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace mecoff::linalg {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    MECOFF_EXPECTS(t.row < rows && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.cols_ = cols;
  m.row_offsets_.assign(rows + 1, 0);
  m.col_indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      const std::size_t c = triplets[i].col;
      double sum = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        sum += triplets[i].value;
        ++i;
      }
      m.col_indices_.push_back(c);
      m.values_.push_back(sum);
    }
    m.row_offsets_[r + 1] = m.col_indices_.size();
  }
  return m;
}

Vec SparseMatrix::multiply(std::span<const double> x) const {
  Vec y(rows(), 0.0);
  multiply_into(x, y);
  return y;
}

void SparseMatrix::multiply_into(std::span<const double> x,
                                 std::span<double> y,
                                 SpmvKernel kernel) const {
  multiply_rows(x, y, 0, rows(), kernel);
}

void SparseMatrix::multiply_rows(std::span<const double> x,
                                 std::span<double> y, std::size_t begin,
                                 std::size_t end, SpmvKernel kernel) const {
  MECOFF_EXPECTS(x.size() == cols_);
  MECOFF_EXPECTS(y.size() == rows());
  MECOFF_EXPECTS(begin <= end && end <= rows());
  if (kernel == SpmvKernel::kNaive) {
    for (std::size_t r = begin; r < end; ++r) {
      double sum = 0.0;
      for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
        sum += values_[k] * x[col_indices_[k]];
      y[r] = sum;
    }
    return;
  }
  // Blocked kernel: row tiles of kSpmvRowBlock, 4 independent
  // accumulator lanes per row. The summation order below — lane j takes
  // entries k0 + 4i + j over the full quads, lanes combine as
  // (a0 + a1) + (a2 + a3), tail entries add left to right — is the
  // contract the differential oracle in tests/resolve_test.cpp checks
  // for exact double equality.
  for (std::size_t tile = begin; tile < end; tile += kSpmvRowBlock) {
    const std::size_t tile_end = std::min(tile + kSpmvRowBlock, end);
    for (std::size_t r = tile; r < tile_end; ++r) {
      const std::size_t k1 = row_offsets_[r + 1];
      std::size_t k = row_offsets_[r];
      double a0 = 0.0;
      double a1 = 0.0;
      double a2 = 0.0;
      double a3 = 0.0;
      for (; k + 4 <= k1; k += 4) {
        a0 += values_[k] * x[col_indices_[k]];
        a1 += values_[k + 1] * x[col_indices_[k + 1]];
        a2 += values_[k + 2] * x[col_indices_[k + 2]];
        a3 += values_[k + 3] * x[col_indices_[k + 3]];
      }
      double sum = (a0 + a1) + (a2 + a3);
      for (; k < k1; ++k) sum += values_[k] * x[col_indices_[k]];
      y[r] = sum;
    }
  }
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  MECOFF_EXPECTS(r < rows() && c < cols_);
  for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
    if (col_indices_[k] == c) return values_[k];
  return 0.0;
}

double SparseMatrix::row_sum(std::size_t r) const {
  MECOFF_EXPECTS(r < rows());
  double sum = 0.0;
  for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
    sum += values_[k];
  return sum;
}

double SparseMatrix::gershgorin_bound() const {
  double bound = 0.0;
  for (std::size_t r = 0; r < rows(); ++r) {
    double abs_sum = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      abs_sum += std::abs(values_[k]);
    bound = std::max(bound, abs_sum);
  }
  return bound;
}

}  // namespace mecoff::linalg
