#include "linalg/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace mecoff::linalg {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    MECOFF_EXPECTS(t.row < rows && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.cols_ = cols;
  m.row_offsets_.assign(rows + 1, 0);
  m.col_indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      const std::size_t c = triplets[i].col;
      double sum = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        sum += triplets[i].value;
        ++i;
      }
      m.col_indices_.push_back(c);
      m.values_.push_back(sum);
    }
    m.row_offsets_[r + 1] = m.col_indices_.size();
  }
  return m;
}

Vec SparseMatrix::multiply(std::span<const double> x) const {
  Vec y(rows(), 0.0);
  multiply_into(x, y);
  return y;
}

void SparseMatrix::multiply_into(std::span<const double> x,
                                 std::span<double> y) const {
  multiply_rows(x, y, 0, rows());
}

void SparseMatrix::multiply_rows(std::span<const double> x,
                                 std::span<double> y, std::size_t begin,
                                 std::size_t end) const {
  MECOFF_EXPECTS(x.size() == cols_);
  MECOFF_EXPECTS(y.size() == rows());
  MECOFF_EXPECTS(begin <= end && end <= rows());
  for (std::size_t r = begin; r < end; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      sum += values_[k] * x[col_indices_[k]];
    y[r] = sum;
  }
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  MECOFF_EXPECTS(r < rows() && c < cols_);
  for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
    if (col_indices_[k] == c) return values_[k];
  return 0.0;
}

double SparseMatrix::row_sum(std::size_t r) const {
  MECOFF_EXPECTS(r < rows());
  double sum = 0.0;
  for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
    sum += values_[k];
  return sum;
}

double SparseMatrix::gershgorin_bound() const {
  double bound = 0.0;
  for (std::size_t r = 0; r < rows(); ++r) {
    double abs_sum = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      abs_sum += std::abs(values_[k]);
    bound = std::max(bound, abs_sum);
  }
  return bound;
}

}  // namespace mecoff::linalg
