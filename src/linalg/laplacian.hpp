// Weighted graph Laplacian L = D − W, the object at the heart of the
// paper's Theorems 1–3: for an indicator q ∈ {+1, −1}ⁿ,
//   qᵀ L q = Σ_{(a,b)∈E} s(a,b)·(q_a − q_b)² = 4·CUT,
// so minimizing the cut relaxes to the second-smallest eigenpair of L.
#pragma once

#include "graph/weighted_graph.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"

namespace mecoff::linalg {

/// Sparse combinatorial Laplacian of `g` (edge weights, not node weights).
[[nodiscard]] SparseMatrix laplacian(const graph::WeightedGraph& g);

/// Dense Laplacian (for small graphs / tests).
[[nodiscard]] DenseMatrix dense_laplacian(const graph::WeightedGraph& g);

/// qᵀ L q computed directly from the graph in O(E) without forming L.
[[nodiscard]] double laplacian_quadratic_form(const graph::WeightedGraph& g,
                                              std::span<const double> q);

}  // namespace mecoff::linalg
