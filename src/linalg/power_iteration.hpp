// Power-method based eigensolvers. Kept alongside Lanczos as the
// simpler alternative the ablation bench compares against
// (bench_ablation_eigensolver), and as an independent oracle in tests.
#pragma once

#include <cstdint>

#include "linalg/lanczos.hpp"

namespace mecoff::linalg {

struct PowerOptions {
  double tolerance = 1e-9;
  std::size_t max_iterations = 20000;
  std::vector<Vec> deflate;
  std::uint64_t seed = 0x5eed;
};

struct PowerResult {
  EigenPair pair;
  bool converged = false;
  std::size_t iterations = 0;
};

/// Dominant (largest-magnitude) eigenpair of `op` restricted to the
/// complement of the deflation set.
[[nodiscard]] PowerResult power_dominant(const LinearOperator& op,
                                         const PowerOptions& options);

/// Smallest eigenpair of a PSD operator via the spectral shift
/// B = c·I − A with c ≥ λ_max (Gershgorin): the dominant pair of B is
/// the smallest pair of A. `gershgorin` must upper-bound λ_max(A).
[[nodiscard]] PowerResult power_smallest_shifted(const LinearOperator& op,
                                                 double gershgorin,
                                                 const PowerOptions& options);

}  // namespace mecoff::linalg
