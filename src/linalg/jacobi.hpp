// Cyclic Jacobi eigendecomposition for dense symmetric matrices.
//
// O(n³) per sweep and unconditionally robust — the reference solver the
// test suite uses as an oracle against Lanczos on arbitrary graphs, and
// a sensible choice for the tiny compressed sub-graphs when exactness
// beats speed. Not for large n.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace mecoff::linalg {

struct JacobiResult {
  /// Eigenvalues in ascending order.
  Vec values;
  /// Column j of `vectors` is the (unit) eigenvector for values[j].
  DenseMatrix vectors;
  std::size_t sweeps = 0;
  bool converged = false;
};

struct JacobiOptions {
  /// Stop when the off-diagonal Frobenius norm falls below
  /// tolerance · ‖A‖_F.
  double tolerance = 1e-12;
  std::size_t max_sweeps = 64;
};

/// Full eigendecomposition of the symmetric matrix `a`.
/// Precondition: a is square and numerically symmetric.
[[nodiscard]] JacobiResult jacobi_eigen(const DenseMatrix& a,
                                        const JacobiOptions& options = {});

}  // namespace mecoff::linalg
