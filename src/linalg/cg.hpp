// Conjugate gradient for symmetric positive (semi-)definite systems.
// Used by tests as an independent check on the Laplacian (solving
// L x = b restricted to the complement of the null space) and available
// for shift-invert style solvers.
#pragma once

#include "linalg/lanczos.hpp"

namespace mecoff::linalg {

struct CgOptions {
  double tolerance = 1e-10;  ///< on ‖r‖ / ‖b‖
  std::size_t max_iterations = 10000;
  std::vector<Vec> deflate;  ///< project iterates off these directions
};

struct CgResult {
  Vec x;
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
};

/// Solve op·x = b by CG. With deflation directions supplied, solves in
/// the orthogonal complement (b is projected too), which makes singular
/// PSD systems (graph Laplacians) well-posed.
[[nodiscard]] CgResult conjugate_gradient(const LinearOperator& op,
                                          std::span<const double> b,
                                          const CgOptions& options);

}  // namespace mecoff::linalg
