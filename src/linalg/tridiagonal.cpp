#include "linalg/tridiagonal.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"

namespace mecoff::linalg {

// Implicit-shift QL for symmetric tridiagonal matrices, following the
// classic EISPACK/JAMA `tql2` routine (0-based). Eigenvalues land in
// d[], accumulated rotations in z (columns are eigenvectors).
TridiagonalEigen tridiagonal_eigen(Vec diag, Vec off) {
  const std::size_t n = diag.size();
  MECOFF_EXPECTS(n >= 1);
  MECOFF_EXPECTS(off.size() == n - 1);

  Vec d = std::move(diag);
  // e[i] couples rows i and i+1; e[n-1] is a zero sentinel.
  Vec e(n, 0.0);
  std::copy(off.begin(), off.end(), e.begin());

  DenseMatrix z(n, n);
  for (std::size_t i = 0; i < n; ++i) z(i, i) = 1.0;

  constexpr double kEps = 0x1p-52;
  constexpr int kMaxIterations = 60;
  double f = 0.0;
  double tst1 = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    std::size_t m = l;
    while (m < n && std::abs(e[m]) > kEps * tst1) ++m;

    if (m > l) {
      int iter = 0;
      do {
        if (++iter > kMaxIterations)
          throw InvariantError("tridiagonal QL failed to converge");

        // Compute implicit shift.
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = std::hypot(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (std::size_t i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        // Implicit QL transformation.
        p = d[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (std::size_t i = m; i-- > l;) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = std::hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);

          // Accumulate the rotation into the eigenvector matrix.
          for (std::size_t k = 0; k < n; ++k) {
            h = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * h;
            z(k, i) = c * z(k, i) - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > kEps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  // Sort eigenvalues ascending, permuting eigenvector columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });

  TridiagonalEigen out;
  out.values.resize(n);
  out.vectors = DenseMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = z(i, order[j]);
  }
  return out;
}

}  // namespace mecoff::linalg
