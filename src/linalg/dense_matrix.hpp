// Row-major dense matrix. Used for small compressed sub-graph
// Laplacians (after compression, graphs shrink by ~90%, so dense
// fallbacks are affordable) and inside the Lanczos basis bookkeeping.
#pragma once

#include <span>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace mecoff::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  /// Row view.
  [[nodiscard]] std::span<const double> row(std::size_t r) const;
  [[nodiscard]] std::span<double> row(std::size_t r);

  /// y = A·x. Requires x.size() == cols().
  [[nodiscard]] Vec multiply(std::span<const double> x) const;

  /// C = A·B. Requires cols() == B.rows().
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  [[nodiscard]] DenseMatrix transposed() const;

  /// max |A(i,j) - A(j,i)| over the upper triangle (0 for non-square is
  /// a precondition violation).
  [[nodiscard]] double symmetry_error() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mecoff::linalg
