#include "linalg/dense_matrix.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace mecoff::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& DenseMatrix::operator()(std::size_t r, std::size_t c) {
  MECOFF_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double DenseMatrix::operator()(std::size_t r, std::size_t c) const {
  MECOFF_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<const double> DenseMatrix::row(std::size_t r) const {
  MECOFF_EXPECTS(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<double> DenseMatrix::row(std::size_t r) {
  MECOFF_EXPECTS(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

Vec DenseMatrix::multiply(std::span<const double> x) const {
  MECOFF_EXPECTS(x.size() == cols_);
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) y[r] = dot(row(r), x);
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  MECOFF_EXPECTS(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out(r, c) += a * other(k, c);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double DenseMatrix::symmetry_error() const {
  MECOFF_EXPECTS(rows_ == cols_);
  double err = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      err = std::max(err, std::abs((*this)(r, c) - (*this)(c, r)));
  return err;
}

}  // namespace mecoff::linalg
