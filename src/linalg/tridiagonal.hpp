// Symmetric tridiagonal eigensolver (implicit QL with Wilkinson-style
// shifts, the classic `tql2` routine). This is the inner solver of the
// Lanczos method: Lanczos reduces the Laplacian to a small tridiagonal
// T whose eigenpairs approximate the extremal pairs of L.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace mecoff::linalg {

struct TridiagonalEigen {
  /// Eigenvalues in ascending order.
  Vec values;
  /// Column j of `vectors` is the eigenvector for values[j].
  DenseMatrix vectors;
};

/// Eigendecomposition of the symmetric tridiagonal matrix with main
/// diagonal `diag` (size n) and off-diagonal `off` (size n-1; off[i]
/// couples rows i and i+1). Throws InvariantError if QL fails to
/// converge (pathological input; never observed for Lanczos output).
[[nodiscard]] TridiagonalEigen tridiagonal_eigen(Vec diag, Vec off);

}  // namespace mecoff::linalg
