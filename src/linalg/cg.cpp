#include "linalg/cg.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace mecoff::linalg {

CgResult conjugate_gradient(const LinearOperator& op,
                            std::span<const double> b,
                            const CgOptions& options) {
  MECOFF_EXPECTS(b.size() == op.dim);
  const std::size_t n = op.dim;

  const auto project = [&](Vec& x) {
    for (const Vec& d : options.deflate) deflate(x, d);
  };

  Vec rhs(b.begin(), b.end());
  project(rhs);

  CgResult result;
  result.x.assign(n, 0.0);
  Vec r = rhs;           // r = b - A·0
  Vec p = r;
  Vec ap(n, 0.0);

  const double b_norm = std::max(norm2(rhs), 1e-300);
  double rr = dot(r, r);
  result.residual_norm = std::sqrt(rr);
  if (result.residual_norm / b_norm <= options.tolerance) {
    result.converged = true;
    return result;
  }

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    op.apply(p, ap);
    project(ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD on this subspace; give up cleanly
    const double alpha = rr / pap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    const double rr_new = dot(r, r);
    result.iterations = it + 1;
    result.residual_norm = std::sqrt(rr_new);
    if (result.residual_norm / b_norm <= options.tolerance) {
      result.converged = true;
      break;
    }
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
  }
  project(result.x);
  return result;
}

}  // namespace mecoff::linalg
