#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "linalg/tridiagonal.hpp"
#include "obs/obs.hpp"

namespace mecoff::linalg {

LinearOperator make_operator(const SparseMatrix& matrix, SpmvKernel kernel) {
  MECOFF_EXPECTS(matrix.rows() == matrix.cols());
  return LinearOperator{
      matrix.rows(),
      [&matrix, kernel](std::span<const double> x, std::span<double> y) {
        matrix.multiply_into(x, y, kernel);
      }};
}

namespace {

/// Project `x` orthogonal to every vector in `dirs` (assumed unit norm).
void project_out(Vec& x, const std::vector<Vec>& dirs) {
  for (const Vec& d : dirs) deflate(x, d);
}

/// Orthogonalize `x` against the Lanczos basis columns AND the deflation
/// directions (classical Gram–Schmidt, applied twice — "twice is enough"
/// per Kahan/Parlett). Including the deflation set here is essential:
/// once the Krylov space exhausts the deflated complement, the residual
/// after basis-only reorthogonalization is dominated by the deflated
/// directions themselves; normalizing that residual would reintroduce
/// them into the basis and surface their (spurious) eigenvalues.
void reorthogonalize(Vec& x, const std::vector<Vec>& basis,
                     const std::vector<Vec>& deflate_dirs) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const Vec& d : deflate_dirs) deflate(x, d);
    for (const Vec& b : basis) deflate(x, b);
  }
}

/// Random unit start vector orthogonal to the deflation set.
Vec random_start(std::size_t n, const std::vector<Vec>& dirs, Rng& rng) {
  Vec v(n);
  for (int attempt = 0; attempt < 16; ++attempt) {
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    project_out(v, dirs);
    const double norm = norm2(v);
    if (norm > 1e-12 * std::sqrt(static_cast<double>(n))) {
      scale(v, 1.0 / norm);
      return v;
    }
  }
  throw InvariantError(
      "could not draw a start vector outside the deflation span");
}

struct SweepOutcome {
  std::vector<EigenPair> pairs;
  double max_residual = 0.0;
  bool basis_exhausted = false;  // invariant subspace found
};

/// One Lanczos sweep: build a Krylov basis of size <= m, then extract
/// Ritz pairs for the `k` smallest eigenvalues.
SweepOutcome lanczos_sweep(const LinearOperator& op, const Vec& start,
                           std::size_t m, std::size_t k,
                           const std::vector<Vec>& deflate_dirs,
                           std::size_t& matvec_count) {
  const std::size_t n = op.dim;
  std::vector<Vec> basis;
  basis.reserve(m);
  Vec alpha;  // diagonal of T
  Vec beta;   // off-diagonal of T

  Vec v = start;
  Vec w(n, 0.0);
  bool exhausted = false;

  for (std::size_t j = 0; j < m; ++j) {
    basis.push_back(v);
    op.apply(basis[j], w);
    ++matvec_count;
    project_out(w, deflate_dirs);

    const double a = dot(w, basis[j]);
    alpha.push_back(a);
    axpy(-a, basis[j], w);
    if (j > 0) axpy(-beta[j - 1], basis[j - 1], w);
    reorthogonalize(w, basis, deflate_dirs);

    const double b = norm2(w);
    if (j + 1 == m) break;
    if (b <= 1e-12 * (std::abs(a) + 1.0)) {
      exhausted = true;  // Krylov space is invariant; T is exact
      break;
    }
    beta.push_back(b);
    v = w;
    scale(v, 1.0 / b);
  }

  const std::size_t dim_t = alpha.size();
  const TridiagonalEigen eig =
      tridiagonal_eigen(alpha, Vec(beta.begin(),
                                   beta.begin() +
                                       static_cast<std::ptrdiff_t>(dim_t - 1)));

  SweepOutcome out;
  out.basis_exhausted = exhausted;
  const std::size_t take = std::min(k, dim_t);
  for (std::size_t p = 0; p < take; ++p) {
    EigenPair pair;
    pair.value = eig.values[p];
    pair.vector.assign(n, 0.0);
    for (std::size_t j = 0; j < dim_t; ++j)
      axpy(eig.vectors(j, p), basis[j], pair.vector);
    // Residual bound: |beta_last · (last component of tridiag vector)|.
    const double resid =
        (exhausted || dim_t == beta.size())
            ? 0.0
            : std::abs((dim_t <= beta.size() ? beta[dim_t - 1] : 0.0));
    // Prefer the exact residual: ‖A v − λ v‖ (one extra matvec per pair).
    Vec av(n, 0.0);
    op.apply(pair.vector, av);
    ++matvec_count;
    project_out(av, deflate_dirs);
    axpy(-pair.value, pair.vector, av);
    out.max_residual = std::max(out.max_residual, std::max(norm2(av), 0.0));
    (void)resid;
    out.pairs.push_back(std::move(pair));
  }
  return out;
}

}  // namespace

LanczosResult lanczos_smallest(const LinearOperator& op,
                               const LanczosOptions& options) {
  MECOFF_EXPECTS(op.dim >= 1);
  MECOFF_EXPECTS(options.num_pairs >= 1);
  MECOFF_TRACE_SPAN_ARG("linalg.lanczos", op.dim);
  MECOFF_COUNTER_ADD("linalg.lanczos.solves", 1);
  const std::size_t n = op.dim;

  // Effective dimension after deflation.
  const std::size_t effective_dim =
      n > options.deflate.size() ? n - options.deflate.size() : 0;
  const std::size_t k = std::min(options.num_pairs, std::max<std::size_t>(
                                                        effective_dim, 0));
  LanczosResult result;
  if (k == 0) {
    result.converged = true;
    return result;
  }

  Rng rng(options.seed);
  // Warm start: validated caller-supplied first Krylov vector, else the
  // seeded random draw. A wrong-dimension warm vector is a typed error
  // (never read out of bounds); one inside the deflation span falls
  // back to the random start — the solve degrades to cold, it never
  // fails.
  Vec start;
  if (!options.initial_vector.empty()) {
    if (options.initial_vector.size() != n)
      throw PreconditionError(
          "Lanczos warm-start vector has dimension " +
          std::to_string(options.initial_vector.size()) +
          " but the operator has dimension " + std::to_string(n));
    start = options.initial_vector;
    project_out(start, options.deflate);
    const double norm = norm2(start);
    if (norm > 1e-10 * std::sqrt(static_cast<double>(n)))
      scale(start, 1.0 / norm);
    else
      start = random_start(n, options.deflate, rng);
  } else {
    start = random_start(n, options.deflate, rng);
  }

  // Operator norm scale for the relative tolerance: estimate from one
  // matvec on the start vector (cheap, adequate for a threshold).
  Vec probe(n, 0.0);
  op.apply(start, probe);
  ++result.matvec_count;
  const double op_scale = std::max(norm2(probe), 1.0);
  const double abs_tol = options.tolerance * op_scale;

  std::size_t m = options.initial_subspace != 0
                      ? options.initial_subspace
                      : std::min<std::size_t>(n, std::max<std::size_t>(
                                                     2 * k + 28, 36));
  m = std::min(m, n);

  SweepOutcome best;
  bool have_best = false;
  std::size_t sweeps = 0;
  while (true) {
    SweepOutcome sweep = [&] {
      MECOFF_TRACE_SPAN_ARG("linalg.lanczos.sweep", m);
      return lanczos_sweep(op, start, m, k, options.deflate,
                           result.matvec_count);
    }();
    ++sweeps;
    if (!have_best || sweep.max_residual < best.max_residual) {
      best = std::move(sweep);
      have_best = true;
    }
    if (best.max_residual <= abs_tol || best.basis_exhausted ||
        m >= std::min(options.max_subspace, n)) {
      break;
    }
    m = std::min({2 * m, options.max_subspace, n});
  }

  result.pairs = std::move(best.pairs);
  result.max_residual = best.max_residual;
  result.converged = best.max_residual <= abs_tol || best.basis_exhausted;
  MECOFF_COUNTER_ADD("linalg.lanczos.matvecs", result.matvec_count);
  MECOFF_COUNTER_ADD("linalg.lanczos.restarts", sweeps - 1);
  MECOFF_COUNTER_ADD("linalg.lanczos.nonconverged",
                     result.converged ? 0 : 1);
  return result;
}

}  // namespace mecoff::linalg
