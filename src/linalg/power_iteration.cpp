#include "linalg/power_iteration.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace mecoff::linalg {

namespace {

void project_out(Vec& x, const std::vector<Vec>& dirs) {
  for (const Vec& d : dirs) deflate(x, d);
}

}  // namespace

PowerResult power_dominant(const LinearOperator& op,
                           const PowerOptions& options) {
  MECOFF_EXPECTS(op.dim >= 1);
  MECOFF_TRACE_SPAN_ARG("linalg.power", op.dim);
  MECOFF_COUNTER_ADD("linalg.power.solves", 1);
  const std::size_t n = op.dim;

  Rng rng(options.seed);
  Vec v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  project_out(v, options.deflate);
  const double start_norm = norm2(v);
  PowerResult result;
  if (start_norm <= 1e-300) return result;  // deflation spans everything
  scale(v, 1.0 / start_norm);

  // Publishes however the iteration exits (convergence, null-space hit,
  // or iteration-cap bailout).
  const auto publish = [](const PowerResult& r) {
    MECOFF_COUNTER_ADD("linalg.power.iterations", r.iterations);
    MECOFF_COUNTER_ADD("linalg.power.nonconverged", r.converged ? 0 : 1);
  };

  Vec av(n, 0.0);
  double lambda = 0.0;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    op.apply(v, av);
    project_out(av, options.deflate);
    const double norm = norm2(av);
    if (norm <= 1e-300) {
      // v is (numerically) in the null space: eigenvalue 0.
      result.pair = EigenPair{0.0, v};
      result.converged = true;
      result.iterations = it + 1;
      publish(result);
      return result;
    }
    scale(av, 1.0 / norm);
    const double new_lambda = [&] {
      Vec tmp(n, 0.0);
      op.apply(av, tmp);
      return dot(tmp, av);
    }();
    const double drift = max_abs_diff(av, v);
    // The iterate may flip sign each step for negative eigenvalues;
    // compare against both orientations.
    Vec neg = av;
    scale(neg, -1.0);
    const double drift_neg = max_abs_diff(neg, v);
    v = av;
    result.iterations = it + 1;
    if (std::min(drift, drift_neg) < options.tolerance &&
        std::abs(new_lambda - lambda) <
            options.tolerance * (std::abs(new_lambda) + 1.0)) {
      lambda = new_lambda;
      result.converged = true;
      break;
    }
    lambda = new_lambda;
  }
  result.pair = EigenPair{lambda, v};
  publish(result);
  return result;
}

PowerResult power_smallest_shifted(const LinearOperator& op,
                                   double gershgorin,
                                   const PowerOptions& options) {
  MECOFF_EXPECTS(gershgorin >= 0.0);
  const double c = gershgorin + 1.0;  // strict bound avoids a zero shift
  LinearOperator shifted{
      op.dim, [&op, c](std::span<const double> x, std::span<double> y) {
        op.apply(x, y);
        for (std::size_t i = 0; i < x.size(); ++i) y[i] = c * x[i] - y[i];
      }};
  PowerResult result = power_dominant(shifted, options);
  result.pair.value = c - result.pair.value;
  return result;
}

}  // namespace mecoff::linalg
