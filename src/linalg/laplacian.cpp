#include "linalg/laplacian.hpp"

#include "common/contracts.hpp"

namespace mecoff::linalg {

SparseMatrix laplacian(const graph::WeightedGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<Triplet> triplets;
  triplets.reserve(4 * g.num_edges() + n);
  std::vector<double> degree(n, 0.0);
  for (const graph::Edge& e : g.edges()) {
    degree[e.u] += e.weight;
    degree[e.v] += e.weight;
    triplets.push_back({e.u, e.v, -e.weight});
    triplets.push_back({e.v, e.u, -e.weight});
  }
  for (std::size_t v = 0; v < n; ++v) triplets.push_back({v, v, degree[v]});
  return SparseMatrix::from_triplets(n, n, std::move(triplets));
}

DenseMatrix dense_laplacian(const graph::WeightedGraph& g) {
  const std::size_t n = g.num_nodes();
  DenseMatrix m(n, n);
  for (const graph::Edge& e : g.edges()) {
    m(e.u, e.v) -= e.weight;
    m(e.v, e.u) -= e.weight;
    m(e.u, e.u) += e.weight;
    m(e.v, e.v) += e.weight;
  }
  return m;
}

double laplacian_quadratic_form(const graph::WeightedGraph& g,
                                std::span<const double> q) {
  MECOFF_EXPECTS(q.size() == g.num_nodes());
  double sum = 0.0;
  for (const graph::Edge& e : g.edges()) {
    const double d = q[e.u] - q[e.v];
    sum += e.weight * d * d;
  }
  return sum;
}

}  // namespace mecoff::linalg
