// BLAS-1 style operations on std::vector<double>. The eigensolvers are
// built from these; keeping them free functions keeps call sites close
// to the math they implement.
#pragma once

#include <span>
#include <vector>

namespace mecoff::linalg {

using Vec = std::vector<double>;

/// <x, y>. Requires equal sizes.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// ‖x‖₂.
[[nodiscard]] double norm2(std::span<const double> x);

/// y += a·x.
void axpy(double a, std::span<const double> x, std::span<double> y);

/// x *= a.
void scale(std::span<double> x, double a);

/// x /= ‖x‖₂; returns the original norm. Requires a nonzero vector.
double normalize(std::span<double> x);

/// Remove the component of x along the (unit) direction d: x -= <x,d>·d.
void deflate(std::span<double> x, std::span<const double> d);

/// max_i |x_i - y_i|.
[[nodiscard]] double max_abs_diff(std::span<const double> x,
                                  std::span<const double> y);

/// Constant unit vector (1/√n, ..., 1/√n) — the Laplacian's null vector
/// on a connected graph.
[[nodiscard]] Vec constant_unit(std::size_t n);

}  // namespace mecoff::linalg
