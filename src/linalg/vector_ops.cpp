#include "linalg/vector_ops.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace mecoff::linalg {

double dot(std::span<const double> x, std::span<const double> y) {
  MECOFF_EXPECTS(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

void axpy(double a, std::span<const double> x, std::span<double> y) {
  MECOFF_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scale(std::span<double> x, double a) {
  for (double& v : x) v *= a;
}

double normalize(std::span<double> x) {
  const double n = norm2(x);
  MECOFF_EXPECTS(n > 0.0);
  scale(x, 1.0 / n);
  return n;
}

void deflate(std::span<double> x, std::span<const double> d) {
  const double c = dot(x, d);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= c * d[i];
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  MECOFF_EXPECTS(x.size() == y.size());
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    m = std::max(m, std::abs(x[i] - y[i]));
  return m;
}

Vec constant_unit(std::size_t n) {
  MECOFF_EXPECTS(n > 0);
  return Vec(n, 1.0 / std::sqrt(static_cast<double>(n)));
}

}  // namespace mecoff::linalg
