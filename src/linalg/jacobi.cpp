#include "linalg/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"

namespace mecoff::linalg {

namespace {

/// Frobenius norm of the strict upper triangle.
double off_diagonal_norm(const DenseMatrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j)
      sum += a(i, j) * a(i, j);
  return std::sqrt(2.0 * sum);
}

double frobenius_norm(const DenseMatrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * a(i, j);
  return std::sqrt(sum);
}

}  // namespace

JacobiResult jacobi_eigen(const DenseMatrix& a, const JacobiOptions& options) {
  MECOFF_EXPECTS(a.rows() == a.cols());
  MECOFF_EXPECTS(a.symmetry_error() <= 1e-9 * (1.0 + frobenius_norm(a)));
  const std::size_t n = a.rows();

  JacobiResult out;
  if (n == 0) {
    out.converged = true;
    return out;
  }

  DenseMatrix m = a;  // working copy, driven to diagonal
  DenseMatrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const double scale = std::max(frobenius_norm(a), 1e-300);
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (off_diagonal_norm(m) <= options.tolerance * scale) {
      out.converged = true;
      break;
    }
    out.sweeps = sweep + 1;
    // One cyclic sweep over the strict upper triangle.
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        // Rotation angle that annihilates m(p, q).
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)),
            theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // A ← Jᵀ A J applied to rows/columns p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = m(k, p);
          const double akq = m(k, q);
          m(k, p) = c * akp - s * akq;
          m(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = m(p, k);
          const double aqk = m(q, k);
          m(p, k) = c * apk - s * aqk;
          m(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (off_diagonal_norm(m) <= options.tolerance * scale)
    out.converged = true;

  // Sort ascending, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return m(x, x) < m(y, y);
  });
  out.values.resize(n);
  out.vectors = DenseMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = m(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace mecoff::linalg
