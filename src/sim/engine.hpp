// Discrete-event simulation core: a clock and a time-ordered event
// queue. Events scheduled for the same instant fire in scheduling order
// (FIFO tie-break via a monotone sequence number), which keeps runs
// fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mecoff::sim {

using SimTime = double;

class SimEngine {
 public:
  SimEngine() = default;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` `delay` (>= 0) after now.
  void schedule_after(SimTime delay, std::function<void()> fn);

  /// Run until the queue drains; returns the final clock value.
  ///
  /// HAZARD: unbounded. A handler that perpetually reschedules itself
  /// (a polling loop, a flapping link) makes this spin forever; when
  /// handlers are not known to terminate, use run_until() or the
  /// max-event overload instead.
  SimTime run();

  /// Run events with time <= `horizon` (>= now); later events stay
  /// queued. The clock ends at `horizon` even if the queue drained
  /// earlier, so follow-up schedule_after() calls are horizon-relative.
  SimTime run_until(SimTime horizon);

  /// Run at most `max_events` events, stopping earlier if the queue
  /// drains. The budget backstop for chaos runs and fault scripts.
  SimTime run(std::size_t max_events);

  /// Number of events executed by the last run()/run_until().
  [[nodiscard]] std::size_t events_executed() const { return executed_; }

  /// Events still queued (nonzero after a horizon/budget stop).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimTime run_core(SimTime horizon, std::size_t max_events);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mecoff::sim
