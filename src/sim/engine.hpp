// Discrete-event simulation core: a clock and a time-ordered event
// queue. Events scheduled for the same instant fire in scheduling order
// (FIFO tie-break via a monotone sequence number), which keeps runs
// fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mecoff::sim {

using SimTime = double;

class SimEngine {
 public:
  SimEngine() = default;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` `delay` (>= 0) after now.
  void schedule_after(SimTime delay, std::function<void()> fn);

  /// Run until the queue drains; returns the final clock value.
  SimTime run();

  /// Number of events executed by the last run().
  [[nodiscard]] std::size_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mecoff::sim
