// Simulated resources.
//
// FifoResource — a rate-`capacity` server processing one job at a time
// in arrival order: the edge server S. A job of size W admitted at time
// a behind queued work Q completes at a + Q/capacity + W/capacity; the
// Q/capacity term is the mechanistic version of the paper's waiting
// time w_t.
//
// SharedResource — egalitarian processor sharing at rate `capacity`:
// every resident job progresses at capacity/K. Provided as the
// alternative server discipline for the contention ablation.
#pragma once

#include <functional>
#include <list>
#include <map>
#include <vector>

#include "sim/engine.hpp"

namespace mecoff::sim {

struct JobStats {
  SimTime admitted = 0.0;
  SimTime started = 0.0;    ///< FIFO: head-of-queue time; PS: = admitted
  SimTime completed = 0.0;

  [[nodiscard]] SimTime wait() const { return started - admitted; }
  [[nodiscard]] SimTime sojourn() const { return completed - admitted; }
};

class FifoResource {
 public:
  FifoResource(SimEngine& engine, double capacity);

  /// Admit a job of `size` work units; `on_complete(stats)` fires when
  /// it finishes.
  void submit(double size, std::function<void(const JobStats&)> on_complete);

  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] std::size_t jobs_completed() const { return completed_; }

 private:
  struct Pending {
    double size;
    JobStats stats;
    std::function<void(const JobStats&)> on_complete;
  };

  void start_next();

  SimEngine& engine_;
  double capacity_;
  std::list<Pending> queue_;
  bool busy_ = false;
  std::size_t completed_ = 0;
};

class SharedResource {
 public:
  SharedResource(SimEngine& engine, double capacity);

  void submit(double size, std::function<void(const JobStats&)> on_complete);

  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] std::size_t jobs_completed() const { return completed_; }

 private:
  struct Resident {
    double remaining;
    JobStats stats;
    std::function<void(const JobStats&)> on_complete;
  };

  /// Advance every resident job to `now`, then (re)schedule the next
  /// completion event.
  void reschedule();

  SimEngine& engine_;
  double capacity_;
  std::map<std::uint64_t, Resident> residents_;
  std::uint64_t next_id_ = 0;
  SimTime last_update_ = 0.0;
  std::uint64_t epoch_ = 0;  ///< invalidates stale completion events
  std::size_t completed_ = 0;
};

}  // namespace mecoff::sim
