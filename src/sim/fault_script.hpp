// Scripted fault injection for the DES.
//
// A FaultScript is a time-ordered list of infrastructure faults —
// server crash/recover, link degrade/restore, user disconnect — that
// can be armed on a SimEngine. Scripts are plain data: they can be
// built programmatically, parsed from text, or generated pseudo-
// randomly from a seed, and the SAME (script, seed) pair always yields
// the SAME event sequence, which is what makes failure runs replayable
// bit-for-bit (the chaos harness in sim/chaos.hpp asserts exactly
// that).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "sim/engine.hpp"

namespace mecoff::sim {

/// Fault taxonomy. Server faults take a server id as target; link
/// faults target the radio of one server; disconnects target a user.
enum class FaultKind : std::uint8_t {
  kServerCrash,
  kServerRecover,
  kLinkDegrade,
  kLinkRestore,
  kUserDisconnect,
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  SimTime time = 0.0;
  FaultKind kind = FaultKind::kServerCrash;
  std::size_t target = 0;  ///< server id, or user id for disconnects
  /// Link degrade only: surviving fraction of the nominal rate, (0, 1).
  double severity = 0.5;

  /// Deterministic one-line rendering ("at <t> degrade 2 0.25") — the
  /// unit replay logs are built from.
  [[nodiscard]] std::string describe() const;
};

/// Parameters for FaultScript::random().
struct RandomFaultParams {
  std::uint64_t seed = 0xfa171;
  std::size_t servers = 2;  ///< server ids drawn from [0, servers)
  std::size_t users = 0;    ///< 0 disables disconnect events
  std::size_t events = 8;   ///< crash/degrade episodes (each may add a
                            ///< paired recover/restore)
  SimTime horizon = 100.0;  ///< fault times fall in [0, horizon)
  /// Fraction of episodes that recover/restore before the horizon.
  double recovery_probability = 0.75;
};

class FaultScript {
 public:
  FaultScript() = default;

  /// Append one event. Throws PreconditionError for non-finite or
  /// negative times, or a degrade severity outside (0, 1).
  FaultScript& add(FaultEvent event);

  FaultScript& crash_server(SimTime t, std::size_t server);
  FaultScript& recover_server(SimTime t, std::size_t server);
  FaultScript& degrade_link(SimTime t, std::size_t server, double severity);
  FaultScript& restore_link(SimTime t, std::size_t server);
  FaultScript& disconnect_user(SimTime t, std::size_t user);

  /// Events in insertion order (possibly out of time order).
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  /// Events in replay order: stable-sorted by time, so out-of-order
  /// adds are normalized and same-instant events keep insertion order.
  [[nodiscard]] std::vector<FaultEvent> ordered() const;

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Schedule every event on `engine`, firing `handler` at each fault's
  /// time. Requires the engine clock at or before the earliest event.
  void arm(SimEngine& engine,
           std::function<void(const FaultEvent&)> handler) const;

  /// One describe() line per event, in replay order; parse() inverts.
  [[nodiscard]] std::string to_text() const;

  /// Parse the describe()/to_text() format; '#' comments and blank
  /// lines are skipped. Garbage, negative times, unknown fault names
  /// and bad severities yield an error Result, never a throw.
  [[nodiscard]] static Result<FaultScript> parse(const std::string& text);

  /// Deterministic pseudo-random crash/degrade/disconnect scenario:
  /// the same params (seed included) always produce the same script.
  [[nodiscard]] static FaultScript random(const RandomFaultParams& params);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace mecoff::sim
