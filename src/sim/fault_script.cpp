#include "sim/fault_script.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace mecoff::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash: return "crash";
    case FaultKind::kServerRecover: return "recover";
    case FaultKind::kLinkDegrade: return "degrade";
    case FaultKind::kLinkRestore: return "restore";
    case FaultKind::kUserDisconnect: return "disconnect";
  }
  return "unknown";
}

std::string FaultEvent::describe() const {
  // 17 significant digits round-trip doubles exactly, so describe()
  // output is a faithful replay key, not just a display string.
  // format_general pins the bytes to the "C" locale ("%.17g" would
  // follow LC_NUMERIC and break script round-trips under a
  // comma-decimal locale).
  std::string out = "at " + format_general(time, 17) + ' ' +
                    std::string(to_string(kind)) + ' ' +
                    std::to_string(target);
  if (kind == FaultKind::kLinkDegrade)
    out += ' ' + format_general(severity, 17);
  return out;
}

FaultScript& FaultScript::add(FaultEvent event) {
  MECOFF_EXPECTS(std::isfinite(event.time) && event.time >= 0.0);
  if (event.kind == FaultKind::kLinkDegrade)
    MECOFF_EXPECTS(event.severity > 0.0 && event.severity < 1.0);
  events_.push_back(event);
  return *this;
}

FaultScript& FaultScript::crash_server(SimTime t, std::size_t server) {
  return add(FaultEvent{t, FaultKind::kServerCrash, server, 0.0});
}

FaultScript& FaultScript::recover_server(SimTime t, std::size_t server) {
  return add(FaultEvent{t, FaultKind::kServerRecover, server, 0.0});
}

FaultScript& FaultScript::degrade_link(SimTime t, std::size_t server,
                                       double severity) {
  return add(FaultEvent{t, FaultKind::kLinkDegrade, server, severity});
}

FaultScript& FaultScript::restore_link(SimTime t, std::size_t server) {
  return add(FaultEvent{t, FaultKind::kLinkRestore, server, 0.0});
}

FaultScript& FaultScript::disconnect_user(SimTime t, std::size_t user) {
  return add(FaultEvent{t, FaultKind::kUserDisconnect, user, 0.0});
}

std::vector<FaultEvent> FaultScript::ordered() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return sorted;
}

void FaultScript::arm(SimEngine& engine,
                      std::function<void(const FaultEvent&)> handler) const {
  MECOFF_EXPECTS(handler != nullptr);
  // Scheduling in replay order keeps same-instant faults firing in the
  // script's insertion order (the engine tie-breaks FIFO).
  for (const FaultEvent& event : ordered())
    engine.schedule_at(event.time,
                       [event, handler] { handler(event); });
}

std::string FaultScript::to_text() const {
  std::ostringstream out;
  for (const FaultEvent& event : ordered()) out << event.describe() << '\n';
  return out.str();
}

Result<FaultScript> FaultScript::parse(const std::string& text) {
  FaultScript script;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed{trim(line)};
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fail = [&](const std::string& why) {
      return Error("fault script line " + std::to_string(line_no) + ": " +
                   why);
    };

    std::istringstream fields(trimmed);
    std::string at_word, kind_word;
    double time = 0.0;
    std::size_t target = 0;
    if (!(fields >> at_word >> time >> kind_word >> target) ||
        at_word != "at")
      return fail("expected 'at <time> <fault> <target>'");
    if (!std::isfinite(time) || time < 0.0)
      return fail("fault time must be finite and non-negative");

    FaultEvent event;
    event.time = time;
    event.target = target;
    event.severity = 0.0;  // meaningful for degrade only; normalized so
                           // parse(to_text(s)) reproduces s exactly
    if (kind_word == "crash") {
      event.kind = FaultKind::kServerCrash;
    } else if (kind_word == "recover") {
      event.kind = FaultKind::kServerRecover;
    } else if (kind_word == "degrade") {
      event.kind = FaultKind::kLinkDegrade;
      if (!(fields >> event.severity))
        return fail("degrade needs a severity");
      if (!(event.severity > 0.0 && event.severity < 1.0))
        return fail("degrade severity must be in (0, 1)");
    } else if (kind_word == "restore") {
      event.kind = FaultKind::kLinkRestore;
    } else if (kind_word == "disconnect") {
      event.kind = FaultKind::kUserDisconnect;
    } else {
      return fail("unknown fault '" + kind_word + "'");
    }
    std::string extra;
    if (fields >> extra) return fail("trailing garbage '" + extra + "'");
    script.add(event);
  }
  return script;
}

FaultScript FaultScript::random(const RandomFaultParams& params) {
  MECOFF_EXPECTS(params.servers > 0);
  MECOFF_EXPECTS(params.horizon > 0.0);
  Rng rng(params.seed);
  FaultScript script;
  for (std::size_t i = 0; i < params.events; ++i) {
    // Episodes start inside the first 80% of the horizon so paired
    // recoveries have room to land before it.
    const SimTime t = rng.uniform(0.0, params.horizon * 0.8);
    const bool recovers = rng.bernoulli(params.recovery_probability);
    const SimTime recover_at =
        t + rng.uniform(params.horizon * 0.01, params.horizon * 0.19);
    const bool can_disconnect = params.users > 0;
    const std::size_t die = rng.index(can_disconnect ? 3 : 2);
    switch (die) {
      case 0: {
        const std::size_t server = rng.index(params.servers);
        script.crash_server(t, server);
        if (recovers) script.recover_server(recover_at, server);
        break;
      }
      case 1: {
        const std::size_t server = rng.index(params.servers);
        script.degrade_link(t, server, rng.uniform(0.05, 0.95));
        if (recovers) script.restore_link(recover_at, server);
        break;
      }
      default:
        script.disconnect_user(t, rng.index(params.users));
        break;
    }
  }
  return script;
}

}  // namespace mecoff::sim
