#include "sim/chaos.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "obs/flight_recorder.hpp"

namespace mecoff::sim {

namespace {

// 17 significant digits round-trip exactly; format_general keeps the
// chaos trace locale-independent so (system, script) replays diff
// byte-for-byte on any machine.
std::string format_double(double value) { return format_general(value, 17); }

std::string format_step(const mec::FailoverStep& step) {
  std::ostringstream out;
  if (!step.moved_users.empty()) {
    out << " moved=[";
    for (std::size_t i = 0; i < step.moved_users.size(); ++i)
      out << (i == 0 ? "" : ",") << step.moved_users[i];
    out << ']';
  }
  if (!step.resolved_groups.empty()) {
    out << " resolved=[";
    for (std::size_t i = 0; i < step.resolved_groups.size(); ++i)
      out << (i == 0 ? "" : ",") << step.resolved_groups[i];
    out << ']';
  }
  if (!step.adopted) out << " suppressed";
  if (step.all_local_fallback) out << " all-local";
  out << " objective=" << format_double(step.objective_after);
  return out.str();
}

}  // namespace

Result<ChaosOutcome> run_chaos(const mec::MultiServerSystem& system,
                               const FaultScript& script,
                               const ChaosOptions& options) {
  if (!system.valid()) return Error("invalid multi-server system");

  ChaosOutcome outcome;
  // Anomalies are attributed by delta so the recorder can be shared
  // with other runs in the process. Obs-off builds feed no records, so
  // the delta (and the field) stays 0 there.
  const std::uint64_t anomalies_before =
      obs::FlightRecorder::global().anomaly_count();
  mec::FailoverController controller(system, options.failover);
  outcome.trace.push_back(
      "at 0 init objective=" + format_double(controller.objective()));

  SimEngine engine;
  script.arm(engine, [&](const FaultEvent& event) {
    const auto dispatch = [&]() -> Result<mec::FailoverStep> {
      switch (event.kind) {
        case FaultKind::kServerCrash:
          return controller.on_server_failed(event.target);
        case FaultKind::kServerRecover:
          return controller.on_server_recovered(event.target);
        case FaultKind::kLinkDegrade:
          return controller.on_link_degraded(event.target, event.severity);
        case FaultKind::kLinkRestore:
          return controller.on_link_restored(event.target);
        case FaultKind::kUserDisconnect:
          return controller.on_user_disconnected(event.target);
      }
      return Error("unknown fault kind");
    };
    const Result<mec::FailoverStep> step = dispatch();
    if (step.ok()) {
      ++outcome.faults_applied;
      outcome.trace.push_back(event.describe() + format_step(step.value()));
    } else {
      // Rejected faults (and the degraded-to-all-local terminal error)
      // are part of the replayable record too.
      ++outcome.faults_rejected;
      outcome.trace.push_back(event.describe() +
                              " rejected: " + step.error().message);
    }
  });

  outcome.end_time = engine.run(options.max_events);
  outcome.final_result = controller.current();
  outcome.all_local_fallback = controller.all_local_fallback();
  outcome.anomalies_recorded =
      obs::FlightRecorder::global().anomaly_count() - anomalies_before;
  outcome.trace.push_back(
      "at " + format_double(outcome.end_time) +
      " final objective=" + format_double(controller.objective()) +
      (controller.all_local_fallback() ? " all-local" : ""));
  return outcome;
}

}  // namespace mecoff::sim
