// Execute an offloading scheme on the simulated MEC testbed and measure
// what actually happens — the mechanistic counterpart of the analytic
// cost model in mec/costs.hpp.
//
// Timeline per user:
//   t=0  device starts the local batch (W_c work at rate I_c);
//   t=0  the user's radio starts shipping the cross-cut data (X bytes
//        at bandwidth b, consuming p_t per unit time);
//   when the upload completes the remote job (W_s work) is admitted to
//   the shared edge server (FIFO by default, PS optionally);
//   the user is finished when both the local batch and the remote job
//   are done.
//
// Energies are load-independent and must match evaluate() exactly;
// times include real queueing, so multi-user contention emerges from
// the server discipline instead of the κ-model. Tests pin down both
// relationships.
#pragma once

#include <optional>

#include "mec/costs.hpp"
#include "mec/model.hpp"
#include "mec/scheme.hpp"
#include "sim/channel.hpp"

namespace mecoff::sim {

enum class ServerDiscipline { kFifo, kProcessorSharing };

struct SimOptions {
  ServerDiscipline discipline = ServerDiscipline::kFifo;
  /// When set, every user's radio follows this Gilbert–Elliott fading
  /// process (per-user independent streams, seeds derived from
  /// channel->seed + user index) instead of the constant bandwidth b.
  /// Transfer times and energies then reflect the realized rates.
  std::optional<ChannelModel> channel;
};

struct UserOutcome {
  double local_time = 0.0;      ///< device busy time (W_c / I_c)
  double upload_time = 0.0;     ///< radio busy time (X / b)
  double server_wait = 0.0;     ///< time queued before service
  double server_time = 0.0;     ///< service (sojourn − wait)
  double completion = 0.0;      ///< makespan of this user
  double local_energy = 0.0;    ///< p_c · local_time
  double transmit_energy = 0.0; ///< p_t · upload_time
};

struct SimReport {
  std::vector<UserOutcome> users;
  double makespan = 0.0;       ///< latest completion across users
  double total_energy = 0.0;   ///< Σ (local + transmit) energies
  double total_time = 0.0;     ///< Σ per-user (local + upload + sojourn)
  std::size_t events = 0;      ///< DES events executed
};

/// Run the discrete-event simulation of `scheme` on `system`.
[[nodiscard]] SimReport simulate_scheme(const mec::MecSystem& system,
                                        const mec::OffloadingScheme& scheme,
                                        const SimOptions& options = {});

}  // namespace mecoff::sim
