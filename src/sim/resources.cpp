#include "sim/resources.hpp"

#include <limits>

#include "common/contracts.hpp"

namespace mecoff::sim {

FifoResource::FifoResource(SimEngine& engine, double capacity)
    : engine_(engine), capacity_(capacity) {
  MECOFF_EXPECTS(capacity > 0.0);
}

void FifoResource::submit(double size,
                          std::function<void(const JobStats&)> on_complete) {
  MECOFF_EXPECTS(size >= 0.0);
  Pending job;
  job.size = size;
  job.stats.admitted = engine_.now();
  job.on_complete = std::move(on_complete);
  queue_.push_back(std::move(job));
  if (!busy_) start_next();
}

void FifoResource::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending& job = queue_.front();
  job.stats.started = engine_.now();
  const SimTime duration = job.size / capacity_;
  engine_.schedule_after(duration, [this] {
    Pending job_done = std::move(queue_.front());
    queue_.pop_front();
    job_done.stats.completed = engine_.now();
    ++completed_;
    if (job_done.on_complete) job_done.on_complete(job_done.stats);
    start_next();
  });
}

SharedResource::SharedResource(SimEngine& engine, double capacity)
    : engine_(engine), capacity_(capacity) {
  MECOFF_EXPECTS(capacity > 0.0);
}

void SharedResource::submit(
    double size, std::function<void(const JobStats&)> on_complete) {
  MECOFF_EXPECTS(size >= 0.0);
  // Bring all residents up to date before the population changes.
  reschedule();
  Resident job;
  job.remaining = size;
  job.stats.admitted = engine_.now();
  job.stats.started = engine_.now();  // PS starts immediately
  job.on_complete = std::move(on_complete);
  residents_.emplace(next_id_++, std::move(job));
  reschedule();
}

void SharedResource::reschedule() {
  const SimTime now = engine_.now();
  if (!residents_.empty()) {
    // Each resident progressed at capacity/K since last_update_.
    const double rate =
        capacity_ / static_cast<double>(residents_.size());
    const SimTime elapsed = now - last_update_;
    for (auto& [id, job] : residents_)
      job.remaining -= rate * elapsed;
  }
  last_update_ = now;

  // Pop any residents that are (numerically) done.
  for (auto it = residents_.begin(); it != residents_.end();) {
    if (it->second.remaining <= 1e-12) {
      Resident done = std::move(it->second);
      it = residents_.erase(it);
      done.stats.completed = now;
      ++completed_;
      if (done.on_complete) done.on_complete(done.stats);
    } else {
      ++it;
    }
  }
  if (residents_.empty()) return;

  // Next completion: smallest remaining at the current shared rate.
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : residents_)
    min_remaining = std::min(min_remaining, job.remaining);
  const double rate = capacity_ / static_cast<double>(residents_.size());
  const SimTime eta = min_remaining / rate;

  const std::uint64_t epoch = ++epoch_;
  engine_.schedule_after(eta, [this, epoch] {
    if (epoch != epoch_) return;  // superseded by a later arrival
    reschedule();
  });
}

}  // namespace mecoff::sim
