#include "sim/engine.hpp"

#include <limits>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace mecoff::sim {

void SimEngine::schedule_at(SimTime at, std::function<void()> fn) {
  MECOFF_EXPECTS(at >= now_);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void SimEngine::schedule_after(SimTime delay, std::function<void()> fn) {
  MECOFF_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

SimTime SimEngine::run() {
  return run_core(std::numeric_limits<SimTime>::infinity(), SIZE_MAX);
}

SimTime SimEngine::run(std::size_t max_events) {
  return run_core(std::numeric_limits<SimTime>::infinity(), max_events);
}

SimTime SimEngine::run_until(SimTime horizon) {
  MECOFF_EXPECTS(horizon >= now_);
  run_core(horizon, SIZE_MAX);
  if (now_ < horizon) now_ = horizon;
  return now_;
}

SimTime SimEngine::run_core(SimTime horizon, std::size_t max_events) {
  MECOFF_TRACE_SPAN_ARG("sim.run", queue_.size());
  executed_ = 0;
  while (!queue_.empty() && executed_ < max_events &&
         queue_.top().time <= horizon) {
    // priority_queue::top is const; the handler is moved out via a copy
    // of the wrapper before pop (handlers are cheap shared closures).
    Event event = queue_.top();
    queue_.pop();
    MECOFF_ENSURES(event.time >= now_);  // time never flows backwards
    now_ = event.time;
    ++executed_;
    // Wall-clock span per handler (arg = the deterministic sequence
    // number, so a trace row can be matched to a replay). Cost when
    // tracing is off: one relaxed load per event.
    MECOFF_TRACE_SPAN_ARG("sim.event", event.seq);
    MECOFF_COUNTER_ADD("sim.events", 1);
    event.fn();
  }
  // Live gauges for the /varz scrape of a long-running serve loop:
  // how much the last run() executed and how deep the queue still is.
  MECOFF_GAUGE_SET("sim.run.executed", static_cast<double>(executed_));
  MECOFF_GAUGE_SET("sim.run.pending", static_cast<double>(queue_.size()));
  return now_;
}

}  // namespace mecoff::sim
