#include "sim/engine.hpp"

#include "common/contracts.hpp"

namespace mecoff::sim {

void SimEngine::schedule_at(SimTime at, std::function<void()> fn) {
  MECOFF_EXPECTS(at >= now_);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void SimEngine::schedule_after(SimTime delay, std::function<void()> fn) {
  MECOFF_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

SimTime SimEngine::run() {
  executed_ = 0;
  while (!queue_.empty()) {
    // priority_queue::top is const; the handler is moved out via a copy
    // of the wrapper before pop (handlers are cheap shared closures).
    Event event = queue_.top();
    queue_.pop();
    MECOFF_ENSURES(event.time >= now_);  // time never flows backwards
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  return now_;
}

}  // namespace mecoff::sim
