#include "sim/executor.hpp"

#include <algorithm>
#include <memory>

#include "common/contracts.hpp"
#include "sim/resources.hpp"

namespace mecoff::sim {

SimReport simulate_scheme(const mec::MecSystem& system,
                          const mec::OffloadingScheme& scheme,
                          const SimOptions& options) {
  MECOFF_EXPECTS(system.valid());
  MECOFF_EXPECTS(scheme.valid_for(system));
  const mec::SystemParams& p = system.params;

  SimEngine engine;
  FifoResource fifo_server(engine, p.server_capacity);
  SharedResource ps_server(engine, p.server_capacity);

  // Optional fading radios, one independent process per user.
  std::vector<std::unique_ptr<GilbertElliottLink>> links;
  if (options.channel.has_value()) {
    links.reserve(system.num_users());
    for (std::size_t u = 0; u < system.num_users(); ++u) {
      ChannelModel model = *options.channel;
      model.seed += u;
      links.push_back(std::make_unique<GilbertElliottLink>(engine, model));
    }
  }

  SimReport report;
  report.users.resize(system.num_users());

  for (std::size_t u = 0; u < system.num_users(); ++u) {
    const mec::UserApp& user = system.users[u];
    UserOutcome& outcome = report.users[u];

    double local_w = 0.0;
    double remote_w = 0.0;
    double cross_w = 0.0;
    for (graph::NodeId v = 0; v < user.graph.num_nodes(); ++v) {
      const double w = user.graph.node_weight(v);
      if (scheme.placement[u][v] == mec::Placement::kLocal)
        local_w += w;
      else
        remote_w += w;
    }
    for (const graph::Edge& e : user.graph.edges())
      if (scheme.placement[u][e.u] != scheme.placement[u][e.v])
        cross_w += e.weight;

    outcome.local_time = local_w / p.mobile_capacity;
    outcome.local_energy = outcome.local_time * p.mobile_power;
    outcome.upload_time = cross_w / p.bandwidth;
    outcome.transmit_energy = outcome.upload_time * p.transmit_power;

    // Local batch finishes at local_time (device is dedicated).
    outcome.completion = outcome.local_time;

    if (remote_w > 0.0) {
      const auto enqueue_remote = [&, u, remote_w] {
        const auto on_done = [&, u](const JobStats& stats) {
          UserOutcome& oc = report.users[u];
          oc.server_wait = stats.wait();
          oc.server_time = stats.sojourn() - stats.wait();
          oc.completion = std::max(oc.completion, stats.completed);
        };
        if (options.discipline == ServerDiscipline::kFifo)
          fifo_server.submit(remote_w, on_done);
        else
          ps_server.submit(remote_w, on_done);
      };
      if (options.channel.has_value() && cross_w > 0.0) {
        // Fading radio: the upload's realized duration replaces the
        // constant-rate estimate, for time AND energy.
        links[u]->submit(cross_w,
                         [&, u, enqueue_remote](const JobStats& stats) {
                           UserOutcome& oc = report.users[u];
                           oc.upload_time = stats.completed - stats.started;
                           oc.transmit_energy =
                               oc.upload_time * p.transmit_power;
                           enqueue_remote();
                         });
      } else {
        // Constant-rate radio: upload finishes at cross/b.
        engine.schedule_at(outcome.upload_time, enqueue_remote);
      }
    }
  }

  engine.run();
  report.events = engine.events_executed();

  for (const UserOutcome& outcome : report.users) {
    report.makespan = std::max(report.makespan, outcome.completion);
    report.total_energy += outcome.local_energy + outcome.transmit_energy;
    report.total_time += outcome.local_time + outcome.upload_time +
                         outcome.server_wait + outcome.server_time;
  }
  return report;
}

}  // namespace mecoff::sim
