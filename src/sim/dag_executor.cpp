#include "sim/dag_executor.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <queue>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"

namespace mecoff::sim {

namespace {

/// Kahn's algorithm over the directed exchanges; returns indegrees when
/// acyclic, empty optional otherwise.
bool kahn_acyclic(const appmodel::Application& app) {
  const std::size_t n = app.num_functions();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> succ(n);
  for (const appmodel::DataExchange& x : app.exchanges()) {
    succ[x.from].push_back(x.to);
    ++indegree[x.to];
  }
  std::queue<std::size_t> ready;
  for (std::size_t v = 0; v < n; ++v)
    if (indegree[v] == 0) ready.push(v);
  std::size_t seen = 0;
  while (!ready.empty()) {
    const std::size_t v = ready.front();
    ready.pop();
    ++seen;
    for (const std::size_t w : succ[v])
      if (--indegree[w] == 0) ready.push(w);
  }
  return seen == n;
}

}  // namespace

bool call_graph_is_acyclic(const appmodel::Application& app) {
  return kahn_acyclic(app);
}

Result<DagReport> execute_dag(const mec::MecSystem& system,
                              const std::vector<appmodel::Application>& apps,
                              const mec::OffloadingScheme& scheme,
                              const DagOptions& options) {
  if (!system.valid()) return Error("invalid system");
  if (!scheme.valid_for(system)) return Error("scheme does not fit system");
  if (!options.remote_faults.valid())
    return Error("invalid remote fault model");
  if (apps.size() != system.num_users())
    return Error("need one Application per user");
  for (std::size_t u = 0; u < apps.size(); ++u) {
    if (apps[u].num_functions() != system.users[u].graph.num_nodes())
      return Error("user " + std::to_string(u) +
                   ": application/function-graph size mismatch");
    if (!kahn_acyclic(apps[u]))
      return Error("user " + std::to_string(u) +
                   ": call structure is cyclic");
  }

  const mec::SystemParams& p = system.params;
  SimEngine engine;
  FifoResource server(engine, p.server_capacity);

  DagReport report;
  report.users.resize(apps.size());

  // Per-user scheduling state, shared with the event closures.
  struct UserState {
    std::vector<std::size_t> pending;   ///< unfinished predecessors
    std::vector<double> finish_time;    ///< per function
    std::vector<std::vector<std::size_t>> successors;
    std::unique_ptr<FifoResource> cpu;
    std::unique_ptr<FifoResource> link;
  };
  std::vector<UserState> states(apps.size());

  // Forward declarations of the per-task launcher and the attempt
  // runner (retries re-enter the latter).
  std::function<void(std::size_t, std::size_t)> launch;
  std::function<void(std::size_t, std::size_t, std::size_t)> run_attempt;

  const RemoteFaultModel& faults = options.remote_faults;
  Rng fault_rng(faults.seed);

  const auto on_function_done = [&](std::size_t u, std::size_t v,
                                    double now) {
    UserState& st = states[u];
    st.finish_time[v] = now;
    DagUserOutcome& outcome = report.users[u];
    outcome.makespan = std::max(outcome.makespan, now);
    for (const std::size_t w : st.successors[v])
      if (--st.pending[w] == 0) launch(u, w);
  };

  // One compute attempt of function v. `attempt` counts prior failures;
  // past the retry budget the task re-places on the device (the
  // degrade-don't-die terminal: it ALWAYS completes somewhere).
  run_attempt = [&](std::size_t u, std::size_t v, std::size_t attempt) {
    const bool wants_remote =
        scheme.placement[u][v] == mec::Placement::kRemote;
    const double work = apps[u].function(v).computation;
    const bool fell_back_local =
        wants_remote && faults.enabled() && attempt > faults.max_retries;
    const bool remote = wants_remote && !fell_back_local;
    if (fell_back_local) ++report.local_fallbacks;

    if (remote && faults.enabled() &&
        fault_rng.bernoulli(faults.kill_probability)) {
      // This attempt dies mid-run: it occupies the shared server for a
      // uniform fraction of its service (delaying everyone behind it),
      // then the executor backs off and retries.
      const double fraction = fault_rng.uniform();
      ++report.remote_kills;
      server.submit(work * fraction, [&report, &engine, &faults,
                                      &run_attempt, u, v,
                                      attempt](const JobStats& stats) {
        report.wasted_server_time += stats.sojourn() - stats.wait();
        double delay = faults.backoff_base;
        for (std::size_t i = 0; i < attempt; ++i)
          delay *= faults.backoff_factor;
        delay = std::min(delay, faults.backoff_cap);
        ++report.remote_retries;
        engine.schedule_after(
            delay, [&run_attempt, u, v, attempt] {
              run_attempt(u, v, attempt + 1);
            });
      });
      return;
    }

    const auto on_done = [&report, u, v, remote, on_function_done,
                          &options](const JobStats& stats) {
      DagUserOutcome& oc = report.users[u];
      const double service = stats.sojourn() - stats.wait();
      (remote ? oc.server_busy : oc.device_busy) += service;
      if (options.record_traces)
        oc.tasks.push_back(
            TaskTrace{v, stats.started, stats.completed, remote});
      on_function_done(u, v, stats.completed);
    };
    if (remote)
      server.submit(work, on_done);
    else
      states[u].cpu->submit(work, on_done);
  };

  launch = [&](std::size_t u, std::size_t v) {
    const appmodel::Application& app = apps[u];
    UserState& st = states[u];
    const bool remote =
        scheme.placement[u][v] == mec::Placement::kRemote;

    // Transfers for incoming cross-boundary edges happen when the
    // producer finishes; here we charge them as a link task preceding
    // the function (upload or download — both occupy the radio).
    // Retries and the local fallback reuse this one transfer.
    double transfer_amount = 0.0;
    for (const appmodel::DataExchange& x : app.exchanges()) {
      if (x.to != v) continue;
      const bool producer_remote =
          scheme.placement[u][x.from] == mec::Placement::kRemote;
      if (producer_remote != remote) transfer_amount += x.amount;
    }

    if (transfer_amount > 0.0) {
      st.link->submit(transfer_amount,
                      [&report, &run_attempt, u, v](const JobStats& stats) {
                        report.users[u].link_busy +=
                            stats.sojourn() - stats.wait();
                        run_attempt(u, v, 0);
                      });
    } else {
      run_attempt(u, v, 0);
    }
  };

  // Initialize users and seed the sources.
  for (std::size_t u = 0; u < apps.size(); ++u) {
    const appmodel::Application& app = apps[u];
    const std::size_t n = app.num_functions();
    UserState& st = states[u];
    st.pending.assign(n, 0);
    st.finish_time.assign(n, 0.0);
    st.successors.assign(n, {});
    st.cpu = std::make_unique<FifoResource>(engine, p.mobile_capacity);
    st.link = std::make_unique<FifoResource>(engine, p.bandwidth);
    for (const appmodel::DataExchange& x : app.exchanges()) {
      st.successors[x.from].push_back(x.to);
      ++st.pending[x.to];
    }
    for (std::size_t v = 0; v < n; ++v)
      if (st.pending[v] == 0) launch(u, v);
  }

  engine.run();
  report.events = engine.events_executed();

  for (DagUserOutcome& outcome : report.users) {
    outcome.local_energy = outcome.device_busy * p.mobile_power;
    outcome.transmit_energy = outcome.link_busy * p.transmit_power;
    report.makespan = std::max(report.makespan, outcome.makespan);
    report.total_energy += outcome.local_energy + outcome.transmit_energy;
    std::sort(outcome.tasks.begin(), outcome.tasks.end(),
              [](const TaskTrace& a, const TaskTrace& b) {
                return a.start < b.start;
              });
  }
  return report;
}

}  // namespace mecoff::sim
