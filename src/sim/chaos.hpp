// Chaos harness: replay a FaultScript against a multi-server
// deployment and record what the failover layer did about each fault.
//
// The run is fully deterministic — the DES orders events, the failover
// re-solves are deterministic, and every trace line renders doubles
// with round-trip precision — so the SAME (system, script) pair yields
// a BIT-IDENTICAL trace and final result on every run. That property
// is the whole point: a failure scenario found in production (or by a
// random script) replays exactly under a debugger.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "mec/multiserver.hpp"
#include "sim/engine.hpp"
#include "sim/fault_script.hpp"

namespace mecoff::sim {

struct ChaosOptions {
  mec::FailoverOptions failover;
  /// Backstop on DES events (a script cannot loop, but the budget keeps
  /// the harness safe against future periodic fault sources).
  std::size_t max_events = 100000;
};

struct ChaosOutcome {
  /// One line per fault applied/rejected, in replay order — the
  /// deterministic recovery trace.
  std::vector<std::string> trace;
  mec::MultiServerResult final_result;
  bool all_local_fallback = false;
  std::size_t faults_applied = 0;
  /// Faults the controller refused (crash of an already-dead server,
  /// disconnect of a gone user, ...) — still logged, still replayable.
  std::size_t faults_rejected = 0;
  /// Flight-recorder anomalies attributed to this run (the recorder's
  /// anomaly-count delta across run_chaos). Always 0 when observability
  /// is compiled out — the count is telemetry, not part of the
  /// deterministic trace/result contract.
  std::uint64_t anomalies_recorded = 0;
  SimTime end_time = 0.0;
};

/// Solve the initial placement, arm the script, run the DES, return
/// the trace + final state. Errors on an invalid system.
[[nodiscard]] Result<ChaosOutcome> run_chaos(
    const mec::MultiServerSystem& system, const FaultScript& script,
    const ChaosOptions& options = {});

}  // namespace mecoff::sim
