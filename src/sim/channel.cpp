#include "sim/channel.hpp"

#include <limits>

#include "common/contracts.hpp"

namespace mecoff::sim {

GilbertElliottLink::GilbertElliottLink(SimEngine& engine, ChannelModel model)
    : engine_(engine), model_(model), rng_(model.seed) {
  MECOFF_EXPECTS(model.valid());
  next_flip_ = rng_.exponential(model_.mean_good);
}

void GilbertElliottLink::submit(
    double size, std::function<void(const JobStats&)> on_complete) {
  MECOFF_EXPECTS(size >= 0.0);
  reschedule();  // bring head progress up to date before queue changes
  Pending job;
  job.remaining = size;
  job.stats.admitted = engine_.now();
  job.on_complete = std::move(on_complete);
  const bool was_idle = queue_.empty();
  queue_.push_back(std::move(job));
  if (was_idle) queue_.front().stats.started = engine_.now();
  reschedule();
}

void GilbertElliottLink::reschedule() {
  const SimTime now = engine_.now();

  // Advance the head job through the elapsed interval. State flips are
  // handled by the scheduled events, so within [last_update_, now] the
  // rate is constant.
  if (!queue_.empty()) {
    queue_.front().remaining -= rate() * (now - last_update_);
  }
  last_update_ = now;

  // Apply due state flips. While busy this is at most one (events are
  // scheduled at flip times); after an idle stretch it fast-forwards
  // the whole state process to `now` — idle links schedule no events,
  // or the engine could never drain.
  while (now >= next_flip_ - 1e-15) {
    good_ = !good_;
    next_flip_ += rng_.exponential(good_ ? model_.mean_good
                                         : model_.mean_bad);
  }

  // Pop completed head jobs (numerical tolerance).
  while (!queue_.empty() && queue_.front().remaining <= 1e-12) {
    Pending done = std::move(queue_.front());
    queue_.pop_front();
    done.stats.completed = now;
    ++completed_;
    if (!queue_.empty()) queue_.front().stats.started = now;
    if (done.on_complete) done.on_complete(done.stats);
  }

  if (queue_.empty()) {
    ++epoch_;  // cancel any outstanding event; nothing left to do
    return;
  }

  // Next event: head completion at the current rate, or the state flip.
  const SimTime next = std::min(
      next_flip_, now + queue_.front().remaining / rate());
  const std::uint64_t epoch = ++epoch_;
  engine_.schedule_at(next, [this, epoch] {
    if (epoch != epoch_) return;  // superseded
    reschedule();
  });
}

}  // namespace mecoff::sim
