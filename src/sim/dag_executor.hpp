// Task-graph execution of an offloading scheme — the fine-grained
// counterpart of executor.hpp's batch model.
//
// The batch model lumps each side's work into one blob; real
// applications run FUNCTIONS with data dependencies, and an offloading
// boundary in the middle of a call chain serializes compute and
// transfers along the critical path. This executor takes the DIRECTED
// call structure from the appmodel layer (caller → callee exchanges),
// schedules every function as a task on its assigned processor, inserts
// a radio transfer for every cross-boundary edge, and reports the real
// makespan.
//
// Resources: one serial CPU per device (rate I_c), one radio link per
// user (rate b, energy p_t per unit time), one shared FIFO edge server
// (rate I_S) serving every user's remote tasks.
//
// Input must be acyclic in the call direction (mutually recursive
// exchange pairs make task semantics ambiguous); validate with
// call_graph_is_acyclic() or let execute_dag() return an Error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "appmodel/application.hpp"
#include "common/result.hpp"
#include "mec/model.hpp"
#include "mec/scheme.hpp"

namespace mecoff::sim {

/// True when the application's directed exchanges form a DAG.
[[nodiscard]] bool call_graph_is_acyclic(const appmodel::Application& app);

struct TaskTrace {
  std::size_t function = 0;
  double start = 0.0;
  double finish = 0.0;
  bool remote = false;
};

struct DagUserOutcome {
  double makespan = 0.0;        ///< completion of the user's last task
  double device_busy = 0.0;     ///< CPU time spent on the device
  double server_busy = 0.0;     ///< service time consumed on the server
  double link_busy = 0.0;       ///< radio time (uploads + downloads)
  double local_energy = 0.0;    ///< p_c · device_busy
  double transmit_energy = 0.0; ///< p_t · link_busy
  std::vector<TaskTrace> tasks; ///< per-function schedule, by start time
};

struct DagReport {
  std::vector<DagUserOutcome> users;
  double makespan = 0.0;      ///< across users
  double total_energy = 0.0;  ///< Σ per-user energies
  std::size_t events = 0;
  /// Fault-injection outcomes (all zero with injection disabled).
  std::size_t remote_kills = 0;      ///< attempts that died mid-run
  std::size_t remote_retries = 0;    ///< backoff re-submissions
  std::size_t local_fallbacks = 0;   ///< tasks re-placed on the device
  double wasted_server_time = 0.0;   ///< service consumed by dead attempts
};

/// Mid-run remote-task death model. Each remote attempt is killed with
/// `kill_probability`, consuming a uniform fraction of its service time
/// on the (shared, FIFO) server before dying; the executor retries
/// after capped exponential backoff and re-places the task on the
/// device once the retry budget is spent — the task ALWAYS completes.
/// Retries reuse the data already uploaded (no re-transfer); the local
/// fallback likewise runs on what the device already holds, a mild
/// optimism documented here rather than modeled. Deterministic from
/// `seed` (the DES is single-threaded, so draw order is fixed).
struct RemoteFaultModel {
  double kill_probability = 0.0;  ///< 0 disables injection
  std::size_t max_retries = 3;
  double backoff_base = 0.05;    ///< delay before the first retry
  double backoff_factor = 2.0;   ///< growth per further retry
  double backoff_cap = 1.0;      ///< ceiling on any single delay
  std::uint64_t seed = 0xfa5710;

  [[nodiscard]] bool enabled() const { return kill_probability > 0.0; }
  [[nodiscard]] bool valid() const {
    return kill_probability >= 0.0 && kill_probability <= 1.0 &&
           backoff_base >= 0.0 && backoff_factor >= 1.0 &&
           backoff_cap >= 0.0;
  }
};

struct DagOptions {
  /// When true, results also carry the per-task traces (memory-heavy
  /// for big systems; examples and tests want them, benches do not).
  bool record_traces = true;
  RemoteFaultModel remote_faults;
};

/// Execute `scheme` with per-function granularity. `apps[u]` supplies
/// user u's directed call structure; its function count must match the
/// system graph. Fails (Result error) on cyclic call structures or
/// shape mismatches.
[[nodiscard]] Result<DagReport> execute_dag(
    const mec::MecSystem& system,
    const std::vector<appmodel::Application>& apps,
    const mec::OffloadingScheme& scheme, const DagOptions& options = {});

}  // namespace mecoff::sim
