// Time-varying radio link: a Gilbert–Elliott two-state Markov channel.
//
// Real wireless links fade; a constant-bandwidth model (the paper's b)
// understates transfer-time variance, which matters exactly where the
// offloading boundary sits on the critical path. The link alternates
// between a GOOD state (full rate) and a BAD state (degraded rate) with
// exponentially distributed dwell times, the standard Gilbert–Elliott
// burst-error model. Jobs are served FIFO; the head job progresses at
// the current state's rate.
//
// Deterministic: state flips come from a seeded Rng, so simulations are
// exactly replayable.
#pragma once

#include <cstdint>
#include <functional>
#include <list>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"

namespace mecoff::sim {

struct ChannelModel {
  double good_rate = 20.0;   ///< units per second in the good state
  double bad_rate = 4.0;     ///< units per second in the bad state
  double mean_good = 5.0;    ///< mean dwell in the good state (s)
  double mean_bad = 1.0;     ///< mean dwell in the bad state (s)
  std::uint64_t seed = 0xcafe;

  [[nodiscard]] bool valid() const {
    return good_rate > 0.0 && bad_rate > 0.0 && bad_rate <= good_rate &&
           mean_good > 0.0 && mean_bad > 0.0;
  }

  /// Long-run average rate: time-weighted mix of the two states.
  [[nodiscard]] double mean_rate() const {
    return (good_rate * mean_good + bad_rate * mean_bad) /
           (mean_good + mean_bad);
  }
};

/// FIFO link whose service rate follows the Gilbert–Elliott process.
class GilbertElliottLink {
 public:
  GilbertElliottLink(SimEngine& engine, ChannelModel model);

  /// Transfer `size` units; on_complete(stats) fires at completion.
  void submit(double size, std::function<void(const JobStats&)> on_complete);

  [[nodiscard]] std::size_t jobs_completed() const { return completed_; }
  [[nodiscard]] bool in_good_state() const { return good_; }

 private:
  struct Pending {
    double remaining;
    JobStats stats;
    std::function<void(const JobStats&)> on_complete;
  };

  [[nodiscard]] double rate() const {
    return good_ ? model_.good_rate : model_.bad_rate;
  }

  /// Advance the head job to `now`, then (re)schedule the next event —
  /// either the head job's completion or the next state flip, whichever
  /// comes first.
  void reschedule();

  SimEngine& engine_;
  ChannelModel model_;
  Rng rng_;
  bool good_ = true;
  SimTime next_flip_;
  SimTime last_update_ = 0.0;
  std::list<Pending> queue_;
  std::uint64_t epoch_ = 0;  ///< invalidates superseded events
  std::size_t completed_ = 0;
};

}  // namespace mecoff::sim
