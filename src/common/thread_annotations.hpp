// Clang thread-safety annotations plus the annotated lock vocabulary
// the whole repo uses: mecoff::Mutex (a CAPABILITY), MutexLock (a
// SCOPED_CAPABILITY), and CondVar (condition waits that keep the
// capability "held" across the wait, matching what callers may assume
// at every point they can observe).
//
// Under clang, `-Wthread-safety` turns the annotations into a
// compile-time proof of lock discipline: every GUARDED_BY member access
// must happen with its mutex held, every REQUIRES function must be
// called with the lock, every EXCLUDES function without it. The CI
// static-analysis job builds with `-Werror=thread-safety`, so a missed
// lock or a dropped REQUIRES is a build break, not a TSAN coin flip.
// Under gcc (the tier-1 matrix) every macro expands to nothing and the
// wrappers are zero-cost shims over std::mutex/std::condition_variable.
//
// Convention (see docs/static_analysis.md):
//  * declare lock members as `Mutex`, never raw `std::mutex` — the
//    project linter (tools/lint_mecoff.py) enforces this in src/;
//  * tag every field a mutex protects with GUARDED_BY(mutex_);
//  * name private must-hold helpers `*_locked` and declare them
//    REQUIRES(mutex_);
//  * annotate public entry points that must NOT hold the lock (they
//    acquire it, and the mutex is non-reentrant) with EXCLUDES(mutex_).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// GNU attribute spelling, erased everywhere but clang. The annotations
// are harmless without -Wthread-safety, so they stay on under clang
// unconditionally.
#if defined(__clang__)
#define MECOFF_TSA(x) __attribute__((x))
#else
#define MECOFF_TSA(x)
#endif

#define CAPABILITY(x) MECOFF_TSA(capability(x))
#define SCOPED_CAPABILITY MECOFF_TSA(scoped_lockable)
#define GUARDED_BY(x) MECOFF_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) MECOFF_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) MECOFF_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) MECOFF_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) MECOFF_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  MECOFF_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) MECOFF_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) MECOFF_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) MECOFF_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) MECOFF_TSA(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) MECOFF_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) MECOFF_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) MECOFF_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) MECOFF_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS MECOFF_TSA(no_thread_safety_analysis)

namespace mecoff {

/// std::mutex as a named capability the analysis can track.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock. The SCOPED_CAPABILITY tag tells the analysis the
/// capability is held from construction to the end of the scope, so
/// GUARDED_BY accesses inside the block typecheck.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Condition waits against a Mutex. wait() REQUIRES the mutex: it is
/// atomically released while blocked and reacquired before returning,
/// so the capability is held at every sequence point the caller can
/// observe — which is exactly the contract the analysis assumes.
/// Callers re-check their predicate in a loop (spurious wakeups), which
/// also keeps the guarded reads inside the analysed critical section
/// instead of inside a lambda the analysis cannot see into.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Timed wait: returns after a notification, a spurious wakeup, or
  /// `timeout`, whichever comes first — callers re-check their
  /// predicate either way, so the return value is deliberately not
  /// exposed. Same capability contract as wait().
  template <class Rep, class Period>
  void wait_for(Mutex& mutex,
                const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mecoff
