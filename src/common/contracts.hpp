// Lightweight contract macros in the spirit of the C++ Core Guidelines
// (I.6 / GSL Expects/Ensures). Violations throw, so tests can assert on
// misuse, and release builds keep the checks (they are cheap relative to
// the graph algorithms they guard).
#pragma once

#include <stdexcept>
#include <string>

namespace mecoff {

/// Thrown when a function precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a function postcondition or internal invariant is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail_pre(const char* cond, const char* file,
                                           int line) {
  throw PreconditionError(std::string("precondition failed: ") + cond + " at " +
                          file + ":" + std::to_string(line));
}
[[noreturn]] inline void contract_fail_inv(const char* cond, const char* file,
                                           int line) {
  throw InvariantError(std::string("invariant failed: ") + cond + " at " +
                       file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace mecoff

#define MECOFF_EXPECTS(cond)                                             \
  do {                                                                   \
    if (!(cond))                                                         \
      ::mecoff::detail::contract_fail_pre(#cond, __FILE__, __LINE__);    \
  } while (false)

#define MECOFF_ENSURES(cond)                                             \
  do {                                                                   \
    if (!(cond))                                                         \
      ::mecoff::detail::contract_fail_inv(#cond, __FILE__, __LINE__);    \
  } while (false)
