// Deterministic pseudo-random number generation for reproducible
// experiments. Uses SplitMix64 for seeding and xoshiro256** as the
// main generator (fast, high quality, tiny state).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mecoff {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms;
/// every workload generator in this repo takes an explicit seed so each
/// experiment is exactly replayable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (no cached spare; stateless per call pair).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli with probability p of true.
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Pareto-distributed value with shape `alpha`, scale `xm` (>0). Used for
  /// power-law-ish degree/weight distributions in call-graph generators.
  double pareto(double alpha, double xm);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Pick an index in [0, n) uniformly. Requires n > 0.
  std::size_t index(std::size_t n);

  /// Derive an independent child generator (for per-subtask determinism
  /// independent of scheduling order).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace mecoff
