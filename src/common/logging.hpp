// Minimal leveled logger. Library code logs sparingly (warnings about
// degenerate inputs, solver fallbacks); benches and examples use Info.
#pragma once

#include <sstream>
#include <string>

namespace mecoff {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line to stderr (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) log_message(level_, stream_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mecoff

#define MECOFF_LOG_DEBUG ::mecoff::detail::LogLine(::mecoff::LogLevel::kDebug)
#define MECOFF_LOG_INFO ::mecoff::detail::LogLine(::mecoff::LogLevel::kInfo)
#define MECOFF_LOG_WARN ::mecoff::detail::LogLine(::mecoff::LogLevel::kWarn)
#define MECOFF_LOG_ERROR ::mecoff::detail::LogLine(::mecoff::LogLevel::kError)
