#include "common/strings.hpp"

#include <cctype>
#include <charconv>

namespace mecoff {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool parse_double(std::string_view text, double& out) {
  // std::from_chars for double is available in libstdc++ 11+.
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_int(std::string_view text, long long& out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::string format_fixed(double value, int precision) {
  // Fixed notation of a huge double spells out every integral digit
  // (DBL_MAX is 309 of them), hence the large stack buffer.
  char buf[400];
  const std::to_chars_result res = std::to_chars(
      buf, buf + sizeof(buf), value, std::chars_format::fixed, precision);
  return res.ec == std::errc{} ? std::string(buf, res.ptr) : "inf";
}

std::string format_general(double value, int precision) {
  char buf[64];
  const std::to_chars_result res = std::to_chars(
      buf, buf + sizeof(buf), value, std::chars_format::general, precision);
  return res.ec == std::errc{} ? std::string(buf, res.ptr) : "inf";
}

}  // namespace mecoff
