// Tiny key=value configuration store used by examples and benches to
// accept command-line overrides like `threshold=3.5 users=2000`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mecoff {

class Config {
 public:
  Config() = default;

  /// Parse `key=value` tokens; tokens without '=' are ignored with a warning.
  static Config from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters returning `fallback` when the key is missing or malformed.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mecoff
