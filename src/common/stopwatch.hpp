// Wall-clock stopwatch used by the runtime experiments (Fig. 9) and by
// the benches' per-phase breakdowns.
#pragma once

#include <chrono>

namespace mecoff {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart timing from now.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mecoff
