#include "common/config.hpp"

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace mecoff {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      MECOFF_LOG_WARN << "ignoring argument without '=': " << arg;
      continue;
    }
    cfg.set(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double out = 0;
  return parse_double(it->second, out) ? out : fallback;
}

long long Config::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  long long out = 0;
  return parse_int(it->second, out) ? out : fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

}  // namespace mecoff
