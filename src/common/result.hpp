// A minimal Result<T> for operations whose failure is an expected outcome
// (parsing, file I/O) rather than a programming error. Modeled on
// std::expected (not available in this toolchain's C++20 mode).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mecoff {

/// Describes why an operation failed, with a human-readable message.
struct Error {
  std::string message;

  explicit Error(std::string msg) : message(std::move(msg)) {}
};

/// Value-or-error carrier. Either holds a T or an Error.
///
/// Usage:
///   Result<Application> app = parse(text);
///   if (!app.ok()) { log(app.error().message); return; }
///   use(app.value());
///
/// The class itself is [[nodiscard]]: a caller that drops a Result on
/// the floor drops the error with it, so every ignored return is a
/// compile warning (and a `result-contract` lint finding).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }

  /// Access the value. Throws std::logic_error if this holds an error.
  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  /// Access the error. Throws std::logic_error if this holds a value.
  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result holds a value, not an error");
    return std::get<Error>(data_);
  }

  /// Value if present, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok())
      throw std::logic_error("Result holds an error: " +
                             std::get<Error>(data_).message);
  }

  std::variant<T, Error> data_;
};

}  // namespace mecoff
