#include "common/logging.hpp"

#include <atomic>
#include <iostream>

#include "common/thread_annotations.hpp"

namespace mecoff {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex;  // serializes whole lines onto std::cerr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  const MutexLock lock(g_mutex);
  std::cerr << "[mecoff " << level_name(level) << "] " << message << '\n';
}

}  // namespace mecoff
