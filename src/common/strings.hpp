// Small string utilities shared by the DSL parser, graph I/O and the
// bench table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mecoff {

/// Split `text` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Split `text` on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// Join `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parse helpers returning false on malformed input (no exceptions).
bool parse_double(std::string_view text, double& out);
bool parse_int(std::string_view text, long long& out);

/// Format a double with `precision` digits after the point. Rendered
/// via std::to_chars (printf "%.*f" semantics pinned to the "C"
/// locale), so the bytes never vary with LC_NUMERIC.
std::string format_fixed(double value, int precision);

/// printf "%.*g" semantics pinned to the "C" locale, via std::to_chars.
/// precision 17 round-trips any double exactly — the sim layer's replay
/// keys (fault scripts, chaos traces) rely on that.
std::string format_general(double value, int precision);

}  // namespace mecoff
