#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"

namespace mecoff {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full 256-bit state from SplitMix64, as recommended by the
  // xoshiro authors; guarantees a nonzero state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MECOFF_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MECOFF_EXPECTS(lo < hi);
  return lo + (hi - lo) * uniform();
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; u1 in (0,1] so log() is finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  MECOFF_EXPECTS(mean > 0.0);
  return -mean * std::log(1.0 - uniform());
}

double Rng::pareto(double alpha, double xm) {
  MECOFF_EXPECTS(alpha > 0.0 && xm > 0.0);
  const double u = 1.0 - uniform();  // in (0,1]
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::index(std::size_t n) {
  MECOFF_EXPECTS(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace mecoff
