// SolveService: the online front half of the reproduction.
//
// The paper's Algorithm 1 solves a BATCH of users; serving a churning
// population means accepting per-user solve requests one at a time,
// coalescing redundant work, and shedding load before latency blows
// through the SLO. The service composes the pieces the repo already
// has:
//
//   ingest   solve(SolveRequest) — called concurrently from external
//            threads (an HTTP worker, the CLI, a bench driver);
//   shard    cold solves are dispatched to one of `shards` task groups
//            on the shared reentrant ThreadPool, so the pool's grouped
//            help discipline keeps independent solves from stealing
//            each other's nested work;
//   cache    a content-addressed SchemeCache keyed by the canonical
//            request fingerprint, with single-flight semantics —
//            concurrent identical requests ride one solve (the online
//            generalization of identical_user_period);
//   solve    PipelineOffloader on a single-user system, solver options
//            fixed at service construction (and folded into the cache
//            key as a seed fingerprint);
//   shed     admission control, two layers. The legacy hard cap: at
//            most `max_in_flight` requests admitted. On top, optional
//            BROWNOUT tiers: health-aware progressive shedding driven
//            by in-flight hysteresis and the sliding p99, shedding a
//            deterministic fraction (1/4, 1/2, all) instead of
//            flipping binary. Either way a rejected request is NOT
//            dropped — it degrades to a valid all-local placement
//            immediately (degrade-don't-die, same philosophy as the
//            solver's spectral → KL → all-remote chain).
//
// DEADLINE BUDGETS + HEDGED RETRY: a request may carry a wall-clock
// budget that flows through every stage. A rider parks behind an
// in-flight owner for at most `hedge_fraction` of its budget; past
// that it HEDGES — runs its own duplicate solve on another shard
// (counter serve.solve.hedged) rather than waiting out a stalled
// owner. Cold solves get the REMAINING budget as their
// PipelineOptions::deadline. A budget that is exhausted before any
// solve can start degrades to the valid all-local scheme
// (serve.solve.deadline_degraded) — never an error, never a hang.
//
// DRAIN: begin_drain() flips the service into shutdown mode — every
// new request is answered immediately with the all-local degrade
// (counter serve.solve.drained) while in-flight work runs to
// completion; await_idle() lets the caller wait for the last in-flight
// request to leave. SIGTERM handling (stop accepting → drain → dump
// the flight recorder → exit 0) lives in the callers (mecoff_cli,
// bench_soak); the service just guarantees no request is ever torn.
//
// FAULT INJECTION: an optional serve::FaultInjector perturbs the
// service deterministically (see fault_injector.hpp): killed shards
// are skipped at dispatch (serve.solve.shard_failovers) and degrade to
// all-local when none survive; injected per-shard latency stalls cold
// solves (bounded by the request's remaining budget); armed publish
// failures turn a publish into an abandon (riders survive by
// promotion).
//
// Degraded results (deadline expired or any fallback cut) are served
// to their requester but never published to the cache: cached entries
// are always full-quality, so a cache hit is bit-identical to what an
// unconstrained cold solve would return.
//
// THREADING CONTRACT: call solve() from threads that are NOT workers
// of the service's pool. A rider blocks on the cache's condition
// variable; parking a pool worker there could starve the very solve it
// is waiting on. External callers (HTTP workers, main threads, bench
// clients) are always safe; the cold solve itself runs ON the pool via
// submit_to + a plain future wait.
//
// Metrics (all through the obs facade, compiled out with it):
//   serve.solve.requests / cache_hits / cache_misses / coalesced /
//   shed / degraded / hedged / deadline_degraded / drained /
//   brownout_shed / shard_failovers                  counters
//   serve.cache.evictions / wait_timeouts / publish_failures  counters
//   serve.solve.in_flight / brownout_tier            gauges
//   serve.solve.latency                              quantiles
//     (p50/p95/p99 on /metrics via the standard exposition)
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/thread_annotations.hpp"
#include "mec/model.hpp"
#include "mec/offloader.hpp"
#include "mec/scheme.hpp"
#include "obs/quantiles.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/fault_injector.hpp"
#include "serve/fingerprint.hpp"
#include "serve/scheme_cache.hpp"

namespace mecoff::serve {

/// One user's solve input. `params` carries the cost/channel state —
/// requests with different channel conditions hash to different cache
/// entries by construction.
struct SolveRequest {
  mec::UserApp user;
  mec::SystemParams params;
  /// Per-request wall-clock budget, seconds. Negative = use the
  /// service's default_deadline_seconds. The budget is deliberately
  /// NOT part of the cache key (it is a constraint, not an input).
  double deadline_seconds = -1.0;
  /// Correlation id. 0 (the default) = the service assigns one: the
  /// fault injector's request sequence number when an injector is
  /// wired (so ids line up with "req <seq>" trace lines and replays
  /// are deterministic), else a service-local counter. Caller-supplied
  /// ids (e.g. from an X-Mecoff-Request-Id header) pass through
  /// untouched. NOT part of the cache key.
  std::uint64_t request_id = 0;
};

/// Where the placement came from.
enum class SolveSource : std::uint8_t {
  kSolved,     ///< cold solve (cache miss, this request did the work)
  kCacheHit,   ///< served from a ready cache entry
  kCoalesced,  ///< rode a concurrent identical request's solve
  kShed,       ///< admission control: immediate all-local fallback
               ///< (hard cap, brownout tier, or drain mode)
  kHedged,     ///< owner blew the rider's wait budget; this request
               ///< ran its own duplicate solve on another shard
  kDeadlineDegraded,  ///< budget exhausted (or no shard alive) before
                      ///< a solve could run: valid all-local scheme
};

struct SolveResponse {
  /// Placement per function of the request's graph; ALWAYS valid for
  /// the request (pinned nodes local), even when shed or degraded.
  std::vector<mec::Placement> placement;
  SolveSource source = SolveSource::kSolved;
  /// True when a cold solve hit the deadline/fallback chain; degraded
  /// placements are served but not cached.
  bool degraded = false;
  double latency_seconds = 0.0;
  Fingerprint key;
  /// This request's correlation id (echoed from SolveRequest, or
  /// service-assigned — see SolveRequest::request_id). Never 0.
  std::uint64_t request_id = 0;
  /// Id of the request whose solve produced this placement: equals
  /// request_id for kSolved/kHedged (and the degrade sources); the
  /// cache owner's id for kCacheHit/kCoalesced (0 if the owner carried
  /// none — pre-id cache entries).
  std::uint64_t served_by_request_id = 0;
};

/// Progressive health-aware shedding. Three tiers above "healthy",
/// entered on rising in-flight occupancy (and bumped one tier when the
/// sliding p99 exceeds `p99_bump_seconds`), exited with hysteresis so
/// the controller does not flap at a threshold. Each tier sheds a
/// deterministic fraction of arriving requests by admission counter —
/// no RNG, so soak runs replay exactly.
struct BrownoutOptions {
  bool enabled = false;
  /// Rising in-flight thresholds entering tiers 1/2/3. Tier shedding:
  /// tier 1 sheds every 4th candidate, tier 2 every 2nd, tier 3 all.
  std::size_t tier1_in_flight = 64;
  std::size_t tier2_in_flight = 128;
  std::size_t tier3_in_flight = 256;
  /// A tier is left only once in-flight falls below its entry
  /// threshold times this fraction (classic hysteresis band).
  double exit_fraction = 0.5;
  /// Sliding-window p99 latency (seconds) above which the computed
  /// tier is bumped by one. 0 disables the latency term.
  double p99_bump_seconds = 0.0;
};

struct SolveServiceOptions {
  /// Execution engine for cold solves (and their nested parallelism).
  /// null = solve on the calling thread.
  parallel::ThreadPool* pool = nullptr;
  /// Worker groups cold solves are sharded across (keyed by
  /// fingerprint). At least 1.
  std::size_t shards = 4;
  SchemeCache::Options cache;
  /// Admission hard cap: requests beyond this many concurrently
  /// in-flight are shed. SIZE_MAX = unlimited; 0 sheds everything.
  std::size_t max_in_flight = SIZE_MAX;
  /// Health-aware progressive shedding below the hard cap.
  BrownoutOptions brownout;
  /// Default per-request budget when SolveRequest::deadline_seconds is
  /// negative. Negative = unlimited (the seed behavior).
  double default_deadline_seconds = -1.0;
  /// Fraction of a request's budget a rider spends waiting on an
  /// in-flight owner before hedging its own solve. In (0, 1].
  double hedge_fraction = 0.5;
  /// Optional deterministic fault injection; not owned. The injector
  /// must outlive the service. null = no faults.
  FaultInjector* injector = nullptr;
  /// Incremental re-solve on near-miss fingerprints. When enabled, a
  /// cache miss whose TOPOLOGY key (fingerprint_topology: graph shape,
  /// pinning, components — not weights or channel) matches a ready
  /// entry reuses that entry's placement and Fiedler vectors as a
  /// PipelineOffloader::WarmStart, and full-quality results are
  /// published WITH their artifacts so later perturbed requests can
  /// warm-start in turn. Results stay valid schemes; warm merely
  /// changes which local optimum is found (never a worse one than the
  /// warm solve's own cold start — see WarmStart) and how fast. OFF by
  /// default: cold-path behavior, metric key sets, and cache contents
  /// stay bit-identical to the seed (bench_soak's cold-reference
  /// equality check relies on that).
  bool warm_resolve = false;
  /// Solver configuration, fixed for the service's lifetime and folded
  /// into every cache key. `pool` and `identical_user_period` are
  /// overridden internally; `deadline` is tightened per request to the
  /// remaining budget.
  mec::PipelineOptions solver;
};

class SolveService {
 public:
  explicit SolveService(SolveServiceOptions options = {});
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Serve one request. Fails only on malformed input (shape mismatch,
  /// invalid params); overload, faults and solver degradation produce
  /// valid degraded responses instead of errors.
  [[nodiscard]] Result<SolveResponse> solve(const SolveRequest& request);

  /// Runtime admission knob (load shedding lever for operators):
  /// lowering it sheds NEW requests immediately; in-flight ones finish.
  void set_admission_limit(std::size_t max_in_flight) {
    admission_limit_.store(max_in_flight, std::memory_order_relaxed);
  }

  /// Enter drain mode: every subsequent request degrades to all-local
  /// immediately (source kShed, counted as drained); in-flight work
  /// finishes normally. Irreversible by design — drain precedes exit.
  void begin_drain() {
    draining_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Block until no request is in flight, polling; true on idle, false
  /// if `timeout_seconds` elapsed first. Call after begin_drain().
  [[nodiscard]] bool await_idle(double timeout_seconds) const;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t solved = 0;  ///< cold solves executed (hedges incl.)
    std::uint64_t cache_hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t shed = 0;     ///< hard-cap sheds
    std::uint64_t degraded = 0;
    std::uint64_t hedged = 0;   ///< duplicate solves after owner stall
    std::uint64_t deadline_degraded = 0;
    std::uint64_t drained = 0;  ///< requests answered in drain mode
    std::uint64_t brownout_shed = 0;
    std::uint64_t shard_failovers = 0;  ///< killed shard skipped
    /// Warm re-solve accounting (all zero unless warm_resolve is on).
    std::uint64_t warm_hits = 0;    ///< misses solved from a near-miss donor
    std::uint64_t warm_misses = 0;  ///< misses with no usable donor
    std::uint64_t warm_vector_rejects = 0;  ///< dimension-mismatch vectors
    int brownout_tier = 0;      ///< current tier (0 = healthy)
    SchemeCache::Stats cache;
  };
  [[nodiscard]] Stats stats() const;

  /// The solver-configuration digest folded in front of every request
  /// fingerprint (diagnostics; lets tests assert key separation).
  [[nodiscard]] Fingerprint config_seed() const { return config_seed_; }

 private:
  /// Execute one cold solve (owner or hedge), honoring shard kills,
  /// injected latency and the remaining budget. `shard_offset` rotates
  /// the preferred shard (hedges use 1 to avoid the owner's shard).
  /// `warm_hint` (may be null) seeds the solver's WarmStart;
  /// `artifacts_out` (may be null) receives the solve's per-component
  /// Fiedler vectors for publication; `warm_rejects_out` (may be null)
  /// receives the count of dimension-rejected warm vectors.
  /// `request_id` is held in an obs::RequestIdScope around the solve
  /// (on whichever thread runs it) so the flight recorder and latency
  /// exemplar attribute the solve to this request.
  [[nodiscard]] std::vector<mec::Placement> run_cold_solve(
      const SolveRequest& request, const Fingerprint& key,
      double remaining_budget_seconds, std::size_t shard_offset,
      std::uint64_t request_id, bool& degraded, bool& no_shard_alive,
      const SchemeCache::WarmHint* warm_hint = nullptr,
      std::vector<linalg::Vec>* artifacts_out = nullptr,
      std::size_t* warm_rejects_out = nullptr);

  /// Brownout controller step at admission; true = shed this request.
  [[nodiscard]] bool brownout_shed_decision(std::size_t in_flight_now)
      EXCLUDES(brownout_mutex_);

  /// Finish a response: correlation-id stamping, in-flight decrement,
  /// latency record (id-tagged for the p99 exemplar), p99 refresh for
  /// the brownout controller.
  void finish(SolveResponse& response, std::uint64_t request_id,
              double latency_seconds, bool was_admitted);

  [[nodiscard]] SolveResponse degrade_response(const SolveRequest& request,
                                               const Fingerprint& key,
                                               SolveSource source) const;

  SolveServiceOptions options_;
  Fingerprint config_seed_;
  SchemeCache cache_;
  /// One task group per shard, minted from the pool at construction.
  std::vector<parallel::ThreadPool::TaskGroup> shard_groups_;
  std::atomic<std::size_t> admission_limit_;
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> requests_{0};
  /// Fallback id source when no injector is wired and the caller did
  /// not supply one (ids are 1-based; 0 means "unassigned").
  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> solved_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> hedged_{0};
  std::atomic<std::uint64_t> deadline_degraded_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<std::uint64_t> brownout_shed_{0};
  std::atomic<std::uint64_t> shard_failovers_{0};
  std::atomic<std::uint64_t> warm_hits_{0};
  std::atomic<std::uint64_t> warm_misses_{0};
  std::atomic<std::uint64_t> warm_vector_rejects_{0};

  /// Brownout controller state. The latency window is owned directly
  /// (not via the registry) so brownout works with MECOFF_OBS=OFF too —
  /// the Quantiles class stays compiled in, only the macros vanish.
  /// The window's internal lock nests under brownout_mutex_ (record and
  /// quantile evaluation happen inside the controller's critical
  /// section), never the reverse.
  // lock-order: SolveService::brownout_mutex_ -> Quantiles::mutex_
  mutable Mutex brownout_mutex_;
  obs::Quantiles latency_window_ GUARDED_BY(brownout_mutex_);
  std::uint64_t completions_ GUARDED_BY(brownout_mutex_) = 0;
  double p99_seconds_ GUARDED_BY(brownout_mutex_) = 0.0;
  int brownout_tier_ GUARDED_BY(brownout_mutex_) = 0;
  std::uint64_t brownout_candidates_ GUARDED_BY(brownout_mutex_) = 0;
};

}  // namespace mecoff::serve
