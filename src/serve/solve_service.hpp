// SolveService: the online front half of the reproduction.
//
// The paper's Algorithm 1 solves a BATCH of users; serving a churning
// population means accepting per-user solve requests one at a time,
// coalescing redundant work, and shedding load before latency blows
// through the SLO. The service composes the pieces the repo already
// has:
//
//   ingest   solve(SolveRequest) — called concurrently from external
//            threads (an HTTP worker, the CLI, a bench driver);
//   shard    cold solves are dispatched to one of `shards` task groups
//            on the shared reentrant ThreadPool, so the pool's grouped
//            help discipline keeps independent solves from stealing
//            each other's nested work;
//   cache    a content-addressed SchemeCache keyed by the canonical
//            request fingerprint, with single-flight semantics —
//            concurrent identical requests ride one solve (the online
//            generalization of identical_user_period);
//   solve    PipelineOffloader on a single-user system, solver options
//            fixed at service construction (and folded into the cache
//            key as a seed fingerprint);
//   shed     admission control: at most `max_in_flight` requests are
//            admitted; beyond that the request is NOT dropped — it
//            degrades to a valid all-local placement immediately
//            (degrade-don't-die, same philosophy as the solver's
//            spectral → KL → all-remote chain). The per-request solve
//            deadline plugs into that chain unchanged.
//
// Degraded results (deadline expired or any fallback cut) are served
// to their requester but never published to the cache: cached entries
// are always full-quality, so a cache hit is bit-identical to what an
// unconstrained cold solve would return.
//
// THREADING CONTRACT: call solve() from threads that are NOT workers
// of the service's pool. A rider blocks on the cache's condition
// variable; parking a pool worker there could starve the very solve it
// is waiting on. External callers (HTTP workers, main threads, bench
// clients) are always safe; the cold solve itself runs ON the pool via
// submit_to + a plain future wait.
//
// Metrics (all through the obs facade, compiled out with it):
//   serve.solve.requests / cache_hits / cache_misses / coalesced /
//   shed / degraded     counters
//   serve.cache.evictions                            counter
//   serve.solve.in_flight                            gauge
//   serve.solve.latency                              quantiles
//     (p50/p95/p99 on /metrics via the standard exposition)
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "mec/model.hpp"
#include "mec/offloader.hpp"
#include "mec/scheme.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/fingerprint.hpp"
#include "serve/scheme_cache.hpp"

namespace mecoff::serve {

/// One user's solve input. `params` carries the cost/channel state —
/// requests with different channel conditions hash to different cache
/// entries by construction.
struct SolveRequest {
  mec::UserApp user;
  mec::SystemParams params;
};

/// Where the placement came from.
enum class SolveSource : std::uint8_t {
  kSolved,     ///< cold solve (cache miss, this request did the work)
  kCacheHit,   ///< served from a ready cache entry
  kCoalesced,  ///< rode a concurrent identical request's solve
  kShed,       ///< admission control: immediate all-local fallback
};

struct SolveResponse {
  /// Placement per function of the request's graph; ALWAYS valid for
  /// the request (pinned nodes local), even when shed or degraded.
  std::vector<mec::Placement> placement;
  SolveSource source = SolveSource::kSolved;
  /// True when a cold solve hit the deadline/fallback chain; degraded
  /// placements are served but not cached.
  bool degraded = false;
  double latency_seconds = 0.0;
  Fingerprint key;
};

struct SolveServiceOptions {
  /// Execution engine for cold solves (and their nested parallelism).
  /// null = solve on the calling thread.
  parallel::ThreadPool* pool = nullptr;
  /// Worker groups cold solves are sharded across (keyed by
  /// fingerprint). At least 1.
  std::size_t shards = 4;
  SchemeCache::Options cache;
  /// Admission limit: requests beyond this many concurrently in-flight
  /// are shed. SIZE_MAX = unlimited; 0 sheds everything (drain mode).
  std::size_t max_in_flight = SIZE_MAX;
  /// Solver configuration, fixed for the service's lifetime and folded
  /// into every cache key. `pool` and `identical_user_period` are
  /// overridden internally. The `deadline` applies per cold solve.
  mec::PipelineOptions solver;
};

class SolveService {
 public:
  explicit SolveService(SolveServiceOptions options = {});
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Serve one request. Fails only on malformed input (shape mismatch,
  /// invalid params); overload and solver degradation produce valid
  /// degraded responses instead of errors.
  [[nodiscard]] Result<SolveResponse> solve(const SolveRequest& request);

  /// Runtime admission knob (load shedding lever for operators):
  /// lowering it sheds NEW requests immediately; in-flight ones finish.
  void set_admission_limit(std::size_t max_in_flight) {
    admission_limit_.store(max_in_flight, std::memory_order_relaxed);
  }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t solved = 0;     ///< cold solves executed
    std::uint64_t cache_hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t shed = 0;
    std::uint64_t degraded = 0;
    SchemeCache::Stats cache;
  };
  [[nodiscard]] Stats stats() const;

  /// The solver-configuration digest folded in front of every request
  /// fingerprint (diagnostics; lets tests assert key separation).
  [[nodiscard]] Fingerprint config_seed() const { return config_seed_; }

 private:
  [[nodiscard]] std::vector<mec::Placement> run_cold_solve(
      const SolveRequest& request, const Fingerprint& key, bool& degraded);

  SolveServiceOptions options_;
  Fingerprint config_seed_;
  SchemeCache cache_;
  /// One task group per shard, minted from the pool at construction.
  std::vector<parallel::ThreadPool::TaskGroup> shard_groups_;
  std::atomic<std::size_t> admission_limit_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> solved_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
};

}  // namespace mecoff::serve
