// Canonical content fingerprints for solve requests.
//
// The scheme cache (scheme_cache.hpp) is content-addressed: two
// requests that describe the SAME optimization problem — identical
// application graph, cost parameters, and solver configuration — must
// map to the same key, and any input that can change the resulting
// placement must perturb it. This generalizes the
// `identical_user_period` replica reuse in PipelineOffloader::solve
// (which only recognizes duplicates by POSITION in a batch) into reuse
// across arbitrary request streams.
//
// Canonicalization rules (documented in docs/serving.md):
//   * graph: node count, node weights in node-id order, then edges as
//     (min(u,v), max(u,v), weight) triples sorted by endpoints — the
//     hash is invariant to edge insertion order and edge direction,
//     matching WeightedGraph's undirected semantics;
//   * unoffloadable mask: hashed per node; an empty mask hashes
//     identically to an explicit all-false mask (both mean "everything
//     offloadable");
//   * components: an empty vector means "derive from connectivity" and
//     is DISTINCT from any explicit assignment, so it hashes under a
//     separate tag;
//   * doubles: hashed by bit pattern with -0.0 normalized to +0.0 (the
//     costs they feed into cannot distinguish the two); NaNs are not
//     canonicalized — model validation rejects them upstream;
//   * the solver configuration (cut backend, propagation thresholds,
//     greedy weights...) is folded in by the service as a seed
//     fingerprint, so services with different solver settings never
//     share entries. The solve DEADLINE is deliberately excluded: it
//     is a budget, not an input, and degraded (deadline-expired)
//     results are never published to the cache.
//
// The digest is 128 bits built from two independent 64-bit FNV-1a
// streams — not cryptographic, but collision-safe for the cache's
// purpose (a collision serves a wrong-but-valid scheme; 2^64 birthday
// bound on realistic corpus sizes makes that negligible).
#pragma once

#include <cstdint>
#include <string>

#include "mec/model.hpp"

namespace mecoff::serve {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const Fingerprint&) const = default;

  /// 32 hex digits, for logs and debugging.
  [[nodiscard]] std::string to_hex() const;
};

struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(const Fingerprint& f) const noexcept {
    // The streams are already well-mixed; fold them.
    return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental dual-stream hasher. Feed canonical scalars in a fixed
/// order; identical feed sequences produce identical fingerprints.
class FingerprintBuilder {
 public:
  FingerprintBuilder() = default;
  /// Continue from a previous digest (how the service folds its solver
  /// configuration in front of every per-request hash).
  explicit FingerprintBuilder(const Fingerprint& seed);

  void add_u64(std::uint64_t value);
  /// Bit-pattern hash with -0.0 → +0.0 normalization.
  void add_double(double value);
  void add_bool(bool value) { add_u64(value ? 1 : 0); }

  [[nodiscard]] Fingerprint digest() const { return {hi_, lo_}; }

 private:
  // FNV-1a offset bases; the second stream gets distinct constants so
  // the two 64-bit digests are independent.
  std::uint64_t hi_ = 0xcbf29ce484222325ULL;
  std::uint64_t lo_ = 0x84222325cbf29ce4ULL;
};

/// Canonical fingerprint of one user's solve input: application graph
/// + pinning + components + system (cost/channel) parameters.
[[nodiscard]] Fingerprint fingerprint_request(const mec::UserApp& user,
                                              const mec::SystemParams& params);

/// Canonical text rendering of the EXACT scalar stream that
/// fingerprint_request() hashes — one line per scalar, doubles spelled
/// as the bit pattern of their normalized (-0.0 → +0.0) value. Two
/// requests have equal fingerprints iff they have equal canonical text
/// (up to the 2^-128 hash-collision bound); the fuzz harness in
/// fuzz/fuzz_fingerprint.cpp enforces this differential, so any
/// canonicalization change that touches one side but not the other is
/// caught immediately. Debug/audit aid, not a wire format.
[[nodiscard]] std::string canonical_request_text(
    const mec::UserApp& user, const mec::SystemParams& params);

/// Structure-only fingerprint: node count, edge endpoints (canonical
/// order, weights EXCLUDED), pin mask, and components — everything that
/// shapes the compressed cut graphs, nothing that merely re-prices
/// them. Two requests with equal topology keys describe the same graph
/// under perturbed node/edge weights or channel parameters — exactly
/// the near-misses whose cached Fiedler vectors are worth reusing as
/// warm starts. Adding or removing any edge changes the key.
[[nodiscard]] Fingerprint fingerprint_topology(const mec::UserApp& user);

}  // namespace mecoff::serve
