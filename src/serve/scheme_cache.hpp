// Content-addressed scheme cache with single-flight solve coalescing.
//
// Maps a request Fingerprint to the placement row a solve produced.
// Because the whole solver is deterministic (seeded RNG everywhere),
// a cached placement is BIT-IDENTICAL to what a cold solve of the same
// request would compute — serving from the cache is a pure time/energy
// win, never an approximation (tests/serve_test.cpp asserts the
// byte-identity).
//
// Single-flight: the first acquire() of an absent key becomes the
// OWNER (Outcome::kMiss) and must eventually publish() or abandon().
// Concurrent acquires of the same key while the owner solves do not
// start duplicate work — they block on the entry's condition and come
// back with the owner's placement (Outcome::kCoalesced). abandon()
// (solve failed or result was degraded and must not be reused)
// promotes exactly one waiting rider to owner; the rest keep waiting
// on the new owner. That is the serving-time generalization of the
// `identical_user_period` replica compression: N identical in-flight
// requests cost one solve.
//
// Bounded rides: acquire() takes an optional wait budget. A rider
// whose owner has not published within the budget comes back with
// Outcome::kTimeout instead of waiting forever — the deadline-budget
// hook the service's hedged-retry path builds on (the rider then runs
// its own duplicate solve on another shard; it does NOT own the entry,
// so it must neither publish nor abandon). A negative budget waits
// unbounded, preserving the original semantics.
//
// Eviction: ready entries form an LRU list; once their count exceeds
// `capacity`, least-recently-used entries are dropped. In-flight
// (solving) entries and entries with still-waking riders are pinned —
// eviction can never invalidate a placement someone is about to read.
//
// Thread-safe; all methods may be called concurrently. Callers must
// NOT hold pool worker context requirements in mind here — acquire()
// blocks on a condition variable, so riders should be external threads
// (see SolveService's threading contract).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_annotations.hpp"
#include "linalg/vector_ops.hpp"
#include "mec/scheme.hpp"
#include "serve/fingerprint.hpp"

namespace mecoff::serve {

class SchemeCache {
 public:
  struct Options {
    /// Max READY entries retained; in-flight entries are not counted.
    std::size_t capacity = 1024;
  };

  enum class Outcome : std::uint8_t {
    kHit,        ///< ready entry served directly
    kMiss,       ///< caller owns the solve; publish() or abandon()
    kCoalesced,  ///< rode a concurrent owner's solve
    kTimeout,    ///< wait budget ran out while the owner was solving
  };

  struct Lookup {
    Outcome outcome = Outcome::kMiss;
    /// Valid for kHit/kCoalesced; empty for kMiss.
    std::vector<mec::Placement> placement;
    /// For kHit/kCoalesced: the request id of the owner that solved
    /// (or is credited with) this entry — the correlation answer to
    /// "whose solve am I being served?". 0 = owner carried no id.
    std::uint64_t owner_request_id = 0;
  };

  /// Near-miss reuse payload: a READY entry whose request hashed to a
  /// DIFFERENT full key but the SAME topology key — same graph shape
  /// under perturbed weights/channel. Its placement and per-component
  /// Fiedler vectors seed a warm re-solve (PipelineOffloader::
  /// WarmStart); they are advisory copies, never served as the answer.
  struct WarmHint {
    std::vector<mec::Placement> placement;
    std::vector<linalg::Vec> fiedler_vectors;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
    std::uint64_t timeouts = 0;  ///< riders that gave up within budget
    std::uint64_t warm_hints = 0;  ///< misses that found a near-miss donor
    std::size_t entries = 0;     ///< ready entries currently resident
    /// Age of the oldest resident ready entry; 0 when the cache is
    /// empty. O(entries) scan — stats() is a diagnostics path.
    double oldest_entry_age_seconds = 0.0;
  };

  SchemeCache() : SchemeCache(Options{}) {}
  explicit SchemeCache(Options options);
  SchemeCache(const SchemeCache&) = delete;
  SchemeCache& operator=(const SchemeCache&) = delete;

  /// Look up `key`; see Outcome. kMiss makes the caller the owner of
  /// the in-flight solve: it MUST later call publish() or abandon()
  /// with the same key, or riders wait forever. `max_wait_seconds`
  /// bounds how long a rider parks behind an in-flight owner: negative
  /// waits unbounded, 0 refuses to wait at all (deterministic
  /// kTimeout if the entry is in flight), positive gives up after that
  /// long with Outcome::kTimeout. A timed-out rider holds NO ownership
  /// — it must neither publish() nor abandon().
  [[nodiscard]] Lookup acquire(const Fingerprint& key,
                               double max_wait_seconds = -1.0)
      EXCLUDES(mutex_);

  /// acquire() that additionally probes the topology index on kMiss:
  /// when a READY entry published under the same `topo_key` (but a
  /// different full key) holds warm artifacts, `*warm_out` receives a
  /// copy — detectable as a non-empty warm_out->placement. Hit/
  /// coalesced/timeout outcomes never fill the hint (there is nothing
  /// to re-solve). `warm_out` may be null (plain acquire).
  /// `request_id` is the acquiring request's correlation id: recorded
  /// on the entry when this caller becomes the owner (kMiss, including
  /// abandon-promotion), and echoed back to later hits/riders as
  /// Lookup::owner_request_id.
  [[nodiscard]] Lookup acquire(const Fingerprint& key,
                               double max_wait_seconds,
                               const Fingerprint& topo_key,
                               WarmHint* warm_out,
                               std::uint64_t request_id = 0)
      EXCLUDES(mutex_);

  /// Owner completes: store the placement, wake riders, enter the LRU
  /// (possibly evicting older ready entries).
  void publish(const Fingerprint& key, std::vector<mec::Placement> placement)
      EXCLUDES(mutex_);

  /// publish() that also retains warm artifacts and registers the entry
  /// as the `topo_key`'s most recent donor. Eviction of the entry drops
  /// both the artifacts and its index registration.
  void publish(const Fingerprint& key, std::vector<mec::Placement> placement,
               const Fingerprint& topo_key,
               std::vector<linalg::Vec> fiedler_vectors) EXCLUDES(mutex_);

  /// Owner gives up (error or degraded result that must not be
  /// reused). One waiting rider is promoted to owner; with no riders
  /// the entry vanishes and the next acquire() starts cold.
  void abandon(const Fingerprint& key) EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);

 private:
  enum class State : std::uint8_t { kSolving, kReady, kAbandoned };

  struct Entry {
    State state = State::kSolving;
    std::vector<mec::Placement> placement;
    std::size_t waiters = 0;
    /// Correlation id of the request that owns (or solved) this entry.
    std::uint64_t owner_request_id = 0;
    /// Position in lru_ (valid only when state == kReady).
    std::size_t lru_tick = 0;
    /// Reset by publish(); drives Stats::oldest_entry_age_seconds.
    Stopwatch ready_since;
    /// Warm artifacts (empty unless published with them) and the
    /// topology key they were registered under, so eviction can
    /// unregister this entry from topo_index_.
    std::vector<linalg::Vec> fiedler;
    Fingerprint topo_key;
    bool has_topo = false;
  };

  void publish_locked(const Fingerprint& key,
                      std::vector<mec::Placement> placement,
                      const Fingerprint* topo_key,
                      std::vector<linalg::Vec> fiedler_vectors)
      REQUIRES(mutex_);
  void evict_locked() REQUIRES(mutex_);

  const Options options_;
  mutable Mutex mutex_;
  /// Riders park here; publish/abandon broadcast. One cv for the whole
  /// cache: wakeups re-check their own entry's state (predicate loop).
  CondVar cv_;
  std::unordered_map<Fingerprint, Entry, FingerprintHash> map_
      GUARDED_BY(mutex_);
  /// Topology key → full key of the most recent READY entry published
  /// with warm artifacts under that topology. At most one donor per
  /// topology: newer publishes overwrite, and evicting the donor entry
  /// erases its registration (an older same-topology entry is NOT
  /// re-registered — simplicity over maximal reuse).
  std::unordered_map<Fingerprint, Fingerprint, FingerprintHash> topo_index_
      GUARDED_BY(mutex_);
  /// Monotone use counter; the ready entry with the smallest tick is
  /// the LRU victim. O(n) victim scan — capacities are small (10^3)
  /// and eviction is off the hot hit path.
  std::size_t tick_ GUARDED_BY(mutex_) = 0;
  std::size_t ready_count_ GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ GUARDED_BY(mutex_) = 0;
  std::uint64_t coalesced_ GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ GUARDED_BY(mutex_) = 0;
  std::uint64_t timeouts_ GUARDED_BY(mutex_) = 0;
  std::uint64_t warm_hints_ GUARDED_BY(mutex_) = 0;
};

}  // namespace mecoff::serve
