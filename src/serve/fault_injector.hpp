// Live fault injection for the solve service.
//
// PR 2 made the *simulated* system chaos-testable: a `sim::FaultScript`
// armed on the DES clock, replayable bit-for-bit. This is the same
// script vocabulary armed against the RUNNING SolveService — no
// simulated clock exists there, so script times are reinterpreted as
// REQUEST SEQUENCE NUMBERS: an event at time 12 fires when the 12th
// request (counting from 1) enters admission. That keeps injection
// deterministic and replayable regardless of wall-clock jitter: the
// same (script, request stream) pair always perturbs the same
// requests, which is what lets the soak harness commit a trajectory
// and lets tests assert exact outcomes.
//
// Fault taxonomy mapping (documented here because the sim vocabulary
// is reused verbatim — `to_text()` scripts round-trip through both):
//
//   crash <s>       kill worker shard s % shards. Cold solves routed
//                   to a killed shard fail fast at dispatch; the
//                   service retries the next alive shard, or degrades
//                   to all-local when every shard is down.
//   recover <s>     revive shard s % shards.
//   degrade <s> f   inject synthetic solve latency on shard s % shards:
//                   f × latency_scale_seconds per cold solve (f is the
//                   script's (0,1) severity). The service bounds the
//                   injected sleep by the request's remaining deadline
//                   budget, so a stall can slow a request but never
//                   hang it.
//   restore <s>     clear injected latency on shard s % shards.
//   disconnect <u>  arm ONE cache-publish failure: the next cold solve
//                   that would publish abandons instead (the "result
//                   got lost on the way back" failure riders must
//                   survive — one of them is promoted to owner).
//
// Thread-safe: begin_request() is called concurrently from every
// serving thread; queries are lock-protected reads. The applied-event
// trace is deterministic text ("req <seq>: <describe>") for replay
// assertions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sim/fault_script.hpp"

namespace mecoff::serve {

class FaultInjector {
 public:
  struct Options {
    /// Shard count of the service this injector is attached to; crash
    /// and degrade targets are folded modulo this. At least 1.
    std::size_t shards = 4;
    /// Injected latency for a full-severity (→1.0) link degrade; the
    /// event's severity scales it down linearly.
    double latency_scale_seconds = 0.05;
  };

  struct Stats {
    std::uint64_t requests_seen = 0;    ///< begin_request() calls
    std::uint64_t events_applied = 0;   ///< script events fired so far
    std::uint64_t events_pending = 0;   ///< script events not yet due
    std::uint64_t publish_failures = 0; ///< publishes stolen so far
    std::size_t shards_killed = 0;      ///< currently-dead shard count
  };

  FaultInjector() : FaultInjector(Options{}) {}
  explicit FaultInjector(Options options);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install `script` and reset the request sequence to 0. Events fire
  /// in replay order (`ordered()`); an event at time T fires when
  /// request ⌈T⌉ ≥ its time enters admission. Re-arming clears all
  /// standing faults (kills, latencies, pending publish failures).
  void arm(const sim::FaultScript& script) EXCLUDES(mutex_);

  /// Advance the request sequence by one and fire every event now due.
  /// Called by the service at admission, once per request (shed
  /// requests included — they count against the clock like any other).
  /// Returns the sequence number assigned to this request (1-based).
  std::uint64_t begin_request() EXCLUDES(mutex_);

  /// Is `shard` currently killed? (Folded modulo shards.)
  [[nodiscard]] bool shard_killed(std::size_t shard) const EXCLUDES(mutex_);

  /// True when every shard is killed — cold solves must degrade.
  [[nodiscard]] bool all_shards_killed() const EXCLUDES(mutex_);

  /// Synthetic latency currently injected on `shard`, seconds; 0 when
  /// none. (Folded modulo shards.)
  [[nodiscard]] double injected_latency_seconds(std::size_t shard) const
      EXCLUDES(mutex_);

  /// One-shot: true exactly once per armed publish failure. A caller
  /// holding a publishable result that draws `true` must abandon()
  /// instead — the injected "lost result" fault.
  [[nodiscard]] bool steal_publish() EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);

  /// Deterministic applied-event log: one "req <seq>: <describe>" line
  /// per fired event, in firing order.
  [[nodiscard]] std::vector<std::string> trace() const EXCLUDES(mutex_);

 private:
  void apply_locked(const sim::FaultEvent& event) REQUIRES(mutex_);

  const Options options_;
  mutable Mutex mutex_;
  std::vector<sim::FaultEvent> schedule_ GUARDED_BY(mutex_);
  std::size_t next_event_ GUARDED_BY(mutex_) = 0;
  std::uint64_t sequence_ GUARDED_BY(mutex_) = 0;
  /// Per-shard kill flag and injected latency, indexed by shard id.
  std::vector<std::uint8_t> killed_ GUARDED_BY(mutex_);
  std::vector<double> latency_ GUARDED_BY(mutex_);
  std::size_t killed_count_ GUARDED_BY(mutex_) = 0;
  /// Armed-but-unclaimed publish failures (disconnect events).
  std::uint64_t publish_steals_armed_ GUARDED_BY(mutex_) = 0;
  std::uint64_t publish_steals_taken_ GUARDED_BY(mutex_) = 0;
  std::uint64_t events_applied_ GUARDED_BY(mutex_) = 0;
  std::vector<std::string> trace_ GUARDED_BY(mutex_);
};

}  // namespace mecoff::serve
