#include "serve/fingerprint.hpp"

#include <algorithm>
#include <bit>
#include <utility>
#include <vector>

namespace mecoff::serve {

namespace {

// Distinct FNV primes per stream keep the two digests independent.
constexpr std::uint64_t kPrimeHi = 0x100000001b3ULL;
constexpr std::uint64_t kPrimeLo = 0x10000000233ULL;

// Section tags so "3 nodes, 2 edges" can never collide with
// "2 nodes, 3 edges": every canonical section is prefixed.
enum : std::uint64_t {
  kTagNodes = 0xA1,
  kTagEdges = 0xA2,
  kTagPinned = 0xA3,
  kTagComponentsEmpty = 0xA4,
  kTagComponents = 0xA5,
  kTagParams = 0xA6,
  // Topology-only sections (fingerprint_topology). Distinct tags keep
  // the two fingerprint families in disjoint input domains even though
  // they are never compared against each other.
  kTagTopoNodes = 0xA7,
  kTagTopoEdges = 0xA8,
};

/// The canonical scalar stream for one request, fed to any Sink with
/// u64(std::uint64_t) / f64(double) / boolean(bool) members. BOTH
/// fingerprint_request() and canonical_request_text() consume this one
/// function, so the hash and its text oracle cannot drift apart: a
/// canonicalization change edits the stream here and both sides move
/// together (the differential fuzzer pins the equivalence).
template <typename Sink>
void feed_request(const mec::UserApp& user, const mec::SystemParams& params,
                  Sink& sink) {
  const graph::WeightedGraph& g = user.graph;
  const std::size_t n = g.num_nodes();

  sink.u64(kTagNodes);
  sink.u64(n);
  for (graph::NodeId v = 0; v < n; ++v) sink.f64(g.node_weight(v));

  // Edges canonicalized to (min, max, weight) and sorted: the builder
  // merges parallel edges, so endpoint pairs are unique and the sort is
  // a total order — insertion order and direction cannot leak in.
  std::vector<std::tuple<graph::NodeId, graph::NodeId, double>> edges;
  edges.reserve(g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    edges.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v), e.weight);
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) {
              return std::get<0>(a) != std::get<0>(b)
                         ? std::get<0>(a) < std::get<0>(b)
                         : std::get<1>(a) < std::get<1>(b);
            });
  sink.u64(kTagEdges);
  sink.u64(edges.size());
  for (const auto& [u, v, w] : edges) {
    sink.u64(u);
    sink.u64(v);
    sink.f64(w);
  }

  // Empty mask ≡ all offloadable: hash the EFFECTIVE per-node value so
  // the two spellings of "nothing pinned" share a fingerprint.
  sink.u64(kTagPinned);
  for (std::size_t v = 0; v < n; ++v)
    sink.boolean(!user.unoffloadable.empty() && user.unoffloadable[v]);

  // Empty components means "derive from connectivity" — a different
  // problem than any explicit labeling, hence the distinct tag.
  if (user.components.empty()) {
    sink.u64(kTagComponentsEmpty);
  } else {
    sink.u64(kTagComponents);
    for (const std::uint32_t c : user.components) sink.u64(c);
  }

  sink.u64(kTagParams);
  sink.f64(params.mobile_power);
  sink.f64(params.transmit_power);
  sink.f64(params.bandwidth);
  sink.f64(params.mobile_capacity);
  sink.f64(params.server_capacity);
  sink.f64(params.contention_factor);
}

/// Sink that hashes the stream (production path).
struct HashSink {
  FingerprintBuilder fp;
  void u64(std::uint64_t value) { fp.add_u64(value); }
  void f64(double value) { fp.add_double(value); }
  void boolean(bool value) { fp.add_bool(value); }
};

/// Sink that renders the stream as text (the differential oracle).
/// Doubles are spelled by normalized bit pattern — the same value the
/// hash consumes — so text equality and feed equality coincide exactly.
struct TextSink {
  std::string out;
  void u64(std::uint64_t value) {
    out += "u " + hex_u64(value) + "\n";
  }
  void f64(double value) {
    if (value == 0.0) value = 0.0;  // collapse -0.0 onto +0.0
    out += "f " + hex_u64(std::bit_cast<std::uint64_t>(value)) + "\n";
  }
  void boolean(bool value) { u64(value ? 1 : 0); }

  static std::string hex_u64(std::uint64_t value) {
    static const char* digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 0; i < 16; ++i)
      s[static_cast<std::size_t>(i)] =
          digits[(value >> (60 - 4 * i)) & 0xF];
    return s;
  }
};

}  // namespace

FingerprintBuilder::FingerprintBuilder(const Fingerprint& seed)
    : hi_(seed.hi), lo_(seed.lo) {}

void FingerprintBuilder::add_u64(std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    const std::uint64_t b = (value >> (8 * byte)) & 0xFF;
    hi_ = (hi_ ^ b) * kPrimeHi;
    lo_ = (lo_ ^ (b + 0x5bULL)) * kPrimeLo;
  }
}

void FingerprintBuilder::add_double(double value) {
  if (value == 0.0) value = 0.0;  // collapse -0.0 onto +0.0
  add_u64(std::bit_cast<std::uint64_t>(value));
}

std::string Fingerprint::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i % 8);
    const auto byte = static_cast<unsigned>((word >> shift) & 0xFF);
    out[2 * static_cast<std::size_t>(i)] = digits[byte >> 4];
    out[2 * static_cast<std::size_t>(i) + 1] = digits[byte & 0xF];
  }
  return out;
}

Fingerprint fingerprint_request(const mec::UserApp& user,
                                const mec::SystemParams& params) {
  HashSink sink;
  feed_request(user, params, sink);
  return sink.fp.digest();
}

std::string canonical_request_text(const mec::UserApp& user,
                                   const mec::SystemParams& params) {
  TextSink sink;
  feed_request(user, params, sink);
  return std::move(sink.out);
}

Fingerprint fingerprint_topology(const mec::UserApp& user) {
  FingerprintBuilder fp;
  const graph::WeightedGraph& g = user.graph;
  const std::size_t n = g.num_nodes();

  fp.add_u64(kTagTopoNodes);
  fp.add_u64(n);

  // Same canonical edge order as fingerprint_request, endpoints only.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  edges.reserve(g.num_edges());
  for (const graph::Edge& e : g.edges())
    edges.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  std::sort(edges.begin(), edges.end());
  fp.add_u64(kTagTopoEdges);
  fp.add_u64(edges.size());
  for (const auto& [u, v] : edges) {
    fp.add_u64(u);
    fp.add_u64(v);
  }

  // Pinning and component labels shape the compressed cut graphs (the
  // domain of any cached Fiedler vector), so they are topology here.
  fp.add_u64(kTagPinned);
  for (std::size_t v = 0; v < n; ++v)
    fp.add_bool(!user.unoffloadable.empty() && user.unoffloadable[v]);
  if (user.components.empty()) {
    fp.add_u64(kTagComponentsEmpty);
  } else {
    fp.add_u64(kTagComponents);
    for (const std::uint32_t c : user.components) fp.add_u64(c);
  }

  return fp.digest();
}

}  // namespace mecoff::serve
