#include "serve/scheme_cache.hpp"

#include <chrono>
#include <limits>
#include <utility>

#include "common/contracts.hpp"
#include "obs/obs.hpp"

namespace mecoff::serve {

SchemeCache::SchemeCache(Options options) : options_(options) {}

SchemeCache::Lookup SchemeCache::acquire(const Fingerprint& key,
                                         double max_wait_seconds) {
  return acquire(key, max_wait_seconds, Fingerprint{}, nullptr);
}

SchemeCache::Lookup SchemeCache::acquire(const Fingerprint& key,
                                         double max_wait_seconds,
                                         const Fingerprint& topo_key,
                                         WarmHint* warm_out,
                                         std::uint64_t request_id) {
  const Stopwatch waited;
  const MutexLock lock(mutex_);
  for (;;) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      Entry owned;  // kSolving: this caller owns it
      owned.owner_request_id = request_id;
      map_.emplace(key, std::move(owned));
      ++misses_;
      // Near-miss probe: a ready same-topology donor seeds the owner's
      // warm re-solve. Only the fresh owner probes — riders and hits
      // have nothing to solve.
      if (warm_out != nullptr) {
        const auto topo_it = topo_index_.find(topo_key);
        if (topo_it != topo_index_.end()) {
          const auto donor = map_.find(topo_it->second);
          if (donor != map_.end() && donor->second.state == State::kReady &&
              !donor->second.fiedler.empty()) {
            warm_out->placement = donor->second.placement;
            warm_out->fiedler_vectors = donor->second.fiedler;
            ++warm_hints_;
            MECOFF_COUNTER_ADD("serve.cache.warm_hints", 1);
          }
        }
      }
      return Lookup{Outcome::kMiss, {}};
    }
    Entry& entry = it->second;
    if (entry.state == State::kReady) {
      entry.lru_tick = ++tick_;
      ++hits_;
      return Lookup{Outcome::kHit, entry.placement, entry.owner_request_id};
    }
    // In-flight: ride the owner's solve. The entry cannot be erased
    // while waiters > 0 (publish keeps it, abandon only flips state,
    // eviction skips entries with waiters), so the reference stays
    // valid across the wait. A wait budget turns the park into a
    // predicate loop over the REMAINING budget: cv_.wait_for does not
    // report why it woke, so the state re-check plus the stopwatch are
    // the whole protocol. Timing out is only decided while the entry
    // is still kSolving — a publish that lands in the same instant
    // wins and the rider coalesces normally.
    ++entry.waiters;
    bool timed_out = false;
    while (entry.state == State::kSolving) {
      if (max_wait_seconds < 0.0) {
        cv_.wait(mutex_);
        continue;
      }
      const double remaining = max_wait_seconds - waited.elapsed_seconds();
      if (remaining <= 0.0) {
        timed_out = true;
        break;
      }
      cv_.wait_for(mutex_, std::chrono::duration<double>(remaining));
    }
    --entry.waiters;
    if (timed_out) {
      ++timeouts_;
      MECOFF_COUNTER_ADD("serve.cache.wait_timeouts", 1);
      return Lookup{Outcome::kTimeout, {}};
    }
    if (entry.state == State::kAbandoned) {
      // Owner bailed out; THIS rider takes over the solve. Remaining
      // riders observe kSolving again and keep waiting on the new
      // owner.
      entry.state = State::kSolving;
      entry.owner_request_id = request_id;
      ++misses_;
      return Lookup{Outcome::kMiss, {}};
    }
    ++coalesced_;
    return Lookup{Outcome::kCoalesced, entry.placement,
                  entry.owner_request_id};
  }
}

void SchemeCache::publish(const Fingerprint& key,
                          std::vector<mec::Placement> placement) {
  const MutexLock lock(mutex_);
  publish_locked(key, std::move(placement), nullptr, {});
}

void SchemeCache::publish(const Fingerprint& key,
                          std::vector<mec::Placement> placement,
                          const Fingerprint& topo_key,
                          std::vector<linalg::Vec> fiedler_vectors) {
  const MutexLock lock(mutex_);
  publish_locked(key, std::move(placement), &topo_key,
                 std::move(fiedler_vectors));
}

void SchemeCache::publish_locked(const Fingerprint& key,
                                 std::vector<mec::Placement> placement,
                                 const Fingerprint* topo_key,
                                 std::vector<linalg::Vec> fiedler_vectors) {
  auto it = map_.find(key);
  MECOFF_EXPECTS(it != map_.end() && it->second.state == State::kSolving);
  Entry& entry = it->second;
  entry.placement = std::move(placement);
  if (topo_key != nullptr) {
    entry.fiedler = std::move(fiedler_vectors);
    entry.topo_key = *topo_key;
    entry.has_topo = true;
    topo_index_[*topo_key] = key;  // newest donor wins
  }
  entry.state = State::kReady;
  entry.lru_tick = ++tick_;
  entry.ready_since.reset();
  ++ready_count_;
  evict_locked();
  cv_.notify_all();
}

void SchemeCache::abandon(const Fingerprint& key) {
  const MutexLock lock(mutex_);
  auto it = map_.find(key);
  MECOFF_EXPECTS(it != map_.end() && it->second.state == State::kSolving);
  if (it->second.waiters == 0) {
    map_.erase(it);  // nobody to hand the solve to; next acquire is cold
    return;
  }
  it->second.state = State::kAbandoned;
  cv_.notify_all();
}

SchemeCache::Stats SchemeCache::stats() const {
  const MutexLock lock(mutex_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.coalesced = coalesced_;
  out.evictions = evictions_;
  out.timeouts = timeouts_;
  out.warm_hints = warm_hints_;
  out.entries = ready_count_;
  for (const auto& [key, entry] : map_) {
    if (entry.state != State::kReady) continue;
    const double age = entry.ready_since.elapsed_seconds();
    if (age > out.oldest_entry_age_seconds)
      out.oldest_entry_age_seconds = age;
  }
  return out;
}

void SchemeCache::evict_locked() {
  while (ready_count_ > options_.capacity) {
    auto victim = map_.end();
    std::size_t oldest = std::numeric_limits<std::size_t>::max();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      const Entry& entry = it->second;
      if (entry.state != State::kReady || entry.waiters != 0) continue;
      if (entry.lru_tick < oldest) {
        oldest = entry.lru_tick;
        victim = it;
      }
    }
    if (victim == map_.end()) return;  // everything pinned; try later
    // A victim that is the registered donor for its topology takes the
    // registration with it — the index never dangles.
    if (victim->second.has_topo) {
      const auto topo_it = topo_index_.find(victim->second.topo_key);
      if (topo_it != topo_index_.end() && topo_it->second == victim->first)
        topo_index_.erase(topo_it);
    }
    map_.erase(victim);
    --ready_count_;
    ++evictions_;
    MECOFF_COUNTER_ADD("serve.cache.evictions", 1);
  }
}

}  // namespace mecoff::serve
