#include "serve/fault_injector.hpp"

#include <string>

#include "obs/obs.hpp"

namespace mecoff::serve {

FaultInjector::FaultInjector(Options options) : options_(options) {
  const std::size_t shards = options_.shards == 0 ? 1 : options_.shards;
  killed_.assign(shards, 0);
  latency_.assign(shards, 0.0);
}

void FaultInjector::arm(const sim::FaultScript& script) {
  const MutexLock lock(mutex_);
  schedule_ = script.ordered();
  next_event_ = 0;
  sequence_ = 0;
  killed_.assign(killed_.size(), 0);
  latency_.assign(latency_.size(), 0.0);
  killed_count_ = 0;
  publish_steals_armed_ = 0;
  publish_steals_taken_ = 0;
  events_applied_ = 0;
  trace_.clear();
}

std::uint64_t FaultInjector::begin_request() {
  const MutexLock lock(mutex_);
  const std::uint64_t seq = ++sequence_;
  while (next_event_ < schedule_.size() &&
         schedule_[next_event_].time <= static_cast<double>(seq)) {
    apply_locked(schedule_[next_event_]);
    ++next_event_;
  }
  return seq;
}

void FaultInjector::apply_locked(const sim::FaultEvent& event) {
  const std::size_t shard = event.target % killed_.size();
  switch (event.kind) {
    case sim::FaultKind::kServerCrash:
      if (killed_[shard] == 0) ++killed_count_;
      killed_[shard] = 1;
      break;
    case sim::FaultKind::kServerRecover:
      if (killed_[shard] != 0) --killed_count_;
      killed_[shard] = 0;
      break;
    case sim::FaultKind::kLinkDegrade:
      latency_[shard] = event.severity * options_.latency_scale_seconds;
      break;
    case sim::FaultKind::kLinkRestore:
      latency_[shard] = 0.0;
      break;
    case sim::FaultKind::kUserDisconnect:
      ++publish_steals_armed_;
      break;
  }
  ++events_applied_;
  MECOFF_COUNTER_ADD("serve.fault.events_applied", 1);
  trace_.push_back("req " + std::to_string(sequence_) + ": " +
                   event.describe());
}

bool FaultInjector::shard_killed(std::size_t shard) const {
  const MutexLock lock(mutex_);
  return killed_[shard % killed_.size()] != 0;
}

bool FaultInjector::all_shards_killed() const {
  const MutexLock lock(mutex_);
  return killed_count_ == killed_.size();
}

double FaultInjector::injected_latency_seconds(std::size_t shard) const {
  const MutexLock lock(mutex_);
  return latency_[shard % latency_.size()];
}

bool FaultInjector::steal_publish() {
  const MutexLock lock(mutex_);
  if (publish_steals_taken_ >= publish_steals_armed_) return false;
  ++publish_steals_taken_;
  MECOFF_COUNTER_ADD("serve.cache.publish_failures", 1);
  return true;
}

FaultInjector::Stats FaultInjector::stats() const {
  const MutexLock lock(mutex_);
  Stats out;
  out.requests_seen = sequence_;
  out.events_applied = events_applied_;
  out.events_pending = schedule_.size() - next_event_;
  out.publish_failures = publish_steals_taken_;
  out.shards_killed = killed_count_;
  return out;
}

std::vector<std::string> FaultInjector::trace() const {
  const MutexLock lock(mutex_);
  return trace_;
}

}  // namespace mecoff::serve
