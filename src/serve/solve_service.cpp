#include "serve/solve_service.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "common/stopwatch.hpp"
#include "obs/obs.hpp"

namespace mecoff::serve {

namespace {

/// Digest of everything in the solver configuration that can change a
/// placement. Folded in front of every request fingerprint so services
/// with different solver settings never share cache entries. The
/// deadline is excluded on purpose: it is a budget, not an input, and
/// degraded results are never published (see run_cold_solve).
Fingerprint fingerprint_solver_config(const mec::PipelineOptions& options) {
  FingerprintBuilder fp;
  fp.add_u64(0xC0);  // config section tag
  fp.add_double(options.propagation.coupling_threshold);
  fp.add_double(options.propagation.min_update_rate);
  fp.add_u64(options.propagation.max_rounds);
  fp.add_u64(static_cast<std::uint64_t>(options.propagation.policy));
  fp.add_u64(static_cast<std::uint64_t>(options.backend));
  fp.add_u64(static_cast<std::uint64_t>(options.spectral.fiedler.backend));
  fp.add_double(options.spectral.fiedler.tolerance);
  fp.add_u64(options.spectral.fiedler.seed);
  fp.add_u64(options.spectral.fiedler.max_subspace);
  fp.add_u64(options.spectral.fiedler.max_iterations);
  fp.add_u64(static_cast<std::uint64_t>(options.spectral.split));
  fp.add_u64(static_cast<std::uint64_t>(options.maxflow.strategy));
  fp.add_u64(options.maxflow.num_pairs);
  fp.add_u64(options.maxflow.seed);
  fp.add_u64(options.kl.max_passes);
  fp.add_bool(options.kl.exact_pair_selection);
  fp.add_u64(options.kl.candidate_limit);
  fp.add_u64(options.kl.seed);
  fp.add_u64(options.greedy.max_moves);
  fp.add_double(options.greedy.energy_weight);
  fp.add_double(options.greedy.time_weight);
  fp.add_bool(options.greedy.enable_group_moves);
  fp.add_bool(options.anchor_initial_parts);
  return fp.digest();
}

/// The shed fallback: everything on the device. Valid for any request
/// (pinned nodes are local by definition) and costs nothing to build —
/// the serving twin of the solver's terminal all-remote fallback.
std::vector<mec::Placement> all_local_placement(std::size_t num_nodes) {
  return std::vector<mec::Placement>(num_nodes, mec::Placement::kLocal);
}

}  // namespace

SolveService::SolveService(SolveServiceOptions options)
    : options_(std::move(options)),
      config_seed_(fingerprint_solver_config(options_.solver)),
      cache_(options_.cache),
      admission_limit_(options_.max_in_flight) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.pool != nullptr) {
    shard_groups_.reserve(options_.shards);
    for (std::size_t s = 0; s < options_.shards; ++s)
      shard_groups_.push_back(options_.pool->make_group());
  }
}

Result<SolveResponse> SolveService::solve(const SolveRequest& request) {
  const Stopwatch timer;
  mec::MecSystem system;
  system.params = request.params;
  system.users.push_back(request.user);
  if (!system.valid())
    return Error("invalid solve request (shape or parameter check failed)");

  requests_.fetch_add(1, std::memory_order_relaxed);
  MECOFF_COUNTER_ADD("serve.solve.requests", 1);

  SolveResponse response;
  FingerprintBuilder keyed(config_seed_);
  // Continue the config digest with the request content: same app +
  // params + config ⇒ same key.
  const Fingerprint content = fingerprint_request(request.user, request.params);
  keyed.add_u64(content.hi);
  keyed.add_u64(content.lo);
  response.key = keyed.digest();

  // Admission control BEFORE touching the cache: a shed request must
  // cost O(1), that is the point of shedding.
  const std::size_t limit = admission_limit_.load(std::memory_order_relaxed);
  const std::size_t admitted =
      in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (admitted > limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    MECOFF_COUNTER_ADD("serve.solve.shed", 1);
    response.placement = all_local_placement(request.user.graph.num_nodes());
    response.source = SolveSource::kShed;
    response.degraded = true;
    response.latency_seconds = timer.elapsed_seconds();
    MECOFF_QUANTILES_RECORD("serve.solve.latency", response.latency_seconds);
    return response;
  }

  SchemeCache::Lookup lookup = cache_.acquire(response.key);
  switch (lookup.outcome) {
    case SchemeCache::Outcome::kHit:
      response.placement = std::move(lookup.placement);
      response.source = SolveSource::kCacheHit;
      MECOFF_COUNTER_ADD("serve.solve.cache_hits", 1);
      break;
    case SchemeCache::Outcome::kCoalesced:
      response.placement = std::move(lookup.placement);
      response.source = SolveSource::kCoalesced;
      MECOFF_COUNTER_ADD("serve.solve.coalesced", 1);
      break;
    case SchemeCache::Outcome::kMiss: {
      MECOFF_COUNTER_ADD("serve.solve.cache_misses", 1);
      bool degraded = false;
      try {
        response.placement = run_cold_solve(request, response.key, degraded);
      } catch (...) {
        // Never strand riders: hand the solve to one of them (or clear
        // the entry) before propagating.
        cache_.abandon(response.key);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        throw;
      }
      solved_.fetch_add(1, std::memory_order_relaxed);
      response.source = SolveSource::kSolved;
      response.degraded = degraded;
      if (degraded) {
        // Serve it, count it, but never cache it: a deadline-truncated
        // scheme must not outlive the overload that produced it.
        degraded_.fetch_add(1, std::memory_order_relaxed);
        MECOFF_COUNTER_ADD("serve.solve.degraded", 1);
        cache_.abandon(response.key);
      } else {
        cache_.publish(response.key, response.placement);
      }
      break;
    }
  }

  const std::size_t remaining =
      in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  MECOFF_GAUGE_SET("serve.solve.in_flight", static_cast<double>(remaining));
  response.latency_seconds = timer.elapsed_seconds();
  MECOFF_QUANTILES_RECORD("serve.solve.latency", response.latency_seconds);
  return response;
}

std::vector<mec::Placement> SolveService::run_cold_solve(
    const SolveRequest& request, const Fingerprint& key, bool& degraded) {
  auto solve_now = [this, &request, &degraded] {
    mec::PipelineOptions solver = options_.solver;
    solver.pool = options_.pool;
    solver.identical_user_period = 0;  // superseded by the cache
    mec::PipelineOffloader offloader(solver);
    mec::MecSystem system;
    system.params = request.params;
    system.users.push_back(request.user);
    mec::OffloadingScheme scheme = offloader.solve(system);
    const auto& stats = offloader.last_stats();
    degraded = stats.degraded() || stats.deadline_expired;
    return std::move(scheme.placement.front());
  };

  // Shard cold solves across the pool's task groups by fingerprint.
  // The calling thread is external (threading contract), so a plain
  // future wait is correct — and if the contract is violated and we
  // ARE on a pool worker, solving inline is the safe degradation.
  parallel::ThreadPool* pool = options_.pool;
  if (pool == nullptr || pool->in_worker_thread()) return solve_now();
  const parallel::ThreadPool::TaskGroup group =
      shard_groups_[static_cast<std::size_t>(key.lo) % shard_groups_.size()];
  std::future<std::vector<mec::Placement>> future =
      pool->submit_to(group, std::move(solve_now));
  return future.get();
}

SolveService::Stats SolveService::stats() const {
  Stats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.solved = solved_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.cache = cache_.stats();
  out.cache_hits = out.cache.hits;
  out.coalesced = out.cache.coalesced;
  return out;
}

}  // namespace mecoff::serve
