#include "serve/solve_service.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <utility>

#include "common/stopwatch.hpp"
#include "obs/obs.hpp"
#include "obs/request_id.hpp"

namespace mecoff::serve {

namespace {

/// Digest of everything in the solver configuration that can change a
/// placement. Folded in front of every request fingerprint so services
/// with different solver settings never share cache entries. The
/// deadline is excluded on purpose: it is a budget, not an input, and
/// degraded results are never published (see run_cold_solve).
Fingerprint fingerprint_solver_config(const SolveServiceOptions& service) {
  const mec::PipelineOptions& options = service.solver;
  FingerprintBuilder fp;
  fp.add_u64(0xC0);  // config section tag
  fp.add_double(options.propagation.coupling_threshold);
  fp.add_double(options.propagation.min_update_rate);
  fp.add_u64(options.propagation.max_rounds);
  fp.add_u64(static_cast<std::uint64_t>(options.propagation.policy));
  fp.add_u64(static_cast<std::uint64_t>(options.backend));
  fp.add_u64(static_cast<std::uint64_t>(options.spectral.fiedler.backend));
  fp.add_double(options.spectral.fiedler.tolerance);
  fp.add_u64(options.spectral.fiedler.seed);
  fp.add_u64(options.spectral.fiedler.max_subspace);
  fp.add_u64(options.spectral.fiedler.max_iterations);
  // The SpMV summation order and the warm restart size can both move a
  // placement (different rounding, different local optimum), so they
  // separate keys; collect_fiedler_vectors is artifact retention only
  // and stays out.
  fp.add_u64(
      static_cast<std::uint64_t>(options.spectral.fiedler.spmv_kernel));
  fp.add_u64(options.spectral.fiedler.warm_subspace);
  fp.add_u64(static_cast<std::uint64_t>(options.spectral.split));
  fp.add_u64(static_cast<std::uint64_t>(options.maxflow.strategy));
  fp.add_u64(options.maxflow.num_pairs);
  fp.add_u64(options.maxflow.seed);
  fp.add_u64(options.kl.max_passes);
  fp.add_bool(options.kl.exact_pair_selection);
  fp.add_u64(options.kl.candidate_limit);
  fp.add_u64(options.kl.seed);
  fp.add_u64(options.greedy.max_moves);
  fp.add_double(options.greedy.energy_weight);
  fp.add_double(options.greedy.time_weight);
  fp.add_bool(options.greedy.enable_group_moves);
  fp.add_bool(options.anchor_initial_parts);
  // Warm re-solve may publish a different (never worse) local optimum
  // for the same request, so the mode is part of the configuration.
  fp.add_bool(service.warm_resolve);
  return fp.digest();
}

/// The shed fallback: everything on the device. Valid for any request
/// (pinned nodes are local by definition) and costs nothing to build —
/// the serving twin of the solver's terminal all-remote fallback.
std::vector<mec::Placement> all_local_placement(std::size_t num_nodes) {
  return std::vector<mec::Placement>(num_nodes, mec::Placement::kLocal);
}

}  // namespace

SolveService::SolveService(SolveServiceOptions options)
    : options_(std::move(options)),
      config_seed_(fingerprint_solver_config(options_)),
      cache_(options_.cache),
      admission_limit_(options_.max_in_flight) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.hedge_fraction <= 0.0 || options_.hedge_fraction > 1.0)
    options_.hedge_fraction = 0.5;
  if (options_.pool != nullptr) {
    shard_groups_.reserve(options_.shards);
    for (std::size_t s = 0; s < options_.shards; ++s)
      shard_groups_.push_back(options_.pool->make_group());
  }
}

SolveResponse SolveService::degrade_response(const SolveRequest& request,
                                             const Fingerprint& key,
                                             SolveSource source) const {
  SolveResponse response;
  response.key = key;
  response.placement = all_local_placement(request.user.graph.num_nodes());
  response.source = source;
  response.degraded = true;
  return response;
}

Result<SolveResponse> SolveService::solve(const SolveRequest& request) {
  const Stopwatch timer;
  mec::MecSystem system;
  system.params = request.params;
  system.users.push_back(request.user);
  if (!system.valid())
    return Error("invalid solve request (shape or parameter check failed)");

  requests_.fetch_add(1, std::memory_order_relaxed);
  MECOFF_COUNTER_ADD("serve.solve.requests", 1);
  // The injector's clock is the request sequence: every request that
  // reaches admission ticks it, shed and drained ones included. Its
  // sequence number doubles as the assigned correlation id, so ids
  // match the injector's "req <seq>" trace lines and replay exactly.
  std::uint64_t request_id = request.request_id;
  if (options_.injector != nullptr) {
    const std::uint64_t seq = options_.injector->begin_request();
    if (request_id == 0) request_id = seq;
  }
  if (request_id == 0)
    request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;

  FingerprintBuilder keyed(config_seed_);
  // Continue the config digest with the request content: same app +
  // params + config ⇒ same key.
  const Fingerprint content = fingerprint_request(request.user, request.params);
  keyed.add_u64(content.hi);
  keyed.add_u64(content.lo);
  const Fingerprint key = keyed.digest();

  // Resolve the budget once; it flows through every stage below.
  const double budget = request.deadline_seconds >= 0.0
                            ? request.deadline_seconds
                            : options_.default_deadline_seconds;

  // Drain mode: answer immediately, touch nothing shared. In-flight
  // requests keep running; nothing new starts.
  if (draining()) {
    drained_.fetch_add(1, std::memory_order_relaxed);
    MECOFF_COUNTER_ADD("serve.solve.drained", 1);
    SolveResponse response = degrade_response(request, key, SolveSource::kShed);
    finish(response, request_id, timer.elapsed_seconds(),
           /*was_admitted=*/false);
    return response;
  }

  // Admission control BEFORE touching the cache: a shed request must
  // cost O(1), that is the point of shedding. Brownout first (it reads
  // the pre-increment occupancy), then the legacy hard cap.
  const std::size_t limit = admission_limit_.load(std::memory_order_relaxed);
  const std::size_t occupancy = in_flight_.load(std::memory_order_relaxed);
  if (options_.brownout.enabled && brownout_shed_decision(occupancy)) {
    brownout_shed_.fetch_add(1, std::memory_order_relaxed);
    MECOFF_COUNTER_ADD("serve.solve.brownout_shed", 1);
    SolveResponse response = degrade_response(request, key, SolveSource::kShed);
    finish(response, request_id, timer.elapsed_seconds(),
           /*was_admitted=*/false);
    return response;
  }
  const std::size_t admitted =
      in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (admitted > limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    MECOFF_COUNTER_ADD("serve.solve.shed", 1);
    SolveResponse response = degrade_response(request, key, SolveSource::kShed);
    finish(response, request_id, timer.elapsed_seconds(),
           /*was_admitted=*/false);
    return response;
  }

  // A rider spends at most hedge_fraction of its budget parked behind
  // an in-flight owner; negative = wait as long as it takes.
  double wait_budget = -1.0;
  if (budget >= 0.0) {
    wait_budget = std::max(
        0.0, budget * options_.hedge_fraction - timer.elapsed_seconds());
  }

  SolveResponse response;
  response.key = key;
  // Near-miss machinery only runs when warm re-solve is on: the cold
  // configuration takes the exact acquire() path the seed had.
  SchemeCache::WarmHint hint;
  Fingerprint topo_key;
  if (options_.warm_resolve) topo_key = fingerprint_topology(request.user);
  SchemeCache::Lookup lookup =
      options_.warm_resolve
          ? cache_.acquire(key, wait_budget, topo_key, &hint, request_id)
          : cache_.acquire(key, wait_budget, Fingerprint{}, nullptr,
                           request_id);
  switch (lookup.outcome) {
    case SchemeCache::Outcome::kHit:
      response.placement = std::move(lookup.placement);
      response.source = SolveSource::kCacheHit;
      response.served_by_request_id = lookup.owner_request_id;
      MECOFF_COUNTER_ADD("serve.solve.cache_hits", 1);
      break;
    case SchemeCache::Outcome::kCoalesced:
      response.placement = std::move(lookup.placement);
      response.source = SolveSource::kCoalesced;
      response.served_by_request_id = lookup.owner_request_id;
      MECOFF_COUNTER_ADD("serve.solve.coalesced", 1);
      break;
    case SchemeCache::Outcome::kTimeout: {
      // The owner blew this rider's wait budget: hedge a duplicate
      // solve on ANOTHER shard (offset 1 rotates past the owner's).
      // The rider holds no cache ownership — no publish, no abandon;
      // the stalled owner still completes its own protocol.
      const double remaining =
          budget >= 0.0 ? budget - timer.elapsed_seconds() : -1.0;
      if (budget >= 0.0 && remaining <= 0.0) {
        deadline_degraded_.fetch_add(1, std::memory_order_relaxed);
        MECOFF_COUNTER_ADD("serve.solve.deadline_degraded", 1);
        response = degrade_response(request, key, SolveSource::kDeadlineDegraded);
        break;
      }
      bool degraded = false;
      bool no_shard_alive = false;
      response.placement = run_cold_solve(request, key, remaining,
                                          /*shard_offset=*/1, request_id,
                                          degraded, no_shard_alive);
      if (no_shard_alive) {
        deadline_degraded_.fetch_add(1, std::memory_order_relaxed);
        MECOFF_COUNTER_ADD("serve.solve.deadline_degraded", 1);
        response = degrade_response(request, key, SolveSource::kDeadlineDegraded);
        break;
      }
      solved_.fetch_add(1, std::memory_order_relaxed);
      hedged_.fetch_add(1, std::memory_order_relaxed);
      MECOFF_COUNTER_ADD("serve.solve.hedged", 1);
      response.source = SolveSource::kHedged;
      response.degraded = degraded;
      if (degraded) {
        degraded_.fetch_add(1, std::memory_order_relaxed);
        MECOFF_COUNTER_ADD("serve.solve.degraded", 1);
      }
      break;
    }
    case SchemeCache::Outcome::kMiss: {
      MECOFF_COUNTER_ADD("serve.solve.cache_misses", 1);
      const double remaining =
          budget >= 0.0 ? budget - timer.elapsed_seconds() : -1.0;
      if (budget >= 0.0 && remaining <= 0.0) {
        // Budget spent before the solve could start. We still OWN the
        // cache entry — release it before degrading.
        cache_.abandon(key);
        deadline_degraded_.fetch_add(1, std::memory_order_relaxed);
        MECOFF_COUNTER_ADD("serve.solve.deadline_degraded", 1);
        response = degrade_response(request, key, SolveSource::kDeadlineDegraded);
        break;
      }
      bool degraded = false;
      bool no_shard_alive = false;
      const bool warm_armed =
          options_.warm_resolve && !hint.placement.empty();
      std::vector<linalg::Vec> artifacts;
      std::size_t warm_rejects = 0;
      try {
        response.placement = run_cold_solve(
            request, key, remaining,
            /*shard_offset=*/0, request_id, degraded, no_shard_alive,
            warm_armed ? &hint : nullptr,
            options_.warm_resolve ? &artifacts : nullptr, &warm_rejects);
      } catch (...) {
        // Never strand riders: hand the solve to one of them (or clear
        // the entry) before propagating.
        cache_.abandon(key);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        throw;
      }
      if (no_shard_alive) {
        cache_.abandon(key);
        deadline_degraded_.fetch_add(1, std::memory_order_relaxed);
        MECOFF_COUNTER_ADD("serve.solve.deadline_degraded", 1);
        response = degrade_response(request, key, SolveSource::kDeadlineDegraded);
        break;
      }
      solved_.fetch_add(1, std::memory_order_relaxed);
      response.source = SolveSource::kSolved;
      response.degraded = degraded;
      if (options_.warm_resolve) {
        if (warm_armed) {
          warm_hits_.fetch_add(1, std::memory_order_relaxed);
          MECOFF_COUNTER_ADD("serve.solve.warm_hits", 1);
        } else {
          warm_misses_.fetch_add(1, std::memory_order_relaxed);
          MECOFF_COUNTER_ADD("serve.solve.warm_misses", 1);
        }
        if (warm_rejects > 0) {
          warm_vector_rejects_.fetch_add(warm_rejects,
                                         std::memory_order_relaxed);
          MECOFF_COUNTER_ADD("serve.solve.warm_vector_rejects",
                             warm_rejects);
        }
      }
      const bool publish_stolen = !degraded && options_.injector != nullptr &&
                                  options_.injector->steal_publish();
      if (degraded) {
        // Serve it, count it, but never cache it: a deadline-truncated
        // scheme must not outlive the overload that produced it.
        degraded_.fetch_add(1, std::memory_order_relaxed);
        MECOFF_COUNTER_ADD("serve.solve.degraded", 1);
        cache_.abandon(key);
      } else if (publish_stolen) {
        // Injected "result lost on the way back": the requester still
        // gets its full-quality placement, but the cache never sees it
        // — one rider is promoted and re-solves.
        cache_.abandon(key);
      } else if (options_.warm_resolve) {
        // Full-quality results carry their Fiedler vectors into the
        // cache so later near-miss requests can warm-start from them.
        cache_.publish(key, response.placement, topo_key,
                       std::move(artifacts));
      } else {
        cache_.publish(key, response.placement);
      }
      break;
    }
  }

  finish(response, request_id, timer.elapsed_seconds(),
         /*was_admitted=*/true);
  return response;
}

std::vector<mec::Placement> SolveService::run_cold_solve(
    const SolveRequest& request, const Fingerprint& key,
    double remaining_budget_seconds, std::size_t shard_offset,
    std::uint64_t request_id, bool& degraded, bool& no_shard_alive,
    const SchemeCache::WarmHint* warm_hint,
    std::vector<linalg::Vec>* artifacts_out,
    std::size_t* warm_rejects_out) {
  // Shard selection honors injected kills: start from the fingerprint
  // shard (rotated by shard_offset for hedges) and take the first
  // alive one. A kill stops NEW dispatches; solves already running on
  // a killed shard complete — the same drain semantics real worker
  // loss has.
  const std::size_t shards = options_.shards;
  std::size_t shard = (static_cast<std::size_t>(key.lo) + shard_offset) % shards;
  if (options_.injector != nullptr && options_.injector->shard_killed(shard)) {
    std::size_t probes = 1;
    while (probes < shards &&
           options_.injector->shard_killed((shard + probes) % shards))
      ++probes;
    if (probes == shards) {
      no_shard_alive = true;
      return all_local_placement(request.user.graph.num_nodes());
    }
    shard = (shard + probes) % shards;
    shard_failovers_.fetch_add(1, std::memory_order_relaxed);
    MECOFF_COUNTER_ADD("serve.solve.shard_failovers", 1);
  }

  // Injected per-shard latency, bounded by the remaining budget so a
  // scripted stall can slow a request but never outlast its deadline
  // by more than the sleep quantum.
  double injected = options_.injector != nullptr
                        ? options_.injector->injected_latency_seconds(shard)
                        : 0.0;
  if (remaining_budget_seconds >= 0.0)
    injected = std::min(injected, remaining_budget_seconds);

  auto solve_now = [this, &request, &degraded, remaining_budget_seconds,
                    injected, request_id, warm_hint, artifacts_out,
                    warm_rejects_out] {
    // The scope rides whichever thread executes the solve (pool worker
    // or caller), so the flight recorder and the mec.solve.latency
    // exemplar see this request's id. The injected stall stays inside
    // it: the slowed request is the one the exemplar should name.
    const obs::RequestIdScope id_scope(request_id);
    if (injected > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(injected));
    }
    mec::PipelineOptions solver = options_.solver;
    solver.pool = options_.pool;
    solver.identical_user_period = 0;  // superseded by the cache
    // Retain artifacts whenever the caller wants to republish them
    // (warm mode), hint or no hint — every full-quality solve becomes
    // a potential donor.
    solver.collect_fiedler_vectors = artifacts_out != nullptr;
    // Tighten the solver deadline to the remaining budget (minus the
    // injected stall we just paid). The solver's own fallback chain
    // turns an expired budget into a degraded-but-valid scheme.
    if (remaining_budget_seconds >= 0.0) {
      const double solver_budget =
          std::max(0.0, remaining_budget_seconds - injected);
      if (solver.deadline.unlimited() ||
          solver_budget < solver.deadline.seconds)
        solver.deadline.seconds = solver_budget;
    }
    mec::PipelineOffloader offloader(solver);
    mec::MecSystem system;
    system.params = request.params;
    system.users.push_back(request.user);
    mec::OffloadingScheme scheme;
    if (warm_hint != nullptr) {
      mec::PipelineOffloader::WarmStart warm;
      warm.scheme.placement.push_back(warm_hint->placement);
      warm.fiedler_vectors.push_back(warm_hint->fiedler_vectors);
      scheme = offloader.solve(system, &warm);
      if (warm_rejects_out != nullptr)
        *warm_rejects_out = offloader.last_stats().warm_fiedler_rejected;
    } else {
      scheme = offloader.solve(system);
    }
    const auto& stats = offloader.last_stats();
    degraded = stats.degraded() || stats.deadline_expired;
    if (artifacts_out != nullptr &&
        !offloader.last_artifacts().fiedler_vectors.empty())
      *artifacts_out = offloader.last_artifacts().fiedler_vectors.front();
    return std::move(scheme.placement.front());
  };

  // Shard cold solves across the pool's task groups by fingerprint.
  // The calling thread is external (threading contract), so a plain
  // future wait is correct — and if the contract is violated and we
  // ARE on a pool worker, solving inline is the safe degradation.
  parallel::ThreadPool* pool = options_.pool;
  if (pool == nullptr || pool->in_worker_thread()) return solve_now();
  const parallel::ThreadPool::TaskGroup group = shard_groups_[shard];
  std::future<std::vector<mec::Placement>> future =
      pool->submit_to(group, std::move(solve_now));
  return future.get();
}

bool SolveService::brownout_shed_decision(std::size_t in_flight_now) {
  const BrownoutOptions& cfg = options_.brownout;
  const MutexLock lock(brownout_mutex_);
  // Tier from the rising in-flight thresholds, bumped one step when the
  // sliding p99 is over the configured ceiling.
  int tier = 0;
  if (in_flight_now >= cfg.tier1_in_flight) tier = 1;
  if (in_flight_now >= cfg.tier2_in_flight) tier = 2;
  if (in_flight_now >= cfg.tier3_in_flight) tier = 3;
  if (cfg.p99_bump_seconds > 0.0 && p99_seconds_ > cfg.p99_bump_seconds)
    tier = std::min(3, tier + 1);

  if (tier > brownout_tier_) {
    brownout_tier_ = tier;
    MECOFF_GAUGE_SET("serve.solve.brownout_tier",
                     static_cast<double>(brownout_tier_));
  } else if (tier < brownout_tier_) {
    // Hysteresis: leave the current tier only once occupancy has
    // fallen well below its entry threshold, so the controller does
    // not flap at the boundary under steady load.
    const std::size_t enter = brownout_tier_ == 1   ? cfg.tier1_in_flight
                              : brownout_tier_ == 2 ? cfg.tier2_in_flight
                                                    : cfg.tier3_in_flight;
    const double exit_below =
        static_cast<double>(enter) * cfg.exit_fraction;
    if (static_cast<double>(in_flight_now) < exit_below) {
      brownout_tier_ = tier;
      MECOFF_GAUGE_SET("serve.solve.brownout_tier",
                       static_cast<double>(brownout_tier_));
    }
  }

  if (brownout_tier_ == 0) return false;
  if (brownout_tier_ >= 3) return true;
  // Deterministic fractional shed by admission counter: tier 1 sheds
  // every 4th candidate, tier 2 every 2nd. No RNG — replays match.
  const std::uint64_t candidate = brownout_candidates_++;
  const std::uint64_t period = brownout_tier_ == 1 ? 4 : 2;
  return candidate % period == 0;
}

void SolveService::finish(SolveResponse& response, std::uint64_t request_id,
                          double latency_seconds, bool was_admitted) {
  response.request_id = request_id;
  // Hit/coalesced responses already carry the owner's id; every other
  // source (solved, hedged, the degrade fallbacks) was produced by this
  // very request.
  if (response.source != SolveSource::kCacheHit &&
      response.source != SolveSource::kCoalesced)
    response.served_by_request_id = request_id;
  if (was_admitted) {
    const std::size_t remaining =
        in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    MECOFF_GAUGE_SET("serve.solve.in_flight", static_cast<double>(remaining));
  }
  response.latency_seconds = latency_seconds;
  MECOFF_QUANTILES_RECORD_ID("serve.solve.latency", latency_seconds,
                             request_id);
  {
    // Feed the brownout controller's own window (registry-independent,
    // works obs-off) and refresh the cached p99 every 32 completions —
    // the exact-sort query is too dear for every request.
    const MutexLock lock(brownout_mutex_);
    latency_window_.record(latency_seconds);
    if (++completions_ % 32 == 0) p99_seconds_ = latency_window_.quantile(0.99);
  }
}

bool SolveService::await_idle(double timeout_seconds) const {
  const Stopwatch timer;
  for (;;) {
    if (in_flight_.load(std::memory_order_acquire) == 0) return true;
    if (timer.elapsed_seconds() > timeout_seconds) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

SolveService::Stats SolveService::stats() const {
  Stats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.solved = solved_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.hedged = hedged_.load(std::memory_order_relaxed);
  out.deadline_degraded = deadline_degraded_.load(std::memory_order_relaxed);
  out.drained = drained_.load(std::memory_order_relaxed);
  out.brownout_shed = brownout_shed_.load(std::memory_order_relaxed);
  out.shard_failovers = shard_failovers_.load(std::memory_order_relaxed);
  out.warm_hits = warm_hits_.load(std::memory_order_relaxed);
  out.warm_misses = warm_misses_.load(std::memory_order_relaxed);
  out.warm_vector_rejects =
      warm_vector_rejects_.load(std::memory_order_relaxed);
  {
    const MutexLock lock(brownout_mutex_);
    out.brownout_tier = brownout_tier_;
  }
  out.cache = cache_.stats();
  out.cache_hits = out.cache.hits;
  out.coalesced = out.cache.coalesced;
  return out;
}

}  // namespace mecoff::serve
