#include "mincut/edmonds_karp.hpp"

#include <limits>
#include <queue>

#include "common/contracts.hpp"

namespace mecoff::mincut {

using graph::NodeId;

MaxFlowResult edmonds_karp(FlowNetwork& net, NodeId s, NodeId t) {
  MECOFF_EXPECTS(s < net.num_nodes() && t < net.num_nodes() && s != t);
  MaxFlowResult result;

  // parent_arc[v] = (node u, index into net.arcs(u)) of the BFS tree arc
  // entering v on the current augmenting path.
  std::vector<std::pair<NodeId, std::size_t>> parent_arc(net.num_nodes());
  std::vector<std::uint8_t> visited(net.num_nodes(), 0);

  while (true) {
    std::fill(visited.begin(), visited.end(), 0);
    std::queue<NodeId> frontier;
    visited[s] = 1;
    frontier.push(s);
    bool found = false;
    while (!frontier.empty() && !found) {
      const NodeId u = frontier.front();
      frontier.pop();
      const auto& arcs = net.arcs(u);
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        const Arc& arc = arcs[i];
        if (arc.capacity <= 1e-12 || visited[arc.to]) continue;
        visited[arc.to] = 1;
        parent_arc[arc.to] = {u, i};
        if (arc.to == t) {
          found = true;
          break;
        }
        frontier.push(arc.to);
      }
    }
    if (!found) break;

    // Bottleneck along the path, then augment.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (NodeId v = t; v != s;) {
      const auto [u, idx] = parent_arc[v];
      bottleneck = std::min(bottleneck, net.arcs(u)[idx].capacity);
      v = u;
    }
    for (NodeId v = t; v != s;) {
      const auto [u, idx] = parent_arc[v];
      net.push(u, idx, bottleneck);
      v = u;
    }
    result.flow_value += bottleneck;
    ++result.augmenting_paths;
  }

  result.source_side = net.reachable_from(s);
  return result;
}

graph::Bipartition min_st_cut_edmonds_karp(const graph::WeightedGraph& g,
                                           NodeId s, NodeId t) {
  FlowNetwork net = FlowNetwork::from_graph(g);
  const MaxFlowResult flow = edmonds_karp(net, s, t);
  graph::Bipartition out;
  out.side.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    out.side[v] = flow.source_side[v] ? 0 : 1;
  out.cut_weight = graph::cut_weight(g, out.side);
  return out;
}

}  // namespace mecoff::mincut
