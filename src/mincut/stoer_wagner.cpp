#include "mincut/stoer_wagner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "graph/components.hpp"

namespace mecoff::mincut {

using graph::Bipartition;
using graph::NodeId;
using graph::WeightedGraph;

Bipartition stoer_wagner(const WeightedGraph& g) {
  const std::size_t n = g.num_nodes();
  Bipartition out;
  out.side.assign(n, 0);
  if (n < 2) return out;

  // Disconnected graph → zero cut along component boundaries.
  const graph::ComponentLabels comps = graph::connected_components(g);
  if (comps.count > 1) {
    for (NodeId v = 0; v < n; ++v)
      out.side[v] = comps.component_of[v] == 0 ? 0 : 1;
    out.cut_weight = 0.0;
    return out;
  }

  // Dense adjacency working copy; merged[v] lists the original nodes
  // contracted into v.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (const graph::Edge& e : g.edges()) {
    w[e.u][e.v] += e.weight;
    w[e.v][e.u] += e.weight;
  }
  std::vector<std::vector<NodeId>> merged(n);
  for (NodeId v = 0; v < n; ++v) merged[v] = {v};
  std::vector<bool> gone(n, false);

  double best_cut = std::numeric_limits<double>::infinity();
  std::vector<NodeId> best_side_nodes;

  for (std::size_t phase = 0; phase + 1 < n; ++phase) {
    // Maximum-adjacency ordering of the surviving vertices.
    std::vector<double> weight_to_a(n, 0.0);
    std::vector<bool> added(n, false);
    NodeId prev = graph::kInvalidNode;
    NodeId last = graph::kInvalidNode;
    const std::size_t alive =
        n - static_cast<std::size_t>(
                std::count(gone.begin(), gone.end(), true));
    for (std::size_t step = 0; step < alive; ++step) {
      NodeId pick = graph::kInvalidNode;
      for (NodeId v = 0; v < n; ++v) {
        if (gone[v] || added[v]) continue;
        if (pick == graph::kInvalidNode ||
            weight_to_a[v] > weight_to_a[pick])
          pick = v;
      }
      MECOFF_ENSURES(pick != graph::kInvalidNode);
      added[pick] = true;
      prev = last;
      last = pick;
      for (NodeId v = 0; v < n; ++v)
        if (!gone[v] && !added[v]) weight_to_a[v] += w[pick][v];
    }

    // Cut-of-the-phase: `last` alone vs the rest.
    const double phase_cut = weight_to_a[last];
    if (phase_cut < best_cut) {
      best_cut = phase_cut;
      best_side_nodes = merged[last];
    }

    // Contract last into prev.
    MECOFF_ENSURES(prev != graph::kInvalidNode && prev != last);
    for (NodeId v = 0; v < n; ++v) {
      if (gone[v] || v == prev || v == last) continue;
      w[prev][v] += w[last][v];
      w[v][prev] = w[prev][v];
    }
    merged[prev].insert(merged[prev].end(), merged[last].begin(),
                        merged[last].end());
    gone[last] = true;
  }

  for (const NodeId v : best_side_nodes) out.side[v] = 1;
  out.cut_weight = graph::cut_weight(g, out.side);
  // The maintained value and the recomputed value must agree.
  MECOFF_ENSURES(std::abs(out.cut_weight - best_cut) <=
                 1e-6 * (1.0 + best_cut));
  return out;
}

}  // namespace mecoff::mincut
