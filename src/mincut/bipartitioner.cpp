#include "mincut/bipartitioner.hpp"

#include <queue>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "graph/components.hpp"

namespace mecoff::mincut {

using graph::Bipartition;
using graph::NodeId;
using graph::WeightedGraph;

namespace {

/// BFS-farthest node from `s` (max hop distance, smallest id on ties).
NodeId farthest_node(const WeightedGraph& g, NodeId s) {
  std::vector<int> dist(g.num_nodes(), -1);
  std::queue<NodeId> frontier;
  dist[s] = 0;
  frontier.push(s);
  NodeId far = s;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    if (dist[v] > dist[far]) far = v;
    for (const graph::Adjacency& adj : g.neighbors(v)) {
      if (dist[adj.neighbor] < 0) {
        dist[adj.neighbor] = dist[v] + 1;
        frontier.push(adj.neighbor);
      }
    }
  }
  return far;
}

NodeId max_weighted_degree_node(const WeightedGraph& g) {
  NodeId best = 0;
  double best_w = g.weighted_degree(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    const double w = g.weighted_degree(v);
    if (w > best_w) {
      best = v;
      best_w = w;
    }
  }
  return best;
}

}  // namespace

MaxFlowBipartitioner::MaxFlowBipartitioner(MaxFlowCutOptions options)
    : options_(options) {}

Bipartition MaxFlowBipartitioner::bipartition(const WeightedGraph& g) {
  Bipartition out;
  out.side.assign(g.num_nodes(), 0);
  if (g.num_nodes() < 2) return out;

  // Disconnected input: a component boundary is already a zero cut.
  const graph::ComponentLabels comps = graph::connected_components(g);
  if (comps.count > 1) {
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      out.side[v] = comps.component_of[v] == 0 ? 0 : 1;
    out.cut_weight = 0.0;
    return out;
  }

  switch (options_.strategy) {
    case TerminalStrategy::kMaxDegreeFarthest: {
      const NodeId s = max_weighted_degree_node(g);
      NodeId t = farthest_node(g, s);
      if (t == s) t = (s + 1) % static_cast<NodeId>(g.num_nodes());
      return min_st_cut_dinic(g, s, t);
    }
    case TerminalStrategy::kBestOfK: {
      Rng rng(options_.seed);
      Bipartition best;
      bool have = false;
      for (std::size_t i = 0; i < std::max<std::size_t>(1, options_.num_pairs);
           ++i) {
        const NodeId s = static_cast<NodeId>(rng.index(g.num_nodes()));
        NodeId t = static_cast<NodeId>(rng.index(g.num_nodes()));
        if (t == s) t = (s + 1) % static_cast<NodeId>(g.num_nodes());
        Bipartition cut = min_st_cut_dinic(g, s, t);
        if (!have || cut.cut_weight < best.cut_weight) {
          best = std::move(cut);
          have = true;
        }
      }
      return best;
    }
    case TerminalStrategy::kAllTerminalsFromS: {
      const NodeId s = 0;
      Bipartition best;
      bool have = false;
      for (NodeId t = 1; t < g.num_nodes(); ++t) {
        Bipartition cut = min_st_cut_dinic(g, s, t);
        if (!have || cut.cut_weight < best.cut_weight) {
          best = std::move(cut);
          have = true;
        }
      }
      return best;
    }
  }
  throw PreconditionError("unknown terminal strategy");
}

}  // namespace mecoff::mincut
