// Dinic's algorithm: level-graph BFS + blocking-flow DFS. Asymptotically
// faster than Edmonds–Karp (O(V²·E)); provided so the min-cut baseline
// can scale to the 5000-node experiments, and as a cross-check oracle —
// both must compute identical flow values.
#pragma once

#include "graph/partition.hpp"
#include "mincut/edmonds_karp.hpp"  // MaxFlowResult

namespace mecoff::mincut {

/// Max flow s→t via Dinic; network residuals are mutated.
[[nodiscard]] MaxFlowResult dinic(FlowNetwork& net, graph::NodeId s,
                                  graph::NodeId t);

/// Min s–t cut of an undirected graph via Dinic.
[[nodiscard]] graph::Bipartition min_st_cut_dinic(
    const graph::WeightedGraph& g, graph::NodeId s, graph::NodeId t);

}  // namespace mecoff::mincut
