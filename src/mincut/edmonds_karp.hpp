// Edmonds–Karp: Ford–Fulkerson with BFS augmenting paths — the exact
// variant the paper names ("A specialized Ford-Fulkerson algorithm,
// also called as Edmond-Karp algorithm guarantees to find maximum flow
// in limited number of iterations"). O(V·E²).
#pragma once

#include "graph/partition.hpp"
#include "mincut/flow_network.hpp"

namespace mecoff::mincut {

struct MaxFlowResult {
  double flow_value = 0.0;
  std::size_t augmenting_paths = 0;
  /// Source-side indicator of the induced min cut (1 = reachable from s
  /// in the residual network).
  std::vector<std::uint8_t> source_side;
};

/// Max flow (= min s–t cut, by duality) from `s` to `t`. The network is
/// consumed (residual capacities are mutated).
[[nodiscard]] MaxFlowResult edmonds_karp(FlowNetwork& net, graph::NodeId s,
                                         graph::NodeId t);

/// Convenience: min s–t cut of an undirected weighted graph, returned
/// as a Bipartition (side 0 = source side).
[[nodiscard]] graph::Bipartition min_st_cut_edmonds_karp(
    const graph::WeightedGraph& g, graph::NodeId s, graph::NodeId t);

}  // namespace mecoff::mincut
