// The "maximum flow minimum cut" baseline of the paper's evaluation,
// wrapped as a Bipartitioner so it slots into the same offloading
// pipeline ("We change the minimum cut calculation process by the above
// mentioned three algorithms and compare their results").
//
// Max-flow computes an s–t cut, but the offloading problem has no
// natural terminals, so a terminal-selection strategy is part of the
// baseline:
//  * kMaxDegreeFarthest — s = heaviest weighted-degree node, t = a
//    BFS-farthest node from s (one max-flow; the cheap heuristic);
//  * kBestOfK — best cut over k random terminal pairs (default, k = 8);
//  * kAllTerminalsFromS — fix s, try every t (n−1 max-flows; exact
//    global min cut by the standard reduction, used as a test oracle).
#pragma once

#include <cstdint>

#include "graph/partition.hpp"
#include "mincut/dinic.hpp"

namespace mecoff::mincut {

enum class TerminalStrategy {
  kMaxDegreeFarthest,
  kBestOfK,
  kAllTerminalsFromS,
};

struct MaxFlowCutOptions {
  TerminalStrategy strategy = TerminalStrategy::kBestOfK;
  std::size_t num_pairs = 8;  ///< k for kBestOfK
  std::uint64_t seed = 0x7ea1;
};

class MaxFlowBipartitioner final : public graph::Bipartitioner {
 public:
  explicit MaxFlowBipartitioner(MaxFlowCutOptions options = {});

  [[nodiscard]] graph::Bipartition bipartition(
      const graph::WeightedGraph& g) override;

  [[nodiscard]] std::string name() const override { return "maxflow"; }

 private:
  MaxFlowCutOptions options_;
};

}  // namespace mecoff::mincut
