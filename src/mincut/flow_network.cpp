#include "mincut/flow_network.hpp"

#include <queue>

#include "common/contracts.hpp"

namespace mecoff::mincut {

using graph::NodeId;

FlowNetwork::FlowNetwork(std::size_t num_nodes) : arcs_(num_nodes) {}

FlowNetwork FlowNetwork::from_graph(const graph::WeightedGraph& g) {
  FlowNetwork net(g.num_nodes());
  for (const graph::Edge& e : g.edges())
    net.add_undirected_edge(e.u, e.v, e.weight);
  return net;
}

void FlowNetwork::add_arc(NodeId u, NodeId v, double capacity) {
  MECOFF_EXPECTS(u < arcs_.size() && v < arcs_.size() && u != v);
  MECOFF_EXPECTS(capacity >= 0.0);
  arcs_[u].push_back(Arc{v, capacity, arcs_[v].size()});
  arcs_[v].push_back(Arc{u, 0.0, arcs_[u].size() - 1});
}

void FlowNetwork::add_undirected_edge(NodeId u, NodeId v, double capacity) {
  MECOFF_EXPECTS(u < arcs_.size() && v < arcs_.size() && u != v);
  MECOFF_EXPECTS(capacity >= 0.0);
  arcs_[u].push_back(Arc{v, capacity, arcs_[v].size()});
  arcs_[v].push_back(Arc{u, capacity, arcs_[u].size() - 1});
}

void FlowNetwork::push(NodeId u, std::size_t idx, double amount) {
  MECOFF_EXPECTS(u < arcs_.size() && idx < arcs_[u].size());
  Arc& arc = arcs_[u][idx];
  MECOFF_EXPECTS(amount <= arc.capacity + 1e-12);
  arc.capacity -= amount;
  arcs_[arc.to][arc.rev].capacity += amount;
}

std::vector<std::uint8_t> FlowNetwork::reachable_from(NodeId s) const {
  MECOFF_EXPECTS(s < arcs_.size());
  std::vector<std::uint8_t> seen(arcs_.size(), 0);
  std::queue<NodeId> frontier;
  seen[s] = 1;
  frontier.push(s);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (const Arc& arc : arcs_[v]) {
      if (arc.capacity > 1e-12 && !seen[arc.to]) {
        seen[arc.to] = 1;
        frontier.push(arc.to);
      }
    }
  }
  return seen;
}

}  // namespace mecoff::mincut
