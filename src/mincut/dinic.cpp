#include "mincut/dinic.hpp"

#include <limits>
#include <queue>

#include "common/contracts.hpp"

namespace mecoff::mincut {

using graph::NodeId;

namespace {

/// Assign BFS levels in the residual network; true if t is reachable.
bool build_levels(const FlowNetwork& net, NodeId s, NodeId t,
                  std::vector<int>& level) {
  std::fill(level.begin(), level.end(), -1);
  std::queue<NodeId> frontier;
  level[s] = 0;
  frontier.push(s);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Arc& arc : net.arcs(u)) {
      if (arc.capacity > 1e-12 && level[arc.to] < 0) {
        level[arc.to] = level[u] + 1;
        frontier.push(arc.to);
      }
    }
  }
  return level[t] >= 0;
}

/// DFS one augmenting path in the level graph; returns pushed amount.
double push_blocking(FlowNetwork& net, NodeId u, NodeId t, double limit,
                     const std::vector<int>& level,
                     std::vector<std::size_t>& next_arc) {
  if (u == t) return limit;
  for (std::size_t& i = next_arc[u]; i < net.arcs(u).size(); ++i) {
    Arc& arc = net.arcs(u)[i];
    if (arc.capacity <= 1e-12 || level[arc.to] != level[u] + 1) continue;
    const double pushed = push_blocking(
        net, arc.to, t, std::min(limit, arc.capacity), level, next_arc);
    if (pushed > 0.0) {
      net.push(u, i, pushed);
      return pushed;
    }
  }
  return 0.0;
}

}  // namespace

MaxFlowResult dinic(FlowNetwork& net, NodeId s, NodeId t) {
  MECOFF_EXPECTS(s < net.num_nodes() && t < net.num_nodes() && s != t);
  MaxFlowResult result;
  std::vector<int> level(net.num_nodes(), -1);
  std::vector<std::size_t> next_arc(net.num_nodes(), 0);

  while (build_levels(net, s, t, level)) {
    std::fill(next_arc.begin(), next_arc.end(), 0);
    while (true) {
      const double pushed = push_blocking(
          net, s, t, std::numeric_limits<double>::infinity(), level,
          next_arc);
      if (pushed <= 0.0) break;
      result.flow_value += pushed;
      ++result.augmenting_paths;
    }
  }
  result.source_side = net.reachable_from(s);
  return result;
}

graph::Bipartition min_st_cut_dinic(const graph::WeightedGraph& g, NodeId s,
                                    NodeId t) {
  FlowNetwork net = FlowNetwork::from_graph(g);
  const MaxFlowResult flow = dinic(net, s, t);
  graph::Bipartition out;
  out.side.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    out.side[v] = flow.source_side[v] ? 0 : 1;
  out.cut_weight = graph::cut_weight(g, out.side);
  return out;
}

}  // namespace mecoff::mincut
