// Stoer–Wagner global minimum cut. The max-flow baseline needs a cut
// with no fixed terminals; Stoer–Wagner finds the global minimum in
// O(V³) (dense implementation) / O(V·E + V² log V), and doubles as the
// exact oracle the spectral cut is validated against in tests and the
// cut-quality ablation. Requires a connected graph for a meaningful
// answer (a disconnected graph's global min cut is trivially 0 and is
// returned as such).
#pragma once

#include "graph/partition.hpp"
#include "graph/weighted_graph.hpp"

namespace mecoff::mincut {

/// Global minimum cut; both sides non-empty whenever the graph has at
/// least 2 nodes.
[[nodiscard]] graph::Bipartition stoer_wagner(const graph::WeightedGraph& g);

}  // namespace mecoff::mincut
