// Residual flow network shared by the Ford–Fulkerson-family solvers.
// An undirected edge of capacity c becomes a pair of arcs each with
// capacity c (standard reduction for undirected min-cut); each arc
// stores the index of its reverse so residual updates are O(1).
#pragma once

#include <vector>

#include "graph/weighted_graph.hpp"

namespace mecoff::mincut {

struct Arc {
  graph::NodeId to;
  double capacity;   ///< remaining residual capacity
  std::size_t rev;   ///< index of the reverse arc in arcs_[to]
};

class FlowNetwork {
 public:
  explicit FlowNetwork(std::size_t num_nodes);

  /// Build the residual network of an undirected weighted graph.
  static FlowNetwork from_graph(const graph::WeightedGraph& g);

  [[nodiscard]] std::size_t num_nodes() const { return arcs_.size(); }

  /// Add a directed arc u→v with `capacity` plus its zero-capacity
  /// reverse. For an undirected edge call add_undirected_edge instead.
  void add_arc(graph::NodeId u, graph::NodeId v, double capacity);

  /// Add the two-arc gadget for an undirected edge (both directions get
  /// full capacity; they serve as each other's residual arcs).
  void add_undirected_edge(graph::NodeId u, graph::NodeId v, double capacity);

  [[nodiscard]] std::vector<Arc>& arcs(graph::NodeId v) { return arcs_[v]; }
  [[nodiscard]] const std::vector<Arc>& arcs(graph::NodeId v) const {
    return arcs_[v];
  }

  /// Push `amount` through arc `arcs_[u][idx]` (and pull it back on the
  /// reverse arc).
  void push(graph::NodeId u, std::size_t idx, double amount);

  /// Nodes reachable from `s` through arcs with positive residual —
  /// the source side of the min cut once a max flow is in place.
  [[nodiscard]] std::vector<std::uint8_t> reachable_from(
      graph::NodeId s) const;

 private:
  std::vector<std::vector<Arc>> arcs_;
};

}  // namespace mecoff::mincut
