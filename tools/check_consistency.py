#!/usr/bin/env python3
"""Cross-artifact consistency checker for the mecoff tree (stdlib only).

Two passes, both bidirectional:

  metrics  Every metric key recorded through the MECOFF_* macros in
           `src/` must appear in the canonical instrument table in
           docs/observability.md (between the `<!-- metrics-table:
           begin/end -->` markers) with the right kind -- and every
           documented key must still exist in the source. Catches
           silently renamed/retired instruments and doc rot in both
           directions.

  labels   Every ctest label declared in a CMakeLists.txt (`LABELS
           foo`) must have a CI workflow step that runs `ctest -L foo`
           -- and every `-L foo` in a workflow must reference a label
           that still exists. A label without a CI step is a test
           suite that can rot unnoticed; a stale `-L` is a CI step
           that silently runs zero tests.

Rules emitted:
  metric-undocumented   key recorded in src/ but absent from the table
  metric-unknown        key documented but never recorded in src/
  metric-kind-mismatch  documented kind != recorded kind
  label-missing-ci-step ctest label with no `ctest -L <label>` CI step
  label-unknown         CI `-L <label>` with no such ctest label

Usage:
  check_consistency.py [--json] [--root DIR]

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
JSON schema: mecoff.consistency.v1.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint_mecoff import strip_comments  # noqa: E402  (same-dir tool import)

SCHEMA = "mecoff.consistency.v1"

MACRO_KINDS = {
    "MECOFF_COUNTER_ADD": "counter",
    "MECOFF_GAUGE_ADD": "gauge",
    "MECOFF_GAUGE_SET": "gauge",
    "MECOFF_HISTOGRAM_RECORD": "histogram",
    "MECOFF_QUANTILES_RECORD": "quantiles",
    "MECOFF_QUANTILES_RECORD_ID": "quantiles",
}
MACRO_PATTERN = re.compile(
    r"\b(" + "|".join(MACRO_KINDS) + r")\s*\(\s*\"([^\"]+)\"")
TABLE_BEGIN = "<!-- metrics-table:begin -->"
TABLE_END = "<!-- metrics-table:end -->"
TABLE_ROW_PATTERN = re.compile(
    r"^\|\s*`([^`]+)`\s*\|\s*(\w+)\s*\|")
LABEL_PATTERN = re.compile(r"\bLABELS\s+\"?([A-Za-z_][\w-]*)\"?")
CI_STEP_PATTERN = re.compile(r"\bctest\b[^\n]*?-L\s+([A-Za-z_][\w-]*)")


def iter_files(base, extensions):
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(extensions):
                yield os.path.join(dirpath, name)


def read(path):
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return fh.read()


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Checker:
    def __init__(self, root):
        self.root = root
        self.findings = []
        self.recorded = {}    # key -> {"kind", "file", "line"}
        self.documented = {}  # key -> {"kind", "line"}
        self.labels = {}      # label -> (rel, line) of first declaration
        self.ci_steps = {}    # label -> (rel, line) of first `-L` use

    def finding(self, rule, rel, line, message):
        self.findings.append(
            {"rule": rule, "file": rel, "line": line, "message": message})

    def rel(self, path):
        return os.path.relpath(path, self.root)

    # -- metrics pass --------------------------------------------------

    def harvest_recorded(self):
        src = os.path.join(self.root, "src")
        if not os.path.isdir(src):
            raise SystemExit(f"check_consistency: no src/ under {self.root}")
        for path in iter_files(src, (".cpp", ".cc", ".hpp", ".h")):
            code = strip_comments(read(path), True)
            for match in MACRO_PATTERN.finditer(code):
                line_start = code.rfind("\n", 0, match.start()) + 1
                if code[line_start:match.start()].lstrip().startswith("#"):
                    continue  # the macro definitions themselves
                key = match.group(2)
                kind = MACRO_KINDS[match.group(1)]
                entry = self.recorded.get(key)
                if entry is None:
                    self.recorded[key] = {
                        "kind": kind, "file": self.rel(path),
                        "line": line_of(code, match.start())}
                elif entry["kind"] != kind:
                    self.finding(
                        "metric-kind-mismatch", self.rel(path),
                        line_of(code, match.start()),
                        f"'{key}' recorded as {kind} here but as "
                        f"{entry['kind']} at {entry['file']}:"
                        f"{entry['line']} -- a name must map to one "
                        "instrument kind")

    def harvest_documented(self):
        doc_path = os.path.join(self.root, "docs", "observability.md")
        doc_rel = self.rel(doc_path)
        if not os.path.isfile(doc_path):
            self.finding("metric-undocumented", doc_rel, 0,
                         "docs/observability.md is missing")
            return
        text = read(doc_path)
        begin = text.find(TABLE_BEGIN)
        end = text.find(TABLE_END)
        if begin < 0 or end < 0 or end < begin:
            self.finding(
                "metric-undocumented", doc_rel, 0,
                f"no `{TABLE_BEGIN}` .. `{TABLE_END}` table in "
                "docs/observability.md")
            return
        base_line = line_of(text, begin)
        for offset, row in enumerate(text[begin:end].splitlines()):
            match = TABLE_ROW_PATTERN.match(row.strip())
            if not match:
                continue
            key, kind = match.group(1), match.group(2).lower()
            if key in self.documented:
                self.finding(
                    "metric-unknown", doc_rel, base_line + offset,
                    f"'{key}' documented twice")
                continue
            self.documented[key] = {"kind": kind, "line": base_line + offset}
        self.doc_rel = doc_rel

    def check_metrics(self):
        self.harvest_recorded()
        self.harvest_documented()
        for key, entry in sorted(self.recorded.items()):
            doc = self.documented.get(key)
            if doc is None:
                self.finding(
                    "metric-undocumented", entry["file"], entry["line"],
                    f"'{key}' ({entry['kind']}) is recorded here but "
                    "missing from the docs/observability.md instrument "
                    "table")
            elif doc["kind"] != entry["kind"]:
                self.finding(
                    "metric-kind-mismatch", self.doc_rel, doc["line"],
                    f"'{key}' documented as {doc['kind']} but recorded "
                    f"as {entry['kind']} at {entry['file']}:"
                    f"{entry['line']}")
        for key, doc in sorted(self.documented.items()):
            if key not in self.recorded:
                self.finding(
                    "metric-unknown", self.doc_rel, doc["line"],
                    f"'{key}' is documented but no MECOFF_* macro in "
                    "src/ records it -- retired instrument?")

    # -- labels pass ---------------------------------------------------

    def check_labels(self):
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("build", ".git", "fixtures")
                and not d.startswith("build"))
            for name in sorted(filenames):
                if name != "CMakeLists.txt":
                    continue
                path = os.path.join(dirpath, name)
                text = read(path)
                for match in LABEL_PATTERN.finditer(text):
                    label = match.group(1)
                    self.labels.setdefault(
                        label, (self.rel(path), line_of(text, match.start())))

        workflows = os.path.join(self.root, ".github", "workflows")
        if os.path.isdir(workflows):
            for path in iter_files(workflows, (".yml", ".yaml")):
                text = read(path)
                for match in CI_STEP_PATTERN.finditer(text):
                    label = match.group(1)
                    self.ci_steps.setdefault(
                        label, (self.rel(path), line_of(text, match.start())))

        for label, (rel, line) in sorted(self.labels.items()):
            if label not in self.ci_steps:
                self.finding(
                    "label-missing-ci-step", rel, line,
                    f"ctest label '{label}' has no `ctest -L {label}` "
                    "step in any .github/workflows/*.yml -- the suite "
                    "can rot without CI noticing")
        for label, (rel, line) in sorted(self.ci_steps.items()):
            if label not in self.labels:
                self.finding(
                    "label-unknown", rel, line,
                    f"CI runs `ctest -L {label}` but no CMakeLists.txt "
                    "declares that label -- the step runs zero tests")

    def report(self):
        self.findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))
        return {
            "schema": SCHEMA,
            "recorded_keys": {
                k: v["kind"] for k, v in sorted(self.recorded.items())},
            "documented_keys": {
                k: v["kind"] for k, v in sorted(self.documented.items())},
            "labels": sorted(self.labels),
            "ci_labels": sorted(self.ci_steps),
            "count": len(self.findings),
            "findings": self.findings,
        }


def main(argv):
    parser = argparse.ArgumentParser(
        description="mecoff metric/CI consistency checker")
    parser.add_argument("--json", action="store_true",
                        help="emit a mecoff.consistency.v1 JSON report")
    parser.add_argument("--root", default=None,
                        help="repo root (default: the repo containing "
                             "this script); fixtures pass a mini-tree")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    checker = Checker(os.path.abspath(root))
    checker.check_metrics()
    checker.check_labels()
    payload = checker.report()

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for finding in payload["findings"]:
            print(f"{finding['file']}:{finding['line']}: "
                  f"[{finding['rule']}] {finding['message']}")
        print(f"check_consistency: {payload['count']} finding(s), "
              f"{len(payload['recorded_keys'])} recorded / "
              f"{len(payload['documented_keys'])} documented key(s), "
              f"{len(payload['labels'])} label(s) / "
              f"{len(payload['ci_labels'])} CI step label(s)")
    return 1 if payload["count"] else 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except SystemExit:
        raise
    except Exception as err:  # noqa: BLE001 -- tool boundary
        print(f"check_consistency: internal error: {err}", file=sys.stderr)
        sys.exit(2)
