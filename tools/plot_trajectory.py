#!/usr/bin/env python3
"""plot_trajectory.py — cross-PR performance trajectory report.

Every PR that touches the serving path regenerates the soak trajectory
and commits it as `bench/BENCH_<date>.json` (schema
mecoff.soak_trajectory.v1). This tool merges any number of those
documents into one report: how each soak phase's request count, p99 and
wall time moved across PRs, plus each run's per-phase segment curves
when present — the question "did that refactor move the needle" answered
from files already in the tree, no rerun needed.

Usage:
    plot_trajectory.py [--svg <out.svg>] [--phase <name>] <file.json>...

Inputs that are not trajectory documents (bench_gate baselines share
the BENCH_ prefix) are skipped with a note, so `bench/BENCH_*.json` is
a valid argument list. Runs are labelled by the date in the filename
(`BENCH_2026-08-09.json` -> `2026-08-09`, the basename otherwise) and
ordered by label, which for ISO dates is chronological order.

`--phase` restricts the report to one phase (repeatable). `--svg`
additionally writes a hand-rolled SVG: one polyline per phase, p99
milliseconds (log10) against run index.

Stdlib only. Exit codes: 0 report written, 2 usage error or no
trajectory document among the inputs.
"""

from __future__ import annotations

import json
import math
import os
import re
import sys

TRAJECTORY_SCHEMA = "mecoff.soak_trajectory.v1"
_DATE_NAME = re.compile(r"BENCH_(\d{4}-\d{2}-\d{2})\.json$")


def run_label(path):
    match = _DATE_NAME.search(os.path.basename(path))
    return match.group(1) if match else os.path.basename(path)


def load_runs(paths):
    """[(label, doc)] for trajectory documents; notes skipped inputs."""
    runs = []
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            print(f"plot_trajectory: skipping {path}: {err}",
                  file=sys.stderr)
            continue
        if not isinstance(doc, dict) or \
                doc.get("schema") != TRAJECTORY_SCHEMA:
            print(f"plot_trajectory: skipping {path}: "
                  f"not a {TRAJECTORY_SCHEMA} document")
            continue
        runs.append((run_label(path), doc))
    runs.sort(key=lambda run: run[0])
    return runs


def phase_order(runs, wanted):
    """Phase names in first-seen order across runs, filtered to
    `wanted` when given."""
    order = []
    for _, doc in runs:
        for phase in doc.get("phases", []):
            name = phase.get("name")
            if name and name not in order:
                order.append(name)
    if wanted:
        missing = [name for name in wanted if name not in order]
        for name in missing:
            print(f"plot_trajectory: phase '{name}' not in any run",
                  file=sys.stderr)
        order = [name for name in order if name in wanted]
    return order


def phase_by_name(doc, name):
    for phase in doc.get("phases", []):
        if phase.get("name") == name:
            return phase
    return None


def fmt_ms(seconds):
    return f"{seconds * 1e3:.2f}ms"


def text_report(runs, phases):
    """Per-phase table: one row per run, requests / p99 / wall, plus
    the run's segment curve when the document carries one."""
    lines = []
    header = f"perf trajectory across {len(runs)} run(s): " + \
        ", ".join(label for label, _ in runs)
    lines.append(header)
    for name in phases:
        lines.append("")
        lines.append(f"== {name} ==")
        rows = [("run", "requests", "p99", "wall", "curve(requests)")]
        for label, doc in runs:
            phase = phase_by_name(doc, name)
            if phase is None:
                rows.append((label, "-", "-", "-", "-"))
                continue
            curve = phase.get("samples") or []
            curve_text = " ".join(
                str(point.get("requests", "?")) for point in curve) or "-"
            rows.append((label, str(phase.get("requests", 0)),
                         fmt_ms(phase.get("p99_seconds", 0.0)),
                         f"{phase.get('wall_seconds', 0.0):.3f}s",
                         curve_text))
        widths = [max(len(row[col]) for row in rows)
                  for col in range(len(rows[0]))]
        for row in rows:
            lines.append("  " + " | ".join(
                cell.ljust(width) for cell, width in zip(row, widths)))
    lines.append("")
    rows = [("run", "requests", "errors", "wall")]
    for label, doc in runs:
        totals = doc.get("totals", {})
        rows.append((label, str(totals.get("requests", 0)),
                     str(totals.get("errors", 0)),
                     f"{totals.get('wall_seconds', 0.0):.3f}s"))
    lines.append("== totals ==")
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(rows[0]))]
    for row in rows:
        lines.append("  " + " | ".join(
            cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def svg_report(runs, phases):
    """One polyline per phase: log10(p99 ms) against run index. Hand
    rolled — the report must not need a plotting dependency."""
    width, height, margin = 640, 360, 48
    plot_w, plot_h = width - 2 * margin, height - 2 * margin
    points_ms = {}
    for name in phases:
        series = []
        for _, doc in runs:
            phase = phase_by_name(doc, name)
            p99 = phase.get("p99_seconds", 0.0) if phase else 0.0
            series.append(max(p99 * 1e3, 1e-6))
        points_ms[name] = series
    all_values = [value for series in points_ms.values()
                  for value in series]
    lo = math.log10(min(all_values))
    hi = math.log10(max(all_values))
    if hi - lo < 1e-9:
        hi = lo + 1.0
    denominator = max(len(runs) - 1, 1)

    def x(i):
        return margin + plot_w * i / denominator

    def y(value_ms):
        frac = (math.log10(value_ms) - lo) / (hi - lo)
        return margin + plot_h * (1.0 - frac)

    palette = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
               "#8c564b", "#e377c2", "#17becf"]
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{margin}" y="20" font-size="13">soak p99 per phase '
        f'(ms, log scale) across {len(runs)} run(s)</text>',
    ]
    for i, (label, _) in enumerate(runs):
        parts.append(
            f'<text x="{x(i):.1f}" y="{height - 8}" font-size="10" '
            f'text-anchor="middle">{label}</text>')
    for index, name in enumerate(phases):
        color = palette[index % len(palette)]
        coords = " ".join(
            f"{x(i):.1f},{y(value):.1f}"
            for i, value in enumerate(points_ms[name]))
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5"/>')
        parts.append(
            f'<text x="{width - margin + 4}" '
            f'y="{y(points_ms[name][-1]):.1f}" font-size="10" '
            f'fill="{color}">{name}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def main(argv):
    svg_path = None
    wanted = []
    paths = []
    args = argv[1:]
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--svg":
            if index + 1 >= len(args):
                print("plot_trajectory: --svg needs a path",
                      file=sys.stderr)
                return 2
            svg_path = args[index + 1]
            index += 2
        elif arg == "--phase":
            if index + 1 >= len(args):
                print("plot_trajectory: --phase needs a name",
                      file=sys.stderr)
                return 2
            wanted.append(args[index + 1])
            index += 2
        elif arg in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        elif arg.startswith("-"):
            print(f"plot_trajectory: unknown option {arg}",
                  file=sys.stderr)
            return 2
        else:
            paths.append(arg)
            index += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    runs = load_runs(paths)
    if not runs:
        print("plot_trajectory: no trajectory documents among the inputs",
              file=sys.stderr)
        return 2
    phases = phase_order(runs, wanted)
    if not phases:
        print("plot_trajectory: no phases to report", file=sys.stderr)
        return 2
    print(text_report(runs, phases))
    if svg_path:
        try:
            with open(svg_path, "w") as out:
                out.write(svg_report(runs, phases))
        except OSError as err:
            print(f"plot_trajectory: cannot write {svg_path}: {err}",
                  file=sys.stderr)
            return 2
        print(f"plot_trajectory: wrote {svg_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
