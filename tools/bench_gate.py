#!/usr/bin/env python3
"""bench_gate.py — regression gate over a bench's `[metrics]` JSON line.

The benches print one machine-readable line per run:

    [metrics] {"counters":{...},"gauges":{...},"histograms":{...},...}

This gate flattens that document into `kind.name[.field]` scalars and
compares them against a committed baseline with per-metric tolerance
bands, so structural drift (a counter that should be bit-stable across
machines changing value, an instrument disappearing) fails CI while
wall-clock noise does not.

Usage:
    bench_gate.py <bench-output-or-json> <baseline.json>
    bench_gate.py --update <bench-output-or-json> <baseline.json>

The first positional argument is either a file containing raw bench
stdout (the LAST `[metrics]` line wins) or a bare metrics JSON document
(e.g. a `*.metrics.json` written via MECOFF_BENCH_CSV_DIR). `-` reads
stdin.

Baseline schema (mecoff.bench_gate.v1):

    {"schema": "mecoff.bench_gate.v1",
     "metrics": {"counters.mec.solve.runs": {"value": 15, "tol": 0.0},
                 "gauges.mec.solve.total_seconds": {"value": 0.1,
                                                     "tol": null}}}

Per metric: relative error |cand - base| / max(|base|, 1e-12) must stay
within `tol`; `tol: null` means presence-only (timings: the value is
recorded for humans, never compared). Baseline metrics missing from the
candidate always fail. Candidate metrics missing from the baseline are
reported but pass (new instruments should not break old gates); commit
a refreshed baseline to start tracking them.

`--update` rewrites the baseline from the candidate, assigning
tolerances by the default policy: timing-like metrics (names containing
"seconds", "latency", "rate", or any histogram/quantile `.sum`,
quantile `.p*` / `.window`) are presence-only; everything else is
exact. Exit codes: 0 pass, 1 gate failure, 2 usage/input error.
"""

import json
import re
import sys

SCHEMA = "mecoff.bench_gate.v1"
EPS = 1e-12

# Metrics whose VALUE is machine-dependent: compared for presence only.
_TIMING_PATTERN = re.compile(
    r"(seconds|latency|rate|duration)"
    r"|(^(histograms|quantiles)\..*\.sum$)"
    r"|(^quantiles\..*\.(p50|p95|p99|window)$)"
)


def read_metrics(path):
    """Load a metrics document from bench stdout or a bare JSON file."""
    text = sys.stdin.read() if path == "-" else open(path).read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return json.loads(stripped)
    doc = None
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("[metrics] {"):
            doc = line[len("[metrics] "):]
    if doc is None:
        raise ValueError(f"no [metrics] line found in {path}")
    return json.loads(doc)


def flatten(doc):
    """Metrics JSON -> {'kind.name[.field]': scalar}."""
    flat = {}
    for name, value in doc.get("counters", {}).items():
        flat[f"counters.{name}"] = value
    for name, value in doc.get("gauges", {}).items():
        flat[f"gauges.{name}"] = value
    for name, h in doc.get("histograms", {}).items():
        flat[f"histograms.{name}.count"] = h["count"]
        flat[f"histograms.{name}.sum"] = h["sum"]
    for name, q in doc.get("quantiles", {}).items():
        flat[f"quantiles.{name}.count"] = q["count"]
        flat[f"quantiles.{name}.sum"] = q["sum"]
        flat[f"quantiles.{name}.window"] = q.get("window", 0)
        for p in ("p50", "p95", "p99"):
            if p in q:
                flat[f"quantiles.{name}.{p}"] = q[p]
    return flat


def default_tolerance(key):
    """None (presence-only) for timing-like metrics, exact otherwise."""
    return None if _TIMING_PATTERN.search(key) else 0.0


def update_baseline(flat, path):
    metrics = {
        key: {"value": flat[key], "tol": default_tolerance(key)}
        for key in sorted(flat)
    }
    with open(path, "w") as out:
        json.dump({"schema": SCHEMA, "metrics": metrics}, out, indent=1,
                  sort_keys=True)
        out.write("\n")
    print(f"bench_gate: wrote {path} ({len(metrics)} metrics)")
    return 0


def run_gate(flat, baseline_path):
    baseline = json.load(open(baseline_path))
    if baseline.get("schema") != SCHEMA:
        print(f"bench_gate: {baseline_path} is not a {SCHEMA} document",
              file=sys.stderr)
        return 2
    failures = []
    checked = skipped = 0
    for key, spec in sorted(baseline["metrics"].items()):
        if key not in flat:
            failures.append(f"{key}: missing from candidate "
                            f"(baseline {spec['value']})")
            continue
        if spec["tol"] is None:
            skipped += 1
            continue
        checked += 1
        base, cand = float(spec["value"]), float(flat[key])
        err = abs(cand - base) / max(abs(base), EPS)
        if err > spec["tol"]:
            failures.append(f"{key}: {cand} vs baseline {base} "
                            f"(rel err {err:.3g} > tol {spec['tol']:.3g})")
    extra = sorted(set(flat) - set(baseline["metrics"]))
    if extra:
        print(f"bench_gate: {len(extra)} metrics not in baseline "
              f"(pass; refresh with --update to track): "
              + ", ".join(extra[:8]) + ("..." if len(extra) > 8 else ""))
    if failures:
        print(f"bench_gate: FAIL ({len(failures)} of "
              f"{len(baseline['metrics'])} baseline metrics)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench_gate: OK ({checked} compared, {skipped} presence-only)")
    return 0


def main(argv):
    args = [a for a in argv[1:] if a != "--update"]
    update = "--update" in argv[1:]
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        flat = flatten(read_metrics(args[0]))
    except (OSError, ValueError, KeyError) as err:
        print(f"bench_gate: cannot read candidate: {err}", file=sys.stderr)
        return 2
    if update:
        return update_baseline(flat, args[1])
    try:
        return run_gate(flat, args[1])
    except (OSError, ValueError, KeyError) as err:
        print(f"bench_gate: cannot read baseline: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
