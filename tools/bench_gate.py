#!/usr/bin/env python3
"""bench_gate.py — regression gate over a bench's machine-readable line.

The benches print one machine-readable line per run — either a metrics
registry dump or (bench_soak) a chaos-soak trajectory:

    [metrics] {"counters":{...},"gauges":{...},"histograms":{...},...}
    [trajectory] {"schema":"mecoff.soak_trajectory.v1","phases":[...],
                  "totals":{...},"invariants_zero":[...]}

This gate flattens the document into dotted scalars (`kind.name[.field]`
for metrics, `phases.<name>.<field>` / `totals.<field>` for a
trajectory, `phases.<name>.samples.<i>.<field>` for a phase's
segment-curve samples) and compares them against a committed baseline with
per-metric tolerance bands, so structural drift (a counter that should
be bit-stable across machines changing value, an instrument or phase
disappearing) fails CI while wall-clock noise does not.

Usage:
    bench_gate.py <bench-output-or-json> <baseline.json>
    bench_gate.py --update <bench-output-or-json> <baseline.json>

The first positional argument is either a file containing raw bench
stdout (the LAST `[trajectory]` line wins when present, else the LAST
`[metrics]` line) or a bare JSON document (a `*.metrics.json` written
via MECOFF_BENCH_CSV_DIR, or a trajectory written via `out=`). `-`
reads stdin.

Baseline schema (mecoff.bench_gate.v1):

    {"schema": "mecoff.bench_gate.v1",
     "metrics": {"counters.mec.solve.runs": {"value": 15, "tol": 0.0},
                 "gauges.mec.solve.total_seconds": {"value": 0.1,
                                                     "tol": null}}}

Per metric: relative error |cand - base| / max(|base|, 1e-12) must stay
within `tol`; `tol: null` means presence-only (timings: the value is
recorded for humans, never compared). Baseline metrics missing from the
candidate always fail. Candidate metrics missing from the baseline are
reported but pass (new instruments should not break old gates); commit
a refreshed baseline to start tracking them.

A trajectory document's `invariants_zero` list names flattened keys
that must be EXACTLY zero in the candidate (unanswered requests,
placement mismatches, wedged responses). They are enforced on every
run, `--update` included — a broken soak can never become the baseline.

`--update` rewrites the baseline from the candidate, assigning
tolerances by the default policy: timing-like metrics (names containing
"seconds", "latency", "rate", or any histogram/quantile `.sum`,
quantile `.p*` / `.window`) are presence-only, as is every trajectory
entry except the load-shape and invariant counts (requests, clients,
errors, mismatches, wedged, unanswered — the soak's timing-dependent
provenance splits may drift, its correctness counts may not);
everything else is exact. Exit codes: 0 pass, 1 gate failure, 2
usage/input error.
"""

import json
import re
import sys

SCHEMA = "mecoff.bench_gate.v1"
TRAJECTORY_SCHEMA = "mecoff.soak_trajectory.v1"
EPS = 1e-12

# Metrics whose VALUE is machine-dependent: compared for presence only.
_TIMING_PATTERN = re.compile(
    r"(seconds|latency|rate|duration)"
    r"|(^(histograms|quantiles)\..*\.sum$)"
    r"|(^quantiles\..*\.(p50|p95|p99|window)$)"
)

# Trajectory entries that are deterministic by construction (the load
# shape) or invariants: compared exactly. The rest (hit/coalesced/hedge
# splits, percentiles, wall clocks) are scheduling-dependent.
_TRAJECTORY_EXACT = re.compile(
    r"(^|\.)(requests|clients|errors|mismatches|wedged|unanswered)$"
)


def read_metrics(path):
    """Load a metrics/trajectory document from bench stdout or JSON."""
    text = sys.stdin.read() if path == "-" else open(path).read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return json.loads(stripped)
    doc = None
    # A soak bench prints both lines; the trajectory is its contract.
    for tag in ("[trajectory] {", "[metrics] {"):
        for line in text.splitlines():
            line = line.strip()
            if line.startswith(tag):
                doc = line[len(tag) - 1:]
        if doc is not None:
            break
    if doc is None:
        raise ValueError(f"no [metrics] or [trajectory] line in {path}")
    return json.loads(doc)


def flatten(doc):
    """Metrics or trajectory JSON -> {'dotted.key': scalar}."""
    if doc.get("schema") == TRAJECTORY_SCHEMA:
        flat = {}
        for phase in doc.get("phases", []):
            name = phase["name"]
            for field, value in phase.items():
                if field == "name":
                    continue
                if isinstance(value, list):
                    # Per-phase curves (e.g. "samples": [{...}, ...]):
                    # one dotted scalar per sample field. The curve's
                    # shape keys (.requests: the barrier positions) gate
                    # exactly; its timing/provenance values are
                    # presence-only like everything else.
                    for i, point in enumerate(value):
                        for sub, subvalue in point.items():
                            flat[f"phases.{name}.{field}.{i}.{sub}"] = \
                                subvalue
                    continue
                flat[f"phases.{name}.{field}"] = value
        for field, value in doc.get("totals", {}).items():
            flat[f"totals.{field}"] = value
        return flat
    flat = {}
    for name, value in doc.get("counters", {}).items():
        flat[f"counters.{name}"] = value
    for name, value in doc.get("gauges", {}).items():
        flat[f"gauges.{name}"] = value
    for name, h in doc.get("histograms", {}).items():
        flat[f"histograms.{name}.count"] = h["count"]
        flat[f"histograms.{name}.sum"] = h["sum"]
    for name, q in doc.get("quantiles", {}).items():
        flat[f"quantiles.{name}.count"] = q["count"]
        flat[f"quantiles.{name}.sum"] = q["sum"]
        flat[f"quantiles.{name}.window"] = q.get("window", 0)
        for p in ("p50", "p95", "p99"):
            if p in q:
                flat[f"quantiles.{name}.{p}"] = q[p]
    return flat


def default_tolerance(key):
    """None (presence-only) for timing-like metrics, exact otherwise."""
    if key.startswith("phases.") or key.startswith("totals."):
        return 0.0 if _TRAJECTORY_EXACT.search(key) else None
    return None if _TIMING_PATTERN.search(key) else 0.0


def check_invariants(doc, flat):
    """Zero-invariant violations as failure strings (trajectory only)."""
    failures = []
    for key in doc.get("invariants_zero", []):
        value = flat.get(key)
        if value is None:
            failures.append(f"{key}: invariant key missing from candidate")
        elif value != 0:
            failures.append(f"{key}: invariant violated ({value} != 0)")
    return failures


def update_baseline(flat, path):
    metrics = {
        key: {"value": flat[key], "tol": default_tolerance(key)}
        for key in sorted(flat)
    }
    with open(path, "w") as out:
        json.dump({"schema": SCHEMA, "metrics": metrics}, out, indent=1,
                  sort_keys=True)
        out.write("\n")
    print(f"bench_gate: wrote {path} ({len(metrics)} metrics)")
    return 0


def run_gate(flat, baseline_path):
    baseline = json.load(open(baseline_path))
    if baseline.get("schema") != SCHEMA:
        print(f"bench_gate: {baseline_path} is not a {SCHEMA} document; "
              f"run with --update to recreate it", file=sys.stderr)
        return 2
    failures = []
    checked = skipped = 0
    for key, spec in sorted(baseline["metrics"].items()):
        if key not in flat:
            failures.append(f"{key}: missing from candidate "
                            f"(baseline {spec['value']})")
            continue
        if spec["tol"] is None:
            skipped += 1
            continue
        checked += 1
        base, cand = float(spec["value"]), float(flat[key])
        err = abs(cand - base) / max(abs(base), EPS)
        if err > spec["tol"]:
            failures.append(f"{key}: {cand} vs baseline {base} "
                            f"(rel err {err:.3g} > tol {spec['tol']:.3g})")
    extra = sorted(set(flat) - set(baseline["metrics"]))
    if extra:
        print(f"bench_gate: {len(extra)} metrics not in baseline "
              f"(pass; refresh with --update to track): "
              + ", ".join(extra[:8]) + ("..." if len(extra) > 8 else ""))
    if failures:
        print(f"bench_gate: FAIL ({len(failures)} of "
              f"{len(baseline['metrics'])} baseline metrics)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench_gate: OK ({checked} compared, {skipped} presence-only)")
    return 0


def main(argv):
    args = [a for a in argv[1:] if a != "--update"]
    update = "--update" in argv[1:]
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        doc = read_metrics(args[0])
        flat = flatten(doc)
    except (OSError, ValueError, KeyError) as err:
        print(f"bench_gate: cannot read candidate: {err}", file=sys.stderr)
        return 2
    # Invariants gate every run, --update included: a soak run with
    # unanswered/mismatched/wedged requests can never become a baseline.
    violations = check_invariants(doc, flat)
    if violations:
        print(f"bench_gate: FAIL ({len(violations)} zero-invariant "
              f"violations)")
        for violation in violations:
            print(f"  {violation}")
        return 1
    if update:
        return update_baseline(flat, args[1])
    try:
        return run_gate(flat, args[1])
    except (OSError, ValueError, KeyError) as err:
        print(f"bench_gate: cannot read baseline: {err}; run with "
              f"--update to create it from this candidate",
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
