// mecoff_cli — command-line driver for the library.
//
//   mecoff_cli generate nodes=1000 edges=4912 [seed=1] [components=8]
//       emit a NETGEN-style graph as an edge list on stdout
//   mecoff_cli compress <graph.edgelist> [threshold=10]
//       run Algorithm 1, print Table-I style statistics
//   mecoff_cli cut <graph.edgelist> [algo=spectral|maxflow|kl|fm|sw]
//       two-way cut, print cut weight and side sizes ([dot=out.dot])
//   mecoff_cli solve <app.dsl> [pc=1 pt=8 b=20 ic=5 is=50 kappa=0.02]
//       full pipeline on a DSL application, print placement and bill
//   mecoff_cli simulate <app.dsl> [same params]
//       solve, then run BOTH simulators (batch + task-DAG)
//   mecoff_cli kway <graph.edgelist> parts=4
//       k-way spectral partition, print part sizes and total cut
//   mecoff_cli trace <app.trace> [same params as solve]
//       import an execution trace (profiler format) and solve it
//   mecoff_cli stats <graph.edgelist>
//       validate the file and print structural statistics
//
// `solve` accepts out=<file> to save the scheme; `simulate` accepts
// scheme=<file> to replay a saved scheme instead of re-solving.
// Both accept deadline=<seconds> — a wall-clock solve budget past which
// remaining sub-graphs degrade to cheaper cuts (spectral → KL →
// all-remote) instead of hanging; fallback counts are printed.
//
// `solve`/`simulate`/`trace` accept profile=<name> to start from a
// deployment preset (wifi_campus, lte_smallcell, mmwave_hotspot,
// congested_venue); explicit key=value options override preset fields.
//
// Observability (see docs/observability.md):
//   users=<n>      replicate the application into an n-user system
//   threads=<n>    solve the per-user stage on an n-worker pool
//   trace=<file>   record spans and write chrome://tracing JSON
//   metrics=1      dump the metrics registry after the run
//
// All options are key=value tokens after the positional arguments.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "appmodel/dsl_parser.hpp"
#include "appmodel/trace_import.hpp"
#include "common/config.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "kl/fiduccia_mattheyses.hpp"
#include "kl/kernighan_lin.hpp"
#include "kl/multilevel.hpp"
#include "lpa/pipeline.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"
#include "mec/profiles.hpp"
#include "mec/scheme_io.hpp"
#include "mincut/bipartitioner.hpp"
#include "mincut/stoer_wagner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/dag_executor.hpp"
#include "sim/executor.hpp"
#include "spectral/bipartitioner.hpp"
#include "spectral/kway.hpp"

namespace {

using namespace mecoff;

int usage() {
  std::fprintf(stderr,
               "usage: mecoff_cli <generate|compress|cut|solve|simulate> "
               "[file] [key=value...]\n"
               "run with a subcommand for details (see tools/mecoff_cli.cpp "
               "header)\n");
  return 2;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<graph::WeightedGraph> load_graph(const std::string& path) {
  const Result<std::string> text = read_file(path);
  if (!text.ok()) return text.error();
  return graph::parse_edge_list(text.value());
}

mec::SystemParams params_from(const Config& cfg) {
  mec::SystemParams p;
  const std::string profile = cfg.get_string("profile", "");
  if (!profile.empty() && !mec::find_profile(profile, p)) {
    std::fprintf(stderr, "warning: unknown profile '%s'; presets are:",
                 profile.c_str());
    for (const mec::NamedProfile& known : mec::all_profiles())
      std::fprintf(stderr, " %s", known.name.c_str());
    std::fprintf(stderr, "\n");
  }
  p.mobile_power = cfg.get_double("pc", p.mobile_power);
  p.transmit_power = cfg.get_double("pt", p.transmit_power);
  p.bandwidth = cfg.get_double("b", p.bandwidth);
  p.mobile_capacity = cfg.get_double("ic", p.mobile_capacity);
  p.server_capacity = cfg.get_double("is", p.server_capacity);
  p.contention_factor = cfg.get_double("kappa", p.contention_factor);
  return p;
}

int cmd_stats(const std::string& path) {
  const Result<graph::WeightedGraph> g = load_graph(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.error().message.c_str());
    return 1;
  }
  const graph::ValidationReport report = graph::validate(g.value());
  if (!report.ok) {
    std::printf("INVALID graph:\n");
    for (const std::string& problem : report.problems)
      std::printf("  - %s\n", problem.c_str());
    return 1;
  }
  const graph::GraphStats stats = graph::compute_stats(g.value());
  std::printf("valid graph\n");
  std::printf("nodes: %zu  edges: %zu  avg degree: %.2f  max degree: %zu\n",
              stats.nodes, stats.edges, stats.avg_degree, stats.max_degree);
  std::printf("node weight: %.2f total  edge weight: %.2f total "
              "(range %.2f..%.2f)\n",
              stats.total_node_weight, stats.total_edge_weight,
              stats.min_edge_weight, stats.max_edge_weight);
  const std::vector<std::size_t> hist =
      graph::degree_histogram(g.value());
  std::printf("degree histogram:");
  for (std::size_t d = 0; d < hist.size(); ++d)
    if (hist[d] > 0) std::printf(" %zu:%zu", d, hist[d]);
  std::printf("\n");
  return 0;
}

int cmd_generate(const Config& cfg) {
  graph::NetgenParams p;
  p.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 1000));
  p.edges = static_cast<std::size_t>(cfg.get_int("edges", p.nodes * 5));
  p.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  p.components =
      static_cast<std::size_t>(cfg.get_int("components", 4));
  p.cluster_size =
      static_cast<std::size_t>(cfg.get_int("cluster_size", 8));
  std::fputs(graph::to_edge_list(graph::netgen_style(p)).c_str(), stdout);
  return 0;
}

int cmd_compress(const std::string& path, const Config& cfg) {
  const Result<graph::WeightedGraph> g = load_graph(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.error().message.c_str());
    return 1;
  }
  lpa::PropagationConfig config;
  config.coupling_threshold = cfg.get_double("threshold", 10.0);
  const std::vector<bool> pinned(g.value().num_nodes(), false);
  const lpa::CompressionPipelineResult result =
      lpa::compress_application(g.value(), pinned, config);
  const lpa::CompressionStats stats = result.aggregate_stats();
  std::printf("functions:            %zu -> %zu (%.1f%% reduction)\n",
              stats.original_nodes, stats.compressed_nodes,
              100.0 * stats.node_reduction());
  std::printf("edges:                %zu -> %zu\n", stats.original_edges,
              stats.compressed_edges);
  std::printf("components:           %zu\n", result.components.size());
  std::printf("absorbed edge weight: %.2f\n", stats.absorbed_edge_weight);
  return 0;
}

std::unique_ptr<graph::Bipartitioner> make_cutter(const std::string& algo) {
  if (algo == "spectral")
    return std::make_unique<spectral::SpectralBipartitioner>();
  if (algo == "maxflow")
    return std::make_unique<mincut::MaxFlowBipartitioner>();
  if (algo == "kl")
    return std::make_unique<kl::KernighanLinBipartitioner>();
  if (algo == "fm") return std::make_unique<kl::FmBipartitioner>();
  if (algo == "multilevel")
    return std::make_unique<kl::MultilevelBipartitioner>();
  return nullptr;
}

int cmd_cut(const std::string& path, const Config& cfg) {
  const Result<graph::WeightedGraph> g = load_graph(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.error().message.c_str());
    return 1;
  }
  const std::string algo = cfg.get_string("algo", "spectral");
  graph::Bipartition cut;
  if (algo == "sw") {
    cut = mincut::stoer_wagner(g.value());
  } else {
    const std::unique_ptr<graph::Bipartitioner> cutter = make_cutter(algo);
    if (cutter == nullptr) {
      std::fprintf(stderr, "unknown algo '%s' (spectral|maxflow|kl|fm|multilevel|sw)\n",
                   algo.c_str());
      return 2;
    }
    cut = cutter->bipartition(g.value());
  }
  std::printf("algorithm:  %s\n", algo.c_str());
  std::printf("cut weight: %.4f\n", cut.cut_weight);
  std::printf("side sizes: %zu / %zu\n", cut.size(0), cut.size(1));
  const std::string dot_path = cfg.get_string("dot", "");
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << graph::to_dot(g.value(), cut.side);
    std::printf("wrote %s\n", dot_path.c_str());
  }
  return 0;
}

int cmd_kway(const std::string& path, const Config& cfg) {
  const Result<graph::WeightedGraph> g = load_graph(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.error().message.c_str());
    return 1;
  }
  spectral::KwayOptions opts;
  opts.parts = static_cast<std::size_t>(cfg.get_int("parts", 4));
  const spectral::KwayResult r = spectral::kway_partition(g.value(), opts);
  std::printf("parts used: %u\n", r.parts_used);
  std::printf("total cut:  %.4f\n", r.total_cut);
  std::vector<std::size_t> sizes(r.parts_used, 0);
  for (const auto p : r.part_of) ++sizes[p];
  for (std::uint32_t p = 0; p < r.parts_used; ++p)
    std::printf("  part %u: %zu nodes\n", p, sizes[p]);
  return 0;
}

Result<appmodel::Application> load_app(const std::string& path) {
  const Result<std::string> text = read_file(path);
  if (!text.ok()) return text.error();
  return appmodel::parse_app_dsl(text.value());
}

int cmd_solve(const std::string& path, const Config& cfg, bool simulate,
              bool from_trace = false) {
  Result<appmodel::Application> parsed = [&]() -> Result<appmodel::Application> {
    if (!from_trace) return load_app(path);
    const Result<std::string> text = read_file(path);
    if (!text.ok()) return text.error();
    const Result<appmodel::TraceImport> imported =
        appmodel::import_trace(text.value());
    if (!imported.ok()) return imported.error();
    std::printf("trace: %zu records, %zu invocations, %.3fs traced\n",
                imported.value().records, imported.value().invocations,
                imported.value().total_traced_seconds);
    return imported.value().app;
  }();
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const appmodel::Application& app = parsed.value();

  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();
  const std::size_t num_users = static_cast<std::size_t>(
      std::max<long long>(1, cfg.get_int("users", 1)));
  mec::MecSystem system{params_from(cfg), {}};
  system.users.assign(num_users, user);

  // Observability surface: tracing must be on BEFORE the solve so the
  // compress/cut/eigensolve spans land in the export.
  const std::string trace_path = cfg.get_string("trace", "");
  const bool dump_metrics = cfg.get_int("metrics", 0) != 0;
  if (!trace_path.empty()) obs::TraceCollector::global().enable();

  mec::PipelineOptions options;
  options.propagation.coupling_threshold = cfg.get_double("threshold", 10.0);
  const std::string algo = cfg.get_string("algo", "spectral");
  if (algo == "maxflow") options.backend = mec::CutBackend::kMaxFlow;
  if (algo == "kl") options.backend = mec::CutBackend::kKernighanLin;
  options.deadline.seconds = cfg.get_double("deadline", -1.0);
  const std::size_t threads = static_cast<std::size_t>(
      std::max<long long>(0, cfg.get_int("threads", 0)));
  std::unique_ptr<parallel::ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<parallel::ThreadPool>(threads);
    options.pool = pool.get();
  }
  mec::PipelineOffloader offloader(options);

  mec::OffloadingScheme scheme;
  std::string scheme_source = offloader.name() + " pipeline";
  const std::string scheme_path = cfg.get_string("scheme", "");
  if (!scheme_path.empty()) {
    const Result<std::string> text = read_file(scheme_path);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.error().message.c_str());
      return 1;
    }
    Result<mec::OffloadingScheme> loaded =
        mec::parse_scheme_text(text.value());
    if (!loaded.ok()) {
      std::fprintf(stderr, "scheme error: %s\n",
                   loaded.error().message.c_str());
      return 1;
    }
    scheme = std::move(loaded).value();
    if (!scheme.valid_for(system)) {
      std::fprintf(stderr,
                   "scheme error: shape does not fit this application "
                   "(or offloads a pinned function)\n");
      return 1;
    }
    scheme_source = "replayed from " + scheme_path;
  } else {
    scheme = offloader.solve(system);
    const mec::PipelineOffloader::SolveStats& stats = offloader.last_stats();
    std::printf("solver: %zu parts, %zu greedy moves, %.3fs\n",
                stats.num_parts, stats.greedy_moves, stats.total_seconds);
    if (stats.degraded() || stats.deadline_expired)
      std::printf("solver degraded: %zu non-converged eigensolves, "
                  "%zu KL recuts, %zu all-remote fallbacks%s\n",
                  stats.spectral_nonconverged, stats.fallback_kl_cuts,
                  stats.fallback_all_remote,
                  stats.deadline_expired ? " (deadline expired)" : "");
  }
  const mec::SystemCost cost = mec::evaluate(system, scheme);

  std::printf("app '%s' (%zu functions) — %s\n", app.name().c_str(),
              app.num_functions(), scheme_source.c_str());
  for (std::size_t i = 0; i < app.num_functions(); ++i) {
    const appmodel::FunctionInfo& fn = app.function(i);
    std::printf("  %-20s -> %s%s\n", fn.name.c_str(),
                scheme.placement[0][i] == mec::Placement::kLocal ? "device"
                                                                 : "server",
                fn.unoffloadable ? " (pinned)" : "");
  }
  std::printf("analytic bill: E = %.3f  T = %.3f  E+T = %.3f\n",
              cost.total_energy, cost.total_time, cost.objective());

  const std::string out_path = cfg.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    mec::write_scheme(scheme, out);
    std::printf("wrote scheme to %s\n", out_path.c_str());
  }

  if (simulate) {
    const sim::SimReport batch = sim::simulate_scheme(system, scheme);
    std::printf("batch DES:     energy = %.3f  makespan = %.3f  "
                "(events: %zu)\n",
                batch.total_energy, batch.makespan, batch.events);
    if (sim::call_graph_is_acyclic(app)) {
      const std::vector<appmodel::Application> apps(system.users.size(), app);
      const auto dag = sim::execute_dag(system, apps, scheme);
      if (dag.ok())
        std::printf("task-DAG DES:  energy = %.3f  makespan = %.3f  "
                    "(events: %zu)\n",
                    dag.value().total_energy, dag.value().makespan,
                    dag.value().events);
    } else {
      std::printf("task-DAG DES:  skipped (cyclic call structure)\n");
    }
  }

  // Observability dump happens last so the spans/counters from the solve
  // AND the simulation (if any) are included.
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open trace file %s\n",
                   trace_path.c_str());
      return 1;
    }
    obs::TraceCollector::global().write_chrome_trace(out);
    std::printf("wrote %zu trace events to %s (dropped %zu)\n",
                obs::TraceCollector::global().event_count(),
                trace_path.c_str(),
                obs::TraceCollector::global().dropped_count());
  }
  if (dump_metrics) {
    std::printf("--- metrics ---\n%s",
                obs::MetricsRegistry::global().to_text().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // key=value options start after the positional file argument (if any).
  const bool has_file = argc >= 3 && std::strchr(argv[2], '=') == nullptr;
  const std::string file = has_file ? argv[2] : "";
  const int opt_start = has_file ? 2 : 1;
  const Config cfg =
      Config::from_args(argc - opt_start, argv + opt_start);

  if (command == "generate") return cmd_generate(cfg);
  if (command == "compress" && has_file) return cmd_compress(file, cfg);
  if (command == "cut" && has_file) return cmd_cut(file, cfg);
  if (command == "solve" && has_file) return cmd_solve(file, cfg, false);
  if (command == "simulate" && has_file) return cmd_solve(file, cfg, true);
  if (command == "kway" && has_file) return cmd_kway(file, cfg);
  if (command == "stats" && has_file) return cmd_stats(file);
  if (command == "trace" && has_file)
    return cmd_solve(file, cfg, false, /*from_trace=*/true);
  return usage();
}
