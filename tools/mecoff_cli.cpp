// mecoff_cli — command-line driver for the library.
//
//   mecoff_cli generate nodes=1000 edges=4912 [seed=1] [components=8]
//       emit a NETGEN-style graph as an edge list on stdout
//   mecoff_cli compress <graph.edgelist> [threshold=10]
//       run Algorithm 1, print Table-I style statistics
//   mecoff_cli cut <graph.edgelist> [algo=spectral|maxflow|kl|fm|sw]
//       two-way cut, print cut weight and side sizes ([dot=out.dot])
//   mecoff_cli solve <app.dsl> [pc=1 pt=8 b=20 ic=5 is=50 kappa=0.02]
//       full pipeline on a DSL application, print placement and bill
//   mecoff_cli simulate <app.dsl> [same params]
//       solve, then run BOTH simulators (batch + task-DAG)
//   mecoff_cli kway <graph.edgelist> parts=4
//       k-way spectral partition, print part sizes and total cut
//   mecoff_cli trace <app.trace> [same params as solve]
//       import an execution trace (profiler format) and solve it
//   mecoff_cli stats <graph.edgelist>
//       validate the file and print structural statistics
//   mecoff_cli serve <app.dsl> [users=N threads=T port=P servers=S
//                               iterations=K interval=ms faults=script
//                               dump_dir=DIR ...solve params]
//       long-running solve loop with live telemetry on 127.0.0.1:P —
//       /metrics (Prometheus), /varz (JSON), /healthz (503 while
//       degraded), /flightz (anomaly flight recorder). iterations=0
//       loops until SIGINT. faults= replays a fault script whose times
//       are iteration indices against a FailoverController driving
//       /healthz. dump_dir= arms flight-recorder post-mortem dumps.
//   mecoff_cli serve-solve <app.dsl> [port=P threads=T shards=S
//                                     cache=N max_inflight=M clients=C
//                                     selfcheck=K duration=secs
//                                     deadline_budget=secs hedge=F
//                                     brownout=N brownout_p99=secs
//                                     faults=script latency_scale=secs
//                                     timeline=N timeline_interval=secs
//                                     request_id_header=NAME
//                                     dump_dir=DIR ...solve params]
//       online solve service (SolveService): POST /solve takes an app
//       DSL body (empty body = the positional app) and answers with
//       the placement plus its cache provenance (hit/miss/coalesced/
//       shed/hedged/deadline); the four telemetry routes are mounted
//       alongside, /varz gaining a scheme_cache health section.
//       Requests are sharded over a T-worker pool and coalesced
//       through the content-addressed scheme cache (capacity N);
//       max_inflight=M arms admission control. selfcheck=K skips the
//       wait loop: C in-process client threads issue K requests,
//       verify bit-identity against a cold solve, and exit — the
//       self-contained smoke mode CI and ctest drive. duration=secs
//       (0 = until a signal) bounds the serving window otherwise.
//       deadline_budget= sets the default per-request budget (riders
//       hedge a duplicate solve after hedge=F of it; an exhausted
//       budget degrades to all-local). brownout=N arms progressive
//       shedding at in-flight tiers N/2N/4N (brownout_p99= adds a
//       latency bump to the controller). faults= arms a fault script
//       whose times are REQUEST numbers on a serve::FaultInjector
//       (shard kills, injected solve latency, stolen cache publishes);
//       latency_scale= scales injected stalls. timeline=N mounts
//       GET /timez, sampled every N /solve requests (tick mode:
//       replayable, no wall-clock fields); timeline_interval=S samples
//       every S seconds instead (wall mode); the two are mutually
//       exclusive. Every response carries its correlation id on the
//       X-Mecoff-Request-Id header (request_id_header= renames it) and
//       the body's "cache:" line; a caller may supply its own id on the
//       same request header. Numeric options are
//       parsed strictly — a malformed value is a usage error, not a
//       silent default. SIGTERM drains gracefully: new requests
//       degrade instantly, in-flight ones finish, the flight recorder
//       dumps once (dump_dir= arms it), exit 0; SIGINT stops hard.
//
// `solve` accepts out=<file> to save the scheme; `simulate` accepts
// scheme=<file> to replay a saved scheme instead of re-solving.
// Both accept deadline=<seconds> — a wall-clock solve budget past which
// remaining sub-graphs degrade to cheaper cuts (spectral → KL →
// all-remote) instead of hanging; fallback counts are printed.
//
// `solve`/`simulate`/`trace` accept profile=<name> to start from a
// deployment preset (wifi_campus, lte_smallcell, mmwave_hotspot,
// congested_venue); explicit key=value options override preset fields.
//
// Observability (see docs/observability.md):
//   users=<n>      replicate the application into an n-user system
//   threads=<n>    solve the per-user stage on an n-worker pool
//   trace=<file>   record spans and write chrome://tracing JSON
//   metrics=1      dump the metrics registry after the run
//
// All options are key=value tokens after the positional arguments.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "appmodel/dsl_parser.hpp"
#include "appmodel/trace_import.hpp"
#include "common/config.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "common/thread_annotations.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "kl/fiduccia_mattheyses.hpp"
#include "kl/kernighan_lin.hpp"
#include "kl/multilevel.hpp"
#include "lpa/pipeline.hpp"
#include "mec/costs.hpp"
#include "mec/multiserver.hpp"
#include "mec/offloader.hpp"
#include "mec/profiles.hpp"
#include "mec/scheme_io.hpp"
#include "mincut/bipartitioner.hpp"
#include "mincut/stoer_wagner.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/serve/telemetry_server.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/fault_injector.hpp"
#include "serve/solve_service.hpp"
#include "sim/dag_executor.hpp"
#include "support/load_harness.hpp"
#include "sim/executor.hpp"
#include "sim/fault_script.hpp"
#include "spectral/bipartitioner.hpp"
#include "spectral/kway.hpp"

namespace {

using namespace mecoff;

int usage() {
  std::fprintf(stderr,
               "usage: mecoff_cli <generate|compress|cut|solve|simulate> "
               "[file] [key=value...]\n"
               "run with a subcommand for details (see tools/mecoff_cli.cpp "
               "header)\n");
  return 2;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<graph::WeightedGraph> load_graph(const std::string& path) {
  const Result<std::string> text = read_file(path);
  if (!text.ok()) return text.error();
  return graph::parse_edge_list(text.value());
}

mec::SystemParams params_from(const Config& cfg) {
  mec::SystemParams p;
  const std::string profile = cfg.get_string("profile", "");
  if (!profile.empty() && !mec::find_profile(profile, p)) {
    std::fprintf(stderr, "warning: unknown profile '%s'; presets are:",
                 profile.c_str());
    for (const mec::NamedProfile& known : mec::all_profiles())
      std::fprintf(stderr, " %s", known.name.c_str());
    std::fprintf(stderr, "\n");
  }
  p.mobile_power = cfg.get_double("pc", p.mobile_power);
  p.transmit_power = cfg.get_double("pt", p.transmit_power);
  p.bandwidth = cfg.get_double("b", p.bandwidth);
  p.mobile_capacity = cfg.get_double("ic", p.mobile_capacity);
  p.server_capacity = cfg.get_double("is", p.server_capacity);
  p.contention_factor = cfg.get_double("kappa", p.contention_factor);
  return p;
}

int cmd_stats(const std::string& path) {
  const Result<graph::WeightedGraph> g = load_graph(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.error().message.c_str());
    return 1;
  }
  const graph::ValidationReport report = graph::validate(g.value());
  if (!report.ok) {
    std::printf("INVALID graph:\n");
    for (const std::string& problem : report.problems)
      std::printf("  - %s\n", problem.c_str());
    return 1;
  }
  const graph::GraphStats stats = graph::compute_stats(g.value());
  std::printf("valid graph\n");
  std::printf("nodes: %zu  edges: %zu  avg degree: %s  max degree: %zu\n",
              stats.nodes, stats.edges,
              format_fixed(stats.avg_degree, 2).c_str(), stats.max_degree);
  std::printf("node weight: %s total  edge weight: %s total "
              "(range %s..%s)\n",
              format_fixed(stats.total_node_weight, 2).c_str(),
              format_fixed(stats.total_edge_weight, 2).c_str(),
              format_fixed(stats.min_edge_weight, 2).c_str(),
              format_fixed(stats.max_edge_weight, 2).c_str());
  const std::vector<std::size_t> hist =
      graph::degree_histogram(g.value());
  std::printf("degree histogram:");
  for (std::size_t d = 0; d < hist.size(); ++d)
    if (hist[d] > 0) std::printf(" %zu:%zu", d, hist[d]);
  std::printf("\n");
  return 0;
}

int cmd_generate(const Config& cfg) {
  graph::NetgenParams p;
  p.nodes = static_cast<std::size_t>(cfg.get_int("nodes", 1000));
  p.edges = static_cast<std::size_t>(cfg.get_int("edges", p.nodes * 5));
  p.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  p.components =
      static_cast<std::size_t>(cfg.get_int("components", 4));
  p.cluster_size =
      static_cast<std::size_t>(cfg.get_int("cluster_size", 8));
  std::fputs(graph::to_edge_list(graph::netgen_style(p)).c_str(), stdout);
  return 0;
}

int cmd_compress(const std::string& path, const Config& cfg) {
  const Result<graph::WeightedGraph> g = load_graph(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.error().message.c_str());
    return 1;
  }
  lpa::PropagationConfig config;
  config.coupling_threshold = cfg.get_double("threshold", 10.0);
  const std::vector<bool> pinned(g.value().num_nodes(), false);
  const lpa::CompressionPipelineResult result =
      lpa::compress_application(g.value(), pinned, config);
  const lpa::CompressionStats stats = result.aggregate_stats();
  std::printf("functions:            %zu -> %zu (%s%% reduction)\n",
              stats.original_nodes, stats.compressed_nodes,
              format_fixed(100.0 * stats.node_reduction(), 1).c_str());
  std::printf("edges:                %zu -> %zu\n", stats.original_edges,
              stats.compressed_edges);
  std::printf("components:           %zu\n", result.components.size());
  std::printf("absorbed edge weight: %s\n",
              format_fixed(stats.absorbed_edge_weight, 2).c_str());
  return 0;
}

std::unique_ptr<graph::Bipartitioner> make_cutter(const std::string& algo) {
  if (algo == "spectral")
    return std::make_unique<spectral::SpectralBipartitioner>();
  if (algo == "maxflow")
    return std::make_unique<mincut::MaxFlowBipartitioner>();
  if (algo == "kl")
    return std::make_unique<kl::KernighanLinBipartitioner>();
  if (algo == "fm") return std::make_unique<kl::FmBipartitioner>();
  if (algo == "multilevel")
    return std::make_unique<kl::MultilevelBipartitioner>();
  return nullptr;
}

int cmd_cut(const std::string& path, const Config& cfg) {
  const Result<graph::WeightedGraph> g = load_graph(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.error().message.c_str());
    return 1;
  }
  const std::string algo = cfg.get_string("algo", "spectral");
  graph::Bipartition cut;
  if (algo == "sw") {
    cut = mincut::stoer_wagner(g.value());
  } else {
    const std::unique_ptr<graph::Bipartitioner> cutter = make_cutter(algo);
    if (cutter == nullptr) {
      std::fprintf(stderr, "unknown algo '%s' (spectral|maxflow|kl|fm|multilevel|sw)\n",
                   algo.c_str());
      return 2;
    }
    cut = cutter->bipartition(g.value());
  }
  std::printf("algorithm:  %s\n", algo.c_str());
  std::printf("cut weight: %s\n", format_fixed(cut.cut_weight, 4).c_str());
  std::printf("side sizes: %zu / %zu\n", cut.size(0), cut.size(1));
  const std::string dot_path = cfg.get_string("dot", "");
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << graph::to_dot(g.value(), cut.side);
    std::printf("wrote %s\n", dot_path.c_str());
  }
  return 0;
}

int cmd_kway(const std::string& path, const Config& cfg) {
  const Result<graph::WeightedGraph> g = load_graph(path);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.error().message.c_str());
    return 1;
  }
  spectral::KwayOptions opts;
  opts.parts = static_cast<std::size_t>(cfg.get_int("parts", 4));
  const spectral::KwayResult r = spectral::kway_partition(g.value(), opts);
  std::printf("parts used: %u\n", r.parts_used);
  std::printf("total cut:  %s\n", format_fixed(r.total_cut, 4).c_str());
  std::vector<std::size_t> sizes(r.parts_used, 0);
  for (const auto p : r.part_of) ++sizes[p];
  for (std::uint32_t p = 0; p < r.parts_used; ++p)
    std::printf("  part %u: %zu nodes\n", p, sizes[p]);
  return 0;
}

Result<appmodel::Application> load_app(const std::string& path) {
  const Result<std::string> text = read_file(path);
  if (!text.ok()) return text.error();
  return appmodel::parse_app_dsl(text.value());
}

/// Exit summary of the observability layer: the trace drop counter plus
/// every histogram's and quantile window's totals. One glance answers
/// "did tracing drop events?" and "how many samples landed where?".
void print_obs_summary() {
  std::printf("obs summary: trace events=%zu dropped=%zu\n",
              obs::TraceCollector::global().event_count(),
              obs::TraceCollector::global().dropped_count());
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& [name, h] : snap.histograms)
    std::printf("obs summary: histogram %s count=%llu sum=%s\n",
                name.c_str(), static_cast<unsigned long long>(h.count),
                format_fixed(h.sum, 6).c_str());
  for (const auto& [name, q] : snap.quantiles)
    std::printf("obs summary: quantiles %s count=%llu window=%zu "
                "p50=%s p95=%s p99=%s\n",
                name.c_str(), static_cast<unsigned long long>(q.count),
                q.window_size, format_fixed(q.p50, 6).c_str(),
                format_fixed(q.p95, 6).c_str(),
                format_fixed(q.p99, 6).c_str());
}

int cmd_solve(const std::string& path, const Config& cfg, bool simulate,
              bool from_trace = false) {
  Result<appmodel::Application> parsed = [&]() -> Result<appmodel::Application> {
    if (!from_trace) return load_app(path);
    const Result<std::string> text = read_file(path);
    if (!text.ok()) return text.error();
    const Result<appmodel::TraceImport> imported =
        appmodel::import_trace(text.value());
    if (!imported.ok()) return imported.error();
    std::printf("trace: %zu records, %zu invocations, %ss traced\n",
                imported.value().records, imported.value().invocations,
                format_fixed(imported.value().total_traced_seconds, 3)
                    .c_str());
    return imported.value().app;
  }();
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const appmodel::Application& app = parsed.value();

  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();
  const std::size_t num_users = static_cast<std::size_t>(
      std::max<long long>(1, cfg.get_int("users", 1)));
  mec::MecSystem system{params_from(cfg), {}};
  system.users.assign(num_users, user);

  // Observability surface: tracing must be on BEFORE the solve so the
  // compress/cut/eigensolve spans land in the export.
  const std::string trace_path = cfg.get_string("trace", "");
  const bool dump_metrics = cfg.get_int("metrics", 0) != 0;
  if (!trace_path.empty()) obs::TraceCollector::global().enable();

  mec::PipelineOptions options;
  options.propagation.coupling_threshold = cfg.get_double("threshold", 10.0);
  const std::string algo = cfg.get_string("algo", "spectral");
  if (algo == "maxflow") options.backend = mec::CutBackend::kMaxFlow;
  if (algo == "kl") options.backend = mec::CutBackend::kKernighanLin;
  options.deadline.seconds = cfg.get_double("deadline", -1.0);
  const std::size_t threads = static_cast<std::size_t>(
      std::max<long long>(0, cfg.get_int("threads", 0)));
  std::unique_ptr<parallel::ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<parallel::ThreadPool>(threads);
    options.pool = pool.get();
  }
  mec::PipelineOffloader offloader(options);

  mec::OffloadingScheme scheme;
  std::string scheme_source = offloader.name() + " pipeline";
  const std::string scheme_path = cfg.get_string("scheme", "");
  if (!scheme_path.empty()) {
    const Result<std::string> text = read_file(scheme_path);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.error().message.c_str());
      return 1;
    }
    Result<mec::OffloadingScheme> loaded =
        mec::parse_scheme_text(text.value());
    if (!loaded.ok()) {
      std::fprintf(stderr, "scheme error: %s\n",
                   loaded.error().message.c_str());
      return 1;
    }
    scheme = std::move(loaded).value();
    if (!scheme.valid_for(system)) {
      std::fprintf(stderr,
                   "scheme error: shape does not fit this application "
                   "(or offloads a pinned function)\n");
      return 1;
    }
    scheme_source = "replayed from " + scheme_path;
  } else {
    scheme = offloader.solve(system);
    const mec::PipelineOffloader::SolveStats& stats = offloader.last_stats();
    std::printf("solver: %zu parts, %zu greedy moves, %ss\n",
                stats.num_parts, stats.greedy_moves,
                format_fixed(stats.total_seconds, 3).c_str());
    if (stats.degraded() || stats.deadline_expired)
      std::printf("solver degraded: %zu non-converged eigensolves, "
                  "%zu KL recuts, %zu all-remote fallbacks%s\n",
                  stats.spectral_nonconverged, stats.fallback_kl_cuts,
                  stats.fallback_all_remote,
                  stats.deadline_expired ? " (deadline expired)" : "");
  }
  const mec::SystemCost cost = mec::evaluate(system, scheme);

  std::printf("app '%s' (%zu functions) — %s\n", app.name().c_str(),
              app.num_functions(), scheme_source.c_str());
  for (std::size_t i = 0; i < app.num_functions(); ++i) {
    const appmodel::FunctionInfo& fn = app.function(i);
    std::printf("  %-20s -> %s%s\n", fn.name.c_str(),
                scheme.placement[0][i] == mec::Placement::kLocal ? "device"
                                                                 : "server",
                fn.unoffloadable ? " (pinned)" : "");
  }
  std::printf("analytic bill: E = %s  T = %s  E+T = %s\n",
              format_fixed(cost.total_energy, 3).c_str(),
              format_fixed(cost.total_time, 3).c_str(),
              format_fixed(cost.objective(), 3).c_str());

  const std::string out_path = cfg.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    mec::write_scheme(scheme, out);
    std::printf("wrote scheme to %s\n", out_path.c_str());
  }

  if (simulate) {
    const sim::SimReport batch = sim::simulate_scheme(system, scheme);
    std::printf("batch DES:     energy = %s  makespan = %s  "
                "(events: %zu)\n",
                format_fixed(batch.total_energy, 3).c_str(),
                format_fixed(batch.makespan, 3).c_str(), batch.events);
    if (sim::call_graph_is_acyclic(app)) {
      const std::vector<appmodel::Application> apps(system.users.size(), app);
      const auto dag = sim::execute_dag(system, apps, scheme);
      if (dag.ok())
        std::printf("task-DAG DES:  energy = %s  makespan = %s  "
                    "(events: %zu)\n",
                    format_fixed(dag.value().total_energy, 3).c_str(),
                    format_fixed(dag.value().makespan, 3).c_str(),
                    dag.value().events);
    } else {
      std::printf("task-DAG DES:  skipped (cyclic call structure)\n");
    }
  }

  // Observability dump happens last so the spans/counters from the solve
  // AND the simulation (if any) are included.
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open trace file %s\n",
                   trace_path.c_str());
      return 1;
    }
    obs::TraceCollector::global().write_chrome_trace(out);
    std::printf("wrote %zu trace events to %s (dropped %zu)\n",
                obs::TraceCollector::global().event_count(),
                trace_path.c_str(),
                obs::TraceCollector::global().dropped_count());
  }
  if (dump_metrics) {
    std::printf("--- metrics ---\n%s",
                obs::MetricsRegistry::global().to_text().c_str());
  }
  if (dump_metrics || !trace_path.empty()) print_obs_summary();
  return 0;
}

// ---------------------------------------------------------------------------
// serve: long-running solve loop with live telemetry.

volatile std::sig_atomic_t g_stop = 0;
void handle_stop_signal(int) { g_stop = 1; }

/// SIGTERM on the serving commands means DRAIN, not die: degrade new
/// requests, finish in-flight ones, dump the flight recorder, exit 0.
volatile std::sig_atomic_t g_drain = 0;
void handle_drain_signal(int) { g_drain = 1; }

int cmd_serve(const std::string& path, const Config& cfg) {
  const Result<appmodel::Application> parsed = load_app(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const appmodel::Application& app = parsed.value();

  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();
  const std::size_t num_users = static_cast<std::size_t>(
      std::max<long long>(1, cfg.get_int("users", 1)));
  const std::size_t num_servers = static_cast<std::size_t>(
      std::max<long long>(1, cfg.get_int("servers", 2)));

  const mec::SystemParams params = params_from(cfg);
  // The steady-state solve target (feeds mec.solve.latency each
  // iteration) and the multi-server deployment /healthz reports on.
  mec::MecSystem system{params, {}};
  system.users.assign(num_users, user);
  mec::MultiServerSystem msystem;
  msystem.device = params;
  msystem.servers.assign(
      num_servers, mec::ServerSpec{params.server_capacity, params.bandwidth,
                                   params.transmit_power});
  msystem.users.assign(num_users, user);
  if (!system.valid() || !msystem.valid()) {
    std::fprintf(stderr, "error: invalid system parameters\n");
    return 1;
  }

  const std::string dump_dir = cfg.get_string("dump_dir", "");
  if (!dump_dir.empty())
    obs::FlightRecorder::global().set_dump_dir(dump_dir);
  const std::string trace_path = cfg.get_string("trace", "");
  if (!trace_path.empty()) obs::TraceCollector::global().enable();

  // Fault script, replayed by ITERATION INDEX: an event at time t fires
  // just before iteration t solves. Same text format as the chaos
  // harness (sim/fault_script.hpp).
  sim::FaultScript script;
  const std::string faults_path = cfg.get_string("faults", "");
  if (!faults_path.empty()) {
    const Result<std::string> text = read_file(faults_path);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.error().message.c_str());
      return 1;
    }
    Result<sim::FaultScript> loaded = sim::FaultScript::parse(text.value());
    if (!loaded.ok()) {
      std::fprintf(stderr, "fault script error: %s\n",
                   loaded.error().message.c_str());
      return 1;
    }
    script = std::move(loaded).value();
  }
  const std::vector<sim::FaultEvent> faults = script.ordered();

  mec::FailoverOptions fopts;
  fopts.base.pipeline.deadline.seconds = cfg.get_double("deadline", -1.0);
  mec::FailoverController controller(msystem, fopts);

  // /healthz source. The callback runs on the server thread, so it only
  // copies this snapshot; the loop below refreshes it after every fault
  // (the controller itself is not thread-safe).
  mecoff::Mutex health_mutex;
  obs::serve::HealthStatus health;
  const auto refresh_health = [&] {
    obs::serve::HealthStatus fresh;
    const std::size_t alive = controller.alive_servers();
    if (controller.all_local_fallback()) {
      fresh.ok = false;
      fresh.reason = "degraded: all-local fallback (0/" +
                     std::to_string(num_servers) + " servers alive)";
    } else if (alive < num_servers) {
      fresh.ok = false;
      fresh.reason = "degraded: " + std::to_string(alive) + "/" +
                     std::to_string(num_servers) + " servers alive";
    }
    const mecoff::MutexLock lock(health_mutex);
    health = std::move(fresh);
  };
  refresh_health();

  obs::serve::TelemetryServer server;
  server.set_health_callback([&health_mutex, &health] {
    const mecoff::MutexLock lock(health_mutex);
    return health;
  });
  const auto port_arg = cfg.get_int("port", 0);
  if (port_arg < 0 || port_arg > 65535) {
    std::fprintf(stderr, "error: port must be in [0, 65535]\n");
    return 2;
  }
  const Result<std::uint16_t> bound =
      server.start(static_cast<std::uint16_t>(port_arg));
  if (!bound.ok()) {
    std::fprintf(stderr, "error: %s\n", bound.error().message.c_str());
    return 1;
  }
  std::printf("serving telemetry on 127.0.0.1:%u "
              "(/metrics /varz /healthz /flightz)\n",
              static_cast<unsigned>(bound.value()));
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  mec::PipelineOptions options;
  options.propagation.coupling_threshold = cfg.get_double("threshold", 10.0);
  options.deadline.seconds = cfg.get_double("deadline", -1.0);
  const std::size_t threads = static_cast<std::size_t>(
      std::max<long long>(0, cfg.get_int("threads", 0)));
  std::unique_ptr<parallel::ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<parallel::ThreadPool>(threads);
    options.pool = pool.get();
  }
  mec::PipelineOffloader offloader(options);

  const long long iterations = cfg.get_int("iterations", 0);  // 0 = ∞
  const long long interval_ms = cfg.get_int("interval", 100);
  std::size_t next_fault = 0;
  long long iter = 0;
  for (; g_stop == 0 && (iterations <= 0 || iter < iterations); ++iter) {
    while (next_fault < faults.size() &&
           faults[next_fault].time <= static_cast<double>(iter)) {
      const sim::FaultEvent& event = faults[next_fault++];
      const Result<mec::FailoverStep> step = [&]() -> Result<mec::FailoverStep> {
        switch (event.kind) {
          case sim::FaultKind::kServerCrash:
            return controller.on_server_failed(event.target);
          case sim::FaultKind::kServerRecover:
            return controller.on_server_recovered(event.target);
          case sim::FaultKind::kLinkDegrade:
            return controller.on_link_degraded(event.target, event.severity);
          case sim::FaultKind::kLinkRestore:
            return controller.on_link_restored(event.target);
          case sim::FaultKind::kUserDisconnect:
            return controller.on_user_disconnected(event.target);
        }
        return Error("unknown fault kind");
      }();
      std::printf("iteration %lld: %s%s%s\n", iter, event.describe().c_str(),
                  step.ok() ? "" : " rejected: ",
                  step.ok() ? "" : step.error().message.c_str());
      refresh_health();
    }
    (void)offloader.solve(system);
    if (interval_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  server.stop();

  std::printf("served %lld iterations, %llu http requests%s\n", iter,
              static_cast<unsigned long long>(server.requests_served()),
              g_stop != 0 ? " (interrupted)" : "");
  std::printf("flight recorder: %llu records, %llu anomalies, %llu dumps%s%s\n",
              static_cast<unsigned long long>(
                  obs::FlightRecorder::global().total_records()),
              static_cast<unsigned long long>(
                  obs::FlightRecorder::global().anomaly_count()),
              static_cast<unsigned long long>(
                  obs::FlightRecorder::global().dump_count()),
              obs::FlightRecorder::global().last_dump_path().empty()
                  ? ""
                  : ", last ",
              obs::FlightRecorder::global().last_dump_path().c_str());
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      obs::TraceCollector::global().write_chrome_trace(out);
      std::printf("wrote %zu trace events to %s (dropped %zu)\n",
                  obs::TraceCollector::global().event_count(),
                  trace_path.c_str(),
                  obs::TraceCollector::global().dropped_count());
    }
  }
  print_obs_summary();
  return 0;
}

// serve-solve: the online solve service — per-request ingest over
// HTTP, sharded across a pool, coalesced through the scheme cache.

mec::UserApp user_from_app(const appmodel::Application& app) {
  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();
  return user;
}

const char* source_name(serve::SolveSource source) {
  switch (source) {
    case serve::SolveSource::kSolved: return "miss";
    case serve::SolveSource::kCacheHit: return "hit";
    case serve::SolveSource::kCoalesced: return "coalesced";
    case serve::SolveSource::kShed: return "shed";
    case serve::SolveSource::kHedged: return "hedged";
    case serve::SolveSource::kDeadlineDegraded: return "deadline";
  }
  return "unknown";
}

/// Strict numeric option parsing for the serving commands: a PRESENT
/// but malformed value is a usage error (exit 2), never a silent
/// fallback — a typo'd duration= must not turn a bounded smoke run
/// into a forever-server.
bool strict_int(const Config& cfg, const char* key, long long fallback,
                long long& out) {
  out = fallback;
  if (!cfg.has(key)) return true;
  const std::string text = cfg.get_string(key, "");
  if (parse_int(text, out)) return true;
  std::fprintf(stderr, "usage error: %s= expects an integer, got '%s'\n",
               key, text.c_str());
  return false;
}

bool strict_double(const Config& cfg, const char* key, double fallback,
                   double& out) {
  out = fallback;
  if (!cfg.has(key)) return true;
  const std::string text = cfg.get_string(key, "");
  if (parse_double(text, out)) return true;
  std::fprintf(stderr, "usage error: %s= expects a number, got '%s'\n",
               key, text.c_str());
  return false;
}

int cmd_serve_solve(const std::string& path, const Config& cfg) {
  const Result<appmodel::Application> parsed = load_app(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const appmodel::Application& app = parsed.value();
  const mec::UserApp base_user = user_from_app(app);
  const mec::SystemParams params = params_from(cfg);

  long long threads_arg = 0;
  long long shards_arg = 0;
  long long cache_arg = 0;
  long long max_inflight = 0;
  long long selfcheck = 0;
  long long clients_arg = 0;
  long long port_arg = 0;
  long long brownout_arg = 0;
  long long timeline_period = 0;
  double duration = 0.0;
  double deadline_budget = -1.0;
  double hedge = 0.5;
  double brownout_p99 = 0.0;
  double latency_scale = 0.05;
  double timeline_interval = 0.0;
  if (!strict_int(cfg, "threads", 4, threads_arg) ||
      !strict_int(cfg, "shards", 4, shards_arg) ||
      !strict_int(cfg, "cache", 1024, cache_arg) ||
      !strict_int(cfg, "max_inflight", -1, max_inflight) ||
      !strict_int(cfg, "selfcheck", 0, selfcheck) ||
      !strict_int(cfg, "clients", 2, clients_arg) ||
      !strict_int(cfg, "port", 0, port_arg) ||
      !strict_int(cfg, "brownout", 0, brownout_arg) ||
      !strict_int(cfg, "timeline", 0, timeline_period) ||
      !strict_double(cfg, "duration", 0.0, duration) ||
      !strict_double(cfg, "deadline_budget", -1.0, deadline_budget) ||
      !strict_double(cfg, "hedge", 0.5, hedge) ||
      !strict_double(cfg, "brownout_p99", 0.0, brownout_p99) ||
      !strict_double(cfg, "latency_scale", 0.05, latency_scale) ||
      !strict_double(cfg, "timeline_interval", 0.0, timeline_interval))
    return 2;
  if (port_arg < 0 || port_arg > 65535) {
    std::fprintf(stderr, "usage error: port must be in [0, 65535]\n");
    return 2;
  }
  if (timeline_period < 0) {
    std::fprintf(stderr,
                 "usage error: timeline= expects a positive request "
                 "period\n");
    return 2;
  }
  if (timeline_interval < 0.0) {
    std::fprintf(stderr,
                 "usage error: timeline_interval= expects a positive "
                 "number of seconds\n");
    return 2;
  }
  if (timeline_period > 0 && timeline_interval > 0.0) {
    std::fprintf(stderr,
                 "usage error: timeline= (tick mode) and "
                 "timeline_interval= (wall mode) are mutually "
                 "exclusive\n");
    return 2;
  }
  // The correlation-id header is caller-facing surface: a name with
  // spaces or ':' would corrupt the response head, so it is a usage
  // error, same contract as the numeric knobs.
  const std::string rid_header =
      cfg.get_string("request_id_header", "X-Mecoff-Request-Id");
  if (rid_header.empty() ||
      rid_header.find(' ') != std::string::npos ||
      rid_header.find(':') != std::string::npos) {
    std::fprintf(stderr,
                 "usage error: request_id_header= expects a header name "
                 "without spaces or ':', got '%s'\n", rid_header.c_str());
    return 2;
  }
  std::string rid_header_lower = rid_header;
  for (char& ch : rid_header_lower)
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));

  const std::size_t threads =
      static_cast<std::size_t>(std::max<long long>(1, threads_arg));
  parallel::ThreadPool pool(threads);

  const std::size_t shards =
      static_cast<std::size_t>(std::max<long long>(1, shards_arg));
  serve::FaultInjector::Options fault_options;
  fault_options.shards = shards;
  fault_options.latency_scale_seconds = latency_scale;
  serve::FaultInjector injector(fault_options);
  const std::string faults_path = cfg.get_string("faults", "");
  if (!faults_path.empty()) {
    const Result<std::string> text = read_file(faults_path);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.error().message.c_str());
      return 1;
    }
    const Result<sim::FaultScript> script =
        sim::FaultScript::parse(text.value());
    if (!script.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", faults_path.c_str(),
                   script.error().message.c_str());
      return 1;
    }
    injector.arm(script.value());
    std::printf("armed %zu fault events from %s "
                "(event times = request numbers)\n",
                script.value().size(), faults_path.c_str());
  }

  const std::string dump_dir = cfg.get_string("dump_dir", "");
  if (!dump_dir.empty())
    obs::FlightRecorder::global().set_dump_dir(dump_dir);

  serve::SolveServiceOptions sopts;
  sopts.pool = &pool;
  sopts.shards = shards;
  sopts.cache.capacity =
      static_cast<std::size_t>(std::max<long long>(1, cache_arg));
  if (max_inflight >= 0)
    sopts.max_in_flight = static_cast<std::size_t>(max_inflight);
  sopts.default_deadline_seconds = deadline_budget;
  sopts.hedge_fraction = hedge;  // the service clamps out-of-range
  if (brownout_arg > 0) {
    sopts.brownout.enabled = true;
    sopts.brownout.tier1_in_flight = static_cast<std::size_t>(brownout_arg);
    sopts.brownout.tier2_in_flight =
        static_cast<std::size_t>(2 * brownout_arg);
    sopts.brownout.tier3_in_flight =
        static_cast<std::size_t>(4 * brownout_arg);
    sopts.brownout.p99_bump_seconds = brownout_p99;
  }
  if (!faults_path.empty()) sopts.injector = &injector;
  sopts.solver.propagation.coupling_threshold =
      cfg.get_double("threshold", 10.0);
  const std::string algo = cfg.get_string("algo", "spectral");
  if (algo == "maxflow") sopts.solver.backend = mec::CutBackend::kMaxFlow;
  if (algo == "kl") sopts.solver.backend = mec::CutBackend::kKernighanLin;
  sopts.solver.deadline.seconds = cfg.get_double("deadline", -1.0);
  serve::SolveService service(sopts);

  // GET /timez: the metrics timeline. timeline=N samples every N
  // /solve requests (tick mode — deterministic, replayable);
  // timeline_interval=S samples every S seconds from the idle loop
  // (wall mode). Neither knob -> 503 from the route.
  obs::Timeline::Options timeline_options;
  if (timeline_period > 0) {
    timeline_options.mode = obs::Timeline::Mode::kTick;
    timeline_options.tick_period =
        static_cast<std::uint64_t>(timeline_period);
  } else if (timeline_interval > 0.0) {
    timeline_options.mode = obs::Timeline::Mode::kWall;
    timeline_options.interval_seconds = timeline_interval;
  }
  obs::Timeline timeline(timeline_options);
  const bool timeline_enabled =
      timeline_period > 0 || timeline_interval > 0.0;

  obs::serve::TelemetryServer server;
  if (timeline_enabled) server.set_timeline(&timeline);
  // /varz gains the cache-health section operators watch during chaos:
  // occupancy, eviction pressure, rider timeouts, and how stale the
  // oldest ready entry is.
  server.add_varz_section("scheme_cache", [&service] {
    const serve::SolveService::Stats st = service.stats();
    return "{\"entries\":" + std::to_string(st.cache.entries) +
           ",\"evictions\":" + std::to_string(st.cache.evictions) +
           ",\"wait_timeouts\":" + std::to_string(st.cache.timeouts) +
           ",\"oldest_entry_age_seconds\":" +
           format_general(st.cache.oldest_entry_age_seconds, 6) + "}";
  });
  // POST /solve: body = app DSL (empty = the positional app); the
  // handler runs on the HTTP connection workers — external threads to
  // the pool, exactly what SolveService's threading contract wants.
  server.handle("/solve", [&service, &app, &base_user, &params, &timeline,
                           &rid_header, &rid_header_lower](
                              const obs::serve::HttpRequest& req) {
    obs::serve::HttpResponse resp;
    timeline.note_request();  // tick-mode driver; counts in any mode
    serve::SolveRequest sr;
    sr.params = params;
    // Caller-supplied correlation id: the request header (parser
    // lowercases names) must be a positive integer; the service
    // assigns one otherwise. Echoed on the response header and the
    // body's cache line either way.
    const auto rid_it = req.headers.find(rid_header_lower);
    if (rid_it != req.headers.end()) {
      long long caller_id = 0;
      if (!parse_int(rid_it->second, caller_id) || caller_id <= 0) {
        resp.status = 400;
        resp.body = "bad request id: '" + rid_it->second + "'\n";
        return resp;
      }
      sr.request_id = static_cast<std::uint64_t>(caller_id);
    }
    std::vector<std::string> names;
    if (req.body.empty()) {
      sr.user = base_user;
      names.reserve(app.num_functions());
      for (std::size_t i = 0; i < app.num_functions(); ++i)
        names.push_back(app.function(i).name);
    } else {
      const Result<appmodel::Application> posted =
          appmodel::parse_app_dsl(req.body);
      if (!posted.ok()) {
        resp.status = 400;
        resp.body = "app error: " + posted.error().message + "\n";
        return resp;
      }
      sr.user = user_from_app(posted.value());
      names.reserve(posted.value().num_functions());
      for (std::size_t i = 0; i < posted.value().num_functions(); ++i)
        names.push_back(posted.value().function(i).name);
    }
    const Result<serve::SolveResponse> solved = service.solve(sr);
    if (!solved.ok()) {
      resp.status = 400;
      resp.body = "solve error: " + solved.error().message + "\n";
      return resp;
    }
    const serve::SolveResponse& r = solved.value();
    resp.extra_headers.push_back(
        {rid_header, std::to_string(r.request_id)});
    resp.body = std::string("cache: ") + source_name(r.source) + " id=" +
                std::to_string(r.request_id);
    if (r.degraded && r.source != serve::SolveSource::kShed)
      resp.body += " degraded";
    resp.body += '\n';
    for (std::size_t i = 0; i < r.placement.size(); ++i) {
      resp.body += names[i];
      resp.body += r.placement[i] == mec::Placement::kLocal ? " device\n"
                                                            : " server\n";
    }
    return resp;
  });

  // Handlers BEFORE the banner: once "serving solves" is visible a
  // supervisor may signal immediately (the drain ctest does).
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_drain_signal);

  const Result<std::uint16_t> bound =
      server.start(static_cast<std::uint16_t>(port_arg));
  if (!bound.ok()) {
    std::fprintf(stderr, "error: %s\n", bound.error().message.c_str());
    return 1;
  }
  std::printf("serving solves on 127.0.0.1:%u "
              "(/solve /metrics /varz /healthz /flightz%s)\n",
              static_cast<unsigned>(bound.value()),
              timeline_enabled ? " /timez" : "");
  std::fflush(stdout);

  if (selfcheck > 0) {
    // Self-contained closed loop on the shared load harness — the same
    // machinery bench_serve and bench_soak drive, so plain-sh ctest
    // smokes the whole ingest → shard → cache → solve path. The
    // reference placement comes from a cold solve with the same solver
    // configuration; every full-quality served placement must match it
    // bit for bit (cache hits are REUSE, not approximation).
    mec::PipelineOptions ref_options = sopts.solver;
    ref_options.pool = &pool;
    mec::PipelineOffloader reference(ref_options);
    mec::MecSystem ref_system{params, {base_user}};
    const mec::OffloadingScheme ref_scheme = reference.solve(ref_system);

    const std::size_t clients =
        static_cast<std::size_t>(std::max<long long>(1, clients_arg));
    const auto total = static_cast<std::size_t>(selfcheck);
    bench::LoadOptions load;
    load.clients = clients;
    load.total_requests = total;
    load.deadline_seconds = deadline_budget;
    const bench::LoadOutcome outcome = bench::run_load(
        service, {serve::SolveRequest{base_user, params}},
        {ref_scheme.placement[0]}, load);
    std::printf("selfcheck: %zu requests from %zu clients, "
                "%zu mismatches, %zu errors\n",
                total, clients, outcome.mismatches, outcome.errors);
  } else {
    const Stopwatch up;
    while (g_stop == 0 && g_drain == 0 &&
           (duration <= 0.0 || up.elapsed_seconds() < duration)) {
      // Wall-mode timeline driver: no extra thread, the idle loop IS
      // the timer (cheap no-op in tick/manual mode).
      timeline.poll_wall();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  if (g_drain != 0) {
    // Graceful drain: new requests degrade to all-local instantly,
    // in-flight ones run to completion, the flight recorder dumps its
    // post-mortem EXACTLY once, and we exit 0 — SIGTERM is a handoff,
    // not a failure.
    std::printf("drain: SIGTERM received, degrading new requests\n");
    service.begin_drain();
    const bool idle = service.await_idle(/*timeout_seconds=*/10.0);
    server.stop();
    std::printf("drain: in-flight %s\n",
                idle ? "work complete" : "work NOT idle after 10 s");
    const Result<std::string> dumped =
        obs::FlightRecorder::global().dump_now("drain");
    if (dumped.ok())
      std::printf("drain: flight recorder dumped to %s\n",
                  dumped.value().c_str());
    else
      std::printf("drain: flight recorder dump skipped (%s)\n",
                  dumped.error().message.c_str());
  } else {
    server.stop();
  }

  const serve::SolveService::Stats st = service.stats();
  std::printf("serve-solve: %llu requests, %llu cold solves, "
              "%llu cache hits, %llu coalesced, %llu shed, %llu degraded\n",
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.solved),
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.coalesced),
              static_cast<unsigned long long>(st.shed),
              static_cast<unsigned long long>(st.degraded));
  std::printf("resilience: %llu hedged, %llu deadline-degraded, "
              "%llu drained, %llu brownout-shed, %llu shard failovers\n",
              static_cast<unsigned long long>(st.hedged),
              static_cast<unsigned long long>(st.deadline_degraded),
              static_cast<unsigned long long>(st.drained),
              static_cast<unsigned long long>(st.brownout_shed),
              static_cast<unsigned long long>(st.shard_failovers));
  std::printf("scheme cache: %zu entries, %llu evictions, "
              "%llu wait timeouts, oldest ready %s s\n",
              st.cache.entries,
              static_cast<unsigned long long>(st.cache.evictions),
              static_cast<unsigned long long>(st.cache.timeouts),
              format_general(st.cache.oldest_entry_age_seconds, 3).c_str());
  std::printf("served %llu http requests%s\n",
              static_cast<unsigned long long>(server.requests_served()),
              g_drain != 0   ? " (drained)"
              : g_stop != 0 ? " (interrupted)"
                            : "");
  print_obs_summary();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // key=value options start after the positional file argument (if any).
  const bool has_file = argc >= 3 && std::strchr(argv[2], '=') == nullptr;
  const std::string file = has_file ? argv[2] : "";
  const int opt_start = has_file ? 2 : 1;
  const Config cfg =
      Config::from_args(argc - opt_start, argv + opt_start);

  if (command == "generate") return cmd_generate(cfg);
  if (command == "compress" && has_file) return cmd_compress(file, cfg);
  if (command == "cut" && has_file) return cmd_cut(file, cfg);
  if (command == "solve" && has_file) return cmd_solve(file, cfg, false);
  if (command == "simulate" && has_file) return cmd_solve(file, cfg, true);
  if (command == "kway" && has_file) return cmd_kway(file, cfg);
  if (command == "stats" && has_file) return cmd_stats(file);
  if (command == "trace" && has_file)
    return cmd_solve(file, cfg, false, /*from_trace=*/true);
  if (command == "serve" && has_file) return cmd_serve(file, cfg);
  if (command == "serve-solve" && has_file) return cmd_serve_solve(file, cfg);
  return usage();
}
