#!/usr/bin/env python3
"""mecoff project linter: concurrency & determinism conventions.

Enforces repo-specific rules that clang-tidy cannot express:

  raw-sync          std::mutex / std::condition_variable / std::lock_guard
                    and friends are banned in src/, tools/ and bench/ — use
                    the annotated wrappers in
                    src/common/thread_annotations.hpp so clang's
                    -Wthread-safety analysis sees every lock site.
  float-format      floating-point serialization must go through
                    format_fixed/format_general (std::to_chars): no
                    std::to_string on float/double, no printf-style %f/%g/%e
                    conversions. to_string and printf follow LC_NUMERIC and
                    produce locale-dependent bytes, breaking golden files.
  nondeterminism    rand()/srand()/std::random_device/time()-seeding are
                    banned in solver/simulation code — all randomness flows
                    through the seeded mecoff::Rng so runs replay exactly.
  no-endl           std::endl is a flush in disguise; use '\n'.
  obs-facade        outside src/obs/, observability is reached through the
                    MECOFF_* macros (src/obs/obs.hpp), never by naming
                    TraceSpan / MetricsRegistry::global directly — direct
                    calls break the MECOFF_OBS_DISABLED compile-out. Files
                    that deliberately embed the obs stack (the CLI's serve
                    modes, the bench metrics reporter) are listed in
                    OBS_FACADE_ALLOWLIST.
  reinterpret-cast  reinterpret_cast appears only at audited sites listed
                    in CAST_ALLOWLIST (currently the sockaddr helper in
                    http_server.cpp), each confined to a named helper.
  result-contract   Result<T> is [[nodiscard]] (common/result.hpp); this
                    rule adds what the compiler cannot see: (a) naked
                    .value() chained directly onto a call — the error
                    message is thrown away untested; check ok() first or
                    bind the Result (std::move(r).value() after an ok()
                    check is the sanctioned unwrap spelling and is exempt);
                    (b) a statement-position call to a function declared
                    `Result<...> name(...)` whose return value is
                    discarded. Deliberate discards go in
                    RESULT_DISCARD_ALLOWLIST with a justification.

Rules raw-sync, float-format, nondeterminism, reinterpret-cast and
result-contract scan src/, tools/ and bench/; no-endl scans every tree
(including examples/); obs-facade scans the same trees minus src/obs/
and the allowlisted embedders.

Usage:
  lint_mecoff.py [--json] [--root DIR]          # scan the source tree
  lint_mecoff.py [--json] FILE [FILE...]        # scan explicit files
                                                #  (all rules, any path —
                                                #   used by test fixtures)

Exit codes: 0 clean, 1 findings, 2 usage/IO error.

stdlib-only; runs as a ctest (label: lint) and a CI step.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

SCHEMA = "mecoff.lint.v1"

# Directories scanned in tree mode, relative to the repo root.
TREE_DIRS = ("src", "tools", "bench", "examples")
CXX_EXTENSIONS = (".cpp", ".hpp", ".cc", ".h")

# The one file allowed to name raw std synchronization primitives: it
# wraps them.
SYNC_WRAPPER = "src/common/thread_annotations.hpp"

# reinterpret_cast budget per file: path -> max occurrences. Anything
# not listed gets 0.
CAST_ALLOWLIST = {
    # POSIX sockaddr ABI cast, confined to the as_sockaddr() helper.
    "src/obs/serve/http_server.cpp": 1,
}

# Files that deliberately embed the obs stack instead of going through
# the MECOFF_* macros. Both are tools that EXIST to surface telemetry:
# they are never compiled under MECOFF_OBS_DISABLED expectations — the
# registry class itself stays compiled in either way.
OBS_FACADE_ALLOWLIST = {
    # The CLI's serve/serve-solve modes mount the telemetry server and
    # print registry summaries; reading the registry directly is the
    # feature.
    "tools/mecoff_cli.cpp",
    # The bench metrics reporter dumps the registry as JSON for
    # tools/bench_gate.py; it already guards on MECOFF_OBS_DISABLED.
    "bench/support/reporting.cpp",
}

# (path, function) pairs whose discarded Result return is deliberate.
# Every entry needs a comment saying why ignoring the error is correct.
RESULT_DISCARD_ALLOWLIST = set()

RAW_SYNC_PATTERN = re.compile(
    r"std::(?:mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|scoped_lock|unique_lock|shared_lock)\b"
)

# printf-style floating-point conversions inside string literals:
# %[flags][width][.precision][length]{f,F,e,E,g,G,a,A}
PRINTF_FLOAT_PATTERN = re.compile(
    r"%[-+ #0]*(?:\d+|\*)?(?:\.(?:\d+|\*))?[lL]?[fFeEgGaA]"
)

TO_STRING_CALL_PATTERN = re.compile(r"std::to_string\s*\(\s*([^()]*?)\s*\)")
FLOAT_LITERAL_PATTERN = re.compile(
    r"^(?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+)[fF]?$|^\d+\.\d*[fF]$"
)
FLOAT_CAST_PATTERN = re.compile(r"^static_cast<\s*(?:double|float|long double)\s*>")
FLOAT_DECL_PATTERN = re.compile(
    r"\b(?:double|float|long double)\s+(\w+)\s*[=;,)({]"
)

NONDET_PATTERNS = (
    (re.compile(r"(?<![\w:])(?:std::)?rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w:])(?:std::)?srand\s*\("), "srand()"),
    (re.compile(r"std::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time() seeding"),
)

ENDL_PATTERN = re.compile(r"std::endl\b")

OBS_DIRECT_PATTERNS = (
    (re.compile(r"\bobs::TraceSpan\b|(?<![\w:])TraceSpan\b"),
     "TraceSpan (use MECOFF_TRACE_SPAN)"),
    (re.compile(r"\bMetricsRegistry::global\b"),
     "MetricsRegistry::global (use MECOFF_COUNTER / MECOFF_GAUGE)"),
)

CAST_PATTERN = re.compile(r"\breinterpret_cast\b")

# Function (or method) names declared as `Result<...> name(...)`.
# Harvested from EVERY scanned file before the per-file checks run, so
# a call site in one file sees declarations from another.
RESULT_DECL_PATTERN = re.compile(
    r"\bResult<[^;{}()]*>\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\(")

# `...).value(` — .value() chained directly onto a call result.
NAKED_VALUE_PATTERN = re.compile(r"\)\s*\.\s*value\s*\(")
# The sanctioned unwrap: std::move(<already-checked lvalue>).value().
STD_MOVE_TAIL_PATTERN = re.compile(r"(?:std\s*::\s*)?move\s*$")


def find_matching_paren(code, open_idx):
    """Index of the ')' matching code[open_idx] == '(', or None."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return None


def find_open_paren(code, close_idx):
    """Index of the '(' matching code[close_idx] == ')', or None."""
    depth = 0
    for i in range(close_idx, -1, -1):
        if code[i] == ")":
            depth += 1
        elif code[i] == "(":
            depth -= 1
            if depth == 0:
                return i
    return None


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def to_json(self):
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text, keep_literals):
    """Blank out comments (and optionally string/char literals) while
    preserving line structure, so regex rules don't fire on prose and
    reported line numbers stay exact."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                if text[i - 1 : i] == "R" or text[i - 2 : i] in ('uR', 'UR'):
                    match = re.match(r'"([^ ()\\\t\n]{0,16})\(', text[i:])
                    if match:
                        raw_terminator = ")" + match.group(1) + '"'
                        state = "raw"
                        out.append(c)
                        i += 1
                        continue
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(c + nxt if keep_literals else "  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(c if keep_literals else (c if c == "\n" else " "))
            i += 1
        else:  # raw
            if text.startswith(raw_terminator, i):
                out.append(raw_terminator)
                i += len(raw_terminator)
                state = "code"
                continue
            out.append(c if (keep_literals or c == "\n") else " ")
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def is_float_expression(arg, float_vars):
    """Heuristic: does this std::to_string argument look floating-point?"""
    arg = arg.strip()
    if not arg:
        return False
    if FLOAT_LITERAL_PATTERN.match(arg):
        return True
    if FLOAT_CAST_PATTERN.match(arg):
        return True
    # A bare identifier (optionally member access) declared as a float
    # type earlier in the file.
    tail = arg.split(".")[-1].split("->")[-1].strip()
    return tail in float_vars


def in_tree_scope(rel, *prefixes):
    rel = rel.replace(os.sep, "/")
    return any(rel == p or rel.startswith(p + "/") for p in prefixes)


def check_file(rel, code, code_with_literals, findings, tree_mode,
               result_names):
    """Run every applicable rule over one pre-stripped file.

    In tree mode rules apply only to their designated subtrees; with
    explicit file arguments (fixture mode) every rule applies.
    `result_names` is the cross-file harvest of functions declared to
    return Result<...> (see RESULT_DECL_PATTERN).
    """
    apply_src_rules = (not tree_mode) or in_tree_scope(
        rel, "src", "tools", "bench")

    # raw-sync: wrapper-only synchronization.
    if apply_src_rules and rel != SYNC_WRAPPER:
        for match in RAW_SYNC_PATTERN.finditer(code):
            findings.append(Finding(
                "raw-sync", rel, line_of(code, match.start()),
                f"raw {match.group(0)} — use mecoff::Mutex / MutexLock / "
                f"CondVar from common/thread_annotations.hpp so the clang "
                f"thread-safety analysis sees this lock site"))

    # float-format: locale-dependent float serialization.
    if apply_src_rules:
        float_vars = set(FLOAT_DECL_PATTERN.findall(code))
        for match in TO_STRING_CALL_PATTERN.finditer(code):
            if is_float_expression(match.group(1), float_vars):
                findings.append(Finding(
                    "float-format", rel, line_of(code, match.start()),
                    f"std::to_string({match.group(1).strip()}) on a "
                    f"floating-point value — use format_fixed/format_general "
                    f"(common/strings.hpp); to_string follows LC_NUMERIC"))
        for match in PRINTF_FLOAT_PATTERN.finditer(code_with_literals):
            # Only flag conversions inside string literals; the stripped
            # view keeps literals, so confirm a quote opens this line
            # before the match (cheap and good enough for our tree).
            line_start = code_with_literals.rfind("\n", 0, match.start()) + 1
            prefix = code_with_literals[line_start:match.start()]
            if prefix.count('"') % 2 == 1:
                findings.append(Finding(
                    "float-format", rel,
                    line_of(code_with_literals, match.start()),
                    f"printf float conversion '{match.group(0)}' — use "
                    f"format_fixed/format_general (common/strings.hpp); "
                    f"printf follows LC_NUMERIC"))

    # nondeterminism: unseeded/wall-clock randomness in solver/sim code.
    if apply_src_rules:
        for pattern, name in NONDET_PATTERNS:
            for match in pattern.finditer(code):
                findings.append(Finding(
                    "nondeterminism", rel, line_of(code, match.start()),
                    f"{name} — all randomness must flow through the seeded "
                    f"mecoff::Rng (common/rng.hpp) so runs replay exactly"))

    # no-endl: applies to every scanned tree (src, tools, bench, examples).
    for match in ENDL_PATTERN.finditer(code):
        findings.append(Finding(
            "no-endl", rel, line_of(code, match.start()),
            "std::endl flushes on every use — write '\\n'"))

    # obs-facade: direct obs types outside src/obs/, except the listed
    # deliberate embedders.
    obs_scope = (not tree_mode) or (
        in_tree_scope(rel, "src", "tools", "bench")
        and not in_tree_scope(rel, "src/obs")
        and rel not in OBS_FACADE_ALLOWLIST)
    if obs_scope:
        for pattern, name in OBS_DIRECT_PATTERNS:
            for match in pattern.finditer(code):
                findings.append(Finding(
                    "obs-facade", rel, line_of(code, match.start()),
                    f"direct use of {name} outside src/obs/ — the MECOFF_* "
                    f"macros compile out under MECOFF_OBS_DISABLED; direct "
                    f"calls do not"))

    # reinterpret-cast: audited-sites-only.
    if apply_src_rules:
        budget = CAST_ALLOWLIST.get(rel, 0)
        matches = list(CAST_PATTERN.finditer(code))
        if len(matches) > budget:
            for match in matches[budget:]:
                findings.append(Finding(
                    "reinterpret-cast", rel, line_of(code, match.start()),
                    f"reinterpret_cast beyond this file's audited budget "
                    f"({budget}) — confine the cast to a named, commented "
                    f"helper and extend CAST_ALLOWLIST in tools/"
                    f"lint_mecoff.py with the justification"))

    # result-contract (a): naked .value() chained onto a call.
    if apply_src_rules:
        for match in NAKED_VALUE_PATTERN.finditer(code):
            open_idx = find_open_paren(code, match.start())
            if open_idx is not None and STD_MOVE_TAIL_PATTERN.search(
                    code[:open_idx]):
                continue  # std::move(checked).value() — sanctioned unwrap
            findings.append(Finding(
                "result-contract", rel, line_of(code, match.start()),
                "naked .value() on a call result — the error path is "
                "untested; bind the Result, check ok(), then unwrap with "
                "std::move(r).value()"))

    # result-contract (b): statement-position call to a Result-returning
    # function with the return value discarded.
    if apply_src_rules and result_names:
        check_discarded_results(code, rel, result_names, findings)
    return 0


def check_discarded_results(code, rel, result_names, findings):
    """Flag `f(...);` statements where f is declared to return Result."""
    name_alt = "|".join(sorted(re.escape(n) for n in result_names))
    call_pattern = re.compile(
        r"(?:[A-Za-z_]\w*\s*(?:\.|->)\s*|(?:[A-Za-z_]\w*\s*::\s*)+)?"
        r"\b(" + name_alt + r")\s*\(")
    for match in call_pattern.finditer(code):
        start = match.start()
        # Statement position: the previous non-whitespace character ends
        # a statement or opens a block (or this is the file start).
        j = start - 1
        while j >= 0 and code[j] in " \t\n":
            j -= 1
        if j >= 0 and code[j] not in ";{}":
            continue
        open_idx = code.index("(", match.end(1))
        close_idx = find_matching_paren(code, open_idx)
        if close_idx is None:
            continue
        k = close_idx + 1
        while k < len(code) and code[k] in " \t\n":
            k += 1
        if k >= len(code) or code[k] != ";":
            continue  # chained / compared / part of a larger expression
        name = match.group(1)
        if (rel, name) in RESULT_DISCARD_ALLOWLIST:
            continue
        findings.append(Finding(
            "result-contract", rel, line_of(code, start),
            f"discarded Result from {name}(...) — handle or propagate the "
            f"error (or add ({rel!r}, {name!r}) to RESULT_DISCARD_ALLOWLIST "
            f"with a justification)"))


def collect_tree_files(root):
    files = []
    for tree_dir in TREE_DIRS:
        base = os.path.join(root, tree_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        description="mecoff concurrency & determinism linter")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--root", default=None,
                        help="repo root for tree mode (default: the "
                             "directory containing tools/)")
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (fixture mode: every "
                             "rule applies regardless of path)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)

    tree_mode = not args.files
    if args.files:
        paths = []
        for path in args.files:
            abspath = os.path.abspath(path)
            rel = os.path.relpath(abspath, root)
            if rel.startswith(".."):
                rel = os.path.basename(abspath)
            paths.append((abspath, rel))
    else:
        tree_files = collect_tree_files(root)
        if not tree_files:
            print(f"lint_mecoff: no sources found under {root}",
                  file=sys.stderr)
            return 2
        paths = [(p, os.path.relpath(p, root)) for p in tree_files]

    # Phase 1: read + strip every file once, harvesting Result-returning
    # function names across the whole scan set.
    records = []
    result_names = set()
    for abspath, rel in paths:
        try:
            with open(abspath, "r", encoding="utf-8",
                      errors="replace") as handle:
                raw = handle.read()
        except OSError as err:
            print(f"lint_mecoff: cannot read {abspath}: {err}",
                  file=sys.stderr)
            return 2
        rel = rel.replace(os.sep, "/")
        code = strip_comments(raw, keep_literals=False)
        code_with_literals = strip_comments(raw, keep_literals=True)
        result_names.update(RESULT_DECL_PATTERN.findall(code))
        records.append((rel, code, code_with_literals))

    # Phase 2: the per-file rules.
    findings = []
    status = 0
    for rel, code, code_with_literals in records:
        status = max(status, check_file(rel, code, code_with_literals,
                                        findings, tree_mode, result_names))

    if status == 2:
        return 2

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if args.json:
        print(json.dumps({
            "schema": SCHEMA,
            "findings": [f.to_json() for f in findings],
            "count": len(findings),
        }, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        print(f"lint_mecoff: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
