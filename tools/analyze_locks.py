#!/usr/bin/env python3
"""Lock-order analyzer for the mecoff tree (stdlib only).

Builds the lock-acquisition graph out of `src/` and checks it against
the documented lock order. Inputs, all parsed statically:

  * `Mutex` member/file-scope declarations (the `mecoff::Mutex`
    wrapper from common/thread_annotations.hpp) -- the mutex
    inventory, qualified by enclosing class (`TraceCollector::
    ThreadLog::mutex`).
  * `MutexLock guard(<expr>);` acquisition sites. A guard is held to
    the end of its innermost enclosing brace scope; a second
    acquisition inside that scope is an observed nesting edge.
  * Method calls on members whose type owns a mutex (`latency_window_
    .record(...)` where `Quantiles latency_window_` and `Quantiles`
    owns `mutex_`) -- an acquisition of the callee class's mutex,
    unless the method name ends in `_locked` (the repo's "caller
    already holds it" convention).
  * Thread-safety vocabulary: `GUARDED_BY(m)` / `EXCLUDES(m)`
    references must resolve to a known mutex; `REQUIRES(m)` on a
    function definition makes the body a hold of `m`; a `Class::
    *_locked` method body is an implied hold of every `Class` mutex.
  * Documented order: structured comments of the form
        // lock-order: Outer::mutex_ -> Inner::mutex_
    (see src/obs/trace.hpp). These are the ground truth the observed
    graph is checked against.

Checks (rule names as emitted):

  lock-order-cycle         cycle in the union of documented and
                           observed edges
  lock-order-inversion     observed nesting A -> B while the
                           documented order has a path B => A
  undocumented-lock-nesting observed nesting with no documented
                           A => B path -- every real nesting must be
                           declared in a lock-order comment
  self-deadlock            acquiring a mutex already held (directly,
                           or from a `_locked`/REQUIRES context that
                           implies it is held)
  unknown-mutex            a lock-order comment or annotation names a
                           mutex that does not exist in the inventory

Usage:
  analyze_locks.py [--json] [--root DIR]      # scan DIR/src (tree mode)
  analyze_locks.py [--json] FILE...           # scan exactly FILE... (fixtures)

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
JSON schema: mecoff.locks.v1 (see --json).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint_mecoff import strip_comments  # noqa: E402  (same-dir tool import)

SCHEMA = "mecoff.locks.v1"
SOURCE_EXTENSIONS = (".cpp", ".cc", ".hpp", ".h")

DOC_EDGE_PATTERN = re.compile(
    r"lock-order:\s*([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*->"
    r"\s*([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)")
MUTEX_DECL_PATTERN = re.compile(
    r"(?:mecoff\s*::\s*)?\bMutex\s+([A-Za-z_]\w*)\s*[;={]")
ACQUIRE_PATTERN = re.compile(
    r"\b(?:mecoff\s*::\s*)?MutexLock\s+[A-Za-z_]\w*\s*\(\s*([^()]*?)\s*\)")
ANNOTATION_PATTERN = re.compile(
    r"\b(GUARDED_BY|REQUIRES|EXCLUDES)\s*\(([^()]*)\)")
NAMESPACE_HEAD_PATTERN = re.compile(
    r"\bnamespace(?:\s+[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)?\s*$")
CLASS_HEAD_PATTERN = re.compile(
    r"\b(?:class|struct|union)\s+(?:\[\[[^\]]*\]\]\s*)*(?:\w+\s+)*?"
    r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::(?!:)[^;{]*)?$")
FUNC_NAME_PATTERN = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*)(~?[A-Za-z_]\w*)\s*\(")


class Scope:
    __slots__ = ("start", "end", "kind", "name", "qual", "parent")

    def __init__(self, start, kind, name, qual, parent):
        self.start = start
        self.end = None
        self.kind = kind  # file | namespace | class | function | block
        self.name = name
        self.qual = qual  # qualifier components for out-of-line functions
        self.parent = parent


def classify_head(pending):
    """Classify the text between the previous `{`/`}`/`;` and an
    opening `{`: what kind of scope does this brace introduce?"""
    text = pending.strip()
    if NAMESPACE_HEAD_PATTERN.search(text):
        return "namespace", None, None
    match = CLASS_HEAD_PATTERN.search(text)
    if match:
        return "class", match.group(1), None
    if "(" in text:
        match = FUNC_NAME_PATTERN.search(text)
        if match:
            qual = [c.strip() for c in match.group(1).split("::") if c.strip()]
            return "function", match.group(2), qual
    return "block", None, None


def parse_scopes(code):
    """One lexical walk over comment/string-stripped code; returns the
    scope list (root file scope first)."""
    root = Scope(0, "file", None, None, None)
    scopes = [root]
    stack = [root]
    reset = 0
    for i, ch in enumerate(code):
        if ch == "{":
            kind, name, qual = classify_head(code[reset:i])
            scope = Scope(i, kind, name, qual, stack[-1])
            scopes.append(scope)
            stack.append(scope)
            reset = i + 1
        elif ch == "}":
            if len(stack) > 1:
                stack.pop().end = i
            reset = i + 1
        elif ch == ";":
            reset = i + 1
    for scope in stack:
        scope.end = len(code)
    return scopes


def innermost_scope(scopes, pos):
    best = scopes[0]
    for scope in scopes[1:]:
        if scope.start < pos < scope.end and scope.start > best.start:
            best = scope
    return best


def direct_text(code, scope, scopes):
    """Scope body with every child scope blanked (offsets preserved),
    so declaration regexes only see the scope's own level."""
    start = scope.start + 1 if scope.kind != "file" else 0
    chars = list(code[start:scope.end])
    for child in scopes:
        if child is scope or child.parent is not scope:
            continue
        for j in range(child.start, min(child.end + 1, scope.end)):
            if chars[j - start] != "\n":
                chars[j - start] = " "
    return "".join(chars), start


def line_of(code, pos):
    return code.count("\n", 0, pos) + 1


class FileModel:
    def __init__(self, rel, raw):
        self.rel = rel
        self.code = strip_comments(raw, False)
        self.raw = raw
        self.scopes = parse_scopes(self.code)

    def class_path(self, scope, known_classes):
        """Chain of enclosing class names, outermost first. Out-of-line
        method qualifiers (`TraceCollector::ThreadLog::f(`) contribute
        their known-class components."""
        chain = []
        node = scope
        path = []
        while node is not None:
            chain.append(node)
            node = node.parent
        for node in reversed(chain):
            if node.kind == "class" and node.name:
                path.append(node.name)
            elif node.kind == "function" and node.qual:
                for comp in node.qual:
                    if comp in known_classes and comp not in path:
                        path.append(comp)
        return "::".join(path)


class Mutex:
    __slots__ = ("owner", "name", "rel", "line")

    def __init__(self, owner, name, rel, line):
        self.owner = owner  # enclosing class path, "" at file scope
        self.name = name
        self.rel = rel
        self.line = line

    @property
    def qualified(self):
        return self.owner + "::" + self.name if self.owner else self.name


def is_preprocessor_line(code, pos):
    line_start = code.rfind("\n", 0, pos) + 1
    return code[line_start:pos].lstrip().startswith("#")


class Analyzer:
    def __init__(self):
        self.files = []
        self.findings = []
        self.mutexes = []           # list[Mutex]
        self.by_name = {}           # member name -> [Mutex]
        self.by_qualified = {}      # qualified -> Mutex
        self.known_classes = set()
        self.documented = []        # (frm, to, rel, line)
        self.observed = {}          # (frm, to) -> first (rel, line)

    def finding(self, rule, rel, line, message):
        self.findings.append(
            {"rule": rule, "file": rel, "line": line, "message": message})

    # -- pass 1: scopes, class names, mutex inventory ------------------

    def load(self, path, rel):
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                raw = fh.read()
        except OSError as err:
            raise SystemExit(f"analyze_locks: cannot read {path}: {err}")
        self.files.append(FileModel(rel, raw))

    def build_inventory(self):
        for fm in self.files:
            for scope in fm.scopes:
                if scope.kind == "class" and scope.name:
                    self.known_classes.add(scope.name)
        for fm in self.files:
            for scope in fm.scopes:
                if scope.kind not in ("file", "namespace", "class"):
                    continue
                text, offset = direct_text(fm.code, scope, fm.scopes)
                owner = (fm.class_path(scope, self.known_classes)
                         if scope.kind == "class" else "")
                for match in MUTEX_DECL_PATTERN.finditer(text):
                    pos = offset + match.start(1)
                    mutex = Mutex(owner, match.group(1), fm.rel,
                                  line_of(fm.code, pos))
                    self.mutexes.append(mutex)
                    self.by_name.setdefault(mutex.name, []).append(mutex)
                    self.by_qualified[mutex.qualified] = mutex

    def locking_classes(self):
        return {m.owner for m in self.mutexes if m.owner}

    def build_member_map(self):
        """Member (or local) names whose type is a lock-owning class:
        `Quantiles latency_window_` / `std::unique_ptr<Quantiles> q`.
        Container-held instances are deliberately not tracked."""
        owners = {}
        for cls in self.locking_classes():
            simple = cls.split("::")[-1]
            decl = re.compile(
                r"(?:\b" + re.escape(simple) + r"\s+"
                r"|unique_ptr<\s*" + re.escape(simple) + r"\s*>\s+)"
                r"([A-Za-z_]\w*)\s*[;={(]")
            for fm in self.files:
                for match in decl.finditer(fm.code):
                    owners.setdefault(match.group(1), set()).add(cls)
        return owners

    # -- resolution ----------------------------------------------------

    def resolve(self, expr, context_path):
        """Map a MutexLock argument / annotation operand to a mutex.
        Takes the last `.`/`->` component; disambiguates same-named
        members by the enclosing class."""
        name = re.split(r"->|\.", expr)[-1].strip().lstrip("!&* \t")
        if name == "":
            return None
        if name in self.by_qualified:
            return self.by_qualified[name]
        candidates = self.by_name.get(name.split("::")[-1], [])
        if len(candidates) == 1:
            return candidates[0]
        context = [p for p in context_path.split("::") if p]
        # innermost class first
        for depth in range(len(context), 0, -1):
            prefix = "::".join(context[:depth])
            for mutex in candidates:
                if mutex.owner == prefix:
                    return mutex
            for mutex in candidates:
                if mutex.owner.split("::")[-1] == context[depth - 1]:
                    return mutex
        return None

    # -- pass 2: documented edges, holds, observed edges ---------------

    def collect_documented(self):
        for fm in self.files:
            for match in DOC_EDGE_PATTERN.finditer(fm.raw):
                line = line_of(fm.raw, match.start())
                frm, to = match.group(1), match.group(2)
                for side in (frm, to):
                    if side not in self.by_qualified:
                        self.finding(
                            "unknown-mutex", fm.rel, line,
                            f"lock-order comment names '{side}' but no "
                            "such mutex is declared")
                self.documented.append((frm, to, fm.rel, line))

    def observe(self, frm, to, rel, line):
        if frm == to:
            self.finding(
                "self-deadlock", rel, line,
                f"'{frm}' acquired while already held")
            return
        self.observed.setdefault((frm, to), (rel, line))

    def collect_edges(self, member_owners):
        call_pattern = None
        if member_owners:
            names = "|".join(
                re.escape(n) for n in sorted(member_owners))
            call_pattern = re.compile(
                r"\b(" + names + r")\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
        for fm in self.files:
            holds = []  # (mutex, hold_start, hold_end, rel, line)
            acquisitions = []  # (mutex, pos, line)

            for match in ACQUIRE_PATTERN.finditer(fm.code):
                pos = match.start()
                line = line_of(fm.code, pos)
                scope = innermost_scope(fm.scopes, pos)
                context = fm.class_path(scope, self.known_classes)
                mutex = self.resolve(match.group(1), context)
                if mutex is None:
                    self.finding(
                        "unknown-mutex", fm.rel, line,
                        f"cannot resolve MutexLock argument "
                        f"'{match.group(1)}' to a declared mutex")
                    continue
                acquisitions.append((mutex, pos, line))
                holds.append((mutex, pos, scope.end, fm.rel, line))

            for match in ANNOTATION_PATTERN.finditer(fm.code):
                if is_preprocessor_line(fm.code, match.start()):
                    continue  # the macro definitions themselves
                line = line_of(fm.code, match.start())
                scope = innermost_scope(fm.scopes, match.start())
                context = fm.class_path(scope, self.known_classes)
                for operand in match.group(2).split(","):
                    operand = operand.strip()
                    if not operand:
                        continue
                    mutex = self.resolve(operand, context)
                    if mutex is None:
                        self.finding(
                            "unknown-mutex", fm.rel, line,
                            f"{match.group(1)}({operand}) does not name "
                            "a declared mutex")
                        continue
                    if match.group(1) == "REQUIRES":
                        body = self._attached_body(fm, match.end())
                        if body is not None:
                            holds.append((mutex, body.start, body.end,
                                          fm.rel, line))

            # `Class::*_locked` body: implied hold of Class's mutexes.
            for scope in fm.scopes:
                if scope.kind != "function" or not scope.name:
                    continue
                if not scope.name.endswith("_locked"):
                    continue
                context = fm.class_path(scope, self.known_classes)
                if not context:
                    continue
                for mutex in self.mutexes:
                    if mutex.owner == context:
                        holds.append((mutex, scope.start, scope.end,
                                      fm.rel, line_of(fm.code, scope.start)))

            calls = []  # (owner classes, pos, line)
            if call_pattern is not None:
                for match in call_pattern.finditer(fm.code):
                    if match.group(2).endswith("_locked"):
                        continue
                    calls.append((member_owners[match.group(1)],
                                  match.start(), line_of(fm.code,
                                                         match.start())))

            for outer, start, end, _, _ in holds:
                for inner, pos, line in acquisitions:
                    if start < pos <= end:
                        self.observe(outer.qualified, inner.qualified,
                                     fm.rel, line)
                for owner_classes, pos, line in calls:
                    if start < pos <= end:
                        for cls in owner_classes:
                            for mutex in self.mutexes:
                                if mutex.owner == cls:
                                    self.observe(outer.qualified,
                                                 mutex.qualified,
                                                 fm.rel, line)

    def _attached_body(self, fm, from_pos):
        """The `{` body following a REQUIRES annotation, if the
        annotation sits on a definition rather than a declaration."""
        for i in range(from_pos, len(fm.code)):
            ch = fm.code[i]
            if ch == ";":
                return None
            if ch == "{":
                for scope in fm.scopes:
                    if scope.start == i:
                        return scope
                return None
        return None

    # -- graph checks --------------------------------------------------

    def check_graph(self):
        doc_adj = {}
        for frm, to, _, _ in self.documented:
            doc_adj.setdefault(frm, set()).add(to)

        def documented_path(src, dst):
            seen = {src}
            queue = [src]
            while queue:
                node = queue.pop()
                for nxt in doc_adj.get(node, ()):
                    if nxt == dst:
                        return True
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
            return False

        for (frm, to), (rel, line) in sorted(self.observed.items()):
            if documented_path(frm, to):
                continue
            if documented_path(to, frm):
                self.finding(
                    "lock-order-inversion", rel, line,
                    f"acquires '{to}' while holding '{frm}', but the "
                    f"documented order is '{to}' -> '{frm}'")
            else:
                self.finding(
                    "undocumented-lock-nesting", rel, line,
                    f"acquires '{to}' while holding '{frm}' with no "
                    "`// lock-order:` comment declaring that edge")

        # Cycles over the union graph (self-loops reported above).
        union_adj = {}
        edge_site = {}
        for frm, to, rel, line in self.documented:
            if frm != to:
                union_adj.setdefault(frm, set()).add(to)
                edge_site.setdefault((frm, to), (rel, line))
        for (frm, to), (rel, line) in self.observed.items():
            union_adj.setdefault(frm, set()).add(to)
            edge_site.setdefault((frm, to), (rel, line))
        for component in strongly_connected(union_adj):
            if len(component) < 2:
                continue
            members = sorted(component)
            sites = sorted(
                edge_site[(f, t)]
                for f in component for t in union_adj.get(f, ())
                if t in component and (f, t) in edge_site)
            rel, line = sites[0] if sites else ("<graph>", 0)
            self.finding(
                "lock-order-cycle", rel, line,
                "lock acquisition cycle: " + " -> ".join(members))

    def report(self):
        self.findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))
        return {
            "schema": SCHEMA,
            "files_scanned": len(self.files),
            "mutexes": sorted(m.qualified for m in self.mutexes),
            "documented_edges": [
                {"from": frm, "to": to, "file": rel, "line": line}
                for frm, to, rel, line in self.documented],
            "observed_edges": [
                {"from": frm, "to": to, "file": rel, "line": line}
                for (frm, to), (rel, line) in sorted(self.observed.items())],
            "count": len(self.findings),
            "findings": self.findings,
        }


def strongly_connected(adj):
    """Iterative Tarjan SCC over a {node: set(node)} adjacency map."""
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    counter = [0]
    components = []
    nodes = set(adj)
    for targets in adj.values():
        nodes |= targets

    for root in sorted(nodes):
        if root in index:
            continue
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    component.add(top)
                    if top == node:
                        break
                components.append(component)
    return components


def gather_tree(root):
    paths = []
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        raise SystemExit(f"analyze_locks: no src/ under {root}")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                paths.append(os.path.join(dirpath, name))
    return paths


def main(argv):
    parser = argparse.ArgumentParser(
        description="mecoff lock-order analyzer")
    parser.add_argument("--json", action="store_true",
                        help="emit a mecoff.locks.v1 JSON report")
    parser.add_argument("--root", default=None,
                        help="repo root; scans ROOT/src (default: the "
                             "repo containing this script)")
    parser.add_argument("files", nargs="*",
                        help="explicit files to scan (fixture mode; "
                             "overrides --root)")
    args = parser.parse_args(argv)

    if args.files:
        paths = args.files
        base = os.path.commonpath(
            [os.path.dirname(os.path.abspath(p)) for p in paths])
    else:
        root = args.root or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        paths = gather_tree(root)
        base = root

    analyzer = Analyzer()
    for path in paths:
        rel = os.path.relpath(os.path.abspath(path), base)
        analyzer.load(path, rel)
    analyzer.build_inventory()
    analyzer.collect_documented()
    analyzer.collect_edges(analyzer.build_member_map())
    analyzer.check_graph()
    payload = analyzer.report()

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for finding in payload["findings"]:
            print(f"{finding['file']}:{finding['line']}: "
                  f"[{finding['rule']}] {finding['message']}")
        print(f"analyze_locks: {payload['count']} finding(s), "
              f"{len(payload['observed_edges'])} observed / "
              f"{len(payload['documented_edges'])} documented edge(s), "
              f"{len(payload['mutexes'])} mutex(es)")
    return 1 if payload["count"] else 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except SystemExit:
        raise
    except Exception as err:  # noqa: BLE001 -- tool boundary
        print(f"analyze_locks: internal error: {err}", file=sys.stderr)
        sys.exit(2)
