// Tests for the Gilbert–Elliott fading link and its integration into
// the batch executor.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "graph/weighted_graph.hpp"
#include "sim/channel.hpp"
#include "sim/executor.hpp"

namespace mecoff::sim {
namespace {

TEST(ChannelModel, Validation) {
  ChannelModel m;
  EXPECT_TRUE(m.valid());
  m.bad_rate = 0.0;
  EXPECT_FALSE(m.valid());
  m = ChannelModel{};
  m.bad_rate = m.good_rate + 1.0;  // bad faster than good: nonsense
  EXPECT_FALSE(m.valid());
  m = ChannelModel{};
  m.mean_good = 0.0;
  EXPECT_FALSE(m.valid());
}

TEST(ChannelModel, MeanRateIsTimeWeighted) {
  ChannelModel m;
  m.good_rate = 20.0;
  m.bad_rate = 5.0;
  m.mean_good = 3.0;
  m.mean_bad = 1.0;
  EXPECT_NEAR(m.mean_rate(), (20.0 * 3 + 5.0 * 1) / 4.0, 1e-12);
}

TEST(GilbertElliottLink, DegeneratesToConstantRateWhenStatesEqual) {
  ChannelModel m;
  m.good_rate = m.bad_rate = 10.0;
  SimEngine engine;
  GilbertElliottLink link(engine, m);
  JobStats seen;
  link.submit(50.0, [&](const JobStats& s) { seen = s; });
  engine.run();
  EXPECT_NEAR(seen.completed, 5.0, 1e-9);
}

TEST(GilbertElliottLink, TransferTimeBracketedByStateRates) {
  ChannelModel m;
  m.good_rate = 20.0;
  m.bad_rate = 2.0;
  m.mean_good = 1.0;
  m.mean_bad = 1.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    m.seed = seed;
    SimEngine engine;
    GilbertElliottLink link(engine, m);
    JobStats seen;
    link.submit(40.0, [&](const JobStats& s) { seen = s; });
    engine.run();
    EXPECT_GE(seen.completed, 40.0 / m.good_rate - 1e-9) << seed;
    EXPECT_LE(seen.completed, 40.0 / m.bad_rate + 1e-9) << seed;
  }
}

TEST(GilbertElliottLink, DeterministicPerSeed) {
  ChannelModel m;
  m.seed = 77;
  double first = 0.0;
  for (int run = 0; run < 2; ++run) {
    SimEngine engine;
    GilbertElliottLink link(engine, m);
    JobStats seen;
    link.submit(123.0, [&](const JobStats& s) { seen = s; });
    engine.run();
    if (run == 0)
      first = seen.completed;
    else
      EXPECT_DOUBLE_EQ(seen.completed, first);
  }
}

TEST(GilbertElliottLink, FifoOrderPreserved) {
  ChannelModel m;
  m.seed = 5;
  SimEngine engine;
  GilbertElliottLink link(engine, m);
  std::vector<int> order;
  link.submit(30.0, [&](const JobStats&) { order.push_back(1); });
  link.submit(10.0, [&](const JobStats&) { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(link.jobs_completed(), 2u);
}

TEST(GilbertElliottLink, IdleGapsAdvanceTheStateProcess) {
  // A transfer submitted late must not see a stale state; and the
  // engine must drain even with long idle stretches.
  ChannelModel m;
  m.seed = 9;
  m.mean_good = 0.5;
  m.mean_bad = 0.5;
  SimEngine engine;
  GilbertElliottLink link(engine, m);
  JobStats seen;
  engine.schedule_at(100.0, [&] {
    link.submit(10.0, [&](const JobStats& s) { seen = s; });
  });
  const SimTime end = engine.run();
  EXPECT_GE(seen.completed, 100.0);
  EXPECT_DOUBLE_EQ(end, seen.completed);  // drained, no runaway flips
}

TEST(ExecutorChannel, FadingMatchesConstantWhenDegenerate) {
  graph::GraphBuilder b;
  b.add_node(10.0);
  b.add_node(30.0);
  b.add_edge(0, 1, 20.0);
  mec::UserApp app;
  app.graph = b.build();
  mec::SystemParams p;
  p.bandwidth = 10.0;
  mec::MecSystem system{p, {app}};
  mec::OffloadingScheme scheme = mec::OffloadingScheme::all_local(system);
  scheme.placement[0][1] = mec::Placement::kRemote;

  SimOptions fading;
  fading.channel = ChannelModel{10.0, 10.0, 1.0, 1.0, 1};
  const SimReport with = simulate_scheme(system, scheme, fading);
  const SimReport without = simulate_scheme(system, scheme);
  EXPECT_NEAR(with.users[0].upload_time, without.users[0].upload_time,
              1e-9);
  EXPECT_NEAR(with.total_energy, without.total_energy, 1e-9);
}

TEST(ExecutorChannel, FadingNeverBeatsTheGoodRate) {
  graph::GraphBuilder b;
  b.add_node(5.0);
  b.add_node(50.0);
  b.add_edge(0, 1, 40.0);
  mec::UserApp app;
  app.graph = b.build();
  mec::SystemParams p;
  p.bandwidth = 20.0;  // = good rate below
  mec::MecSystem system{p, {app}};
  mec::OffloadingScheme scheme = mec::OffloadingScheme::all_local(system);
  scheme.placement[0][1] = mec::Placement::kRemote;

  SimOptions fading;
  fading.channel = ChannelModel{20.0, 4.0, 1.0, 0.5, 3};
  const SimReport report = simulate_scheme(system, scheme, fading);
  // Realized upload is at best the constant-rate figure, typically
  // worse; energy scales with it.
  EXPECT_GE(report.users[0].upload_time, 40.0 / 20.0 - 1e-9);
  EXPECT_NEAR(report.users[0].transmit_energy,
              report.users[0].upload_time * p.transmit_power, 1e-9);
}

}  // namespace
}  // namespace mecoff::sim
