// Unit tests for the cost model: formulas (1)–(6) on hand-computed
// systems, server sharing, and waiting-time behavior.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "mec/costs.hpp"
#include "mec/model.hpp"
#include "mec/scheme.hpp"

namespace mecoff::mec {
namespace {

SystemParams simple_params() {
  SystemParams p;
  p.mobile_power = 2.0;      // p_c
  p.transmit_power = 10.0;   // p_t
  p.bandwidth = 4.0;         // b
  p.mobile_capacity = 5.0;   // I_c
  p.server_capacity = 100.0; // I_S
  p.contention_factor = 1.0;
  return p;
}

/// Two functions (weights 10 and 30) joined by one edge of weight 8.
UserApp two_node_app() {
  graph::GraphBuilder b;
  b.add_node(10.0);
  b.add_node(30.0);
  b.add_edge(0, 1, 8.0);
  UserApp app;
  app.graph = b.build();
  return app;
}

TEST(Params, Validation) {
  EXPECT_TRUE(simple_params().valid());
  SystemParams bad = simple_params();
  bad.bandwidth = 0.0;
  EXPECT_FALSE(bad.valid());
  bad = simple_params();
  bad.contention_factor = -1.0;
  EXPECT_FALSE(bad.valid());
}

TEST(Scheme, AllLocalAndAllRemoteShapes) {
  MecSystem system{simple_params(), {two_node_app(), two_node_app()}};
  const OffloadingScheme local = OffloadingScheme::all_local(system);
  EXPECT_TRUE(local.valid_for(system));
  EXPECT_EQ(local.remote_count(0), 0u);
  const OffloadingScheme remote = OffloadingScheme::all_remote(system);
  EXPECT_TRUE(remote.valid_for(system));
  EXPECT_EQ(remote.remote_count(1), 2u);
}

TEST(Scheme, AllRemoteRespectsPinnedNodes) {
  UserApp app = two_node_app();
  app.unoffloadable = {true, false};
  MecSystem system{simple_params(), {app}};
  const OffloadingScheme remote = OffloadingScheme::all_remote(system);
  EXPECT_EQ(remote.placement[0][0], Placement::kLocal);
  EXPECT_EQ(remote.placement[0][1], Placement::kRemote);
  EXPECT_TRUE(remote.valid_for(system));
}

TEST(Scheme, ValidityCatchesPinnedViolation) {
  UserApp app = two_node_app();
  app.unoffloadable = {true, false};
  MecSystem system{simple_params(), {app}};
  OffloadingScheme bad = OffloadingScheme::all_local(system);
  bad.placement[0][0] = Placement::kRemote;
  EXPECT_FALSE(bad.valid_for(system));
}

TEST(Costs, AllLocalHandComputed) {
  MecSystem system{simple_params(), {two_node_app()}};
  const SystemCost cost =
      evaluate(system, OffloadingScheme::all_local(system));
  const UserCost& u = cost.users[0];
  // t_c = 40/5 = 8; e_c = 8*2 = 16; nothing crosses.
  EXPECT_DOUBLE_EQ(u.local_compute_time, 8.0);
  EXPECT_DOUBLE_EQ(u.local_energy, 16.0);
  EXPECT_DOUBLE_EQ(u.transmit_energy, 0.0);
  EXPECT_DOUBLE_EQ(u.wait_time, 0.0);
  EXPECT_DOUBLE_EQ(cost.total_energy, 16.0);
  EXPECT_DOUBLE_EQ(cost.total_time, 8.0);
}

TEST(Costs, SplitSchemeHandComputed) {
  MecSystem system{simple_params(), {two_node_app()}};
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  scheme.placement[0][1] = Placement::kRemote;  // offload the 30-weight fn
  const SystemCost cost = evaluate(system, scheme);
  const UserCost& u = cost.users[0];
  // t_c = 10/5 = 2; e_c = 4.
  EXPECT_DOUBLE_EQ(u.local_compute_time, 2.0);
  EXPECT_DOUBLE_EQ(u.local_energy, 4.0);
  // Single offloader: share = 100; t_s = 30/100 = 0.3.
  EXPECT_DOUBLE_EQ(u.remote_compute_time, 0.3);
  // Self-congestion: w_t = κ·S·W_s/I_S² = 1·30·30/10000 = 0.09.
  EXPECT_DOUBLE_EQ(u.wait_time, 0.09);
  // Cross = 8: t_t = 2; e_t = 20.
  EXPECT_DOUBLE_EQ(u.transmit_time, 2.0);
  EXPECT_DOUBLE_EQ(u.transmit_energy, 20.0);
  EXPECT_DOUBLE_EQ(cost.total_energy, 24.0);
  EXPECT_DOUBLE_EQ(cost.total_time, 2.0 + 0.3 + 0.09 + 2.0);
}

TEST(Costs, TwoUsersShareTheServer) {
  MecSystem system{simple_params(), {two_node_app(), two_node_app()}};
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  scheme.placement[0][1] = Placement::kRemote;
  scheme.placement[1][1] = Placement::kRemote;
  const SystemCost cost = evaluate(system, scheme);
  // K = 2 → share 50 each; t_s = 30/50 = 0.6.
  EXPECT_DOUBLE_EQ(cost.users[0].remote_compute_time, 0.6);
  // w_t = κ·S·W_s/I_S² = 1·60·30/10000 = 0.18.
  EXPECT_DOUBLE_EQ(cost.users[0].wait_time, 0.18);
  EXPECT_DOUBLE_EQ(cost.users[1].wait_time, 0.18);
}

TEST(Costs, NonOffloaderHasNoWaitOrServerTime) {
  MecSystem system{simple_params(), {two_node_app(), two_node_app()}};
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  scheme.placement[0][1] = Placement::kRemote;  // only user 0 offloads
  const SystemCost cost = evaluate(system, scheme);
  EXPECT_DOUBLE_EQ(cost.users[1].remote_compute_time, 0.0);
  EXPECT_DOUBLE_EQ(cost.users[1].wait_time, 0.0);
  // Alone on the server the only waiting is self-congestion:
  // κ·S·W_s/I_S² = 1·30·30/10000.
  EXPECT_DOUBLE_EQ(cost.users[0].wait_time, 0.09);
}

TEST(Costs, WaitGrowsWithUserCount) {
  double prev_wait = -1.0;
  for (const std::size_t n : {2u, 4u, 8u}) {
    MecSystem system{simple_params(), {}};
    for (std::size_t i = 0; i < n; ++i)
      system.users.push_back(two_node_app());
    OffloadingScheme scheme = OffloadingScheme::all_remote(system);
    const SystemCost cost = evaluate(system, scheme);
    EXPECT_GT(cost.users[0].wait_time, prev_wait);
    prev_wait = cost.users[0].wait_time;
  }
}

TEST(Costs, ContentionFactorZeroRemovesWaiting) {
  SystemParams p = simple_params();
  p.contention_factor = 0.0;
  MecSystem system{p, {two_node_app(), two_node_app()}};
  const SystemCost cost =
      evaluate(system, OffloadingScheme::all_remote(system));
  EXPECT_DOUBLE_EQ(cost.users[0].wait_time, 0.0);
}

TEST(Costs, EnergySplitAccessors) {
  MecSystem system{simple_params(), {two_node_app()}};
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  scheme.placement[0][1] = Placement::kRemote;
  const SystemCost cost = evaluate(system, scheme);
  EXPECT_DOUBLE_EQ(cost.local_energy(), 4.0);
  EXPECT_DOUBLE_EQ(cost.transmit_energy(), 20.0);
  EXPECT_DOUBLE_EQ(cost.local_energy() + cost.transmit_energy(),
                   cost.total_energy);
  EXPECT_DOUBLE_EQ(cost.objective(), cost.total_energy + cost.total_time);
}

TEST(Costs, OffloadingZeroCrossPartIsFree) {
  // Two disconnected functions: offloading one costs no transmission.
  graph::GraphBuilder b;
  b.add_node(10.0);
  b.add_node(50.0);
  UserApp app;
  app.graph = b.build();
  MecSystem system{simple_params(), {app}};
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  scheme.placement[0][1] = Placement::kRemote;
  const SystemCost cost = evaluate(system, scheme);
  EXPECT_DOUBLE_EQ(cost.users[0].transmit_energy, 0.0);
  // And strictly reduces the objective vs all-local (server is faster).
  const SystemCost local =
      evaluate(system, OffloadingScheme::all_local(system));
  EXPECT_LT(cost.objective(), local.objective());
}

TEST(Costs, MismatchedSchemeThrows) {
  MecSystem system{simple_params(), {two_node_app()}};
  OffloadingScheme bad;  // empty
  EXPECT_THROW(evaluate(system, bad), mecoff::PreconditionError);
}

TEST(UniformSystem, CyclesThroughPool) {
  const std::vector<UserApp> pool{two_node_app()};
  const MecSystem system = make_uniform_system(simple_params(), pool, 5);
  EXPECT_EQ(system.num_users(), 5u);
  EXPECT_EQ(system.users[4].graph.num_nodes(), 2u);
  EXPECT_TRUE(system.valid());
}

}  // namespace
}  // namespace mecoff::mec
