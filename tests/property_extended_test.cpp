// Extended property suites covering the post-reproduction additions:
// FM refinement, the Jacobi oracle, the task-DAG executor, and the
// multi-server composition.
#include <gtest/gtest.h>

#include "appmodel/synthetic_apps.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "kl/fiduccia_mattheyses.hpp"
#include "linalg/jacobi.hpp"
#include "linalg/laplacian.hpp"
#include "mec/multiserver.hpp"
#include "sim/dag_executor.hpp"
#include "sim/executor.hpp"
#include "spectral/fiedler.hpp"

namespace mecoff {
namespace {

class SeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

graph::WeightedGraph seeded_graph(std::uint64_t seed, std::size_t nodes) {
  graph::NetgenParams p;
  p.nodes = nodes;
  p.edges = nodes * 4;
  p.components = 1;
  p.seed = seed;
  return graph::netgen_style(p);
}

TEST_P(SeedProperty, FmRefinementIsSoundAcrossStarts) {
  const graph::WeightedGraph g = seeded_graph(GetParam(), 60);
  Rng rng(GetParam() ^ 0xf1);
  for (int trial = 0; trial < 3; ++trial) {
    graph::Bipartition initial;
    initial.side.resize(g.num_nodes());
    for (auto& s : initial.side) s = rng.bernoulli(0.5) ? 1 : 0;
    initial.cut_weight = graph::cut_weight(g, initial.side);
    const kl::FmResult r = kl::fm_refine(g, initial, {});
    // Sound: reported cut matches recomputation, never worse than start.
    EXPECT_NEAR(r.partition.cut_weight,
                graph::cut_weight(g, r.partition.side), 1e-9);
    EXPECT_LE(r.partition.cut_weight, initial.cut_weight + 1e-9);
    // Both sides stay populated.
    EXPECT_GE(r.partition.size(0), 1u);
    EXPECT_GE(r.partition.size(1), 1u);
  }
}

TEST_P(SeedProperty, JacobiAndLanczosAgreeOnFiedlerValue) {
  const graph::WeightedGraph g = seeded_graph(GetParam(), 40);
  const linalg::JacobiResult full =
      linalg::jacobi_eigen(linalg::dense_laplacian(g));
  ASSERT_TRUE(full.converged);
  const spectral::FiedlerResult fiedler = spectral::fiedler_pair(g);
  ASSERT_TRUE(fiedler.converged);
  EXPECT_NEAR(fiedler.value, full.values[1],
              1e-5 * (1.0 + full.values[1]));
}

TEST_P(SeedProperty, JacobiSpectrumBoundsHold) {
  const graph::WeightedGraph g = seeded_graph(GetParam(), 30);
  const linalg::SparseMatrix lap = linalg::laplacian(g);
  const linalg::JacobiResult full =
      linalg::jacobi_eigen(linalg::dense_laplacian(g));
  ASSERT_TRUE(full.converged);
  // PSD: all eigenvalues >= 0 (up to roundoff); max bounded by
  // Gershgorin.
  EXPECT_GE(full.values.front(), -1e-8);
  EXPECT_LE(full.values.back(), lap.gershgorin_bound() + 1e-8);
}

TEST_P(SeedProperty, DagAndBatchExecutorsAgreeOnEnergy) {
  // Energies are schedule-independent: any scheme must be billed the
  // same by both executors.
  const appmodel::Application app =
      appmodel::make_random_app(40, 0.15, GetParam());
  if (!sim::call_graph_is_acyclic(app)) GTEST_SKIP();
  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  mec::SystemParams params;
  mec::MecSystem system{params, {user}};

  Rng rng(GetParam() ^ 0xda6);
  mec::OffloadingScheme scheme = mec::OffloadingScheme::all_local(system);
  for (std::size_t v = 0; v < user.graph.num_nodes(); ++v)
    if (!user.unoffloadable[v] && rng.bernoulli(0.5))
      scheme.placement[0][v] = mec::Placement::kRemote;

  const auto dag = sim::execute_dag(system, {app}, scheme);
  ASSERT_TRUE(dag.ok());
  const sim::SimReport batch = sim::simulate_scheme(system, scheme);
  EXPECT_NEAR(dag.value().total_energy, batch.total_energy,
              1e-6 * (1.0 + batch.total_energy));
}

TEST_P(SeedProperty, DagMakespanAtLeastCriticalCompute) {
  // The makespan can never beat the heaviest single function on its
  // assigned processor.
  const appmodel::Application app =
      appmodel::make_random_app(30, 0.1, GetParam() + 1);
  if (!sim::call_graph_is_acyclic(app)) GTEST_SKIP();
  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  mec::SystemParams params;
  mec::MecSystem system{params, {user}};
  const mec::OffloadingScheme scheme =
      mec::OffloadingScheme::all_remote(system);
  const auto dag = sim::execute_dag(system, {app}, scheme);
  ASSERT_TRUE(dag.ok());
  double heaviest = 0.0;
  for (std::size_t v = 0; v < app.num_functions(); ++v) {
    const bool remote = scheme.placement[0][v] == mec::Placement::kRemote;
    const double rate =
        remote ? params.server_capacity : params.mobile_capacity;
    heaviest = std::max(heaviest, app.function(v).computation / rate);
  }
  EXPECT_GE(dag.value().makespan, heaviest - 1e-9);
}

TEST_P(SeedProperty, MultiServerTotalsMatchGroupOracles) {
  mec::MultiServerSystem system;
  system.device.mobile_power = 1.0;
  system.device.mobile_capacity = 5.0;
  system.servers = {mec::ServerSpec{200.0, 20.0, 8.0},
                    mec::ServerSpec{350.0, 15.0, 10.0},
                    mec::ServerSpec{150.0, 30.0, 6.0}};
  for (std::size_t i = 0; i < 7; ++i) {
    mec::UserApp user;
    user.graph = seeded_graph(GetParam() * 13 + i, 50);
    system.users.push_back(std::move(user));
  }
  const mec::MultiServerResult result =
      mec::MultiServerOffloader{}.solve(system);
  double energy = 0.0;
  double time = 0.0;
  for (std::size_t s = 0; s < system.servers.size(); ++s) {
    const mec::SystemCost cost =
        mec::evaluate_server_group(system, result, s);
    energy += cost.total_energy;
    time += cost.total_time;
  }
  EXPECT_NEAR(result.total_energy, energy, 1e-6 * (1.0 + energy));
  EXPECT_NEAR(result.total_time, time, 1e-6 * (1.0 + time));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperty,
                         ::testing::Values(401u, 402u, 403u, 404u, 405u));

}  // namespace
}  // namespace mecoff
