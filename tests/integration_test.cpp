// Cross-module integration tests: the full paper pipeline end-to-end on
// realistic applications and NETGEN workloads, analytic-vs-DES
// cross-checks, and the headline algorithm comparison in miniature.
#include <gtest/gtest.h>

#include "appmodel/dsl_parser.hpp"
#include "appmodel/synthetic_apps.hpp"
#include "graph/generators.hpp"
#include "mec/costs.hpp"
#include "mec/offloader.hpp"
#include "sim/executor.hpp"

namespace mecoff {
namespace {

using mec::CutBackend;
using mec::MecSystem;
using mec::OffloadingScheme;
using mec::PipelineOffloader;
using mec::PipelineOptions;
using mec::SystemParams;
using mec::UserApp;

SystemParams params() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 8.0;
  p.bandwidth = 40.0;
  p.mobile_capacity = 5.0;
  p.server_capacity = 400.0;
  return p;
}

UserApp from_app(const appmodel::Application& app) {
  UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  user.components = app.component_ids();
  return user;
}

PipelineOptions pipeline_options(CutBackend backend,
                                 double threshold = 20.0) {
  PipelineOptions opts;
  opts.backend = backend;
  opts.propagation.coupling_threshold = threshold;
  return opts;
}

TEST(Integration, FaceRecognitionOffloadsTheVisionPipeline) {
  const appmodel::Application app = appmodel::make_face_recognition_app();
  MecSystem system{params(), {from_app(app)}};
  PipelineOffloader offloader(pipeline_options(CutBackend::kSpectral, 50.0));
  const OffloadingScheme scheme = offloader.solve(system);

  // The tightly coupled conv cluster must land on ONE device.
  const auto c1 = app.find_function("embed_conv1");
  const auto c2 = app.find_function("embed_conv2");
  const auto c3 = app.find_function("embed_conv3");
  EXPECT_EQ(scheme.placement[0][c1], scheme.placement[0][c2]);
  EXPECT_EQ(scheme.placement[0][c2], scheme.placement[0][c3]);

  // The heavy compute pipeline should mostly offload (device is slow).
  std::size_t offloaded_heavy = 0;
  for (const char* name :
       {"detect_faces", "embed_conv1", "embed_conv2", "embed_conv3",
        "search_index"}) {
    if (scheme.placement[0][app.find_function(name)] ==
        mec::Placement::kRemote)
      ++offloaded_heavy;
  }
  EXPECT_GE(offloaded_heavy, 3u);
}

TEST(Integration, AllThreeBackendsHandleAllSyntheticApps) {
  for (const appmodel::Application& app :
       {appmodel::make_face_recognition_app(), appmodel::make_ar_game_app(),
        appmodel::make_video_analytics_app()}) {
    MecSystem system{params(), {from_app(app)}};
    for (const CutBackend backend :
         {CutBackend::kSpectral, CutBackend::kMaxFlow,
          CutBackend::kKernighanLin}) {
      PipelineOffloader offloader(pipeline_options(backend, 50.0));
      const OffloadingScheme scheme = offloader.solve(system);
      EXPECT_TRUE(scheme.valid_for(system))
          << app.name() << "/" << offloader.name();
      const double obj = mec::evaluate(system, scheme).objective();
      const double local =
          mec::evaluate(system, OffloadingScheme::all_local(system))
              .objective();
      EXPECT_LE(obj, local + 1e-9) << app.name() << "/" << offloader.name();
    }
  }
}

TEST(Integration, SpectralWinsOnAverageAcrossSeeds) {
  // The paper's headline claim in miniature: averaged over several
  // NETGEN workloads, the spectral pipeline's objective beats both
  // baselines run through the identical pipeline.
  double spectral_total = 0.0;
  double maxflow_total = 0.0;
  double kl_total = 0.0;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    graph::NetgenParams gp;
    gp.nodes = 150;
    gp.edges = 650;
    gp.seed = seed;
    UserApp user;
    user.graph = graph::netgen_style(gp);
    MecSystem system{params(), {user}};
    for (const CutBackend backend :
         {CutBackend::kSpectral, CutBackend::kMaxFlow,
          CutBackend::kKernighanLin}) {
      PipelineOffloader offloader(pipeline_options(backend, 10.0));
      const double obj =
          mec::evaluate(system, offloader.solve(system)).objective();
      if (backend == CutBackend::kSpectral) spectral_total += obj;
      if (backend == CutBackend::kMaxFlow) maxflow_total += obj;
      if (backend == CutBackend::kKernighanLin) kl_total += obj;
    }
  }
  EXPECT_LE(spectral_total, maxflow_total * 1.02);
  EXPECT_LE(spectral_total, kl_total * 1.02);
}

TEST(Integration, DslToSchemeEndToEnd) {
  constexpr const char* kDsl = R"(
app Sensors
component io
  function read_sensor compute=4 unoffloadable
  function show compute=3 unoffloadable
component math
  function fft compute=300
  function filter compute=250
  function classify compute=400
call read_sensor fft data=6
call fft filter data=90
call filter classify data=80
call classify show data=2
)";
  const Result<appmodel::Application> parsed = appmodel::parse_app_dsl(kDsl);
  ASSERT_TRUE(parsed.ok());
  MecSystem system{params(), {from_app(parsed.value())}};
  PipelineOffloader offloader(pipeline_options(CutBackend::kSpectral, 50.0));
  const OffloadingScheme scheme = offloader.solve(system);
  const appmodel::Application& app = parsed.value();
  // Pinned I/O stays local; the heavy chained math (fft→filter→classify,
  // coupled by 80-90 units of data vs 6-in/2-out) offloads as a block.
  EXPECT_EQ(scheme.placement[0][app.find_function("read_sensor")],
            mec::Placement::kLocal);
  EXPECT_EQ(scheme.placement[0][app.find_function("fft")],
            mec::Placement::kRemote);
  EXPECT_EQ(scheme.placement[0][app.find_function("filter")],
            mec::Placement::kRemote);
  EXPECT_EQ(scheme.placement[0][app.find_function("classify")],
            mec::Placement::kRemote);
}

TEST(Integration, AnalyticAndSimAgreeOnEnergyRanking) {
  // Whatever the discipline details, if scheme A uses less energy than
  // scheme B analytically, the DES must agree (energy is mechanism-free).
  graph::NetgenParams gp;
  gp.nodes = 100;
  gp.edges = 420;
  gp.seed = 9;
  UserApp user;
  user.graph = graph::netgen_style(gp);
  MecSystem system{params(), {user, user}};

  PipelineOffloader spectral(pipeline_options(CutBackend::kSpectral, 10.0));
  const OffloadingScheme good = spectral.solve(system);
  const OffloadingScheme bad = OffloadingScheme::all_remote(system);

  const double analytic_good = mec::evaluate(system, good).total_energy;
  const double analytic_bad = mec::evaluate(system, bad).total_energy;
  const double sim_good = sim::simulate_scheme(system, good).total_energy;
  const double sim_bad = sim::simulate_scheme(system, bad).total_energy;

  EXPECT_NEAR(analytic_good, sim_good, 1e-6 * (1.0 + analytic_good));
  EXPECT_NEAR(analytic_bad, sim_bad, 1e-6 * (1.0 + analytic_bad));
  EXPECT_EQ(analytic_good < analytic_bad, sim_good < sim_bad);
}

TEST(Integration, CompressionMakesSpectralTractableAndConsistent) {
  // Compressed pipeline: cut quality close to uncompressed direct cut
  // while operating on a far smaller graph.
  graph::NetgenParams gp;
  gp.nodes = 400;
  gp.edges = 1800;
  gp.components = 2;
  gp.seed = 12;
  UserApp user;
  user.graph = graph::netgen_style(gp);
  MecSystem system{params(), {user}};

  PipelineOffloader offloader(pipeline_options(CutBackend::kSpectral, 10.0));
  (void)offloader.solve(system);
  const auto& stats = offloader.last_stats();
  EXPECT_LT(stats.compression.compressed_nodes,
            stats.compression.original_nodes / 3);
  EXPECT_GT(stats.num_parts, 0u);
}

TEST(Integration, MultiUserTrendMatchesPaper) {
  // Increasing users with a fixed graph: total energy grows, and the
  // spectral pipeline's energy stays at or below the baselines'. The
  // workload pins ~10% of functions (as real apps do) — without pinned
  // functions all-remote has zero cross traffic and zero local energy,
  // and there is no trend to observe.
  graph::NetgenParams gp;
  gp.nodes = 120;
  gp.edges = 520;
  gp.seed = 33;
  UserApp proto;
  proto.graph = graph::netgen_style(gp);
  proto.unoffloadable.assign(proto.graph.num_nodes(), false);
  for (std::size_t v = 0; v < proto.graph.num_nodes(); v += 10)
    proto.unoffloadable[v] = true;

  double prev_energy = 0.0;
  for (const std::size_t n : {4u, 8u, 16u}) {
    const MecSystem system = mec::make_uniform_system(params(), {proto}, n);
    PipelineOptions opts = pipeline_options(CutBackend::kSpectral, 10.0);
    opts.identical_user_period = 1;
    PipelineOffloader offloader(opts);
    const double energy =
        mec::evaluate(system, offloader.solve(system)).total_energy;
    EXPECT_GT(energy, prev_energy);
    prev_energy = energy;
  }
}

}  // namespace
}  // namespace mecoff
