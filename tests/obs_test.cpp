// Observability-layer tests (ctest label: obs).
//
// Three claims are under test:
//   1. The MetricsRegistry primitives are exact under concurrency —
//      counts survive a ThreadPool hammering them.
//   2. The TraceCollector records what happened (nesting, counts,
//      capacity) and exports well-formed Chrome trace JSON.
//   3. Instrumentation is OBSERVATION ONLY: enabling tracing does not
//      change a single placement bit, and the SolveStats the solver
//      reports agree exactly with the registry gauges (they are written
//      from the same doubles — see src/mec/offloader.cpp).
//
// This file also compiles (and passes, trivially where appropriate)
// under -DMECOFF_OBS=OFF, which is how CI proves the compile-out path.
#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "mec/offloader.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/quantiles.hpp"
#include "obs/request_id.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace mecoff {
namespace {

using obs::MetricsRegistry;
using obs::TraceCollector;

// ---- metrics primitives ---------------------------------------------------

TEST(Metrics, CounterAddsAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramBucketsSamplesAgainstSortedBounds) {
  const double bounds[] = {1.0, 10.0, 100.0};
  obs::Histogram h{bounds};
  h.record(0.5);    // <= 1      -> bucket 0
  h.record(1.0);    // <= 1      -> bucket 0 (lower_bound: inclusive upper)
  h.record(5.0);    // <= 10     -> bucket 1
  h.record(1000.0); // overflow  -> bucket 3
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(Metrics, RegistryReturnsStableReferencesAndRejectsKindClashes) {
  MetricsRegistry& reg = MetricsRegistry::global();
  obs::Counter& a = reg.counter("obs_test.stable");
  obs::Counter& b = reg.counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW((void)reg.gauge("obs_test.stable"), PreconditionError);
  EXPECT_THROW((void)reg.histogram("obs_test.stable"), PreconditionError);
}

TEST(Metrics, SnapshotAndTextContainRegisteredNames) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("obs_test.snap.counter").add(11);
  reg.gauge("obs_test.snap.gauge").set(0.5);
  reg.histogram("obs_test.snap.hist").record(0.01);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.contains("obs_test.snap.counter"));
  EXPECT_GE(snap.counters.at("obs_test.snap.counter"), 11u);
  ASSERT_TRUE(snap.gauges.contains("obs_test.snap.gauge"));
  ASSERT_TRUE(snap.histograms.contains("obs_test.snap.hist"));
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("obs_test.snap.counter"), std::string::npos);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"obs_test.snap.gauge\":0.5"), std::string::npos);
}

TEST(Metrics, CounterIsExactUnderThreadPoolContention) {
  MetricsRegistry& reg = MetricsRegistry::global();
  obs::Counter& c = reg.counter("obs_test.contended");
  c.reset();
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 1000;
  parallel::ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (std::size_t t = 0; t < kTasks; ++t) {
    futures.push_back(pool.submit([&c] {
      for (std::size_t i = 0; i < kPerTask; ++i)
        c.add(1);
    }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(c.value(), kTasks * kPerTask);
}

TEST(Metrics, MacroFacadeTouchesTheGlobalRegistry) {
  MetricsRegistry::global().counter("obs_test.macro").reset();
  MECOFF_COUNTER_ADD("obs_test.macro", 5);
  MECOFF_COUNTER_ADD("obs_test.macro", 2);
#ifdef MECOFF_OBS_DISABLED
  EXPECT_EQ(MetricsRegistry::global().counter("obs_test.macro").value(), 0u);
#else
  EXPECT_EQ(MetricsRegistry::global().counter("obs_test.macro").value(), 7u);
#endif
}

// ---- quantile exemplars ---------------------------------------------------

// The exemplar API is a class method, not a macro, so these hold in
// both build configs.
TEST(QuantilesExemplar, TracksWindowMaximumAndEvictsWithIt) {
  obs::Quantiles q(/*window_capacity=*/3);
  EXPECT_EQ(q.max_exemplar().request_id, 0u);  // empty window
  q.record(0.5, 101);
  q.record(2.0, 102);
  q.record(0.7, 103);
  EXPECT_DOUBLE_EQ(q.max_exemplar().value, 2.0);
  EXPECT_EQ(q.max_exemplar().request_id, 102u);
  // Two more samples push 102's 2.0 out of the 3-slot window; the
  // exemplar must follow the eviction, not remember the all-time max.
  q.record(0.6, 104);
  q.record(0.8, 105);
  EXPECT_DOUBLE_EQ(q.max_exemplar().value, 0.8);
  EXPECT_EQ(q.max_exemplar().request_id, 105u);
}

TEST(QuantilesExemplar, TiesResolveToTheNewestSample) {
  obs::Quantiles q(/*window_capacity=*/4);
  q.record(1.0, 7);
  q.record(1.0, 8);
  q.record(0.2, 9);
  EXPECT_EQ(q.max_exemplar().request_id, 8u);
}

TEST(QuantilesExemplar, UntaggedRecordKeepsIdZero) {
  obs::Quantiles q(/*window_capacity=*/4);
  q.record(3.0);
  q.record(1.0, 42);
  EXPECT_DOUBLE_EQ(q.max_exemplar().value, 3.0);
  EXPECT_EQ(q.max_exemplar().request_id, 0u);
}

TEST(RequestId, ScopeSetsAndRestoresThreadLocally) {
  EXPECT_EQ(obs::current_request_id(), 0u);
  {
    const obs::RequestIdScope outer(11);
    EXPECT_EQ(obs::current_request_id(), 11u);
    {
      const obs::RequestIdScope inner(22);
      EXPECT_EQ(obs::current_request_id(), 22u);
    }
    EXPECT_EQ(obs::current_request_id(), 11u);
    // Thread-local: another thread sees no id.
    std::uint64_t other = 99;
    std::thread probe([&other] { other = obs::current_request_id(); });
    probe.join();
    EXPECT_EQ(other, 0u);
  }
  EXPECT_EQ(obs::current_request_id(), 0u);
}

#ifndef MECOFF_OBS_DISABLED
TEST(QuantilesExemplar, SnapshotAndJsonCarryTheMaxExemplar) {
  MetricsRegistry& reg = MetricsRegistry::global();
  obs::Quantiles& q = reg.quantiles("obs_test.exemplar");
  q.reset();
  MECOFF_QUANTILES_RECORD_ID("obs_test.exemplar", 0.25, 5);
  MECOFF_QUANTILES_RECORD_ID("obs_test.exemplar", 0.75, 6);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto& value = snap.quantiles.at("obs_test.exemplar");
  EXPECT_DOUBLE_EQ(value.max_value, 0.75);
  EXPECT_EQ(value.max_request_id, 6u);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"max\":0.75,\"max_request_id\":6"),
            std::string::npos);
}
#endif

// ---- timeline -------------------------------------------------------------

// Timeline tests run against a PRIVATE registry (Options::registry), so
// nothing else recorded by this binary can perturb the oracle — and the
// class-level API holds in both build configs.

TEST(Timeline, DeltaAndRateMathMatchesHandOracle) {
  obs::MetricsRegistry registry;
  obs::Timeline::Options options;
  options.registry = &registry;
  obs::Timeline timeline(options);

  registry.counter("t.requests").add(10);
  timeline.sample_now(/*tick=*/5);
  registry.counter("t.requests").add(30);
  registry.gauge("t.depth").set(2.5);
  timeline.sample_now(/*tick=*/15);

  const std::vector<obs::Timeline::Sample> samples = timeline.samples();
  ASSERT_EQ(samples.size(), 2u);
  // First sample: delta from the zero origin over 5 ticks.
  const obs::Timeline::CounterPoint& first =
      samples[0].counters.at("t.requests");
  EXPECT_EQ(first.value, 10u);
  EXPECT_EQ(first.delta, 10);
  EXPECT_DOUBLE_EQ(first.rate, 10.0 / 5.0);
  // Second: delta vs the previous sample over 10 ticks.
  const obs::Timeline::CounterPoint& second =
      samples[1].counters.at("t.requests");
  EXPECT_EQ(second.value, 40u);
  EXPECT_EQ(second.delta, 30);
  EXPECT_DOUBLE_EQ(second.rate, 30.0 / 10.0);
  EXPECT_DOUBLE_EQ(samples[1].gauges.at("t.depth"), 2.5);
}

TEST(Timeline, RingWrapsAndDeltasSurviveEviction) {
  obs::MetricsRegistry registry;
  obs::Timeline::Options options;
  options.registry = &registry;
  options.capacity = 2;
  obs::Timeline timeline(options);

  for (std::uint64_t i = 1; i <= 4; ++i) {
    registry.counter("t.c").add(i);  // cumulative: 1, 3, 6, 10
    timeline.sample_now(i);
  }
  EXPECT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.samples_taken(), 4u);
  EXPECT_EQ(timeline.dropped(), 2u);
  const std::vector<obs::Timeline::Sample> samples = timeline.samples();
  ASSERT_EQ(samples.size(), 2u);
  // Oldest retained is sample 3 — its delta is against the EVICTED
  // sample 2 (value 3), proving the delta base outlives the ring.
  EXPECT_EQ(samples[0].tick, 3u);
  EXPECT_EQ(samples[0].counters.at("t.c").value, 6u);
  EXPECT_EQ(samples[0].counters.at("t.c").delta, 3);
  EXPECT_EQ(samples[1].tick, 4u);
  EXPECT_EQ(samples[1].counters.at("t.c").value, 10u);
  EXPECT_EQ(samples[1].counters.at("t.c").delta, 4);
}

TEST(Timeline, KeyFilterRestrictsEveryInstrumentKind) {
  obs::MetricsRegistry registry;
  registry.counter("keep.c").add(1);
  registry.counter("drop.c").add(1);
  registry.gauge("drop.g").set(1.0);
  registry.quantiles("drop.q").record(1.0);
  obs::Timeline::Options options;
  options.registry = &registry;
  options.keys = {"keep.c"};
  obs::Timeline timeline(options);
  timeline.sample_now(1);
  const std::vector<obs::Timeline::Sample> samples = timeline.samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].counters.size(), 1u);
  EXPECT_TRUE(samples[0].counters.contains("keep.c"));
  EXPECT_TRUE(samples[0].gauges.empty());
  EXPECT_TRUE(samples[0].quantiles.empty());
}

TEST(Timeline, TickModeSamplesOnPeriodAndJsonIsByteStable) {
  obs::MetricsRegistry registry;
  obs::Timeline::Options options;
  options.registry = &registry;
  options.mode = obs::Timeline::Mode::kTick;
  options.tick_period = 2;
  obs::Timeline timeline(options);
  for (int i = 0; i < 5; ++i) {
    registry.counter("t.c").add(1);
    timeline.note_request();
  }
  EXPECT_EQ(timeline.samples_taken(), 2u);  // at requests 2 and 4
  const std::vector<obs::Timeline::Sample> samples = timeline.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].tick, 2u);
  EXPECT_EQ(samples[1].tick, 4u);
  const std::string json = timeline.to_json();
  // The determinism contract: tick-mode documents carry no wall-clock
  // fields and re-render byte-identically.
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"mecoff.timeline.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"tick\""), std::string::npos);
  EXPECT_EQ(json, timeline.to_json());
}

TEST(Timeline, WallModeEmitsWallSecondsAndThrottlesByInterval) {
  obs::MetricsRegistry registry;
  obs::Timeline::Options options;
  options.registry = &registry;
  options.mode = obs::Timeline::Mode::kWall;
  options.interval_seconds = 3600.0;  // effectively once
  obs::Timeline timeline(options);
  timeline.poll_wall();  // first poll always samples
  timeline.poll_wall();  // an hour has not elapsed
  timeline.poll_wall();
  EXPECT_EQ(timeline.samples_taken(), 1u);
  EXPECT_NE(timeline.to_json().find("wall_seconds"), std::string::npos);
}

TEST(Timeline, ManualModeIgnoresNoteAndPoll) {
  obs::MetricsRegistry registry;
  obs::Timeline::Options options;
  options.registry = &registry;
  obs::Timeline timeline(options);
  for (int i = 0; i < 10; ++i) timeline.note_request();
  timeline.poll_wall();
  EXPECT_EQ(timeline.samples_taken(), 0u);
  timeline.sample_now(10);
  EXPECT_EQ(timeline.samples_taken(), 1u);
  EXPECT_NE(timeline.to_json().find("\"mode\":\"manual\""),
            std::string::npos);
}

// ---- trace collector ------------------------------------------------------

#ifndef MECOFF_OBS_DISABLED

/// RAII guard: tests must not leave the global collector enabled (other
/// suites in other binaries assume tracing is opt-in).
struct TraceSession {
  explicit TraceSession(bool enabled) {
    TraceCollector::global().clear();
    TraceCollector::global().enable(enabled);
  }
  ~TraceSession() {
    TraceCollector::global().enable(false);
    TraceCollector::global().clear();
  }
};

TEST(Trace, DisabledCollectorRecordsNothing) {
  TraceSession session(false);
  { MECOFF_TRACE_SPAN("obs_test.ignored"); }
  EXPECT_EQ(TraceCollector::global().event_count(), 0u);
}

TEST(Trace, RecordsNestedSpansWithDepth) {
  TraceSession session(true);
  {
    MECOFF_TRACE_SPAN("obs_test.outer");
    {
      MECOFF_TRACE_SPAN_ARG("obs_test.inner", 42);
    }
  }
  TraceCollector::global().enable(false);
  EXPECT_EQ(TraceCollector::global().event_count(), 2u);
  std::ostringstream out;
  TraceCollector::global().write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("obs_test.outer"), std::string::npos);
  EXPECT_NE(json.find("obs_test.inner"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // The inner span closed first and nests one level deeper.
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
  EXPECT_NE(json.find("\"arg\":42"), std::string::npos);
}

TEST(Trace, CapacityCapDropsInsteadOfGrowing) {
  TraceSession session(true);
  TraceCollector::global().set_capacity(8);
  for (int i = 0; i < 20; ++i) {
    MECOFF_TRACE_SPAN("obs_test.burst");
  }
  TraceCollector::global().enable(false);
  EXPECT_LE(TraceCollector::global().event_count(), 8u);
  EXPECT_GE(TraceCollector::global().dropped_count(), 12u);
  TraceCollector::global().set_capacity(1u << 20);
}

TEST(Trace, ThreadsGetDistinctLogsAndAllEventsSurvive) {
  TraceSession session(true);
  constexpr std::size_t kSpansPerThread = 50;
  std::thread t1([] {
    for (std::size_t i = 0; i < kSpansPerThread; ++i) {
      MECOFF_TRACE_SPAN("obs_test.t1");
    }
  });
  std::thread t2([] {
    for (std::size_t i = 0; i < kSpansPerThread; ++i) {
      MECOFF_TRACE_SPAN("obs_test.t2");
    }
  });
  t1.join();
  t2.join();
  TraceCollector::global().enable(false);
  EXPECT_EQ(TraceCollector::global().event_count(), 2 * kSpansPerThread);
}

#endif  // MECOFF_OBS_DISABLED

// ---- instrumentation is observation only ----------------------------------

mec::MecSystem obs_test_system(std::size_t users) {
  mec::SystemParams params;
  params.mobile_power = 1.0;
  params.transmit_power = 8.0;
  params.bandwidth = 50.0;
  params.mobile_capacity = 5.0;
  params.server_capacity = 500.0;
  std::vector<mec::UserApp> apps;
  apps.reserve(users);
  for (std::size_t u = 0; u < users; ++u) {
    graph::NetgenParams p;
    p.nodes = 80;
    p.edges = 320;
    p.seed = 1000 + u;
    mec::UserApp app;
    app.graph = graph::netgen_style(p);
    apps.push_back(std::move(app));
  }
  return mec::MecSystem{params, std::move(apps)};
}

mec::OffloadingScheme solve_once(const mec::MecSystem& system,
                                 parallel::ThreadPool* pool,
                                 mec::PipelineOffloader::SolveStats* stats) {
  mec::PipelineOptions opts;
  opts.propagation.coupling_threshold = 10.0;
  opts.pool = pool;
  mec::PipelineOffloader offloader(opts);
  const mec::OffloadingScheme scheme = offloader.solve(system);
  if (stats != nullptr) *stats = offloader.last_stats();
  return scheme;
}

TEST(ObsEquivalence, TracingDoesNotChangeSchemesSerial) {
  const mec::MecSystem system = obs_test_system(6);
  const mec::OffloadingScheme untraced = solve_once(system, nullptr, nullptr);
#ifndef MECOFF_OBS_DISABLED
  TraceSession session(true);
#endif
  const mec::OffloadingScheme traced = solve_once(system, nullptr, nullptr);
  EXPECT_EQ(traced, untraced);
}

TEST(ObsEquivalence, TracingDoesNotChangeSchemesPooled) {
  const mec::MecSystem system = obs_test_system(6);
  parallel::ThreadPool pool(4);
  const mec::OffloadingScheme untraced = solve_once(system, &pool, nullptr);
#ifndef MECOFF_OBS_DISABLED
  TraceSession session(true);
#endif
  const mec::OffloadingScheme traced = solve_once(system, &pool, nullptr);
  EXPECT_EQ(traced, untraced);
  // And pooled == serial stays true with tracing on (the bench's
  // bit-identity claim must survive instrumentation).
  const mec::OffloadingScheme serial = solve_once(system, nullptr, nullptr);
  EXPECT_EQ(traced, serial);
}

TEST(ObsEquivalence, SolveStatsStageSumsBoundedByTotalOnSerialRuns) {
  const mec::MecSystem system = obs_test_system(4);
  mec::PipelineOffloader::SolveStats stats;
  (void)solve_once(system, nullptr, &stats);
  // Serial run: stage clocks are disjoint slices of the same wall
  // clock, so their sum cannot exceed the total (small epsilon for the
  // unmeasured glue between stopwatches).
  EXPECT_LE(stats.compress_seconds + stats.cut_seconds + stats.greedy_seconds,
            stats.total_seconds + 1e-6);
  EXPECT_GE(stats.total_seconds, 0.0);
}

#ifndef MECOFF_OBS_DISABLED
TEST(ObsEquivalence, RegistryGaugesEqualSolveStatsExactly) {
  const mec::MecSystem system = obs_test_system(4);
  mec::PipelineOffloader::SolveStats stats;
  (void)solve_once(system, nullptr, &stats);
  // Single-source timing contract: the gauges are written from the very
  // doubles SolveStats holds, so equality is exact, not approximate.
  const obs::MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.gauges.at("mec.solve.compress_seconds"),
            stats.compress_seconds);
  EXPECT_EQ(snap.gauges.at("mec.solve.cut_seconds"), stats.cut_seconds);
  EXPECT_EQ(snap.gauges.at("mec.solve.greedy_seconds"),
            stats.greedy_seconds);
  EXPECT_EQ(snap.gauges.at("mec.solve.total_seconds"), stats.total_seconds);
  EXPECT_EQ(snap.gauges.at("mec.solve.final_objective"),
            stats.final_objective);
}
#endif

}  // namespace
}  // namespace mecoff
