// Unit tests for Algorithm 2: monotone objective, consistency of the
// incremental bookkeeping with the full cost model, and termination.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "mec/costs.hpp"
#include "mec/greedy.hpp"

namespace mecoff::mec {
namespace {

SystemParams test_params() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 8.0;
  p.bandwidth = 10.0;
  p.mobile_capacity = 4.0;
  p.server_capacity = 200.0;
  return p;
}

/// A user whose graph is a weighted barbell: two natural parts.
UserApp barbell_user() {
  UserApp app;
  app.graph = graph::barbell_graph(4, 2.0, 9.0);
  return app;
}

/// Parts = the two cliques of the barbell.
std::vector<Part> barbell_parts(const MecSystem& system, std::size_t user) {
  std::vector<Part> parts(2);
  for (std::uint8_t half = 0; half < 2; ++half) {
    Part& part = parts[half];
    part.user = user;
    for (graph::NodeId v = half * 4u; v < (half + 1) * 4u; ++v) {
      part.nodes.push_back(v);
      part.weight += system.users[user].graph.node_weight(v);
    }
  }
  return parts;
}

TEST(Greedy, ObjectiveHistoryStrictlyDecreases) {
  MecSystem system{test_params(), {barbell_user(), barbell_user()}};
  std::vector<Part> parts = barbell_parts(system, 0);
  for (Part& p : barbell_parts(system, 1)) parts.push_back(p);
  const GreedyResult r = generate_scheme(system, parts);
  for (std::size_t i = 1; i < r.objective_history.size(); ++i)
    EXPECT_LT(r.objective_history[i], r.objective_history[i - 1]);
}

TEST(Greedy, IncrementalObjectiveMatchesEvaluate) {
  MecSystem system{test_params(), {barbell_user(), barbell_user()}};
  std::vector<Part> parts = barbell_parts(system, 0);
  for (Part& p : barbell_parts(system, 1)) parts.push_back(p);
  const GreedyResult r = generate_scheme(system, parts);
  const SystemCost cost = evaluate(system, r.scheme);
  EXPECT_NEAR(r.objective_history.back(), cost.objective(),
              1e-9 * (1.0 + cost.objective()));
}

TEST(Greedy, FinalSchemeBeatsBothExtremes) {
  // Mobile is slow (heavy compute worth offloading), bridge is light —
  // the greedy should land strictly between all-local and all-remote...
  // or at least never above either.
  MecSystem system{test_params(), {barbell_user()}};
  const GreedyResult r = generate_scheme(system, barbell_parts(system, 0));
  const double obj = evaluate(system, r.scheme).objective();
  EXPECT_LE(obj,
            evaluate(system, OffloadingScheme::all_local(system)).objective() +
                1e-9);
  EXPECT_LE(
      obj,
      evaluate(system, OffloadingScheme::all_remote(system)).objective() +
          1e-9);
}

/// Pinned root 0 feeding part A = {1, 2} over a heavy edge, part
/// B = {3, 4} hanging off A over a light edge. With all parts remote
/// the heavy pinned↔A edge crosses the network.
MecSystem chain_system(SystemParams p, std::vector<Part>& parts) {
  graph::GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 100.0);  // pinned → A: expensive to cut
  b.add_edge(1, 2, 10.0);
  b.add_edge(2, 3, 5.0);    // A → B
  b.add_edge(3, 4, 10.0);
  UserApp app;
  app.graph = b.build();
  app.unoffloadable = {true, false, false, false, false};
  parts.assign(2, Part{});
  parts[0].user = 0;
  parts[0].nodes = {1, 2};
  parts[0].weight = 2.0;
  parts[1].user = 0;
  parts[1].nodes = {3, 4};
  parts[1].weight = 2.0;
  return MecSystem{p, {app}};
}

TEST(Greedy, ExpensiveTransmissionPullsWorkLocal) {
  // Tiny compute savings, huge cross edges: everything should come home.
  SystemParams p = test_params();
  p.transmit_power = 1000.0;
  p.bandwidth = 0.1;
  std::vector<Part> parts;
  const MecSystem system = chain_system(p, parts);
  const GreedyResult r = generate_scheme(system, parts);
  EXPECT_EQ(r.scheme.remote_count(0), 0u);  // all moved back local
  EXPECT_EQ(r.moves, 2u);
}

TEST(Greedy, CheapTransmissionKeepsWorkRemote) {
  // Big compute, near-free network: offloading should stick.
  SystemParams p = test_params();
  p.transmit_power = 0.01;
  p.bandwidth = 10000.0;
  p.mobile_capacity = 0.5;  // painfully slow device
  MecSystem system{p, {barbell_user()}};
  const GreedyResult r = generate_scheme(system, barbell_parts(system, 0));
  EXPECT_EQ(r.scheme.remote_count(0), 8u);
  EXPECT_EQ(r.moves, 0u);
}

TEST(Greedy, EmptyPartsGivesAllLocal) {
  MecSystem system{test_params(), {barbell_user()}};
  const GreedyResult r = generate_scheme(system, {});
  EXPECT_EQ(r.scheme.remote_count(0), 0u);
  EXPECT_EQ(r.moves, 0u);
  EXPECT_EQ(r.objective_history.size(), 1u);
}

TEST(Greedy, MaxMovesCapRespected) {
  SystemParams p = test_params();
  p.transmit_power = 1000.0;
  p.bandwidth = 0.1;
  std::vector<Part> parts;
  const MecSystem system = chain_system(p, parts);
  GreedyOptions opts;
  opts.max_moves = 1;
  const GreedyResult r = generate_scheme(system, parts, opts);
  EXPECT_EQ(r.moves, 1u);
  EXPECT_EQ(r.scheme.remote_count(0), 2u);  // one part still remote
}

TEST(Greedy, OverlappingPartsRejected) {
  MecSystem system{test_params(), {barbell_user()}};
  std::vector<Part> parts = barbell_parts(system, 0);
  parts[1].nodes.push_back(parts[0].nodes[0]);  // overlap
  EXPECT_THROW(generate_scheme(system, parts), mecoff::PreconditionError);
}

TEST(Greedy, PinnedNodesStayLocalThroughout) {
  UserApp app = barbell_user();
  app.unoffloadable = {true, false, false, false, false, false, false, false};
  MecSystem system{test_params(), {app}};
  // Parts exclude the pinned node.
  std::vector<Part> parts(2);
  parts[0].user = 0;
  for (graph::NodeId v = 1; v < 4; ++v) {
    parts[0].nodes.push_back(v);
    parts[0].weight += app.graph.node_weight(v);
  }
  parts[1].user = 0;
  for (graph::NodeId v = 4; v < 8; ++v) {
    parts[1].nodes.push_back(v);
    parts[1].weight += app.graph.node_weight(v);
  }
  const GreedyResult r = generate_scheme(system, parts);
  EXPECT_EQ(r.scheme.placement[0][0], Placement::kLocal);
  EXPECT_TRUE(r.scheme.valid_for(system));
}

TEST(Greedy, MultiUserContentionTriggersPullback) {
  // With many users saturating the server, some should retreat to local
  // even though a single user would offload everything.
  SystemParams p = test_params();
  p.server_capacity = 30.0;  // tiny server
  p.contention_factor = 4.0;
  std::vector<UserApp> users(12, barbell_user());
  MecSystem system{p, users};
  std::vector<Part> parts;
  for (std::size_t u = 0; u < system.num_users(); ++u)
    for (Part& part : barbell_parts(system, u)) parts.push_back(part);
  const GreedyResult r = generate_scheme(system, parts);
  std::size_t total_remote = 0;
  for (std::size_t u = 0; u < system.num_users(); ++u)
    total_remote += r.scheme.remote_count(u);
  EXPECT_LT(total_remote, 12u * 8u);  // not everyone stays remote

  // Single-user reference keeps everything remote.
  MecSystem solo{p, {barbell_user()}};
  const GreedyResult solo_r = generate_scheme(solo, barbell_parts(solo, 0));
  EXPECT_EQ(solo_r.scheme.remote_count(0), 8u);
}

}  // namespace
}  // namespace mecoff::mec

namespace greedy_extensions {

using mecoff::mec::GreedyOptions;
using mecoff::mec::GreedyResult;
using mecoff::mec::MecSystem;
using mecoff::mec::OffloadingScheme;
using mecoff::mec::Part;
using mecoff::mec::Placement;
using mecoff::mec::SystemParams;
using mecoff::mec::UserApp;
using mecoff::mec::evaluate;
using mecoff::mec::generate_scheme;

SystemParams ext_params() {
  SystemParams p;
  p.mobile_power = 1.0;
  p.transmit_power = 8.0;
  p.bandwidth = 10.0;
  p.mobile_capacity = 4.0;
  p.server_capacity = 100.0;
  p.contention_factor = 0.5;
  return p;
}

TEST(GreedyInit, InitiallyLocalPartsStartAndStayLocal) {
  UserApp app;
  app.graph = mecoff::graph::barbell_graph(3, 1.0, 9.0);
  MecSystem system{ext_params(), {app}};
  std::vector<Part> parts(2);
  for (std::uint8_t half = 0; half < 2; ++half) {
    parts[half].user = 0;
    for (mecoff::graph::NodeId v = half * 3u; v < (half + 1) * 3u; ++v) {
      parts[half].nodes.push_back(v);
      parts[half].weight += app.graph.node_weight(v);
    }
  }
  parts[0].initially_local = true;
  const GreedyResult r = generate_scheme(system, parts);
  for (mecoff::graph::NodeId v = 0; v < 3; ++v)
    EXPECT_EQ(r.scheme.placement[0][v], Placement::kLocal);
  // The initial objective already accounts for the anchored part.
  const double recomputed = evaluate(system, r.scheme).objective();
  EXPECT_NEAR(r.objective_history.back(), recomputed,
              1e-9 * (1.0 + recomputed));
}

TEST(GreedyGroups, GroupRetreatEscapesPairwiseTrap) {
  // Two parts joined by an enormous internal cut, both coupled to a
  // pinned hub by heavy edges. Moving either part alone exposes the
  // internal cut (bad); moving both together removes all transmission
  // (great). Single-move greedy must stay remote; group moves retreat.
  mecoff::graph::GraphBuilder b;
  const auto hub = b.add_node(1.0);  // pinned
  const auto a1 = b.add_node(10.0);
  const auto a2 = b.add_node(10.0);
  b.add_edge(hub, a1, 50.0);
  b.add_edge(hub, a2, 50.0);
  b.add_edge(a1, a2, 500.0);  // the trap
  UserApp app;
  app.graph = b.build();
  app.unoffloadable = {true, false, false};
  MecSystem system{ext_params(), {app}};

  std::vector<Part> parts(2);
  parts[0].user = 0;
  parts[0].nodes = {a1};
  parts[0].weight = 10.0;
  parts[0].group = 0;
  parts[1].user = 0;
  parts[1].nodes = {a2};
  parts[1].weight = 10.0;
  parts[1].group = 0;

  GreedyOptions single_only;
  single_only.enable_group_moves = false;
  const GreedyResult trapped = generate_scheme(system, parts, single_only);
  EXPECT_EQ(trapped.scheme.remote_count(0), 2u);  // stuck

  GreedyOptions with_groups;
  with_groups.enable_group_moves = true;
  const GreedyResult freed = generate_scheme(system, parts, with_groups);
  EXPECT_EQ(freed.scheme.remote_count(0), 0u);  // retreated together
  EXPECT_LE(evaluate(system, freed.scheme).objective(),
            evaluate(system, trapped.scheme).objective());
}

TEST(GreedyGroups, GroupMovesNeverWorsenTheObjective) {
  for (const std::uint64_t seed : {3ULL, 5ULL, 7ULL}) {
    mecoff::graph::NetgenParams gp;
    gp.nodes = 80;
    gp.edges = 320;
    gp.components = 2;
    gp.seed = seed;
    UserApp app;
    app.graph = mecoff::graph::netgen_style(gp);
    MecSystem system{ext_params(), {app}};

    // Parts: split each half of the node range, grouped per half.
    std::vector<Part> parts(4);
    for (std::size_t i = 0; i < 4; ++i) {
      parts[i].user = 0;
      parts[i].group = i / 2;
      for (mecoff::graph::NodeId v = static_cast<mecoff::graph::NodeId>(
               i * 20);
           v < (i + 1) * 20; ++v) {
        parts[i].nodes.push_back(v);
        parts[i].weight += app.graph.node_weight(v);
      }
    }
    GreedyOptions off;
    off.enable_group_moves = false;
    GreedyOptions on;
    on.enable_group_moves = true;
    const double obj_off =
        evaluate(system, generate_scheme(system, parts, off).scheme)
            .objective();
    const double obj_on =
        evaluate(system, generate_scheme(system, parts, on).scheme)
            .objective();
    EXPECT_LE(obj_on, obj_off + 1e-9) << "seed " << seed;
  }
}

/// Reference implementation: the naive O(P) argmin scan per round,
/// single-part moves, recomputing everything from scratch. The lazy
/// queue must reproduce its scheme exactly.
OffloadingScheme reference_greedy(const MecSystem& system,
                                  std::vector<Part> parts) {
  OffloadingScheme scheme = OffloadingScheme::all_local(system);
  std::vector<bool> remote(parts.size(), true);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].initially_local) {
      remote[i] = false;
      continue;
    }
    for (const mecoff::graph::NodeId v : parts[i].nodes)
      scheme.placement[parts[i].user][v] = Placement::kRemote;
  }
  double current = evaluate(system, scheme).objective();
  while (true) {
    double best_obj = current;
    std::size_t best = SIZE_MAX;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (!remote[i]) continue;
      OffloadingScheme trial = scheme;
      for (const mecoff::graph::NodeId v : parts[i].nodes)
        trial.placement[parts[i].user][v] = Placement::kLocal;
      const double obj = evaluate(system, trial).objective();
      if (obj < best_obj - 1e-12) {
        best_obj = obj;
        best = i;
      }
    }
    if (best == SIZE_MAX) break;
    for (const mecoff::graph::NodeId v : parts[best].nodes)
      scheme.placement[parts[best].user][v] = Placement::kLocal;
    remote[best] = false;
    current = best_obj;
  }
  return scheme;
}

TEST(GreedyLazyQueue, MatchesNaiveReferenceGreedy) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL}) {
    mecoff::graph::NetgenParams gp;
    gp.nodes = 60;
    gp.edges = 240;
    gp.components = 3;
    gp.seed = seed;
    UserApp proto;
    proto.graph = mecoff::graph::netgen_style(gp);
    MecSystem system{ext_params(), {proto, proto}};

    // 6 parts per user: ranges of 10 nodes.
    std::vector<Part> parts;
    for (std::size_t u = 0; u < 2; ++u) {
      for (std::size_t k = 0; k < 6; ++k) {
        Part part;
        part.user = u;
        for (mecoff::graph::NodeId v =
                 static_cast<mecoff::graph::NodeId>(k * 10);
             v < (k + 1) * 10; ++v) {
          part.nodes.push_back(v);
          part.weight += proto.graph.node_weight(v);
        }
        parts.push_back(std::move(part));
      }
    }

    GreedyOptions opts;
    opts.enable_group_moves = false;
    const GreedyResult fast = generate_scheme(system, parts, opts);
    const OffloadingScheme reference = reference_greedy(system, parts);
    for (std::size_t u = 0; u < 2; ++u)
      EXPECT_EQ(fast.scheme.placement[u], reference.placement[u])
          << "seed " << seed << " user " << u;
  }
}

TEST(GreedyCongestion, ConvexWaitCapsOffloadedAmount) {
  // With strong congestion, doubling the work should NOT double the
  // offloaded amount: the cap is capacity-determined.
  SystemParams p = ext_params();
  p.contention_factor = 5.0;
  p.server_capacity = 50.0;

  const auto offloaded_for = [&](std::size_t num_parts) {
    mecoff::graph::GraphBuilder b;
    std::vector<Part> parts;
    for (std::size_t i = 0; i < num_parts; ++i) {
      const auto v = b.add_node(40.0);
      Part part;
      part.user = 0;
      part.nodes = {v};
      part.weight = 40.0;
      parts.push_back(std::move(part));
    }
    UserApp app;
    app.graph = b.build();
    MecSystem system{p, {app}};
    const GreedyResult r = generate_scheme(system, parts);
    double remote = 0.0;
    for (std::size_t i = 0; i < num_parts; ++i)
      if (r.scheme.placement[0][i] == Placement::kRemote) remote += 40.0;
    return remote;
  };

  const double small = offloaded_for(4);
  const double large = offloaded_for(16);
  EXPECT_GT(small, 0.0);
  EXPECT_LT(large, 4.0 * small);  // strictly sublinear growth
}

}  // namespace greedy_extensions
