// Tests for the Fiduccia–Mattheyses refinement and cutter.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "kl/fiduccia_mattheyses.hpp"
#include "kl/kernighan_lin.hpp"
#include "mincut/stoer_wagner.hpp"

namespace mecoff::kl {
namespace {

using graph::Bipartition;
using graph::NodeId;
using graph::WeightedGraph;

Bipartition alternating(const WeightedGraph& g) {
  Bipartition p;
  p.side.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) p.side[v] = v % 2;
  p.cut_weight = graph::cut_weight(g, p.side);
  return p;
}

TEST(FmRefine, NeverIncreasesCutWeight) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    graph::NetgenParams params;
    params.nodes = 70;
    params.edges = 280;
    params.components = 1;
    params.seed = seed;
    const WeightedGraph g = graph::netgen_style(params);
    const Bipartition initial = alternating(g);
    const FmResult r = fm_refine(g, initial, {});
    EXPECT_LE(r.partition.cut_weight, initial.cut_weight + 1e-9);
    EXPECT_NEAR(initial.cut_weight - r.partition.cut_weight, r.total_gain,
                1e-6 * (1.0 + initial.cut_weight));
  }
}

TEST(FmRefine, RecoversBarbellSplit) {
  const WeightedGraph g = graph::barbell_graph(5, 1.0, 10.0);
  const FmResult r = fm_refine(g, alternating(g), {});
  EXPECT_DOUBLE_EQ(r.partition.cut_weight, 1.0);
}

TEST(FmRefine, RespectsBalanceFloor) {
  // Star with a massive hub: the min cut isolates a leaf, but balance
  // tolerance 0.05 forbids a 1-vs-9 split by node weight.
  const WeightedGraph g = graph::star_graph(10, 1.0, 1.0);
  Bipartition initial;
  initial.side.assign(10, 0);
  for (NodeId v = 5; v < 10; ++v) initial.side[v] = 1;
  initial.cut_weight = graph::cut_weight(g, initial.side);

  FmOptions opts;
  opts.balance_tolerance = 0.05;
  const FmResult r = fm_refine(g, initial, opts);
  double w0 = 0;
  for (NodeId v = 0; v < 10; ++v)
    if (r.partition.side[v] == 0) w0 += 1.0;
  EXPECT_GE(w0, 0.45 * 10 - 1e-9);
  EXPECT_LE(w0, 0.55 * 10 + 1e-9);
}

TEST(FmRefine, LooseBalanceApproachesGlobalMinimum) {
  // With the constraint effectively off, FM from a balanced start can
  // walk toward very unbalanced (cheaper) cuts.
  graph::GraphBuilder b;
  for (int i = 0; i < 8; ++i) b.add_node(1.0);
  // Clique of 7 plus one pendant vertex with a light edge.
  for (int i = 0; i < 7; ++i)
    for (int j = i + 1; j < 7; ++j)
      b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), 5.0);
  b.add_edge(6, 7, 0.5);
  const WeightedGraph g = b.build();

  FmOptions loose;
  loose.balance_tolerance = 0.5;
  const FmResult r = fm_refine(g, alternating(g), loose);
  EXPECT_DOUBLE_EQ(r.partition.cut_weight,
                   mincut::stoer_wagner(g).cut_weight);
}

TEST(FmRefine, TinyGraphs) {
  EXPECT_DOUBLE_EQ(fm_refine(graph::WeightedGraph{}, Bipartition{}, {})
                       .partition.cut_weight,
                   0.0);
  const WeightedGraph one = graph::path_graph(1);
  Bipartition p;
  p.side = {0};
  EXPECT_DOUBLE_EQ(fm_refine(one, p, {}).partition.cut_weight, 0.0);
}

TEST(FmRefine, InvalidInputsThrow) {
  const WeightedGraph g = graph::path_graph(4);
  Bipartition bad;
  bad.side = {0, 1};
  EXPECT_THROW(fm_refine(g, bad, {}), mecoff::PreconditionError);
  Bipartition ok = alternating(g);
  FmOptions opts;
  opts.balance_tolerance = 0.7;
  EXPECT_THROW(fm_refine(g, ok, opts), mecoff::PreconditionError);
}

TEST(FmBipartitioner, ValidBalancedCuts) {
  for (const std::uint64_t seed : {5ULL, 6ULL, 7ULL}) {
    graph::NetgenParams params;
    params.nodes = 60;
    params.edges = 240;
    params.components = 1;
    params.seed = seed;
    const WeightedGraph g = graph::netgen_style(params);
    FmBipartitioner cutter;
    const Bipartition cut = cutter.bipartition(g);
    ASSERT_TRUE(graph::is_valid_partition(g, cut.side));
    EXPECT_NEAR(cut.cut_weight, graph::cut_weight(g, cut.side), 1e-9);
    double w0 = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (cut.side[v] == 0) w0 += g.node_weight(v);
    const double total = g.total_node_weight();
    EXPECT_GE(w0, 0.3 * total);  // within the default 0.1 tolerance + slack
    EXPECT_LE(w0, 0.7 * total);
  }
}

TEST(FmBipartitioner, CompetitiveWithKernighanLin) {
  // FM (single moves, weight balance) should roughly match exact-KL
  // (pair swaps, count balance) on clustered instances.
  double fm_total = 0.0;
  double kl_total = 0.0;
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    graph::NetgenParams params;
    params.nodes = 50;
    params.edges = 190;
    params.components = 1;
    params.seed = seed;
    const WeightedGraph g = graph::netgen_style(params);
    fm_total += FmBipartitioner{}.bipartition(g).cut_weight;
    KlOptions kl_opts;
    kl_opts.exact_pair_selection = true;
    kl_total += KernighanLinBipartitioner{kl_opts}.bipartition(g).cut_weight;
  }
  EXPECT_LE(fm_total, 1.5 * kl_total);
}

TEST(FmBipartitioner, DegenerateInputs) {
  FmBipartitioner cutter;
  EXPECT_TRUE(cutter.bipartition(graph::WeightedGraph{}).side.empty());
  EXPECT_EQ(cutter.bipartition(graph::path_graph(1)).side.size(), 1u);
  EXPECT_EQ(cutter.name(), "fm");
}

}  // namespace
}  // namespace mecoff::kl
