// Incremental re-solve differential suite (ctest label: resolve).
//
// Three layers of the warm-start stack, each proven against its cold
// twin:
//
//   kernel   the blocked CSR SpMV is held to its documented summation
//            order by an independent oracle — EXACT double equality,
//            serial and pooled — and the naive kernel stays the
//            bit-compatible default;
//   solver   Lanczos/Fiedler warm starts converge to the same pair
//            with fewer matvecs, reject wrong-dimension vectors with a
//            typed error, and degrade (never fail) on degenerate
//            seeds; warm-projected greedy starts never end above the
//            cold objective;
//   serving  SchemeCache near-miss hints and the SolveService warm
//            path: perturbed-cost re-solves reuse stored Fiedler
//            vectors, topology changes do not, eviction drops donors,
//            and warm stays strictly opt-in.
//
// Everything observes return values and stats structs only, so the
// suite runs identically obs-on, obs-off, and under TSAN (suite names
// carry the Resolve prefix the sanitize workflow's -R regex matches).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "graph/weighted_graph.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "mec/costs.hpp"
#include "mec/model.hpp"
#include "mec/offloader.hpp"
#include "mec/scheme.hpp"
#include "parallel/parallel_spmv.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/fingerprint.hpp"
#include "serve/scheme_cache.hpp"
#include "serve/solve_service.hpp"
#include "spectral/fiedler.hpp"

namespace mecoff {
namespace {

// ---- shared generators ----------------------------------------------------

/// Random CSR with UNIQUE (row, col) coordinates, so from_triplets'
/// unstable duplicate-merge order cannot perturb bits and the in-test
/// oracle can reconstruct the exact storage order (row-major, columns
/// ascending). `dense_row` (if < rows) gets every column; other rows
/// are Bernoulli-filled, leaving some empty at low density.
linalg::SparseMatrix random_csr(std::size_t rows, std::size_t cols,
                                double density, std::uint64_t seed,
                                std::size_t dense_row = SIZE_MAX) {
  Rng rng(seed);
  std::vector<linalg::Triplet> triplets;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (r == dense_row || rng.bernoulli(density))
        triplets.push_back({r, c, rng.uniform(-2.0, 2.0)});
  return linalg::SparseMatrix::from_triplets(rows, cols, std::move(triplets));
}

/// The same unique triplets, reassembled independently of SparseMatrix:
/// per row, columns ascending (CSR storage order for unique coords).
std::vector<std::vector<std::pair<std::size_t, double>>> oracle_rows(
    std::size_t rows, std::size_t cols, double density, std::uint64_t seed,
    std::size_t dense_row = SIZE_MAX) {
  Rng rng(seed);
  std::vector<std::vector<std::pair<std::size_t, double>>> out(rows);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (r == dense_row || rng.bernoulli(density))
        out[r].emplace_back(c, rng.uniform(-2.0, 2.0));
  return out;
}

/// Independent implementation of the blocked kernel's summation-order
/// contract (sparse_matrix.hpp): lane j sums entries k0 + 4i + j over
/// the row's full quads, lanes combine (a0 + a1) + (a2 + a3), tail
/// left to right. Deliberately structured differently from the
/// production loop (explicit lane vectors) so a transcription bug in
/// either shows up as a bit difference.
double blocked_row_oracle(
    const std::vector<std::pair<std::size_t, double>>& row,
    const linalg::Vec& x) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t quads = row.size() / 4;
  for (std::size_t i = 0; i < quads; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      lanes[j] += row[4 * i + j].second * x[row[4 * i + j].first];
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (std::size_t k = 4 * quads; k < row.size(); ++k)
    sum += row[k].second * x[row[k].first];
  return sum;
}

linalg::Vec random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Vec v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// The differential_test.cpp seeded-graph family: a random spanning
/// tree plus Bernoulli extra edges, weights in [0.5, 3.0] — connected
/// by construction, no degenerate cuts.
graph::WeightedGraph make_connected_graph(std::size_t nodes,
                                          std::uint64_t seed,
                                          double extra_edge_probability) {
  Rng rng(seed ^ 0xd1ffe4e7);
  graph::GraphBuilder builder;
  for (std::size_t v = 0; v < nodes; ++v) builder.add_node(1.0);
  for (std::size_t v = 1; v < nodes; ++v) {
    const auto parent = static_cast<graph::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
    builder.add_edge(static_cast<graph::NodeId>(v), parent,
                     rng.uniform(0.5, 3.0));
  }
  for (std::size_t u = 0; u < nodes; ++u)
    for (std::size_t v = u + 1; v < nodes; ++v)
      if (rng.bernoulli(extra_edge_probability))
        builder.add_edge(static_cast<graph::NodeId>(u),
                         static_cast<graph::NodeId>(v),
                         rng.uniform(0.5, 3.0));
  return builder.build();
}

mec::MecSystem make_system(graph::WeightedGraph g) {
  mec::MecSystem system;
  mec::UserApp user;
  user.graph = std::move(g);
  system.users.push_back(std::move(user));
  return system;
}

/// Rebuild `g` with every node weight kept and edge weights multiplied
/// by (1 + jitter), jitter uniform in [-magnitude, magnitude].
graph::WeightedGraph jitter_edge_weights(const graph::WeightedGraph& g,
                                         std::uint64_t seed,
                                         double magnitude) {
  Rng rng(seed);
  graph::GraphBuilder builder;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    builder.add_node(g.node_weight(v));
  for (const graph::Edge& e : g.edges())
    builder.add_edge(e.u, e.v,
                     e.weight * (1.0 + rng.uniform(-magnitude, magnitude)));
  return builder.build();
}

/// Rebuild `g` dropping the edge at index `drop` (mod edge count).
graph::WeightedGraph remove_one_edge(const graph::WeightedGraph& g,
                                     std::size_t drop) {
  graph::GraphBuilder builder;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    builder.add_node(g.node_weight(v));
  const auto edges = g.edges();
  drop %= edges.size();
  for (std::size_t i = 0; i < edges.size(); ++i)
    if (i != drop) builder.add_edge(edges[i].u, edges[i].v, edges[i].weight);
  return builder.build();
}

/// Rebuild `g` with one extra edge between the first non-adjacent node
/// pair (falls back to a parallel-free duplicate-weight bump if the
/// graph is complete — n <= 8 grids rarely are).
graph::WeightedGraph add_one_edge(const graph::WeightedGraph& g) {
  std::map<std::pair<graph::NodeId, graph::NodeId>, bool> present;
  for (const graph::Edge& e : g.edges())
    present[{std::min(e.u, e.v), std::max(e.u, e.v)}] = true;
  graph::GraphBuilder builder;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    builder.add_node(g.node_weight(v));
  for (const graph::Edge& e : g.edges())
    builder.add_edge(e.u, e.v, e.weight);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u)
    for (graph::NodeId v = u + 1; v < g.num_nodes(); ++v)
      if (!present.count({u, v})) {
        builder.add_edge(u, v, 1.25);
        return builder.build();
      }
  return builder.build();
}

struct ColdSolve {
  mec::OffloadingScheme scheme;
  mec::PipelineOffloader::SolveArtifacts artifacts;
  double objective = 0.0;
};

ColdSolve cold_solve(const mec::MecSystem& system) {
  mec::PipelineOptions options;
  options.collect_fiedler_vectors = true;
  mec::PipelineOffloader offloader(options);
  ColdSolve out;
  out.scheme = offloader.solve(system);
  out.artifacts = offloader.last_artifacts();
  out.objective = mec::evaluate(system, out.scheme).objective();
  return out;
}

struct WarmSolve {
  mec::OffloadingScheme scheme;
  mec::PipelineOffloader::SolveStats stats;
  double objective = 0.0;
};

WarmSolve warm_solve(const mec::MecSystem& system,
                     const mec::PipelineOffloader::WarmStart& warm) {
  mec::PipelineOptions options;
  options.collect_fiedler_vectors = true;
  mec::PipelineOffloader offloader(options);
  WarmSolve out;
  out.scheme = offloader.solve(system, &warm);
  out.stats = offloader.last_stats();
  out.objective = mec::evaluate(system, out.scheme).objective();
  return out;
}

// ---- blocked SpMV ---------------------------------------------------------

TEST(ResolveSpmvTest, BlockedKernelMatchesOrderOracleExactly) {
  // Sizes straddle every boundary: n = 0/1, row counts off the 64-row
  // tile (63/65/130), nnz-per-row off the 4-lane quad, plus an
  // all-dense row and (at low density) empty rows.
  const struct {
    std::size_t rows, cols;
    double density;
    std::size_t dense_row;
  } cases[] = {
      {0, 0, 0.5, SIZE_MAX},  {1, 1, 1.0, SIZE_MAX},
      {1, 7, 0.6, SIZE_MAX},  {5, 5, 0.08, SIZE_MAX},
      {17, 9, 0.3, 3},        {63, 63, 0.2, 10},
      {64, 64, 0.15, SIZE_MAX}, {65, 31, 0.4, 64},
      {130, 40, 0.05, 77},
  };
  std::uint64_t seed = 0x5eed0;
  for (const auto& c : cases) {
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      ++seed;
      const linalg::SparseMatrix m =
          random_csr(c.rows, c.cols, c.density, seed, c.dense_row);
      const auto rows = oracle_rows(c.rows, c.cols, c.density, seed,
                                    c.dense_row);
      const linalg::Vec x = random_vec(c.cols, seed ^ 0xabc);
      linalg::Vec y(c.rows, -7.0);
      m.multiply_into(x, y, linalg::SpmvKernel::kBlocked);
      for (std::size_t r = 0; r < c.rows; ++r) {
        // EXPECT_EQ on doubles: the contract is exact bit equality.
        EXPECT_EQ(y[r], blocked_row_oracle(rows[r], x))
            << "rows=" << c.rows << " cols=" << c.cols << " row=" << r
            << " seed=" << seed;
      }
    }
  }
}

TEST(ResolveSpmvTest, NaiveKernelIsBitCompatibleDefault) {
  const linalg::SparseMatrix m = random_csr(50, 50, 0.25, 0xfeed, 8);
  const auto rows = oracle_rows(50, 50, 0.25, 0xfeed, 8);
  const linalg::Vec x = random_vec(50, 0xbeef);
  linalg::Vec y_default(50, 0.0);
  linalg::Vec y_naive(50, 0.0);
  m.multiply_into(x, y_default);  // no kernel argument: the seed path
  m.multiply_into(x, y_naive, linalg::SpmvKernel::kNaive);
  for (std::size_t r = 0; r < 50; ++r) {
    // Default == explicit kNaive == strict storage-order sum.
    EXPECT_EQ(y_default[r], y_naive[r]);
    double sum = 0.0;
    for (const auto& [c, v] : rows[r]) sum += v * x[c];
    EXPECT_EQ(y_default[r], sum) << "row " << r;
  }
}

TEST(ResolveSpmvTest, PooledBlockedBitIdenticalToSerialBlocked) {
  parallel::ThreadPool pool(4);
  for (const std::size_t n : {1u, 5u, 63u, 64u, 65u, 200u}) {
    const linalg::SparseMatrix m = random_csr(n, n, 0.3, 0xcafe + n, n / 2);
    const linalg::Vec x = random_vec(n, 0xd00d + n);
    linalg::Vec serial(n, 0.0);
    m.multiply_into(x, serial, linalg::SpmvKernel::kBlocked);
    const linalg::LinearOperator op = parallel::make_parallel_operator(
        m, pool, linalg::SpmvKernel::kBlocked);
    linalg::Vec pooled(n, 0.0);
    op.apply(x, pooled);
    for (std::size_t r = 0; r < n; ++r)
      EXPECT_EQ(serial[r], pooled[r]) << "n=" << n << " row=" << r;
  }
}

// ---- Lanczos / Fiedler warm starts ----------------------------------------

TEST(ResolveLanczosTest, WarmStartConvergesWithFewerMatvecs) {
  const graph::WeightedGraph g = make_connected_graph(60, 11, 0.08);
  const linalg::SparseMatrix lap = linalg::laplacian(g);
  const linalg::LinearOperator op = linalg::make_operator(lap);
  linalg::LanczosOptions cold_opt;
  cold_opt.deflate = {linalg::constant_unit(g.num_nodes())};
  const linalg::LanczosResult cold = linalg::lanczos_smallest(op, cold_opt);
  ASSERT_TRUE(cold.converged);
  ASSERT_FALSE(cold.pairs.empty());

  linalg::LanczosOptions warm_opt = cold_opt;
  warm_opt.initial_vector = cold.pairs.front().vector;
  warm_opt.initial_subspace = 8;
  const linalg::LanczosResult warm = linalg::lanczos_smallest(op, warm_opt);
  ASSERT_TRUE(warm.converged);
  EXPECT_NEAR(warm.pairs.front().value, cold.pairs.front().value, 1e-6);
  EXPECT_LT(warm.matvec_count, cold.matvec_count);
}

TEST(ResolveLanczosTest, WrongDimensionWarmVectorIsTypedError) {
  const graph::WeightedGraph g = make_connected_graph(12, 3, 0.3);
  const linalg::SparseMatrix lap = linalg::laplacian(g);
  const linalg::LinearOperator op = linalg::make_operator(lap);
  linalg::LanczosOptions options;
  options.deflate = {linalg::constant_unit(g.num_nodes())};
  options.initial_vector.assign(g.num_nodes() + 1, 1.0);
  EXPECT_THROW((void)linalg::lanczos_smallest(op, options),
               PreconditionError);
  options.initial_vector.assign(3, 1.0);
  EXPECT_THROW((void)linalg::lanczos_smallest(op, options),
               PreconditionError);
}

TEST(ResolveLanczosTest, DeflationSpanWarmVectorDegradesToRandomStart) {
  const graph::WeightedGraph g = make_connected_graph(20, 5, 0.25);
  const linalg::SparseMatrix lap = linalg::laplacian(g);
  const linalg::LinearOperator op = linalg::make_operator(lap);
  linalg::LanczosOptions cold_opt;
  cold_opt.deflate = {linalg::constant_unit(g.num_nodes())};
  const linalg::LanczosResult cold = linalg::lanczos_smallest(op, cold_opt);
  ASSERT_TRUE(cold.converged);

  // A constant vector lies exactly in the deflation span: the warm
  // start must degrade to the seeded random draw, not fail.
  linalg::LanczosOptions warm_opt = cold_opt;
  warm_opt.initial_vector.assign(g.num_nodes(), 0.7);
  const linalg::LanczosResult warm = linalg::lanczos_smallest(op, warm_opt);
  ASSERT_TRUE(warm.converged);
  EXPECT_NEAR(warm.pairs.front().value, cold.pairs.front().value, 1e-6);
}

TEST(ResolveLanczosTest, TinyInitialSubspaceRestartsToConvergence) {
  // Restart-knob regression: initial_subspace far below what the
  // spectrum needs must still converge by doubling, landing on the
  // same eigenvalue as the auto-sized cold solve.
  const graph::WeightedGraph g = make_connected_graph(40, 17, 0.15);
  const linalg::SparseMatrix lap = linalg::laplacian(g);
  const linalg::LinearOperator op = linalg::make_operator(lap);
  linalg::LanczosOptions auto_opt;
  auto_opt.deflate = {linalg::constant_unit(g.num_nodes())};
  const linalg::LanczosResult reference =
      linalg::lanczos_smallest(op, auto_opt);
  ASSERT_TRUE(reference.converged);

  linalg::LanczosOptions tiny_opt = auto_opt;
  tiny_opt.initial_subspace = 2;
  const linalg::LanczosResult tiny = linalg::lanczos_smallest(op, tiny_opt);
  ASSERT_TRUE(tiny.converged);
  EXPECT_NEAR(tiny.pairs.front().value, reference.pairs.front().value, 1e-6);
}

TEST(ResolveFiedlerTest, WarmStartSameValueFewerMatvecs) {
  const graph::WeightedGraph g = make_connected_graph(80, 23, 0.06);
  const spectral::FiedlerResult cold = spectral::fiedler_pair(g, {});
  ASSERT_TRUE(cold.converged);

  spectral::FiedlerOptions warm_options;
  warm_options.warm_start = &cold.vector;
  const spectral::FiedlerResult warm = spectral::fiedler_pair(g, warm_options);
  ASSERT_TRUE(warm.converged);
  EXPECT_NEAR(warm.value, cold.value, 1e-6);
  EXPECT_LT(warm.matvec_count, cold.matvec_count);
}

TEST(ResolveFiedlerTest, WrongDimensionWarmStartIsTypedError) {
  const graph::WeightedGraph g = make_connected_graph(10, 2, 0.4);
  const linalg::Vec wrong(g.num_nodes() + 3, 0.5);
  spectral::FiedlerOptions options;
  options.warm_start = &wrong;
  EXPECT_THROW((void)spectral::fiedler_pair(g, options), PreconditionError);
}

TEST(ResolveFiedlerTest, BlockedKernelAgreesWithNaiveToTolerance) {
  const graph::WeightedGraph g = make_connected_graph(50, 31, 0.12);
  const spectral::FiedlerResult naive = spectral::fiedler_pair(g, {});
  spectral::FiedlerOptions blocked_options;
  blocked_options.spmv_kernel = linalg::SpmvKernel::kBlocked;
  const spectral::FiedlerResult blocked =
      spectral::fiedler_pair(g, blocked_options);
  ASSERT_TRUE(naive.converged);
  ASSERT_TRUE(blocked.converged);
  // Different summation order ⇒ different bits, same eigenpair.
  EXPECT_NEAR(blocked.value, naive.value, 1e-6);
}

// ---- warm/cold offloader differential -------------------------------------

TEST(ResolveWarmTest, WarmProjectedGreedyNeverAboveColdFuzz) {
  // Property (over the differential grid's graph family): warm-starting
  // the greedy from ANY valid scheme terminates and never lands above
  // the cold objective — the solver keeps the better of the two starts
  // by construction, and with no warm Fiedler vectors the cuts are
  // bit-identical, making the comparison exact.
  for (std::size_t n = 3; n <= 8; ++n) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const mec::MecSystem system =
          make_system(make_connected_graph(n, seed * 7919 + n, 0.3));
      const ColdSolve cold = cold_solve(system);
      Rng rng(seed ^ 0xfaded);
      for (int rep = 0; rep < 4; ++rep) {
        mec::PipelineOffloader::WarmStart warm;
        warm.scheme = mec::OffloadingScheme::all_local(system);
        for (auto& p : warm.scheme.placement[0])
          if (rng.bernoulli(0.5)) p = mec::Placement::kRemote;
        const WarmSolve result = warm_solve(system, warm);
        ASSERT_TRUE(result.scheme.valid_for(system));
        EXPECT_LE(result.objective, cold.objective)
            << "n=" << n << " seed=" << seed << " rep=" << rep;
        EXPECT_TRUE(result.stats.warm_start_used);
      }
    }
  }
}

TEST(ResolveWarmTest, ZeroDeltaWarmSolveIsByteIdenticalToCold) {
  // Re-solving the SAME system with its own artifacts must return the
  // cold scheme bit for bit: ties between the warm-projected and cold
  // greedy starts go to cold, and the warm-seeded eigensolve converges
  // to the same cut.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const mec::MecSystem system =
        make_system(make_connected_graph(7, seed * 131 + 7, 0.35));
    const ColdSolve cold = cold_solve(system);
    mec::PipelineOffloader::WarmStart warm;
    warm.scheme = cold.scheme;
    warm.fiedler_vectors = cold.artifacts.fiedler_vectors;
    const WarmSolve result = warm_solve(system, warm);
    EXPECT_TRUE(result.scheme == cold.scheme) << "seed=" << seed;
    EXPECT_GE(result.stats.warm_fiedler_seeded, 1u);
  }
}

TEST(ResolveWarmTest, DifferentialEdgeWeightJitter) {
  for (std::size_t n = 4; n <= 8; ++n) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const graph::WeightedGraph base =
          make_connected_graph(n, seed * 7919 + n, 0.4);
      const mec::MecSystem before = make_system(base);
      const ColdSolve prior = cold_solve(before);

      const mec::MecSystem after =
          make_system(jitter_edge_weights(base, seed ^ 0x1177, 0.05));
      mec::PipelineOffloader::WarmStart warm;
      warm.scheme = prior.scheme;
      warm.fiedler_vectors = prior.artifacts.fiedler_vectors;
      const WarmSolve warm_result = warm_solve(after, warm);
      const ColdSolve cold_result = cold_solve(after);

      ASSERT_TRUE(warm_result.scheme.valid_for(after));
      EXPECT_LE(warm_result.objective, cold_result.objective)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ResolveWarmTest, DifferentialSingleEdgeAddRemove) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const graph::WeightedGraph base =
        make_connected_graph(7, seed * 271 + 5, 0.45);
    const mec::MecSystem before = make_system(base);
    const ColdSolve prior = cold_solve(before);
    mec::PipelineOffloader::WarmStart warm;
    warm.scheme = prior.scheme;
    warm.fiedler_vectors = prior.artifacts.fiedler_vectors;

    // Removal may disconnect or reshape compression: warm vectors are
    // then rejected per component, never UB; the scheme stays valid
    // and never above the cold objective.
    const mec::MecSystem removed = make_system(remove_one_edge(base, seed));
    const WarmSolve warm_removed = warm_solve(removed, warm);
    const ColdSolve cold_removed = cold_solve(removed);
    ASSERT_TRUE(warm_removed.scheme.valid_for(removed));
    EXPECT_LE(warm_removed.objective, cold_removed.objective)
        << "remove seed=" << seed;

    const mec::MecSystem added = make_system(add_one_edge(base));
    const WarmSolve warm_added = warm_solve(added, warm);
    const ColdSolve cold_added = cold_solve(added);
    ASSERT_TRUE(warm_added.scheme.valid_for(added));
    EXPECT_LE(warm_added.objective, cold_added.objective)
        << "add seed=" << seed;
  }
}

TEST(ResolveWarmTest, DifferentialChannelDrift) {
  // Per-user channel drift: the graph is untouched, so every warm
  // Fiedler vector still fits and the cuts are identical — only the
  // greedy re-prices. Warm ≤ cold is exact here.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const graph::WeightedGraph base =
        make_connected_graph(8, seed * 577 + 3, 0.3);
    const mec::MecSystem before = make_system(base);
    const ColdSolve prior = cold_solve(before);

    mec::MecSystem after = make_system(base);
    Rng rng(seed ^ 0xc4a);
    after.params.bandwidth *= rng.uniform(0.6, 1.4);
    after.params.transmit_power *= rng.uniform(0.8, 1.2);

    mec::PipelineOffloader::WarmStart warm;
    warm.scheme = prior.scheme;
    warm.fiedler_vectors = prior.artifacts.fiedler_vectors;
    const WarmSolve warm_result = warm_solve(after, warm);
    const ColdSolve cold_result = cold_solve(after);
    ASSERT_TRUE(warm_result.scheme.valid_for(after));
    EXPECT_LE(warm_result.objective, cold_result.objective)
        << "seed=" << seed;
    EXPECT_EQ(warm_result.stats.warm_fiedler_rejected, 0u);
  }
}

TEST(ResolveWarmTest, WrongShapeWarmVectorsRejectedNotUB) {
  const mec::MecSystem system = make_system(make_connected_graph(8, 9, 0.4));
  const ColdSolve cold = cold_solve(system);
  mec::PipelineOffloader::WarmStart warm;
  warm.scheme = cold.scheme;
  // Deliberately wrong-dimension vectors for every component.
  warm.fiedler_vectors = {{linalg::Vec(999, 0.5), linalg::Vec(3, 0.5)}};
  const WarmSolve result = warm_solve(system, warm);
  ASSERT_TRUE(result.scheme.valid_for(system));
  EXPECT_LE(result.objective, cold.objective);
  EXPECT_GE(result.stats.warm_fiedler_rejected, 1u);
  EXPECT_EQ(result.stats.warm_fiedler_seeded, 0u);
}

// ---- scheme cache near-miss index -----------------------------------------

mec::UserApp cache_app(double node_weight, bool extra_edge) {
  graph::GraphBuilder builder;
  const graph::NodeId a = builder.add_node(node_weight);
  const graph::NodeId b = builder.add_node(node_weight + 1.0);
  const graph::NodeId c = builder.add_node(node_weight + 2.0);
  const graph::NodeId d = builder.add_node(node_weight + 3.0);
  builder.add_edge(a, b, 1.0);
  builder.add_edge(b, c, 2.0);
  builder.add_edge(c, d, 3.0);
  if (extra_edge) builder.add_edge(a, d, 4.0);
  mec::UserApp user;
  user.graph = builder.build();
  return user;
}

TEST(ResolveCacheTest, NearMissLookupReturnsStoredArtifacts) {
  serve::SchemeCache cache;
  const mec::SystemParams params;
  const mec::UserApp app_a = cache_app(10.0, false);
  const serve::Fingerprint key_a = serve::fingerprint_request(app_a, params);
  const serve::Fingerprint topo_a = serve::fingerprint_topology(app_a);

  serve::SchemeCache::WarmHint hint;
  ASSERT_EQ(cache.acquire(key_a, -1.0, topo_a, &hint).outcome,
            serve::SchemeCache::Outcome::kMiss);
  EXPECT_TRUE(hint.placement.empty());  // cache empty: nothing to donate
  const std::vector<mec::Placement> placement(4, mec::Placement::kRemote);
  cache.publish(key_a, placement, topo_a, {linalg::Vec{0.5, -0.5, 0.3, -0.3}});

  // Same topology, perturbed node weights ⇒ different full key, same
  // topo key: the miss carries the donor's placement and vectors.
  const mec::UserApp app_b = cache_app(11.0, false);
  const serve::Fingerprint key_b = serve::fingerprint_request(app_b, params);
  const serve::Fingerprint topo_b = serve::fingerprint_topology(app_b);
  ASSERT_NE(key_a, key_b);
  ASSERT_EQ(topo_a, topo_b);
  serve::SchemeCache::WarmHint near;
  ASSERT_EQ(cache.acquire(key_b, -1.0, topo_b, &near).outcome,
            serve::SchemeCache::Outcome::kMiss);
  EXPECT_EQ(near.placement, placement);
  ASSERT_EQ(near.fiedler_vectors.size(), 1u);
  EXPECT_EQ(near.fiedler_vectors.front().size(), 4u);
  EXPECT_EQ(cache.stats().warm_hints, 1u);
  cache.abandon(key_b);
}

TEST(ResolveCacheTest, DifferentTopologyGetsNoHint) {
  serve::SchemeCache cache;
  const mec::SystemParams params;
  const mec::UserApp app_a = cache_app(10.0, false);
  const serve::Fingerprint key_a = serve::fingerprint_request(app_a, params);
  const serve::Fingerprint topo_a = serve::fingerprint_topology(app_a);
  ASSERT_EQ(cache.acquire(key_a).outcome, serve::SchemeCache::Outcome::kMiss);
  cache.publish(key_a, std::vector<mec::Placement>(4, mec::Placement::kLocal),
                topo_a, {linalg::Vec{0.1, 0.2, 0.3, 0.4}});

  // An extra edge is a different shape — no donor, no hint.
  const mec::UserApp app_b = cache_app(10.0, true);
  const serve::Fingerprint key_b = serve::fingerprint_request(app_b, params);
  const serve::Fingerprint topo_b = serve::fingerprint_topology(app_b);
  ASSERT_NE(topo_a, topo_b);
  serve::SchemeCache::WarmHint hint;
  ASSERT_EQ(cache.acquire(key_b, -1.0, topo_b, &hint).outcome,
            serve::SchemeCache::Outcome::kMiss);
  EXPECT_TRUE(hint.placement.empty());
  EXPECT_TRUE(hint.fiedler_vectors.empty());
  EXPECT_EQ(cache.stats().warm_hints, 0u);
  cache.abandon(key_b);
}

TEST(ResolveCacheTest, EvictionDropsTheDonorRegistration) {
  serve::SchemeCache cache(serve::SchemeCache::Options{/*capacity=*/1});
  const mec::SystemParams params;
  const mec::UserApp app_a = cache_app(10.0, false);
  const serve::Fingerprint key_a = serve::fingerprint_request(app_a, params);
  const serve::Fingerprint topo_a = serve::fingerprint_topology(app_a);
  ASSERT_EQ(cache.acquire(key_a).outcome, serve::SchemeCache::Outcome::kMiss);
  cache.publish(key_a, std::vector<mec::Placement>(4, mec::Placement::kLocal),
                topo_a, {linalg::Vec{0.1, 0.2, 0.3, 0.4}});

  // Publishing an unrelated entry overflows capacity 1 and evicts the
  // donor; its topo registration must vanish with it.
  const mec::UserApp other = cache_app(99.0, true);
  const serve::Fingerprint key_b = serve::fingerprint_request(other, params);
  ASSERT_EQ(cache.acquire(key_b).outcome, serve::SchemeCache::Outcome::kMiss);
  cache.publish(key_b, std::vector<mec::Placement>(4, mec::Placement::kLocal),
                serve::fingerprint_topology(other), {linalg::Vec{0.5}});
  ASSERT_GE(cache.stats().evictions, 1u);

  const mec::UserApp app_c = cache_app(11.0, false);  // topo == app_a's
  serve::SchemeCache::WarmHint hint;
  ASSERT_EQ(cache
                .acquire(serve::fingerprint_request(app_c, params), -1.0,
                         serve::fingerprint_topology(app_c), &hint)
                .outcome,
            serve::SchemeCache::Outcome::kMiss);
  EXPECT_TRUE(hint.placement.empty());
  cache.abandon(serve::fingerprint_request(app_c, params));
}

// ---- SolveService warm path -----------------------------------------------

mec::UserApp service_app(double heavy, bool extra_edge = false) {
  mec::UserApp user = cache_app(heavy, extra_edge);
  user.unoffloadable.assign(user.graph.num_nodes(), false);
  user.unoffloadable[0] = true;
  return user;
}

TEST(ResolveServiceTest, WarmResolveDetectsNearMissAndCounts) {
  serve::SolveServiceOptions options;
  options.warm_resolve = true;
  serve::SolveService service(options);

  serve::SolveRequest first;
  first.user = service_app(50.0);
  auto r1 = service.solve(first);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().source, serve::SolveSource::kSolved);
  EXPECT_EQ(service.stats().warm_misses, 1u);
  EXPECT_EQ(service.stats().warm_hits, 0u);

  // Perturbed node weights: same topology ⇒ warm re-solve.
  serve::SolveRequest second;
  second.user = service_app(55.0);
  auto r2 = service.solve(second);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().source, serve::SolveSource::kSolved);
  EXPECT_EQ(r2.value().placement.size(), second.user.graph.num_nodes());
  EXPECT_EQ(r2.value().placement[0], mec::Placement::kLocal);  // pinned
  EXPECT_EQ(service.stats().warm_hits, 1u);
  EXPECT_EQ(service.stats().cache.warm_hints, 1u);

  // Different topology: no donor — a plain cold miss.
  serve::SolveRequest third;
  third.user = service_app(50.0, /*extra_edge=*/true);
  auto r3 = service.solve(third);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(service.stats().warm_hits, 1u);
  EXPECT_EQ(service.stats().warm_misses, 2u);

  // Exact repeat: a cache hit, not a warm solve — byte-identical row.
  auto r4 = service.solve(first);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4.value().source, serve::SolveSource::kCacheHit);
  EXPECT_EQ(r4.value().placement, r1.value().placement);
  EXPECT_EQ(service.stats().warm_hits, 1u);
}

TEST(ResolveServiceTest, WarmResolveIsOffByDefault) {
  const serve::SolveServiceOptions defaults;
  EXPECT_FALSE(defaults.warm_resolve);

  serve::SolveService service;  // no pool: inline solves
  serve::SolveRequest first;
  first.user = service_app(50.0);
  ASSERT_TRUE(service.solve(first).ok());
  serve::SolveRequest second;
  second.user = service_app(55.0);  // the near-miss that would warm
  ASSERT_TRUE(service.solve(second).ok());
  const serve::SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.warm_hits, 0u);
  EXPECT_EQ(stats.warm_misses, 0u);
  EXPECT_EQ(stats.warm_vector_rejects, 0u);
  EXPECT_EQ(stats.cache.warm_hints, 0u);
  EXPECT_EQ(stats.solved, 2u);
}

TEST(ResolveServiceTest, WarmConfigSeparatesCacheKeys) {
  serve::SolveServiceOptions cold_options;
  serve::SolveServiceOptions warm_options;
  warm_options.warm_resolve = true;
  serve::SolveService cold_service(cold_options);
  serve::SolveService warm_service(warm_options);
  // Warm mode can publish a different local optimum for the same
  // request, so the configuration digest must separate the two.
  EXPECT_NE(cold_service.config_seed(), warm_service.config_seed());
}

}  // namespace
}  // namespace mecoff
