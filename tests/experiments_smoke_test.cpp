// Experiment-configuration smoke tests: tiny versions of the paper
// benches asserted as tests, so a change that silently breaks the
// figure workloads (generator tuning, parameters, pipeline wiring)
// fails CI instead of only skewing bench output.
#include <gtest/gtest.h>

#include "common/stopwatch.hpp"
#include "lpa/pipeline.hpp"
#include "mec/costs.hpp"
#include "support/workloads.hpp"

namespace mecoff::bench {
namespace {

TEST(ExperimentsSmoke, TableOneBandsHold) {
  // The two Table I claims at the cheap end points.
  const auto reduction_at = [](PaperScale scale) {
    const graph::WeightedGraph g =
        graph::netgen_style(netgen_for(scale, scale.nodes));
    const std::vector<bool> pinned(g.num_nodes(), false);
    return lpa::compress_application(g, pinned, paper_propagation())
        .aggregate_stats()
        .node_reduction();
  };
  const double small = reduction_at(paper_scales().front());
  const double large = reduction_at(paper_scales().back());
  EXPECT_GE(small, 0.75);
  EXPECT_GE(large, 0.90);
  EXPECT_GT(large, small);
}

TEST(ExperimentsSmoke, SingleUserPointOrdersTotalEnergy) {
  // One mid-size point of Figs. 3–5: ours <= KL on total energy.
  mec::MecSystem system{paper_params(),
                        {make_user(PaperScale{1000, 4912}, 7)}};
  const std::vector<AlgoResult> results = run_paper_algorithms(system);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_LE(results[0].total_energy,
            results[2].total_energy * 1.02);  // ours vs KL
  EXPECT_LE(results[0].transmit_energy,
            results[2].transmit_energy * 1.02);
}

TEST(ExperimentsSmoke, MultiUserPointOrdersTransmission) {
  // One small multi-user point of Fig. 7: strict triple ordering.
  const mec::MecSystem system =
      make_multiuser_system(250, kMultiuserPoolSize, 21);
  const std::vector<AlgoResult> results =
      run_paper_algorithms(system, kMultiuserPoolSize);
  EXPECT_LE(results[0].transmit_energy,
            results[1].transmit_energy * 1.05);
  EXPECT_LE(results[1].transmit_energy,
            results[2].transmit_energy * 1.05);
}

TEST(ExperimentsSmoke, WorkloadShapesAreStable) {
  // The figure workload invariants the tuning relies on.
  const mec::UserApp user = make_user(PaperScale{1000, 4912}, 3);
  EXPECT_EQ(user.graph.num_nodes(), 1000u);
  std::size_t pinned = 0;
  for (std::size_t v = 0; v < user.unoffloadable.size(); ++v)
    if (user.unoffloadable[v]) ++pinned;
  // One UI cluster per ~60-function component: 10–25% of nodes.
  EXPECT_GE(pinned, 100u);
  EXPECT_LE(pinned, 250u);
  EXPECT_TRUE(paper_params().valid());
  EXPECT_TRUE(multiuser_params().valid());
  EXPECT_GT(multiuser_params().server_capacity,
            paper_params().server_capacity);
}

TEST(ExperimentsSmoke, SolveStaysFastAtScale) {
  // The scalability claim in miniature: 2000 users well under a second.
  const mec::MecSystem system =
      make_multiuser_system(2000, kMultiuserPoolSize, 5);
  mec::PipelineOptions opts;
  opts.propagation = paper_propagation();
  opts.identical_user_period = kMultiuserPoolSize;
  mec::PipelineOffloader offloader(opts);
  Stopwatch timer;
  const mec::OffloadingScheme scheme = offloader.solve(system);
  EXPECT_LT(timer.elapsed_seconds(), 5.0);
  EXPECT_TRUE(scheme.valid_for(system));
}

}  // namespace
}  // namespace mecoff::bench
