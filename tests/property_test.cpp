// Property-based suites (parameterized gtest): invariants that must
// hold across randomized workloads — the DESIGN.md §5 list.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "kl/kernighan_lin.hpp"
#include "linalg/jacobi.hpp"
#include "linalg/laplacian.hpp"
#include "lpa/pipeline.hpp"
#include "mec/costs.hpp"
#include "mec/greedy.hpp"
#include "mec/offloader.hpp"
#include "mincut/bipartitioner.hpp"
#include "mincut/dinic.hpp"
#include "mincut/edmonds_karp.hpp"
#include "mincut/stoer_wagner.hpp"
#include "spectral/bipartitioner.hpp"
#include "spectral/fiedler.hpp"

namespace mecoff {
namespace {

struct WorkloadCase {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t edges;
  std::size_t components;
};

std::vector<WorkloadCase> workload_cases() {
  std::vector<WorkloadCase> cases;
  std::size_t idx = 0;
  for (const std::size_t nodes : {20u, 60u, 140u}) {
    for (const std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
      cases.push_back(WorkloadCase{seed + idx, nodes, nodes * 4,
                                   1 + idx % 3});
      ++idx;
    }
  }
  return cases;
}

graph::WeightedGraph make_graph(const WorkloadCase& c) {
  graph::NetgenParams p;
  p.nodes = c.nodes;
  p.edges = c.edges;
  p.components = c.components;
  p.seed = c.seed;
  return graph::netgen_style(p);
}

class WorkloadProperty : public ::testing::TestWithParam<WorkloadCase> {};

// ---- Laplacian / Theorem 2 ------------------------------------------------

TEST_P(WorkloadProperty, Theorem2HoldsForRandomIndicators) {
  const graph::WeightedGraph g = make_graph(GetParam());
  Rng rng(GetParam().seed ^ 0xabc);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> q(g.num_nodes());
    std::vector<std::uint8_t> side(g.num_nodes());
    for (std::size_t i = 0; i < q.size(); ++i) {
      side[i] = rng.bernoulli(0.5) ? 1 : 0;
      q[i] = side[i] ? 1.0 : -1.0;
    }
    const double lhs = linalg::laplacian_quadratic_form(g, q) / 4.0;
    const double rhs = graph::cut_weight(g, side);
    EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + rhs));
  }
}

TEST_P(WorkloadProperty, LaplacianRowsSumToZero) {
  const linalg::SparseMatrix lap = linalg::laplacian(make_graph(GetParam()));
  for (std::size_t r = 0; r < lap.rows(); ++r)
    EXPECT_NEAR(lap.row_sum(r), 0.0, 1e-10);
}

TEST_P(WorkloadProperty, LaplacianQuadraticFormNonNegative) {
  const graph::WeightedGraph g = make_graph(GetParam());
  Rng rng(GetParam().seed ^ 0xdef);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> q(g.num_nodes());
    for (double& v : q) v = rng.uniform(-3.0, 3.0);
    EXPECT_GE(linalg::laplacian_quadratic_form(g, q), -1e-9);
  }
}

// ---- Compression -----------------------------------------------------------

TEST_P(WorkloadProperty, CompressionConservesWeights) {
  const graph::WeightedGraph g = make_graph(GetParam());
  const std::vector<bool> pinned(g.num_nodes(), false);
  lpa::PropagationConfig config;
  config.coupling_threshold = 10.0;
  const lpa::CompressionPipelineResult r =
      lpa::compress_application(g, pinned, config);
  double node_weight = 0.0;
  double edge_weight = 0.0;
  double absorbed = 0.0;
  double comp_edge_weight = 0.0;
  for (const auto& comp : r.components) {
    node_weight += comp.compression.compressed.total_node_weight();
    comp_edge_weight += comp.compression.compressed.total_edge_weight();
    absorbed += comp.compression.stats.absorbed_edge_weight;
    edge_weight += comp.component.graph.total_edge_weight();
  }
  EXPECT_NEAR(node_weight, g.total_node_weight(), 1e-6);
  EXPECT_NEAR(comp_edge_weight + absorbed, edge_weight, 1e-6);
}

TEST_P(WorkloadProperty, CompressionNeverIncreasesSize) {
  const graph::WeightedGraph g = make_graph(GetParam());
  const std::vector<bool> pinned(g.num_nodes(), false);
  lpa::PropagationConfig config;
  config.coupling_threshold = 10.0;
  const lpa::CompressionStats stats =
      lpa::compress_application(g, pinned, config).aggregate_stats();
  EXPECT_LE(stats.compressed_nodes, stats.original_nodes);
  EXPECT_LE(stats.compressed_edges, stats.original_edges);
}

// ---- Cut algorithms ---------------------------------------------------------

TEST_P(WorkloadProperty, AllCuttersReturnConsistentCutWeights) {
  const graph::WeightedGraph g = make_graph(GetParam());
  spectral::SpectralBipartitioner spectral_cutter;
  mincut::MaxFlowBipartitioner flow_cutter;
  kl::KernighanLinBipartitioner kl_cutter;
  for (graph::Bipartitioner* cutter :
       {static_cast<graph::Bipartitioner*>(&spectral_cutter),
        static_cast<graph::Bipartitioner*>(&flow_cutter),
        static_cast<graph::Bipartitioner*>(&kl_cutter)}) {
    const graph::Bipartition cut = cutter->bipartition(g);
    ASSERT_TRUE(graph::is_valid_partition(g, cut.side)) << cutter->name();
    EXPECT_NEAR(cut.cut_weight, graph::cut_weight(g, cut.side),
                1e-8 * (1.0 + cut.cut_weight))
        << cutter->name();
  }
}

TEST_P(WorkloadProperty, MaxFlowDualityAndSolverAgreement) {
  const graph::WeightedGraph g = make_graph(GetParam());
  if (!graph::is_connected(g)) GTEST_SKIP() << "connected instances only";
  Rng rng(GetParam().seed ^ 0x111);
  const auto s = static_cast<graph::NodeId>(rng.index(g.num_nodes()));
  auto t = static_cast<graph::NodeId>(rng.index(g.num_nodes()));
  if (t == s) t = (s + 1) % static_cast<graph::NodeId>(g.num_nodes());

  mincut::FlowNetwork net_ek = mincut::FlowNetwork::from_graph(g);
  mincut::FlowNetwork net_di = mincut::FlowNetwork::from_graph(g);
  const double ek = mincut::edmonds_karp(net_ek, s, t).flow_value;
  const double di = mincut::dinic(net_di, s, t).flow_value;
  EXPECT_NEAR(ek, di, 1e-7 * (1.0 + ek));
  const graph::Bipartition cut = mincut::min_st_cut_dinic(g, s, t);
  EXPECT_NEAR(cut.cut_weight, di, 1e-7 * (1.0 + di));
}

TEST_P(WorkloadProperty, StoerWagnerLowerBoundsHeuristicCutters) {
  const graph::WeightedGraph g = make_graph(GetParam());
  if (g.num_nodes() > 80) GTEST_SKIP() << "SW oracle kept small";
  const double optimal = mincut::stoer_wagner(g).cut_weight;
  spectral::SpectralBipartitioner spectral_cutter;
  EXPECT_GE(spectral_cutter.bipartition(g).cut_weight, optimal - 1e-9);
  mincut::MaxFlowBipartitioner flow_cutter;
  EXPECT_GE(flow_cutter.bipartition(g).cut_weight, optimal - 1e-9);
}

TEST_P(WorkloadProperty, FiedlerValuePositiveOnConnectedGraphs) {
  const graph::WeightedGraph g = make_graph(GetParam());
  if (!graph::is_connected(g)) GTEST_SKIP();
  const spectral::FiedlerResult f = spectral::fiedler_pair(g);
  EXPECT_GT(f.value, 0.0);
}

TEST_P(WorkloadProperty, SpectralCutWithinMoharBoundOfJacobiLambda2) {
  // The workload-scale companion of tests/differential_test.cpp: graphs
  // too big to brute-force still obey Mohar's sweep-cut guarantee
  //   W_sweep ≤ sqrt(λ₂ (2Δ − λ₂)) · n / 2
  // with λ₂ taken from the dense cyclic-Jacobi oracle, NOT from the
  // iterative solver under test (which must agree with it to 1e-5).
  const graph::WeightedGraph g = make_graph(GetParam());
  if (!graph::is_connected(g)) GTEST_SKIP() << "connected instances only";
  const std::size_t n = g.num_nodes();

  const linalg::JacobiResult eig =
      linalg::jacobi_eigen(linalg::dense_laplacian(g));
  ASSERT_TRUE(eig.converged);
  const double lambda2 = eig.values[1];
  ASSERT_GT(lambda2, 0.0);

  spectral::SpectralBipartitioner cutter;
  const graph::Bipartition cut = cutter.bipartition(g);
  if (!cutter.last_converged()) GTEST_SKIP() << "eigensolver gave up";
  EXPECT_NEAR(cutter.last_fiedler_value(), lambda2, 1e-5 * (1.0 + lambda2));

  double delta = 0.0;
  for (graph::NodeId v = 0; v < n; ++v)
    delta = std::max(delta, g.weighted_degree(v));
  const double slack = 2.0 * delta - lambda2;  // ≥ 0 by Gershgorin
  ASSERT_GE(slack, -1e-9 * (1.0 + delta));
  const double mohar = std::sqrt(std::max(0.0, lambda2 * slack)) *
                       static_cast<double>(n) / 2.0;
  EXPECT_LE(cut.cut_weight, mohar * (1.0 + 1e-9) + 1e-9)
      << "n=" << n << " λ₂=" << lambda2 << " Δ=" << delta;
}

// ---- Scheme generation -------------------------------------------------------

TEST_P(WorkloadProperty, GreedyObjectiveMatchesEvaluateAndDecreases) {
  const graph::WeightedGraph g = make_graph(GetParam());
  mec::SystemParams params;
  params.transmit_power = 8.0;
  params.bandwidth = 15.0;
  params.mobile_capacity = 5.0;
  params.server_capacity = 300.0;
  mec::UserApp user;
  user.graph = g;
  mec::MecSystem system{params, {user}};

  mec::PipelineOptions opts;
  opts.propagation.coupling_threshold = 10.0;
  mec::PipelineOffloader offloader(opts);
  const mec::OffloadingScheme scheme = offloader.solve(system);
  EXPECT_TRUE(scheme.valid_for(system));
  EXPECT_NEAR(offloader.last_stats().final_objective,
              mec::evaluate(system, scheme).objective(),
              1e-6 * (1.0 + offloader.last_stats().final_objective));
}

TEST_P(WorkloadProperty, PipelineNeverWorseThanAllLocal) {
  const graph::WeightedGraph g = make_graph(GetParam());
  mec::SystemParams params;
  params.transmit_power = 8.0;
  params.bandwidth = 15.0;
  params.mobile_capacity = 5.0;
  params.server_capacity = 300.0;
  mec::UserApp user;
  user.graph = g;
  mec::MecSystem system{params, {user}};
  for (const mec::CutBackend backend :
       {mec::CutBackend::kSpectral, mec::CutBackend::kMaxFlow,
        mec::CutBackend::kKernighanLin}) {
    mec::PipelineOptions opts;
    opts.backend = backend;
    opts.propagation.coupling_threshold = 10.0;
    mec::PipelineOffloader offloader(opts);
    const double obj =
        mec::evaluate(system, offloader.solve(system)).objective();
    const double all_local =
        mec::evaluate(system, mec::OffloadingScheme::all_local(system))
            .objective();
    EXPECT_LE(obj, all_local + 1e-9) << offloader.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    NetgenWorkloads, WorkloadProperty, ::testing::ValuesIn(workload_cases()),
    [](const ::testing::TestParamInfo<WorkloadCase>& param_info) {
      return "n" + std::to_string(param_info.param.nodes) + "_c" +
             std::to_string(param_info.param.components) + "_s" +
             std::to_string(param_info.param.seed);
    });

// ---- LPA threshold sweep -----------------------------------------------------

class ThresholdProperty : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdProperty, CompressionMonotoneInThreshold) {
  // Higher thresholds merge less: compressed size is non-decreasing in w.
  graph::NetgenParams p;
  p.nodes = 120;
  p.edges = 500;
  p.seed = 404;
  const graph::WeightedGraph g = graph::netgen_style(p);
  const std::vector<bool> pinned(g.num_nodes(), false);

  lpa::PropagationConfig low;
  low.coupling_threshold = GetParam();
  lpa::PropagationConfig high;
  high.coupling_threshold = GetParam() * 2.0;

  const std::size_t nodes_low =
      lpa::compress_application(g, pinned, low).aggregate_stats()
          .compressed_nodes;
  const std::size_t nodes_high =
      lpa::compress_application(g, pinned, high).aggregate_stats()
          .compressed_nodes;
  EXPECT_LE(nodes_low, nodes_high);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdProperty,
                         ::testing::Values(1.0, 4.0, 8.0, 16.0, 32.0));

// ---- Random scheme evaluation stability ---------------------------------------

class SchemeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchemeProperty, EvaluateIsDeterministicAndDecomposes) {
  graph::NetgenParams p;
  p.nodes = 80;
  p.edges = 320;
  p.seed = GetParam();
  mec::UserApp user;
  user.graph = graph::netgen_style(p);
  mec::SystemParams params;
  mec::MecSystem system{params, {user, user}};

  Rng rng(GetParam());
  mec::OffloadingScheme scheme = mec::OffloadingScheme::all_local(system);
  for (std::size_t u = 0; u < 2; ++u)
    for (graph::NodeId v = 0; v < user.graph.num_nodes(); ++v)
      if (rng.bernoulli(0.4))
        scheme.placement[u][v] = mec::Placement::kRemote;

  const mec::SystemCost a = mec::evaluate(system, scheme);
  const mec::SystemCost b = mec::evaluate(system, scheme);
  EXPECT_DOUBLE_EQ(a.objective(), b.objective());
  EXPECT_NEAR(a.total_energy, a.local_energy() + a.transmit_energy(), 1e-9);

  // Per-user times recompose into the total.
  double t = 0.0;
  for (const mec::UserCost& u : a.users)
    t += u.local_compute_time + u.remote_compute_time + u.wait_time +
         u.transmit_time;
  EXPECT_NEAR(t, a.total_time, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace mecoff
