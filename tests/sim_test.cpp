// Unit tests for the discrete-event simulator: engine ordering, FIFO
// and processor-sharing resources, and the scheme executor's agreement
// with the analytic cost model.
#include <gtest/gtest.h>

#include <functional>

#include "common/contracts.hpp"
#include "graph/generators.hpp"
#include "mec/costs.hpp"
#include "sim/engine.hpp"
#include "sim/executor.hpp"
#include "sim/resources.hpp"

namespace mecoff::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(engine.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.events_executed(), 3u);
}

TEST(Engine, SameTimeEventsFifoOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] {
    ++fired;
    engine.schedule_after(2.0, [&] { ++fired; });
  });
  EXPECT_DOUBLE_EQ(engine.run(), 3.0);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PastSchedulingThrows) {
  SimEngine engine;
  engine.schedule_at(5.0, [&] {
    EXPECT_THROW(engine.schedule_at(1.0, [] {}), mecoff::PreconditionError);
  });
  engine.run();
}

TEST(Engine, RunUntilExecutesOnlyEventsInsideTheHorizon) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(7.0, [&] { order.push_back(7); });
  EXPECT_DOUBLE_EQ(engine.run_until(5.0), 5.0);  // clock lands ON horizon
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.pending(), 1u);  // the 7.0 event survives, unexecuted
  // A later run picks up exactly where the horizon left off.
  EXPECT_DOUBLE_EQ(engine.run_until(10.0), 10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 7}));
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, RunUntilIncludesEventsExactlyAtTheHorizon) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(5.0, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, EventBudgetStopsASelfPerpetuatingHandler) {
  // An unbounded run() would never return on this workload — the
  // documented hazard the budget overload exists for.
  SimEngine engine;
  std::size_t fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    engine.schedule_after(1.0, tick);
  };
  engine.schedule_at(0.0, tick);
  engine.run(100);
  EXPECT_EQ(fired, 100u);
  EXPECT_EQ(engine.events_executed(), 100u);
  EXPECT_EQ(engine.pending(), 1u);  // the next tick is queued, not run
  // The budget is per-call: a fresh budget resumes the same queue.
  engine.run(50);
  EXPECT_EQ(fired, 150u);
}

TEST(FifoResource, SingleJobNoWait) {
  SimEngine engine;
  FifoResource server(engine, 10.0);
  JobStats seen;
  server.submit(50.0, [&](const JobStats& s) { seen = s; });
  engine.run();
  EXPECT_DOUBLE_EQ(seen.wait(), 0.0);
  EXPECT_DOUBLE_EQ(seen.sojourn(), 5.0);
  EXPECT_EQ(server.jobs_completed(), 1u);
}

TEST(FifoResource, SecondJobWaitsForFirst) {
  SimEngine engine;
  FifoResource server(engine, 10.0);
  JobStats first;
  JobStats second;
  server.submit(50.0, [&](const JobStats& s) { first = s; });
  server.submit(30.0, [&](const JobStats& s) { second = s; });
  engine.run();
  EXPECT_DOUBLE_EQ(first.wait(), 0.0);
  EXPECT_DOUBLE_EQ(second.wait(), 5.0);          // queued behind 50/10
  EXPECT_DOUBLE_EQ(second.completed, 8.0);       // 5 + 3
}

TEST(FifoResource, LateArrivalAfterIdle) {
  SimEngine engine;
  FifoResource server(engine, 10.0);
  JobStats late;
  engine.schedule_at(100.0, [&] {
    server.submit(10.0, [&](const JobStats& s) { late = s; });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(late.admitted, 100.0);
  EXPECT_DOUBLE_EQ(late.wait(), 0.0);
  EXPECT_DOUBLE_EQ(late.completed, 101.0);
}

TEST(SharedResource, SingleJobFullRate) {
  SimEngine engine;
  SharedResource server(engine, 10.0);
  JobStats seen;
  server.submit(40.0, [&](const JobStats& s) { seen = s; });
  engine.run();
  EXPECT_NEAR(seen.sojourn(), 4.0, 1e-9);
}

TEST(SharedResource, TwoEqualJobsHalfRate) {
  SimEngine engine;
  SharedResource server(engine, 10.0);
  JobStats a;
  JobStats b;
  server.submit(40.0, [&](const JobStats& s) { a = s; });
  server.submit(40.0, [&](const JobStats& s) { b = s; });
  engine.run();
  // Both run at rate 5 throughout → finish at t = 8.
  EXPECT_NEAR(a.completed, 8.0, 1e-9);
  EXPECT_NEAR(b.completed, 8.0, 1e-9);
}

TEST(SharedResource, ShortJobLeavesThenLongSpeedsUp) {
  SimEngine engine;
  SharedResource server(engine, 10.0);
  JobStats small;
  JobStats large;
  server.submit(20.0, [&](const JobStats& s) { small = s; });
  server.submit(60.0, [&](const JobStats& s) { large = s; });
  engine.run();
  // Shared until the small job's 20 units drain at rate 5 → t = 4.
  EXPECT_NEAR(small.completed, 4.0, 1e-9);
  // Large had 40 left at t=4, then full rate 10 → t = 8.
  EXPECT_NEAR(large.completed, 8.0, 1e-9);
}

// --- Executor against the analytic model ---------------------------------

mec::SystemParams exec_params() {
  mec::SystemParams p;
  p.mobile_power = 2.0;
  p.transmit_power = 12.0;
  p.bandwidth = 5.0;
  p.mobile_capacity = 4.0;
  p.server_capacity = 80.0;
  return p;
}

mec::UserApp simple_user() {
  graph::GraphBuilder b;
  b.add_node(12.0);
  b.add_node(40.0);
  b.add_edge(0, 1, 10.0);
  mec::UserApp app;
  app.graph = b.build();
  return app;
}

TEST(Executor, EnergiesMatchAnalyticModelExactly) {
  mec::MecSystem system{exec_params(), {simple_user(), simple_user()}};
  mec::OffloadingScheme scheme = mec::OffloadingScheme::all_local(system);
  scheme.placement[0][1] = mec::Placement::kRemote;
  scheme.placement[1][1] = mec::Placement::kRemote;

  const mec::SystemCost analytic = mec::evaluate(system, scheme);
  const SimReport sim = simulate_scheme(system, scheme);
  EXPECT_NEAR(sim.total_energy, analytic.total_energy, 1e-9);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_NEAR(sim.users[u].local_energy, analytic.users[u].local_energy,
                1e-12);
    EXPECT_NEAR(sim.users[u].transmit_energy,
                analytic.users[u].transmit_energy, 1e-12);
  }
}

TEST(Executor, SingleUserTimesMatchAnalytic) {
  // One offloader: no contention in either model, so the numbers agree.
  mec::MecSystem system{exec_params(), {simple_user()}};
  mec::OffloadingScheme scheme = mec::OffloadingScheme::all_local(system);
  scheme.placement[0][1] = mec::Placement::kRemote;
  const mec::SystemCost analytic = mec::evaluate(system, scheme);
  const SimReport sim = simulate_scheme(system, scheme);
  EXPECT_NEAR(sim.users[0].local_time, analytic.users[0].local_compute_time,
              1e-12);
  EXPECT_NEAR(sim.users[0].upload_time, analytic.users[0].transmit_time,
              1e-12);
  EXPECT_NEAR(sim.users[0].server_time,
              analytic.users[0].remote_compute_time, 1e-12);
  EXPECT_DOUBLE_EQ(sim.users[0].server_wait, 0.0);
}

TEST(Executor, AllLocalHasNoServerActivity) {
  mec::MecSystem system{exec_params(), {simple_user()}};
  const SimReport sim =
      simulate_scheme(system, mec::OffloadingScheme::all_local(system));
  EXPECT_DOUBLE_EQ(sim.users[0].upload_time, 0.0);
  EXPECT_DOUBLE_EQ(sim.users[0].server_time, 0.0);
  EXPECT_DOUBLE_EQ(sim.users[0].transmit_energy, 0.0);
  EXPECT_DOUBLE_EQ(sim.makespan, sim.users[0].local_time);
}

TEST(Executor, FifoWaitGrowsWithUsers) {
  double prev_avg_wait = -1.0;
  for (const std::size_t n : {2u, 6u, 12u}) {
    std::vector<mec::UserApp> users(n, simple_user());
    mec::MecSystem system{exec_params(), users};
    const SimReport sim = simulate_scheme(
        system, mec::OffloadingScheme::all_remote(system));
    double total_wait = 0.0;
    for (const UserOutcome& u : sim.users) total_wait += u.server_wait;
    const double avg = total_wait / static_cast<double>(n);
    EXPECT_GT(avg, prev_avg_wait);
    prev_avg_wait = avg;
  }
}

TEST(Executor, ProcessorSharingAlsoExhibitsContention) {
  std::vector<mec::UserApp> users(6, simple_user());
  mec::MecSystem system{exec_params(), users};
  SimOptions opts;
  opts.discipline = ServerDiscipline::kProcessorSharing;
  const SimReport shared = simulate_scheme(
      system, mec::OffloadingScheme::all_remote(system), opts);
  mec::MecSystem solo{exec_params(), {simple_user()}};
  const SimReport alone = simulate_scheme(
      solo, mec::OffloadingScheme::all_remote(solo), opts);
  // Service under sharing takes longer than alone.
  EXPECT_GT(shared.users[0].server_time + shared.users[0].server_wait,
            alone.users[0].server_time - 1e-9);
}

TEST(Executor, MakespanIsMaxCompletion) {
  std::vector<mec::UserApp> users(3, simple_user());
  mec::MecSystem system{exec_params(), users};
  const SimReport sim = simulate_scheme(
      system, mec::OffloadingScheme::all_remote(system));
  double max_completion = 0.0;
  for (const UserOutcome& u : sim.users)
    max_completion = std::max(max_completion, u.completion);
  EXPECT_DOUBLE_EQ(sim.makespan, max_completion);
}

}  // namespace
}  // namespace mecoff::sim
