// Tests for the online solve service: canonical request fingerprints,
// the single-flight scheme cache (bounded rides included), the
// deterministic FaultInjector, and SolveService end-to-end (cache hits
// bit-identical to cold solves, coalescing under concurrency,
// admission-control shedding, deadline budgets with hedged retries,
// brownout tiers with hysteresis, and graceful drain).
//
// Everything here observes behavior through return values and
// SolveService::stats() (plain atomics), so the suite runs identically
// with the obs facade compiled in or out.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/weighted_graph.hpp"
#include "mec/model.hpp"
#include "mec/offloader.hpp"
#include "mec/scheme.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/fault_injector.hpp"
#include "serve/fingerprint.hpp"
#include "serve/scheme_cache.hpp"
#include "serve/solve_service.hpp"
#include "sim/fault_script.hpp"

namespace mecoff::serve {
namespace {

/// A small offloadable app: pinned UI node feeding a few heavy workers.
mec::UserApp make_app(double heavy_weight, std::size_t workers = 3) {
  graph::GraphBuilder builder;
  const graph::NodeId ui = builder.add_node(2.0);
  for (std::size_t w = 0; w < workers; ++w) {
    const graph::NodeId node =
        builder.add_node(heavy_weight + static_cast<double>(w));
    builder.add_edge(ui, node, 1.0 + static_cast<double>(w));
  }
  mec::UserApp user;
  user.graph = builder.build();
  user.unoffloadable.assign(user.graph.num_nodes(), false);
  user.unoffloadable[ui] = true;
  return user;
}

// ---- Fingerprints ---------------------------------------------------------

TEST(FingerprintTest, DeterministicAndSensitiveToContent) {
  const mec::SystemParams params;
  const mec::UserApp app = make_app(100.0);
  const Fingerprint a = fingerprint_request(app, params);
  const Fingerprint b = fingerprint_request(app, params);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_hex().size(), 32u);

  // Any content perturbation must move the key: a node weight...
  EXPECT_NE(fingerprint_request(make_app(101.0), params), a);
  // ...graph shape...
  EXPECT_NE(fingerprint_request(make_app(100.0, 4), params), a);
  // ...cost/channel parameters...
  mec::SystemParams slow = params;
  slow.bandwidth *= 0.5;
  EXPECT_NE(fingerprint_request(app, slow), a);
  // ...and pinning.
  mec::UserApp unpinned = app;
  unpinned.unoffloadable[0] = false;
  EXPECT_NE(fingerprint_request(unpinned, params), a);
}

TEST(FingerprintTest, EdgeOrderAndDirectionInvariant) {
  const mec::SystemParams params;
  graph::GraphBuilder forward;
  const auto fa = forward.add_node(1.0);
  const auto fb = forward.add_node(2.0);
  const auto fc = forward.add_node(3.0);
  forward.add_edge(fa, fb, 4.0);
  forward.add_edge(fb, fc, 5.0);

  graph::GraphBuilder shuffled;
  const auto sa = shuffled.add_node(1.0);
  const auto sb = shuffled.add_node(2.0);
  const auto sc = shuffled.add_node(3.0);
  shuffled.add_edge(sc, sb, 5.0);  // reversed direction, reversed order
  shuffled.add_edge(sb, sa, 4.0);

  mec::UserApp one;
  one.graph = forward.build();
  mec::UserApp two;
  two.graph = shuffled.build();
  EXPECT_EQ(fingerprint_request(one, params), fingerprint_request(two, params));
}

TEST(FingerprintTest, EmptyPinMaskEqualsExplicitAllFalse) {
  const mec::SystemParams params;
  mec::UserApp implicit = make_app(50.0);
  implicit.unoffloadable.clear();
  mec::UserApp explicit_mask = make_app(50.0);
  explicit_mask.unoffloadable.assign(explicit_mask.graph.num_nodes(), false);
  EXPECT_EQ(fingerprint_request(implicit, params),
            fingerprint_request(explicit_mask, params));
}

TEST(FingerprintTest, EmptyComponentsDistinctFromExplicit) {
  const mec::SystemParams params;
  mec::UserApp derived = make_app(50.0);
  derived.unoffloadable.clear();
  mec::UserApp declared = derived;
  declared.components.assign(declared.graph.num_nodes(), 0);
  EXPECT_NE(fingerprint_request(derived, params),
            fingerprint_request(declared, params));
}

TEST(FingerprintTest, NegativeZeroParamNormalized) {
  const mec::UserApp app = make_app(50.0);
  mec::SystemParams pos;
  pos.contention_factor = 0.0;
  mec::SystemParams neg;
  neg.contention_factor = -0.0;
  EXPECT_EQ(fingerprint_request(app, pos), fingerprint_request(app, neg));
}

TEST(FingerprintTest, SeededBuilderSeparatesConfigurations) {
  FingerprintBuilder base;
  base.add_u64(7);
  FingerprintBuilder seeded_a(Fingerprint{1, 2});
  seeded_a.add_u64(7);
  FingerprintBuilder seeded_b(Fingerprint{1, 3});
  seeded_b.add_u64(7);
  EXPECT_NE(base.digest(), seeded_a.digest());
  EXPECT_NE(seeded_a.digest(), seeded_b.digest());
}

// ---- SchemeCache ----------------------------------------------------------

std::vector<mec::Placement> placement_of(std::size_t n, std::size_t remote) {
  std::vector<mec::Placement> p(n, mec::Placement::kLocal);
  for (std::size_t i = 0; i < remote && i < n; ++i)
    p[i] = mec::Placement::kRemote;
  return p;
}

TEST(SchemeCacheTest, MissPublishHitRoundTrip) {
  SchemeCache cache;
  const Fingerprint key{11, 22};

  SchemeCache::Lookup first = cache.acquire(key);
  EXPECT_EQ(first.outcome, SchemeCache::Outcome::kMiss);

  cache.publish(key, placement_of(5, 2));

  SchemeCache::Lookup second = cache.acquire(key);
  EXPECT_EQ(second.outcome, SchemeCache::Outcome::kHit);
  EXPECT_EQ(second.placement, placement_of(5, 2));

  const SchemeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SchemeCacheTest, AbandonedMissStartsCold) {
  SchemeCache cache;
  const Fingerprint key{3, 4};
  ASSERT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);
  cache.abandon(key);  // no riders: entry vanishes
  EXPECT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);
  cache.publish(key, placement_of(3, 1));
  EXPECT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kHit);
}

TEST(SchemeCacheTest, LruEvictsLeastRecentlyUsedReadyEntry) {
  SchemeCache cache(SchemeCache::Options{.capacity = 2});
  const Fingerprint k1{1, 0}, k2{2, 0}, k3{3, 0};
  for (const Fingerprint& k : {k1, k2, k3}) {
    ASSERT_EQ(cache.acquire(k).outcome, SchemeCache::Outcome::kMiss);
    cache.publish(k, placement_of(4, k.hi % 4));
  }
  // Publishing k3 overflowed capacity 2; k1 was least recently used.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.acquire(k2).outcome, SchemeCache::Outcome::kHit);
  EXPECT_EQ(cache.acquire(k3).outcome, SchemeCache::Outcome::kHit);
  // k1 must re-solve.
  EXPECT_EQ(cache.acquire(k1).outcome, SchemeCache::Outcome::kMiss);
  cache.abandon(k1);
}

TEST(SchemeCacheTest, HitRefreshesLruPosition) {
  SchemeCache cache(SchemeCache::Options{.capacity = 2});
  const Fingerprint k1{1, 0}, k2{2, 0}, k3{3, 0};
  for (const Fingerprint& k : {k1, k2}) {
    ASSERT_EQ(cache.acquire(k).outcome, SchemeCache::Outcome::kMiss);
    cache.publish(k, placement_of(4, 1));
  }
  // Touch k1 so k2 becomes the victim when k3 lands.
  ASSERT_EQ(cache.acquire(k1).outcome, SchemeCache::Outcome::kHit);
  ASSERT_EQ(cache.acquire(k3).outcome, SchemeCache::Outcome::kMiss);
  cache.publish(k3, placement_of(4, 1));
  EXPECT_EQ(cache.acquire(k1).outcome, SchemeCache::Outcome::kHit);
  EXPECT_EQ(cache.acquire(k2).outcome, SchemeCache::Outcome::kMiss);
  cache.abandon(k2);
}

TEST(SchemeCacheTest, SingleFlightRidersGetOwnersPlacement) {
  SchemeCache cache;
  const Fingerprint key{42, 7};
  ASSERT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);

  constexpr std::size_t kRiders = 8;
  std::atomic<std::size_t> parked{0};
  std::vector<std::thread> threads;
  std::vector<SchemeCache::Lookup> results(kRiders);
  threads.reserve(kRiders);
  for (std::size_t i = 0; i < kRiders; ++i) {
    threads.emplace_back([&, i] {
      parked.fetch_add(1, std::memory_order_relaxed);
      results[i] = cache.acquire(key);  // blocks until publish
    });
  }
  // Let the riders reach the cv (best-effort; correctness does not
  // depend on the sleep, only the "no duplicate solve" accounting).
  while (parked.load(std::memory_order_relaxed) < kRiders)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  cache.publish(key, placement_of(6, 3));
  for (std::thread& t : threads) t.join();

  for (const SchemeCache::Lookup& r : results) {
    EXPECT_EQ(r.outcome, SchemeCache::Outcome::kCoalesced);
    EXPECT_EQ(r.placement, placement_of(6, 3));
  }
  const SchemeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // exactly ONE cold solve
  EXPECT_EQ(stats.coalesced, kRiders);
}

TEST(SchemeCacheTest, AbandonPromotesExactlyOneRider) {
  SchemeCache cache;
  const Fingerprint key{9, 9};
  ASSERT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);

  constexpr std::size_t kRiders = 4;
  std::atomic<std::size_t> promoted{0};
  std::atomic<std::size_t> coalesced{0};
  std::vector<std::thread> threads;
  threads.reserve(kRiders);
  for (std::size_t i = 0; i < kRiders; ++i) {
    threads.emplace_back([&] {
      SchemeCache::Lookup r = cache.acquire(key);
      if (r.outcome == SchemeCache::Outcome::kMiss) {
        // This rider was promoted to owner after the abandon; it must
        // complete the flight so the remaining riders wake.
        promoted.fetch_add(1, std::memory_order_relaxed);
        cache.publish(key, placement_of(5, 5));
      } else {
        EXPECT_EQ(r.outcome, SchemeCache::Outcome::kCoalesced);
        EXPECT_EQ(r.placement, placement_of(5, 5));
        coalesced.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cache.abandon(key);  // original owner gives up
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(promoted.load(), 1u);
  EXPECT_EQ(coalesced.load(), kRiders - 1);
}

// ---- SolveService ---------------------------------------------------------

TEST(SolveServiceTest, CacheHitIsBitIdenticalToColdSolve) {
  parallel::ThreadPool pool(4);
  SolveServiceOptions options;
  options.pool = &pool;
  SolveService service(options);

  SolveRequest request{make_app(150.0, 6), mec::SystemParams{}};

  // Reference: a direct PipelineOffloader run on the same single-user
  // system with the same (default) solver options.
  mec::MecSystem system;
  system.params = request.params;
  system.users.push_back(request.user);
  mec::PipelineOffloader reference;
  const std::vector<mec::Placement> expected =
      reference.solve(system).placement.front();

  const Result<SolveResponse> cold = service.solve(request);
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_EQ(cold.value().source, SolveSource::kSolved);
  EXPECT_FALSE(cold.value().degraded);
  EXPECT_EQ(cold.value().placement, expected);

  const Result<SolveResponse> hot = service.solve(request);
  ASSERT_TRUE(hot.ok()) << hot.error().message;
  EXPECT_EQ(hot.value().source, SolveSource::kCacheHit);
  // The headline guarantee: byte-identical to the cold solve.
  EXPECT_EQ(hot.value().placement, expected);
  EXPECT_EQ(hot.value().key, cold.value().key);

  const SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.solved, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(SolveServiceTest, ConcurrentDuplicateStreamSolvesEachAppOnce) {
  parallel::ThreadPool pool(4);
  SolveServiceOptions options;
  options.pool = &pool;
  options.shards = 3;
  SolveService service(options);

  constexpr std::size_t kDistinct = 4;
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 8;
  std::vector<SolveRequest> requests;
  std::vector<std::vector<mec::Placement>> expected;
  for (std::size_t a = 0; a < kDistinct; ++a) {
    requests.push_back(
        {make_app(120.0 + 10.0 * static_cast<double>(a), 4 + a),
         mec::SystemParams{}});
    mec::MecSystem system;
    system.params = requests.back().params;
    system.users.push_back(requests.back().user);
    mec::PipelineOffloader reference;
    expected.push_back(reference.solve(system).placement.front());
  }

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t which = (c + i) % kDistinct;
        const Result<SolveResponse> r = service.solve(requests[which]);
        if (!r.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (r.value().placement != expected[which])
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  // EVERY response — solved, hit, or coalesced — is bit-identical to
  // the reference cold solve of its app.
  EXPECT_EQ(mismatches.load(), 0u);

  const SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  // Single-flight + cache: exactly one cold solve per distinct app.
  EXPECT_EQ(stats.solved, kDistinct);
  EXPECT_EQ(stats.cache_hits + stats.coalesced,
            kClients * kPerClient - kDistinct);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.degraded, 0u);
}

TEST(SolveServiceTest, AdmissionLimitShedsToValidAllLocal) {
  SolveServiceOptions options;  // no pool: inline solves
  options.max_in_flight = 0;    // drain mode: shed everything
  SolveService service(options);

  SolveRequest request{make_app(200.0), mec::SystemParams{}};
  const Result<SolveResponse> r = service.solve(request);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().source, SolveSource::kShed);
  EXPECT_TRUE(r.value().degraded);
  ASSERT_EQ(r.value().placement.size(), request.user.graph.num_nodes());
  for (const mec::Placement p : r.value().placement)
    EXPECT_EQ(p, mec::Placement::kLocal);

  // Shed responses must not pollute the cache.
  EXPECT_EQ(service.stats().cache.entries, 0u);
  EXPECT_EQ(service.stats().shed, 1u);

  // Raising the limit back up restores full service.
  service.set_admission_limit(SIZE_MAX);
  const Result<SolveResponse> full = service.solve(request);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().source, SolveSource::kSolved);
  EXPECT_FALSE(full.value().degraded);
}

TEST(SolveServiceTest, MalformedRequestIsAnErrorNotACrash) {
  SolveService service;
  SolveRequest bad{make_app(100.0), mec::SystemParams{}};
  bad.user.unoffloadable.resize(1);  // shape mismatch vs graph
  EXPECT_FALSE(service.solve(bad).ok());

  SolveRequest bad_params{make_app(100.0), mec::SystemParams{}};
  bad_params.params.bandwidth = -1.0;
  EXPECT_FALSE(service.solve(bad_params).ok());

  EXPECT_EQ(service.stats().solved, 0u);
}

// ---- SchemeCache bounded rides --------------------------------------------

TEST(SchemeCacheTest, ZeroWaitRiderTimesOutWithoutTakingOwnership) {
  SchemeCache cache;
  const Fingerprint key{7, 7};
  ASSERT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);

  // max_wait 0 refuses to park: deterministic timeout, same thread, no
  // deadlock — and NO ownership transfer (the rider must not publish
  // or abandon).
  const SchemeCache::Lookup timed = cache.acquire(key, 0.0);
  EXPECT_EQ(timed.outcome, SchemeCache::Outcome::kTimeout);
  EXPECT_TRUE(timed.placement.empty());
  EXPECT_EQ(cache.stats().timeouts, 1u);

  // The original owner's protocol is undisturbed by the timed-out
  // rider: its publish lands and the entry becomes a normal hit.
  cache.publish(key, placement_of(4, 2));
  const SchemeCache::Lookup hit = cache.acquire(key);
  EXPECT_EQ(hit.outcome, SchemeCache::Outcome::kHit);
  EXPECT_EQ(hit.placement, placement_of(4, 2));
}

TEST(SchemeCacheTest, BoundedRiderGivesUpWhileUnboundedRiderRides) {
  SchemeCache cache;
  const Fingerprint key{8, 8};
  ASSERT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);

  SchemeCache::Lookup bounded;
  SchemeCache::Lookup unbounded;
  std::thread impatient([&] { bounded = cache.acquire(key, 0.01); });
  std::thread patient([&] { unbounded = cache.acquire(key); });
  // Publish long after the bounded rider's 10 ms budget has lapsed.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  cache.publish(key, placement_of(5, 3));
  impatient.join();
  patient.join();

  EXPECT_EQ(bounded.outcome, SchemeCache::Outcome::kTimeout);
  EXPECT_TRUE(bounded.placement.empty());
  EXPECT_EQ(unbounded.outcome, SchemeCache::Outcome::kCoalesced);
  EXPECT_EQ(unbounded.placement, placement_of(5, 3));

  const SchemeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SchemeCacheTest, StatsTrackOldestReadyEntryAge) {
  SchemeCache cache;
  EXPECT_EQ(cache.stats().oldest_entry_age_seconds, 0.0);  // empty
  const Fingerprint key{6, 6};
  ASSERT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);
  EXPECT_EQ(cache.stats().oldest_entry_age_seconds, 0.0);  // not ready
  cache.publish(key, placement_of(3, 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(cache.stats().oldest_entry_age_seconds, 0.01);
}

// ---- FaultInjector --------------------------------------------------------

TEST(FaultInjectorTest, RequestSequenceScheduleFiresDeterministically) {
  FaultInjector::Options opts;
  opts.shards = 2;
  opts.latency_scale_seconds = 0.1;
  sim::FaultScript script;
  script.crash_server(2, 0)
      .degrade_link(3, 1, 0.5)
      .disconnect_user(4, 0)
      .recover_server(5, 0);

  FaultInjector a(opts);
  a.arm(script);
  EXPECT_EQ(a.stats().events_pending, 4u);

  EXPECT_EQ(a.begin_request(), 1u);
  EXPECT_FALSE(a.shard_killed(0));
  EXPECT_EQ(a.begin_request(), 2u);  // crash 0 fires exactly here
  EXPECT_TRUE(a.shard_killed(0));
  EXPECT_FALSE(a.all_shards_killed());
  EXPECT_EQ(a.begin_request(), 3u);  // degrade 1 @ severity 0.5
  EXPECT_DOUBLE_EQ(a.injected_latency_seconds(1), 0.05);
  EXPECT_EQ(a.injected_latency_seconds(0), 0.0);
  EXPECT_EQ(a.begin_request(), 4u);  // disconnect arms ONE publish steal
  EXPECT_TRUE(a.steal_publish());
  EXPECT_FALSE(a.steal_publish());  // one-shot
  EXPECT_EQ(a.begin_request(), 5u);  // recover 0
  EXPECT_FALSE(a.shard_killed(0));

  const FaultInjector::Stats stats = a.stats();
  EXPECT_EQ(stats.requests_seen, 5u);
  EXPECT_EQ(stats.events_applied, 4u);
  EXPECT_EQ(stats.events_pending, 0u);
  EXPECT_EQ(stats.publish_failures, 1u);
  EXPECT_EQ(stats.shards_killed, 0u);
  EXPECT_EQ(a.trace().size(), 4u);

  // Replay: the same (script, request stream) pair yields the exact
  // same applied-event trace — the property the soak trajectory and
  // the committed baselines rest on.
  FaultInjector b(opts);
  b.arm(script);
  for (int i = 0; i < 5; ++i) (void)b.begin_request();
  EXPECT_EQ(a.trace(), b.trace());
}

TEST(FaultInjectorTest, TargetsFoldModuloShards) {
  FaultInjector::Options opts;
  opts.shards = 2;
  FaultInjector injector(opts);
  sim::FaultScript script;
  script.crash_server(1, 5);  // 5 % 2 == shard 1
  injector.arm(script);
  (void)injector.begin_request();
  EXPECT_TRUE(injector.shard_killed(1));
  EXPECT_TRUE(injector.shard_killed(3));  // queries fold too
  EXPECT_FALSE(injector.shard_killed(0));
}

TEST(FaultInjectorTest, ArmResetsSequenceAndStandingFaults) {
  FaultInjector::Options opts;
  opts.shards = 2;
  opts.latency_scale_seconds = 0.1;
  FaultInjector injector(opts);
  sim::FaultScript script;
  script.crash_server(1, 0).degrade_link(1, 1, 0.5).disconnect_user(1, 0);
  injector.arm(script);
  (void)injector.begin_request();
  ASSERT_TRUE(injector.shard_killed(0));
  ASSERT_DOUBLE_EQ(injector.injected_latency_seconds(1), 0.05);

  // Re-arming (here: with an empty script) clears every standing
  // fault, the pending publish steal, the counters and the trace.
  injector.arm(sim::FaultScript{});
  const FaultInjector::Stats stats = injector.stats();
  EXPECT_EQ(stats.requests_seen, 0u);
  EXPECT_EQ(stats.events_applied, 0u);
  EXPECT_EQ(stats.events_pending, 0u);
  EXPECT_EQ(stats.publish_failures, 0u);
  EXPECT_EQ(stats.shards_killed, 0u);
  EXPECT_FALSE(injector.shard_killed(0));
  EXPECT_EQ(injector.injected_latency_seconds(1), 0.0);
  EXPECT_FALSE(injector.steal_publish());
  EXPECT_TRUE(injector.trace().empty());
  EXPECT_EQ(injector.begin_request(), 1u);  // sequence restarted
}

// ---- Deadline budgets, hedging, faults, brownout, drain -------------------

TEST(SolveServiceTest, ZeroBudgetDegradesToValidAllLocalAndCachesNothing) {
  SolveService service;  // no pool: inline solves
  SolveRequest request{make_app(130.0, 4), mec::SystemParams{}};
  request.deadline_seconds = 0.0;

  const Result<SolveResponse> r = service.solve(request);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().source, SolveSource::kDeadlineDegraded);
  EXPECT_TRUE(r.value().degraded);
  ASSERT_EQ(r.value().placement.size(), request.user.graph.num_nodes());
  for (const mec::Placement p : r.value().placement)
    EXPECT_EQ(p, mec::Placement::kLocal);

  // Budget exhaustion is never an error and never pollutes the cache.
  const SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.deadline_degraded, 1u);
  EXPECT_EQ(stats.solved, 0u);
  EXPECT_EQ(stats.cache.entries, 0u);

  // The same request without a budget cold-solves at full quality.
  SolveRequest unlimited = request;
  unlimited.deadline_seconds = -1.0;
  const Result<SolveResponse> full = service.solve(unlimited);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().source, SolveSource::kSolved);
  EXPECT_FALSE(full.value().degraded);

  // The service default flows the same way when the request does not
  // carry its own budget.
  SolveServiceOptions strict;
  strict.default_deadline_seconds = 0.0;
  SolveService strict_service(strict);
  SolveRequest plain{make_app(130.0, 4), mec::SystemParams{}};
  const Result<SolveResponse> d = strict_service.solve(plain);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().source, SolveSource::kDeadlineDegraded);
}

TEST(SolveServiceTest, RiderHedgesPastStalledOwnerBitIdentical) {
  parallel::ThreadPool pool(4);
  FaultInjector::Options fopts;
  fopts.shards = 2;
  fopts.latency_scale_seconds = 0.5;
  FaultInjector injector(fopts);
  sim::FaultScript script;
  // 0.4 s injected stall on BOTH shards from request 1 on: the owner's
  // cold solve is pinned down long past the rider's wait budget.
  script.degrade_link(1, 0, 0.8).degrade_link(1, 1, 0.8);
  injector.arm(script);

  SolveServiceOptions options;
  options.pool = &pool;
  options.shards = 2;
  options.hedge_fraction = 0.25;
  options.injector = &injector;
  SolveService service(options);

  const SolveRequest request{make_app(150.0, 5), mec::SystemParams{}};
  mec::MecSystem system;
  system.params = request.params;
  system.users.push_back(request.user);
  mec::PipelineOffloader reference;
  const std::vector<mec::Placement> expected =
      reference.solve(system).placement.front();

  // Owner: unlimited budget, eats the full injected stall.
  std::future<Result<SolveResponse>> owner = std::async(
      std::launch::async, [&] { return service.solve(request); });
  // Rider: budget 0.8 s, so it parks at most 0.2 s (hedge_fraction)
  // behind the owner — far less than the 0.4 s stall — then hedges.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  SolveRequest rider_request = request;
  rider_request.deadline_seconds = 0.8;
  const Result<SolveResponse> rider = service.solve(rider_request);
  const Result<SolveResponse> owner_response = owner.get();

  ASSERT_TRUE(owner_response.ok()) << owner_response.error().message;
  EXPECT_EQ(owner_response.value().source, SolveSource::kSolved);
  EXPECT_FALSE(owner_response.value().degraded);
  EXPECT_EQ(owner_response.value().placement, expected);

  ASSERT_TRUE(rider.ok()) << rider.error().message;
  EXPECT_EQ(rider.value().source, SolveSource::kHedged);
  EXPECT_FALSE(rider.value().degraded);
  // The hedge's duplicate solve is bit-identical to the reference.
  EXPECT_EQ(rider.value().placement, expected);

  const SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.hedged, 1u);
  EXPECT_EQ(stats.solved, 2u);  // owner + hedge both ran cold solves
  EXPECT_EQ(stats.cache.timeouts, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);

  // The owner's publish survived the hedge: next request is a hit.
  const Result<SolveResponse> hot = service.solve(request);
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot.value().source, SolveSource::kCacheHit);
  EXPECT_EQ(hot.value().placement, expected);
}

TEST(SolveServiceTest, StolenPublishServesRequesterButNeverCaches) {
  FaultInjector injector;
  sim::FaultScript script;
  script.disconnect_user(1, 0);  // one publish failure, armed at req 1
  injector.arm(script);
  SolveServiceOptions options;
  options.injector = &injector;
  SolveService service(options);

  const SolveRequest request{make_app(160.0, 5), mec::SystemParams{}};
  mec::MecSystem system;
  system.params = request.params;
  system.users.push_back(request.user);
  mec::PipelineOffloader reference;
  const std::vector<mec::Placement> expected =
      reference.solve(system).placement.front();

  // The requester still gets its full-quality placement; only the
  // cache misses out ("result lost on the way back").
  const Result<SolveResponse> first = service.solve(request);
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_EQ(first.value().source, SolveSource::kSolved);
  EXPECT_FALSE(first.value().degraded);
  EXPECT_EQ(first.value().placement, expected);
  EXPECT_EQ(service.stats().cache.entries, 0u);
  EXPECT_EQ(injector.stats().publish_failures, 1u);

  // The steal was one-shot: the next cold solve publishes normally.
  const Result<SolveResponse> second = service.solve(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().source, SolveSource::kSolved);
  EXPECT_EQ(service.stats().cache.entries, 1u);

  const Result<SolveResponse> third = service.solve(request);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().source, SolveSource::kCacheHit);
  EXPECT_EQ(third.value().placement, expected);
  EXPECT_EQ(service.stats().cache.misses, 2u);
}

TEST(SolveServiceTest, KilledShardFailsOverFullKillDegradesThenRecovers) {
  const SolveRequest request{make_app(170.0, 4), mec::SystemParams{}};
  mec::MecSystem system;
  system.params = request.params;
  system.users.push_back(request.user);
  mec::PipelineOffloader reference;
  const std::vector<mec::Placement> expected =
      reference.solve(system).placement.front();

  // Discover the request's preferred shard with a fault-free probe —
  // shard choice is keyed by fingerprint, so this is deterministic.
  SolveServiceOptions plain;
  plain.shards = 2;
  SolveService probe(plain);
  const Result<SolveResponse> cold = probe.solve(request);
  ASSERT_TRUE(cold.ok());
  const std::size_t preferred =
      static_cast<std::size_t>(cold.value().key.lo) % 2;

  // Kill exactly the preferred shard: the solve fails over to the
  // other one and the placement is still bit-identical.
  FaultInjector::Options fopts;
  fopts.shards = 2;
  FaultInjector injector(fopts);
  sim::FaultScript one_dead;
  one_dead.crash_server(1, preferred);
  injector.arm(one_dead);
  SolveServiceOptions options;
  options.shards = 2;
  options.injector = &injector;
  SolveService service(options);
  const Result<SolveResponse> failover = service.solve(request);
  ASSERT_TRUE(failover.ok()) << failover.error().message;
  EXPECT_EQ(failover.value().source, SolveSource::kSolved);
  EXPECT_FALSE(failover.value().degraded);
  EXPECT_EQ(failover.value().placement, expected);
  EXPECT_EQ(service.stats().shard_failovers, 1u);

  // Every shard down: degrade to valid all-local — never error, never
  // hang, never cache.
  sim::FaultScript all_dead;
  all_dead.crash_server(1, 0).crash_server(1, 1);
  injector.arm(all_dead);
  const SolveRequest other{make_app(175.0, 4), mec::SystemParams{}};
  const Result<SolveResponse> dead = service.solve(other);
  ASSERT_TRUE(dead.ok());
  EXPECT_EQ(dead.value().source, SolveSource::kDeadlineDegraded);
  EXPECT_TRUE(dead.value().degraded);
  for (const mec::Placement p : dead.value().placement)
    EXPECT_EQ(p, mec::Placement::kLocal);
  EXPECT_EQ(service.stats().deadline_degraded, 1u);
  EXPECT_EQ(service.stats().cache.entries, 1u);  // only the first app

  // Recovery: a bare re-arm clears the kills; service is whole again.
  injector.arm(sim::FaultScript{});
  const Result<SolveResponse> revived = service.solve(other);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(revived.value().source, SolveSource::kSolved);
  EXPECT_FALSE(revived.value().degraded);
}

TEST(SolveServiceTest, BrownoutEntersOnP99ShedsDeterministicallyRecovers) {
  // Single-threaded on purpose: occupancy is always 0 at admission, so
  // tier entry is driven purely by the p99 bump — which makes the shed
  // pattern exactly reproducible (no scheduling dependence).
  FaultInjector::Options fopts;
  fopts.shards = 2;
  fopts.latency_scale_seconds = 0.01;
  FaultInjector injector(fopts);
  sim::FaultScript script;
  script.degrade_link(1, 0, 0.5).degrade_link(1, 1, 0.5);  // 5 ms/solve
  injector.arm(script);

  SolveServiceOptions options;  // no pool: inline solves
  options.shards = 2;
  options.injector = &injector;
  options.brownout.enabled = true;
  options.brownout.tier1_in_flight = 8;  // unreachable single-threaded
  options.brownout.tier2_in_flight = 16;
  options.brownout.tier3_in_flight = 32;
  options.brownout.p99_bump_seconds = 0.001;
  SolveService service(options);

  // 32 cold solves at >= 5 ms each: the controller refreshes its p99
  // on the 32nd completion, after which it exceeds the 1 ms bump.
  for (int i = 0; i < 32; ++i) {
    SolveRequest request{make_app(100.0 + static_cast<double>(i)),
                         mec::SystemParams{}};
    const Result<SolveResponse> r = service.solve(request);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().source, SolveSource::kSolved);
  }
  EXPECT_EQ(service.stats().brownout_shed, 0u);

  // Tier 1 sheds every 4th candidate by admission counter: among the
  // next 8 requests exactly candidates 0 and 4 are shed — and a shed
  // response is still a valid all-local placement.
  const SolveRequest hot{make_app(100.0), mec::SystemParams{}};
  std::size_t shed_seen = 0;
  for (int i = 0; i < 8; ++i) {
    const Result<SolveResponse> r = service.solve(hot);
    ASSERT_TRUE(r.ok());
    if (r.value().source == SolveSource::kShed) {
      ++shed_seen;
      EXPECT_TRUE(r.value().degraded);
      ASSERT_EQ(r.value().placement.size(), hot.user.graph.num_nodes());
      for (const mec::Placement p : r.value().placement)
        EXPECT_EQ(p, mec::Placement::kLocal);
    }
  }
  EXPECT_EQ(shed_seen, 2u);
  EXPECT_EQ(service.stats().brownout_shed, 2u);
  EXPECT_EQ(service.stats().brownout_tier, 1);

  // Thousands of fast cache hits dilute the 32 slow samples out of the
  // sliding p99; once the bump clears, hysteresis releases the tier
  // (occupancy 0 is far below the tier-1 exit band) and shedding stops.
  for (int i = 0; i < 4000; ++i) (void)service.solve(hot);
  const std::uint64_t shed_before = service.stats().brownout_shed;
  for (int i = 0; i < 8; ++i) {
    const Result<SolveResponse> r = service.solve(hot);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.value().source, SolveSource::kShed);
  }
  EXPECT_EQ(service.stats().brownout_shed, shed_before);
  EXPECT_EQ(service.stats().brownout_tier, 0);
}

TEST(SolveServiceTest, DrainAnswersNewImmediatelyAndFinishesInFlight) {
  parallel::ThreadPool pool(2);
  FaultInjector::Options fopts;
  fopts.shards = 2;
  fopts.latency_scale_seconds = 0.2;
  FaultInjector injector(fopts);
  sim::FaultScript script;
  script.degrade_link(1, 0, 0.5).degrade_link(1, 1, 0.5);  // 0.1 s stall
  injector.arm(script);

  SolveServiceOptions options;
  options.pool = &pool;
  options.shards = 2;
  options.injector = &injector;
  SolveService service(options);

  const SolveRequest request{make_app(150.0, 5), mec::SystemParams{}};
  mec::MecSystem system;
  system.params = request.params;
  system.users.push_back(request.user);
  mec::PipelineOffloader reference;
  const std::vector<mec::Placement> expected =
      reference.solve(system).placement.front();

  std::future<Result<SolveResponse>> in_flight = std::async(
      std::launch::async, [&] { return service.solve(request); });
  // Wait until the in-flight request OWNS the cache entry (the miss is
  // counted after admission), so drain provably starts with work live.
  while (service.stats().cache.misses == 0) std::this_thread::yield();
  service.begin_drain();
  EXPECT_TRUE(service.draining());

  // New requests are answered immediately with the degrade — they do
  // not queue behind the drain.
  const Result<SolveResponse> late = service.solve(request);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late.value().source, SolveSource::kShed);
  EXPECT_TRUE(late.value().degraded);
  EXPECT_EQ(service.stats().drained, 1u);

  // The admitted request runs to completion at full quality: drain
  // never tears an in-flight response.
  const Result<SolveResponse> finished = in_flight.get();
  ASSERT_TRUE(finished.ok()) << finished.error().message;
  EXPECT_EQ(finished.value().source, SolveSource::kSolved);
  EXPECT_FALSE(finished.value().degraded);
  EXPECT_EQ(finished.value().placement, expected);

  EXPECT_TRUE(service.await_idle(10.0));
  EXPECT_EQ(service.stats().solved, 1u);
}

TEST(SolveServiceTest, DifferentSolverConfigsUseDifferentKeys) {
  SolveServiceOptions spectral;
  SolveService a(spectral);
  SolveServiceOptions kl = spectral;
  kl.solver.backend = mec::CutBackend::kKernighanLin;
  SolveService b(kl);
  EXPECT_NE(a.config_seed(), b.config_seed());

  SolveRequest request{make_app(90.0), mec::SystemParams{}};
  const Result<SolveResponse> ra = a.solve(request);
  const Result<SolveResponse> rb = b.solve(request);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_NE(ra.value().key, rb.value().key);
}

// ---- Request-id correlation -----------------------------------------------

TEST(RequestIdPropagation, ServiceAssignsNonZeroIdsAndHitsNameTheirOwner) {
  SolveService service;  // no pool: inline solves
  SolveRequest request{make_app(130.0, 4), mec::SystemParams{}};

  const Result<SolveResponse> cold = service.solve(request);
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_EQ(cold.value().source, SolveSource::kSolved);
  EXPECT_NE(cold.value().request_id, 0u);
  // A cold solve serves itself.
  EXPECT_EQ(cold.value().served_by_request_id, cold.value().request_id);

  const Result<SolveResponse> hot = service.solve(request);
  ASSERT_TRUE(hot.ok()) << hot.error().message;
  EXPECT_EQ(hot.value().source, SolveSource::kCacheHit);
  EXPECT_NE(hot.value().request_id, cold.value().request_id);
  // The hit names the request whose solve actually produced the bytes.
  EXPECT_EQ(hot.value().served_by_request_id, cold.value().request_id);
}

TEST(RequestIdPropagation, CallerSuppliedIdsPassThroughUntouched) {
  SolveService service;
  SolveRequest request{make_app(140.0, 4), mec::SystemParams{}};
  request.request_id = 4242;
  const Result<SolveResponse> cold = service.solve(request);
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_EQ(cold.value().request_id, 4242u);
  EXPECT_EQ(cold.value().served_by_request_id, 4242u);

  request.request_id = 9001;
  const Result<SolveResponse> hot = service.solve(request);
  ASSERT_TRUE(hot.ok()) << hot.error().message;
  EXPECT_EQ(hot.value().source, SolveSource::kCacheHit);
  EXPECT_EQ(hot.value().request_id, 9001u);
  // The cached entry still remembers who solved it.
  EXPECT_EQ(hot.value().served_by_request_id, 4242u);
}

TEST(RequestIdPropagation, ConcurrentStreamGetsUniqueNonZeroIds) {
  parallel::ThreadPool pool(4);
  SolveServiceOptions options;
  options.pool = &pool;
  options.shards = 2;
  SolveService service(options);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 8;
  std::vector<SolveRequest> requests;
  for (std::size_t a = 0; a < 3; ++a) {
    requests.push_back(
        {make_app(110.0 + 10.0 * static_cast<double>(a), 3 + a),
         mec::SystemParams{}});
  }

  std::vector<std::vector<std::uint64_t>> ids(kClients);
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> zero_served_by{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const Result<SolveResponse> r =
            service.solve(requests[(c + i) % requests.size()]);
        if (!r.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Every response names its producer: the owner's id for
        // hits/coalesced, the request's own id otherwise.
        if (r.value().served_by_request_id == 0)
          zero_served_by.fetch_add(1, std::memory_order_relaxed);
        ids[c].push_back(r.value().request_id);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(zero_served_by.load(), 0u);
  std::set<std::uint64_t> unique;
  for (const std::vector<std::uint64_t>& client_ids : ids) {
    for (const std::uint64_t id : client_ids) {
      EXPECT_NE(id, 0u);
      unique.insert(id);
    }
  }
  // Service-assigned ids are unique across concurrent clients — even
  // coalesced riders keep their own id (only served_by aliases).
  EXPECT_EQ(unique.size(), kClients * kPerClient);
}

#ifndef MECOFF_OBS_DISABLED
// The correlation id survives the whole observability chain: a
// caller-supplied id shows up on the flight-recorder record written by
// the solve it triggered, and the latency quantile window carries a
// non-zero exemplar id. (The exact exemplar == slowed-request check
// lives in obs_serve_test.cpp where the injector controls latency.)
TEST(RequestIdPropagation, CallerIdLandsInFlightRecorderRecord) {
  SolveService service;
  SolveRequest request{make_app(170.0, 5), mec::SystemParams{}};
  request.request_id = 987654321;
  const Result<SolveResponse> r = service.solve(request);
  ASSERT_TRUE(r.ok()) << r.error().message;
  ASSERT_EQ(r.value().source, SolveSource::kSolved);

  bool found = false;
  for (const obs::SolveRecord& record :
       obs::FlightRecorder::global().snapshot()) {
    if (record.request_id == 987654321u) found = true;
  }
  EXPECT_TRUE(found);

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const auto it = snap.quantiles.find("serve.solve.latency");
  ASSERT_NE(it, snap.quantiles.end());
  EXPECT_GE(it->second.count, 1u);
  EXPECT_NE(it->second.max_request_id, 0u);
}
#endif  // MECOFF_OBS_DISABLED

}  // namespace
}  // namespace mecoff::serve
