// Tests for the online solve service: canonical request fingerprints,
// the single-flight scheme cache, and SolveService end-to-end (cache
// hits bit-identical to cold solves, coalescing under concurrency,
// admission-control shedding).
//
// Everything here observes behavior through return values and
// SolveService::stats() (plain atomics), so the suite runs identically
// with the obs facade compiled in or out.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <thread>
#include <vector>

#include "graph/weighted_graph.hpp"
#include "mec/model.hpp"
#include "mec/offloader.hpp"
#include "mec/scheme.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/fingerprint.hpp"
#include "serve/scheme_cache.hpp"
#include "serve/solve_service.hpp"

namespace mecoff::serve {
namespace {

/// A small offloadable app: pinned UI node feeding a few heavy workers.
mec::UserApp make_app(double heavy_weight, std::size_t workers = 3) {
  graph::GraphBuilder builder;
  const graph::NodeId ui = builder.add_node(2.0);
  for (std::size_t w = 0; w < workers; ++w) {
    const graph::NodeId node =
        builder.add_node(heavy_weight + static_cast<double>(w));
    builder.add_edge(ui, node, 1.0 + static_cast<double>(w));
  }
  mec::UserApp user;
  user.graph = builder.build();
  user.unoffloadable.assign(user.graph.num_nodes(), false);
  user.unoffloadable[ui] = true;
  return user;
}

// ---- Fingerprints ---------------------------------------------------------

TEST(FingerprintTest, DeterministicAndSensitiveToContent) {
  const mec::SystemParams params;
  const mec::UserApp app = make_app(100.0);
  const Fingerprint a = fingerprint_request(app, params);
  const Fingerprint b = fingerprint_request(app, params);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_hex().size(), 32u);

  // Any content perturbation must move the key: a node weight...
  EXPECT_NE(fingerprint_request(make_app(101.0), params), a);
  // ...graph shape...
  EXPECT_NE(fingerprint_request(make_app(100.0, 4), params), a);
  // ...cost/channel parameters...
  mec::SystemParams slow = params;
  slow.bandwidth *= 0.5;
  EXPECT_NE(fingerprint_request(app, slow), a);
  // ...and pinning.
  mec::UserApp unpinned = app;
  unpinned.unoffloadable[0] = false;
  EXPECT_NE(fingerprint_request(unpinned, params), a);
}

TEST(FingerprintTest, EdgeOrderAndDirectionInvariant) {
  const mec::SystemParams params;
  graph::GraphBuilder forward;
  const auto fa = forward.add_node(1.0);
  const auto fb = forward.add_node(2.0);
  const auto fc = forward.add_node(3.0);
  forward.add_edge(fa, fb, 4.0);
  forward.add_edge(fb, fc, 5.0);

  graph::GraphBuilder shuffled;
  const auto sa = shuffled.add_node(1.0);
  const auto sb = shuffled.add_node(2.0);
  const auto sc = shuffled.add_node(3.0);
  shuffled.add_edge(sc, sb, 5.0);  // reversed direction, reversed order
  shuffled.add_edge(sb, sa, 4.0);

  mec::UserApp one;
  one.graph = forward.build();
  mec::UserApp two;
  two.graph = shuffled.build();
  EXPECT_EQ(fingerprint_request(one, params), fingerprint_request(two, params));
}

TEST(FingerprintTest, EmptyPinMaskEqualsExplicitAllFalse) {
  const mec::SystemParams params;
  mec::UserApp implicit = make_app(50.0);
  implicit.unoffloadable.clear();
  mec::UserApp explicit_mask = make_app(50.0);
  explicit_mask.unoffloadable.assign(explicit_mask.graph.num_nodes(), false);
  EXPECT_EQ(fingerprint_request(implicit, params),
            fingerprint_request(explicit_mask, params));
}

TEST(FingerprintTest, EmptyComponentsDistinctFromExplicit) {
  const mec::SystemParams params;
  mec::UserApp derived = make_app(50.0);
  derived.unoffloadable.clear();
  mec::UserApp declared = derived;
  declared.components.assign(declared.graph.num_nodes(), 0);
  EXPECT_NE(fingerprint_request(derived, params),
            fingerprint_request(declared, params));
}

TEST(FingerprintTest, NegativeZeroParamNormalized) {
  const mec::UserApp app = make_app(50.0);
  mec::SystemParams pos;
  pos.contention_factor = 0.0;
  mec::SystemParams neg;
  neg.contention_factor = -0.0;
  EXPECT_EQ(fingerprint_request(app, pos), fingerprint_request(app, neg));
}

TEST(FingerprintTest, SeededBuilderSeparatesConfigurations) {
  FingerprintBuilder base;
  base.add_u64(7);
  FingerprintBuilder seeded_a(Fingerprint{1, 2});
  seeded_a.add_u64(7);
  FingerprintBuilder seeded_b(Fingerprint{1, 3});
  seeded_b.add_u64(7);
  EXPECT_NE(base.digest(), seeded_a.digest());
  EXPECT_NE(seeded_a.digest(), seeded_b.digest());
}

// ---- SchemeCache ----------------------------------------------------------

std::vector<mec::Placement> placement_of(std::size_t n, std::size_t remote) {
  std::vector<mec::Placement> p(n, mec::Placement::kLocal);
  for (std::size_t i = 0; i < remote && i < n; ++i)
    p[i] = mec::Placement::kRemote;
  return p;
}

TEST(SchemeCacheTest, MissPublishHitRoundTrip) {
  SchemeCache cache;
  const Fingerprint key{11, 22};

  SchemeCache::Lookup first = cache.acquire(key);
  EXPECT_EQ(first.outcome, SchemeCache::Outcome::kMiss);

  cache.publish(key, placement_of(5, 2));

  SchemeCache::Lookup second = cache.acquire(key);
  EXPECT_EQ(second.outcome, SchemeCache::Outcome::kHit);
  EXPECT_EQ(second.placement, placement_of(5, 2));

  const SchemeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SchemeCacheTest, AbandonedMissStartsCold) {
  SchemeCache cache;
  const Fingerprint key{3, 4};
  ASSERT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);
  cache.abandon(key);  // no riders: entry vanishes
  EXPECT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);
  cache.publish(key, placement_of(3, 1));
  EXPECT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kHit);
}

TEST(SchemeCacheTest, LruEvictsLeastRecentlyUsedReadyEntry) {
  SchemeCache cache(SchemeCache::Options{.capacity = 2});
  const Fingerprint k1{1, 0}, k2{2, 0}, k3{3, 0};
  for (const Fingerprint& k : {k1, k2, k3}) {
    ASSERT_EQ(cache.acquire(k).outcome, SchemeCache::Outcome::kMiss);
    cache.publish(k, placement_of(4, k.hi % 4));
  }
  // Publishing k3 overflowed capacity 2; k1 was least recently used.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.acquire(k2).outcome, SchemeCache::Outcome::kHit);
  EXPECT_EQ(cache.acquire(k3).outcome, SchemeCache::Outcome::kHit);
  // k1 must re-solve.
  EXPECT_EQ(cache.acquire(k1).outcome, SchemeCache::Outcome::kMiss);
  cache.abandon(k1);
}

TEST(SchemeCacheTest, HitRefreshesLruPosition) {
  SchemeCache cache(SchemeCache::Options{.capacity = 2});
  const Fingerprint k1{1, 0}, k2{2, 0}, k3{3, 0};
  for (const Fingerprint& k : {k1, k2}) {
    ASSERT_EQ(cache.acquire(k).outcome, SchemeCache::Outcome::kMiss);
    cache.publish(k, placement_of(4, 1));
  }
  // Touch k1 so k2 becomes the victim when k3 lands.
  ASSERT_EQ(cache.acquire(k1).outcome, SchemeCache::Outcome::kHit);
  ASSERT_EQ(cache.acquire(k3).outcome, SchemeCache::Outcome::kMiss);
  cache.publish(k3, placement_of(4, 1));
  EXPECT_EQ(cache.acquire(k1).outcome, SchemeCache::Outcome::kHit);
  EXPECT_EQ(cache.acquire(k2).outcome, SchemeCache::Outcome::kMiss);
  cache.abandon(k2);
}

TEST(SchemeCacheTest, SingleFlightRidersGetOwnersPlacement) {
  SchemeCache cache;
  const Fingerprint key{42, 7};
  ASSERT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);

  constexpr std::size_t kRiders = 8;
  std::atomic<std::size_t> parked{0};
  std::vector<std::thread> threads;
  std::vector<SchemeCache::Lookup> results(kRiders);
  threads.reserve(kRiders);
  for (std::size_t i = 0; i < kRiders; ++i) {
    threads.emplace_back([&, i] {
      parked.fetch_add(1, std::memory_order_relaxed);
      results[i] = cache.acquire(key);  // blocks until publish
    });
  }
  // Let the riders reach the cv (best-effort; correctness does not
  // depend on the sleep, only the "no duplicate solve" accounting).
  while (parked.load(std::memory_order_relaxed) < kRiders)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  cache.publish(key, placement_of(6, 3));
  for (std::thread& t : threads) t.join();

  for (const SchemeCache::Lookup& r : results) {
    EXPECT_EQ(r.outcome, SchemeCache::Outcome::kCoalesced);
    EXPECT_EQ(r.placement, placement_of(6, 3));
  }
  const SchemeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // exactly ONE cold solve
  EXPECT_EQ(stats.coalesced, kRiders);
}

TEST(SchemeCacheTest, AbandonPromotesExactlyOneRider) {
  SchemeCache cache;
  const Fingerprint key{9, 9};
  ASSERT_EQ(cache.acquire(key).outcome, SchemeCache::Outcome::kMiss);

  constexpr std::size_t kRiders = 4;
  std::atomic<std::size_t> promoted{0};
  std::atomic<std::size_t> coalesced{0};
  std::vector<std::thread> threads;
  threads.reserve(kRiders);
  for (std::size_t i = 0; i < kRiders; ++i) {
    threads.emplace_back([&] {
      SchemeCache::Lookup r = cache.acquire(key);
      if (r.outcome == SchemeCache::Outcome::kMiss) {
        // This rider was promoted to owner after the abandon; it must
        // complete the flight so the remaining riders wake.
        promoted.fetch_add(1, std::memory_order_relaxed);
        cache.publish(key, placement_of(5, 5));
      } else {
        EXPECT_EQ(r.outcome, SchemeCache::Outcome::kCoalesced);
        EXPECT_EQ(r.placement, placement_of(5, 5));
        coalesced.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cache.abandon(key);  // original owner gives up
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(promoted.load(), 1u);
  EXPECT_EQ(coalesced.load(), kRiders - 1);
}

// ---- SolveService ---------------------------------------------------------

TEST(SolveServiceTest, CacheHitIsBitIdenticalToColdSolve) {
  parallel::ThreadPool pool(4);
  SolveServiceOptions options;
  options.pool = &pool;
  SolveService service(options);

  SolveRequest request{make_app(150.0, 6), mec::SystemParams{}};

  // Reference: a direct PipelineOffloader run on the same single-user
  // system with the same (default) solver options.
  mec::MecSystem system;
  system.params = request.params;
  system.users.push_back(request.user);
  mec::PipelineOffloader reference;
  const std::vector<mec::Placement> expected =
      reference.solve(system).placement.front();

  const Result<SolveResponse> cold = service.solve(request);
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_EQ(cold.value().source, SolveSource::kSolved);
  EXPECT_FALSE(cold.value().degraded);
  EXPECT_EQ(cold.value().placement, expected);

  const Result<SolveResponse> hot = service.solve(request);
  ASSERT_TRUE(hot.ok()) << hot.error().message;
  EXPECT_EQ(hot.value().source, SolveSource::kCacheHit);
  // The headline guarantee: byte-identical to the cold solve.
  EXPECT_EQ(hot.value().placement, expected);
  EXPECT_EQ(hot.value().key, cold.value().key);

  const SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.solved, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(SolveServiceTest, ConcurrentDuplicateStreamSolvesEachAppOnce) {
  parallel::ThreadPool pool(4);
  SolveServiceOptions options;
  options.pool = &pool;
  options.shards = 3;
  SolveService service(options);

  constexpr std::size_t kDistinct = 4;
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 8;
  std::vector<SolveRequest> requests;
  std::vector<std::vector<mec::Placement>> expected;
  for (std::size_t a = 0; a < kDistinct; ++a) {
    requests.push_back(
        {make_app(120.0 + 10.0 * static_cast<double>(a), 4 + a),
         mec::SystemParams{}});
    mec::MecSystem system;
    system.params = requests.back().params;
    system.users.push_back(requests.back().user);
    mec::PipelineOffloader reference;
    expected.push_back(reference.solve(system).placement.front());
  }

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t which = (c + i) % kDistinct;
        const Result<SolveResponse> r = service.solve(requests[which]);
        if (!r.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (r.value().placement != expected[which])
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  // EVERY response — solved, hit, or coalesced — is bit-identical to
  // the reference cold solve of its app.
  EXPECT_EQ(mismatches.load(), 0u);

  const SolveService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  // Single-flight + cache: exactly one cold solve per distinct app.
  EXPECT_EQ(stats.solved, kDistinct);
  EXPECT_EQ(stats.cache_hits + stats.coalesced,
            kClients * kPerClient - kDistinct);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.degraded, 0u);
}

TEST(SolveServiceTest, AdmissionLimitShedsToValidAllLocal) {
  SolveServiceOptions options;  // no pool: inline solves
  options.max_in_flight = 0;    // drain mode: shed everything
  SolveService service(options);

  SolveRequest request{make_app(200.0), mec::SystemParams{}};
  const Result<SolveResponse> r = service.solve(request);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().source, SolveSource::kShed);
  EXPECT_TRUE(r.value().degraded);
  ASSERT_EQ(r.value().placement.size(), request.user.graph.num_nodes());
  for (const mec::Placement p : r.value().placement)
    EXPECT_EQ(p, mec::Placement::kLocal);

  // Shed responses must not pollute the cache.
  EXPECT_EQ(service.stats().cache.entries, 0u);
  EXPECT_EQ(service.stats().shed, 1u);

  // Raising the limit back up restores full service.
  service.set_admission_limit(SIZE_MAX);
  const Result<SolveResponse> full = service.solve(request);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().source, SolveSource::kSolved);
  EXPECT_FALSE(full.value().degraded);
}

TEST(SolveServiceTest, MalformedRequestIsAnErrorNotACrash) {
  SolveService service;
  SolveRequest bad{make_app(100.0), mec::SystemParams{}};
  bad.user.unoffloadable.resize(1);  // shape mismatch vs graph
  EXPECT_FALSE(service.solve(bad).ok());

  SolveRequest bad_params{make_app(100.0), mec::SystemParams{}};
  bad_params.params.bandwidth = -1.0;
  EXPECT_FALSE(service.solve(bad_params).ok());

  EXPECT_EQ(service.stats().solved, 0u);
}

TEST(SolveServiceTest, DifferentSolverConfigsUseDifferentKeys) {
  SolveServiceOptions spectral;
  SolveService a(spectral);
  SolveServiceOptions kl = spectral;
  kl.solver.backend = mec::CutBackend::kKernighanLin;
  SolveService b(kl);
  EXPECT_NE(a.config_seed(), b.config_seed());

  SolveRequest request{make_app(90.0), mec::SystemParams{}};
  const Result<SolveResponse> ra = a.solve(request);
  const Result<SolveResponse> rb = b.solve(request);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_NE(ra.value().key, rb.value().key);
}

}  // namespace
}  // namespace mecoff::serve
