// Tests for the execution-trace importer.
#include <gtest/gtest.h>

#include "appmodel/trace_import.hpp"
#include "mec/offloader.hpp"

namespace mecoff::appmodel {
namespace {

constexpr const char* kSimpleTrace = R"(
# camera frame pipeline, one invocation each
enter main 0.0
  enter capture 0.1
  exit  capture 0.3
  send  capture detect 2048
  enter detect 0.4
    enter resize 0.5
    exit  resize 0.6
  exit  detect 1.0
exit main 1.2
pin capture
component capture io
component detect vision
)";

TEST(TraceImport, ParsesAndComputesSelfTimes) {
  TraceImportOptions opts;
  opts.compute_scale = 10.0;
  opts.data_scale = 1.0 / 1024.0;
  const Result<TraceImport> r = import_trace(kSimpleTrace, opts);
  ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  const Application& app = r.value().app;
  ASSERT_EQ(app.num_functions(), 4u);

  // main: span 1.2, children 0.2 + 0.6 = 0.8 → self 0.4 → weight 4.
  EXPECT_NEAR(app.function(app.find_function("main")).computation, 4.0,
              1e-9);
  // capture: span 0.2 → weight 2.
  EXPECT_NEAR(app.function(app.find_function("capture")).computation, 2.0,
              1e-9);
  // detect: span 0.6, child 0.1 → self 0.5 → weight 5.
  EXPECT_NEAR(app.function(app.find_function("detect")).computation, 5.0,
              1e-9);
  EXPECT_TRUE(app.function(app.find_function("capture")).unoffloadable);
  EXPECT_EQ(app.function(app.find_function("detect")).component, "vision");
  EXPECT_EQ(r.value().invocations, 4u);
  EXPECT_NEAR(r.value().total_traced_seconds, 1.2, 1e-12);
}

TEST(TraceImport, PayloadAndDefaultCallBytes) {
  TraceImportOptions opts;
  opts.data_scale = 1.0 / 1024.0;
  opts.default_call_bytes = 0.25;
  const Result<TraceImport> r = import_trace(kSimpleTrace, opts);
  ASSERT_TRUE(r.ok());
  const Application& app = r.value().app;
  const graph::WeightedGraph g = app.to_graph();
  const auto capture = static_cast<graph::NodeId>(
      app.find_function("capture"));
  const auto detect = static_cast<graph::NodeId>(
      app.find_function("detect"));
  const auto main_fn = static_cast<graph::NodeId>(
      app.find_function("main"));
  const auto resize = static_cast<graph::NodeId>(
      app.find_function("resize"));
  // Explicit send: 2048 bytes → 2 units.
  EXPECT_NEAR(g.edge_weight_between(capture, detect), 2.0, 1e-9);
  // Call edges without sends carry the default.
  EXPECT_NEAR(g.edge_weight_between(main_fn, capture), 0.25, 1e-9);
  EXPECT_NEAR(g.edge_weight_between(detect, resize), 0.25, 1e-9);
}

TEST(TraceImport, RepeatedInvocationsAccumulate) {
  const auto r = import_trace(
      "enter f 0.0\nexit f 1.0\nenter f 2.0\nexit f 2.5\n");
  ASSERT_TRUE(r.ok());
  const Application& app = r.value().app;
  TraceImportOptions defaults;
  EXPECT_NEAR(app.function(0).computation, 1.5 * defaults.compute_scale,
              1e-9);
  EXPECT_EQ(r.value().invocations, 2u);
}

TEST(TraceImport, ErrorsCarryLineNumbers) {
  const auto r = import_trace("enter f 0.0\nexit g 1.0\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos);
}

TEST(TraceImport, RejectsMalformedTraces) {
  EXPECT_FALSE(import_trace("").ok());                       // empty
  EXPECT_FALSE(import_trace("exit f 1.0\n").ok());           // stack underflow
  EXPECT_FALSE(import_trace("enter f 0.0\n").ok());          // unclosed
  EXPECT_FALSE(import_trace("enter f 1.0\nexit f 0.5\n").ok());  // backwards
  EXPECT_FALSE(import_trace("enter f -1\nexit f 0\n").ok()); // negative ts
  EXPECT_FALSE(
      import_trace("enter f 0\nexit f 1\nsend f f 8\n").ok());  // self-send
  EXPECT_FALSE(import_trace("frobnicate x 1\n").ok());       // unknown record
  EXPECT_FALSE(import_trace("enter f 0\nexit f 1\nsend a b -2\n").ok());
}

TEST(TraceImport, TracedAppSolvesEndToEnd) {
  // The traced app flows into the standard pipeline unchanged.
  constexpr const char* kTrace = R"(
enter ui 0.0
  enter heavy 0.1
  exit  heavy 5.0
exit ui 5.1
send ui heavy 512
pin ui
)";
  const auto r = import_trace(kTrace);
  ASSERT_TRUE(r.ok());
  const Application& app = r.value().app;
  mec::UserApp user;
  user.graph = app.to_graph();
  user.unoffloadable = app.unoffloadable_mask();
  mec::MecSystem system{mec::SystemParams{}, {user}};
  mec::PipelineOffloader offloader;
  const mec::OffloadingScheme scheme = offloader.solve(system);
  EXPECT_EQ(scheme.placement[0][app.find_function("ui")],
            mec::Placement::kLocal);
  EXPECT_EQ(scheme.placement[0][app.find_function("heavy")],
            mec::Placement::kRemote);  // 490 compute vs 0.5 data
}

}  // namespace
}  // namespace mecoff::appmodel
