#!/usr/bin/env python3
"""Self-test for tools/analyze_locks.py.

Runs the lock-order analyzer over each seeded-violation fixture and
asserts the exact rule/finding counts and the seeded inversion's
location, then runs it over the real source tree and asserts a clean
exit with every observed nesting covered by a documented edge.
Registered as the `locks_selftest` ctest (label: lint); stdlib only.
"""

from __future__ import annotations

import collections
import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
ANALYZER = os.path.join(ROOT, "tools", "analyze_locks.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture file -> {rule: expected finding count}
EXPECTED = {
    "locks_clean.cpp": {},
    "locks_cycle.cpp": {"lock-order-cycle": 1},
    "locks_inversion.cpp": {"lock-order-inversion": 1,
                            "lock-order-cycle": 1},
    "locks_self_deadlock.cpp": {"self-deadlock": 2},
    "locks_undocumented.cpp": {"undocumented-lock-nesting": 1},
    "locks_unknown.cpp": {"unknown-mutex": 2},
}

# The tree's ground-truth nestings: every one of these pairs must stay
# both observed and documented (see the `// lock-order:` comments the
# paths below point at).
TREE_EDGES = {
    ("FlightRecorder::mutex_", "Quantiles::mutex_"),
    ("MetricsRegistry::mutex_", "Quantiles::mutex_"),
    ("SolveService::brownout_mutex_", "Quantiles::mutex_"),
    ("Timeline::mutex_", "MetricsRegistry::mutex_"),
    ("TraceCollector::registry_mutex_", "TraceCollector::ThreadLog::mutex"),
}


def run_analyzer(args):
    proc = subprocess.run(
        [sys.executable, ANALYZER, "--json"] + args,
        capture_output=True, text=True, check=False)
    if proc.returncode == 2:
        raise AssertionError(
            f"analyzer usage/IO error on {args}: {proc.stderr}")
    payload = json.loads(proc.stdout)
    assert payload.get("schema") == "mecoff.locks.v1", payload.get("schema")
    return proc.returncode, payload


def main():
    failures = []

    for fixture, expected in sorted(EXPECTED.items()):
        path = os.path.join(FIXTURES, fixture)
        code, payload = run_analyzer([path])
        by_rule = collections.Counter(
            finding["rule"] for finding in payload["findings"])
        if dict(by_rule) != expected:
            failures.append(
                f"{fixture}: expected {expected}, got {dict(by_rule)}: "
                + "; ".join(
                    f"{f['file']}:{f['line']} [{f['rule']}] {f['message']}"
                    for f in payload["findings"]))
        want_code = 1 if expected else 0
        if code != want_code:
            failures.append(
                f"{fixture}: expected exit {want_code}, got {code}")

    # The seeded inversion must be pinned to the inner acquisition.
    _, payload = run_analyzer(
        [os.path.join(FIXTURES, "locks_inversion.cpp")])
    inversions = [f for f in payload["findings"]
                  if f["rule"] == "lock-order-inversion"]
    if not inversions or inversions[0]["line"] != 20:
        failures.append(
            "locks_inversion.cpp: expected the inversion at line 20, got "
            + json.dumps(inversions))

    # The real tree must be clean, with every observed nesting covered
    # by a documented `// lock-order:` edge -- the gate CI relies on.
    code, payload = run_analyzer(["--root", ROOT])
    if code != 0 or payload["count"] != 0:
        failures.append(
            f"source tree not clean (exit {code}): " + "; ".join(
                f"{f['file']}:{f['line']} [{f['rule']}]"
                for f in payload["findings"]))
    documented = {(e["from"], e["to"]) for e in payload["documented_edges"]}
    observed = {(e["from"], e["to"]) for e in payload["observed_edges"]}
    missing = TREE_EDGES - documented
    if missing:
        failures.append(f"documented edges lost from the tree: {missing}")
    unseen = TREE_EDGES - observed
    if unseen:
        failures.append(f"tree nestings no longer observed: {unseen}")

    if failures:
        print("locks_selftest: FAIL", file=sys.stderr)
        for failure in failures:
            print("  - " + failure, file=sys.stderr)
        return 1
    print(f"locks_selftest: OK ({len(EXPECTED)} fixtures, "
          f"{len(observed)} tree edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
