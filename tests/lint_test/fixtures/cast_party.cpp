// Lint fixture: reinterpret_cast outside the audited allowlist
// (rule reinterpret-cast). Expected findings: 1.
#include <cstdint>

namespace fixture {

std::uint32_t low_word(const double* value) {
  return *reinterpret_cast<const std::uint32_t*>(value);
}

}  // namespace fixture
